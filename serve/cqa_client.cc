// cqa_client — the thin command-line client for cqad:
//
//   cqa_client query --port=N --data=DIR --query='Q(N) :- ...'
//              [--host=ADDR] [--schema=tpch|tpcds]
//              [--scheme=Natural|KL|KLM|Cover] [--epsilon=F] [--delta=F]
//              [--deadline=S] [--seed=N] [--threads=N] [--record=1]
//              [--id=STR] [--trace=STR] [--codec=json|binary]
//   cqa_client stats --port=N [--host=ADDR] [--codec=json|binary]
//   cqa_client ping  --port=N [--host=ADDR] [--codec=json|binary]
//
// --trace attaches the given id as the request's trace context; the
// server stamps its spans and access-log line with it, and the reply's
// phase breakdown is printed as a "# timing" comment line.
//
// --codec picks the wire payload codec: v1 JSON (default) or the v2
// tagged binary codec. The server answers in the codec the request
// arrived in, so the printed output is identical either way.
//
// `query` prints the same answer lines as `cqa_cli run` (tuple TAB
// frequency) so outputs diff cleanly against a local run with the same
// seed. Exit codes: 0 ok, 1 transport failure, 3 server-side error
// (status printed on stderr with the protocol code name).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "serve/client.h"

using namespace cqa;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  bool ValidateKeys(std::initializer_list<const char*> allowed) const {
    bool ok = true;
    for (const auto& [key, value] : flags) {
      bool known = false;
      for (const char* a : allowed) known |= key == a;
      if (!known) {
        std::fprintf(stderr, "error: unknown flag --%s for command %s\n",
                     key.c_str(), command.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: cqa_client <query|stats|ping> --port=N [--host=ADDR]\n"
      "  query --data=DIR --query=Q [--schema=tpch|tpcds]\n"
      "        [--scheme=Natural|KL|KLM|Cover] [--epsilon=F] [--delta=F]\n"
      "        [--deadline=S] [--seed=N] [--threads=N] [--record=1]\n"
      "        [--id=STR] [--trace=STR] [--codec=json|binary]\n"
      "  stats [--codec=json|binary]\n"
      "  ping  [--codec=json|binary]\n");
  return 2;
}

int ReportServerError(const serve::Response& response) {
  std::fprintf(stderr, "error %d (%s): %s\n",
               static_cast<int>(response.code),
               serve::ErrorCodeName(response.code), response.error.c_str());
  if (response.retry_after_s > 0) {
    std::fprintf(stderr, "retry_after_s: %.3f\n", response.retry_after_s);
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) return Usage();
    args.flags[std::string(arg + 2, eq)] = std::string(eq + 1);
  }

  serve::Request request;
  if (args.command == "query") {
    if (!args.ValidateKeys({"host", "port", "data", "query", "schema",
                            "scheme", "epsilon", "delta", "deadline", "seed",
                            "threads", "record", "id", "trace", "codec"})) {
      return Usage();
    }
    request.op = "query";
    request.schema = args.Get("schema", "tpch");
    request.data = args.Get("data", "");
    request.query = args.Get("query", "");
    request.scheme = args.Get("scheme", "KLM");
    request.epsilon = args.GetDouble("epsilon", 0.1);
    request.delta = args.GetDouble("delta", 0.25);
    request.deadline_s = args.GetDouble("deadline", 0.0);
    request.seed = static_cast<uint64_t>(args.GetDouble("seed", 7));
    request.threads = static_cast<int>(args.GetDouble("threads", 1));
    request.want_record = args.GetDouble("record", 0) != 0;
    request.id = args.Get("id", "");
    request.trace_id = args.Get("trace", "");
    if (request.data.empty() || request.query.empty()) {
      std::fprintf(stderr, "error: query needs --data and --query\n");
      return Usage();
    }
  } else if (args.command == "stats" || args.command == "ping") {
    if (!args.ValidateKeys({"host", "port", "codec"})) return Usage();
    request.op = args.command;
  } else {
    return Usage();
  }
  const std::string codec_name = args.Get("codec", "json");
  if (codec_name != "json" && codec_name != "binary") {
    std::fprintf(stderr, "error: --codec must be json or binary\n");
    return Usage();
  }

  serve::CqaClient client;
  client.set_codec(codec_name == "binary" ? serve::WireCodec::kBinary
                                          : serve::WireCodec::kJson);
  std::string error;
  if (!client.Connect(args.Get("host", "127.0.0.1"),
                      static_cast<int>(args.GetDouble("port", 0)), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  serve::Response response;
  if (!client.Call(request, &response, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!response.ok()) return ReportServerError(response);

  if (request.op == "ping") {
    std::printf("pong\n");
  } else if (request.op == "stats") {
    std::printf("%s\n%s\n", response.server_json.c_str(),
                response.metrics_json.c_str());
  } else {
    std::printf("# %s, preprocessing %.4fs, scheme %.4fs, %llu samples%s\n",
                response.cache_hit ? "cache hit" : "cache miss",
                response.preprocess_seconds, response.scheme_seconds,
                static_cast<unsigned long long>(response.total_samples),
                response.timed_out ? " (TIMED OUT, partial)" : "");
    if (response.timing.recorded) {
      std::printf(
          "# timing: queue_wait %llu us, cache %llu us, preprocess %llu us, "
          "sample %llu us, encode %llu us, total %llu us\n",
          static_cast<unsigned long long>(response.timing.queue_wait_micros),
          static_cast<unsigned long long>(response.timing.cache_micros),
          static_cast<unsigned long long>(response.timing.preprocess_micros),
          static_cast<unsigned long long>(response.timing.sample_micros),
          static_cast<unsigned long long>(response.timing.encode_micros),
          static_cast<unsigned long long>(response.timing.total_micros));
    }
    for (const serve::ResponseAnswer& a : response.answers) {
      std::printf("%s\t%.6f\n", a.tuple.c_str(), a.frequency);
    }
    if (!response.run_record_json.empty()) {
      std::printf("%s\n", response.run_record_json.c_str());
    }
  }
  return 0;
}
