// cqad — the persistent CQA query service. Loads nothing up front:
// databases and synopses are pulled in and cached on first use, so a
// long-lived daemon amortizes the paper's preprocessing step across
// every request that shares a (database, Σ, Q) key.
//
//   cqad [--host=127.0.0.1] [--port=0] [--workers=4]
//        [--max_inflight=0] [--max_queue=64] [--max_pending=256]
//        [--max_frame_mb=8] [--drain_timeout=10]
//        [--cache_entries=64] [--db_cache_entries=4]
//        [--default_deadline=30] [--obs_report=FILE]
//        [--metrics_port=N] [--obs_access_log=FILE]
//        [--obs_access_sample=P] [--obs_access_slow_ms=N]
//        [--obs_trace=FILE] [--obs_resource_interval=S]
//
// Prints one line "cqad listening on HOST:PORT" once ready (loadgen and
// the e2e tests parse it), then — when --metrics_port was given — a
// second line "cqad metrics on HOST:PORT" for the Prometheus /metrics +
// /healthz + /debug/pprof listener. Serves until SIGTERM/SIGINT, which
// triggers the graceful drain documented in DESIGN.md §9; --obs_trace
// exports the span ring as JSONL after the drain completes.
// --obs_resource_interval (default 1s; 0 disables) sets the tick of the
// background resource sampler publishing the proc.* gauges.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "obs/exposition.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "serve/access_log.h"
#include "serve/metrics_http.h"
#include "serve/server.h"

using namespace cqa;

namespace {

struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  bool ValidateKeys(std::initializer_list<const char*> allowed) const {
    bool ok = true;
    for (const auto& [key, value] : flags) {
      bool known = false;
      for (const char* a : allowed) known |= key == a;
      if (!known) {
        std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: cqad [--host=ADDR] [--port=N] [--workers=N]\n"
      "            [--max_inflight=N] [--max_queue=N] [--max_pending=N]\n"
      "            [--max_frame_mb=N] [--drain_timeout=S]\n"
      "            [--cache_entries=N] [--db_cache_entries=N]\n"
      "            [--default_deadline=S] [--obs_report=FILE]\n"
      "            [--metrics_port=N] [--obs_access_log=FILE]\n"
      "            [--obs_access_sample=P] [--obs_access_slow_ms=N]\n"
      "            [--obs_trace=FILE] [--obs_resource_interval=S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) return Usage();
    args.flags[std::string(arg + 2, eq)] = std::string(eq + 1);
  }
  if (!args.ValidateKeys({"host", "port", "workers", "max_inflight",
                          "max_queue", "max_pending", "max_frame_mb",
                          "drain_timeout", "cache_entries",
                          "db_cache_entries", "default_deadline",
                          "obs_report", "metrics_port", "obs_access_log",
                          "obs_access_sample", "obs_access_slow_ms",
                          "obs_trace", "obs_resource_interval"})) {
    return Usage();
  }

  serve::ServerOptions options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<int>(args.GetDouble("port", 0));
  options.workers = static_cast<size_t>(args.GetDouble("workers", 4));
  options.max_inflight =
      static_cast<size_t>(args.GetDouble("max_inflight", 0));
  options.max_queue = static_cast<size_t>(args.GetDouble("max_queue", 64));
  options.max_pending_connections =
      static_cast<size_t>(args.GetDouble("max_pending", 256));
  options.max_frame_bytes =
      static_cast<size_t>(args.GetDouble("max_frame_mb", 8)) * 1024 * 1024;
  options.drain_timeout_s = args.GetDouble("drain_timeout", 10.0);
  options.engine.cache_entries =
      static_cast<size_t>(args.GetDouble("cache_entries", 64));
  options.engine.db_cache_entries =
      static_cast<size_t>(args.GetDouble("db_cache_entries", 4));
  options.engine.default_deadline_s = args.GetDouble("default_deadline", 30);

  obs::RunReporter reporter;
  std::string report_path = args.Get("obs_report", "");
  if (!report_path.empty()) {
    std::string error;
    if (!reporter.Open(report_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    options.engine.reporter = &reporter;
  }

  serve::AccessLog access_log(serve::AccessLogOptions{
      args.Get("obs_access_log", ""),
      args.GetDouble("obs_access_sample", 1.0),
      static_cast<uint64_t>(args.GetDouble("obs_access_slow_ms", 500) *
                            1000.0),
      7});
  if (!args.Get("obs_access_log", "").empty()) {
    std::string error;
    if (!access_log.Open(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    options.access_log = &access_log;
  }

  const double resource_interval = args.GetDouble("obs_resource_interval", 1.0);
  if (resource_interval > 0.0) {
    std::string resource_error;
    if (!obs::ResourceSampler::Instance().Start(resource_interval,
                                                &resource_error)) {
      std::fprintf(stderr, "error: %s\n", resource_error.c_str());
      return 1;
    }
  }

  serve::CqadServer::InstallSignalHandlers();
  serve::CqadServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("cqad listening on %s:%d\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  serve::MetricsHttpServer metrics_http(serve::MetricsHttpOptions{
      options.host,
      static_cast<int>(args.GetDouble("metrics_port", -1)),
      [] { return obs::RegistryPrometheusText(); },
      [&server] { return !server.draining(); }});
  if (args.flags.count("metrics_port") != 0) {
    if (!metrics_http.Start(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      server.RequestDrain();
      server.Wait();
      return 1;
    }
    std::printf("cqad metrics on %s:%d\n", options.host.c_str(),
                metrics_http.port());
    std::fflush(stdout);
  }

  server.Wait();
  metrics_http.Stop();
  obs::ResourceSampler::Instance().Stop();
  std::string trace_path = args.Get("obs_trace", "");
  if (!trace_path.empty()) {
    std::string trace_error;
    if (!obs::TraceBuffer::Instance().ExportJsonl(trace_path,
                                                  &trace_error)) {
      std::fprintf(stderr, "warning: %s\n", trace_error.c_str());
    }
  }
  std::printf("cqad drained cleanly\n");
  return 0;
}
