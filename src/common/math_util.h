#ifndef CQABENCH_COMMON_MATH_UTIL_H_
#define CQABENCH_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace cqa {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the test suite to validate sampler expectations and by the
/// benchmark harness to aggregate per-query timings.
class MeanVarAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// log(sum_i exp(log_terms[i])), stable. Returns -inf for an empty input.
double LogSumExp(const std::vector<double>& log_terms);

/// Pearson's chi-square statistic for observed counts against expected
/// probabilities (which must sum to ~1; buckets with zero expectation are
/// required to have zero observations). Used by the test suite to check
/// that the samplers draw from exactly the distributions the lemmas
/// assume (uniform over db(B), w_i-weighted over S•, ...).
double ChiSquareStatistic(const std::vector<size_t>& observed,
                          const std::vector<double>& expected_probabilities);

/// Conservative critical value of the chi-square distribution at
/// significance ~0.001 for the given degrees of freedom, via the
/// Wilson–Hilferty approximation. Statistics below this are consistent
/// with the hypothesized distribution.
double ChiSquareCriticalValue(size_t degrees_of_freedom);

/// Returns ceil(a / b) for positive integers.
size_t CeilDiv(size_t a, size_t b);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace cqa

#endif  // CQABENCH_COMMON_MATH_UTIL_H_
