#ifndef CQABENCH_COMMON_MACROS_H_
#define CQABENCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <string>

// Internal invariant checking. CQA_CHECK is active in all build modes: the
// algorithms in this library are randomized, and a silently violated
// invariant would surface as a statistically wrong answer rather than a
// crash, which is far harder to debug.
#define CQA_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CQA_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CQA_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CQA_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Tiered audit checks. CQA_CHECK (above) guards API contracts and stays on
// everywhere. CQA_DCHECK guards per-draw conditions that are cheap but sit
// on the sampling hot path; CQA_AUDIT runs the O(synopsis)-and-worse
// invariant sweeps from src/cqa/invariants.h. Both compile to nothing in
// optimized builds (NDEBUG) unless the build sets CQABENCH_AUDIT — the
// sanitizer presets do — so the ε/δ guarantees of Release benchmarks are
// never paid for twice, while every CI sanitizer run also proves the
// estimator invariants.
#if defined(CQABENCH_AUDIT) || !defined(NDEBUG)
#define CQA_AUDIT_ENABLED 1
#else
#define CQA_AUDIT_ENABLED 0
#endif

#if CQA_AUDIT_ENABLED

#define CQA_DCHECK(cond) CQA_CHECK(cond)
#define CQA_DCHECK_MSG(cond, msg) CQA_CHECK_MSG(cond, msg)

// Runs an audit predicate `bool fn(args..., std::string* why)` and aborts
// with its diagnostic on violation. Usage:
//   CQA_AUDIT(audit::CheckSynopsis, synopsis);
#define CQA_AUDIT(fn, ...)                                                  \
  do {                                                                      \
    std::string cqa_audit_why__;                                            \
    if (!fn(__VA_ARGS__, &cqa_audit_why__)) {                               \
      std::fprintf(stderr, "CQA_AUDIT failed at %s:%d: %s: %s\n", __FILE__, \
                   __LINE__, #fn, cqa_audit_why__.c_str());                 \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#else  // !CQA_AUDIT_ENABLED

// The disabled forms keep their operands syntactically alive (unevaluated
// sizeof) so variables used only in audits do not trip -Wunused under
// -Werror Release builds.
#define CQA_DCHECK(cond) \
  do {                   \
    (void)sizeof(!(cond)); \
  } while (0)
#define CQA_DCHECK_MSG(cond, msg) \
  do {                            \
    (void)sizeof(!(cond));        \
    (void)sizeof(msg);            \
  } while (0)
#define CQA_AUDIT(fn, ...)                                              \
  do {                                                                  \
    (void)sizeof(fn(__VA_ARGS__, static_cast<std::string*>(nullptr)));  \
  } while (0)

#endif  // CQA_AUDIT_ENABLED

#endif  // CQABENCH_COMMON_MACROS_H_
