#ifndef CQABENCH_COMMON_MACROS_H_
#define CQABENCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. CQA_CHECK is active in all build modes: the
// algorithms in this library are randomized, and a silently violated
// invariant would surface as a statistically wrong answer rather than a
// crash, which is far harder to debug.
#define CQA_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CQA_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CQA_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CQA_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // CQABENCH_COMMON_MACROS_H_
