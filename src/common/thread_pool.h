#ifndef CQABENCH_COMMON_THREAD_POOL_H_
#define CQABENCH_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace cqa {

/// A persistent worker pool for the scheme layer's fork/join loops.
///
/// The parallel Monte Carlo main loop and the per-answer scheme phase are
/// both "run K independent tasks, join" patterns invoked once per answer,
/// per scheme, per benchmark cell — thousands of times per run. Spawning
/// std::threads at each call site pays a kernel thread create/destroy per
/// worker per call; this pool spawns each worker once and reuses it for
/// every subsequent Run(), across answers, schemes, and the estimator/main
/// phases.
///
/// Concurrency contract:
///   * Run() executes fn(0..num_tasks-1) with dynamic task claiming and
///     returns only when every task finished. The *calling thread also
///     claims tasks*, so Run() makes progress even when all pool workers
///     are busy — which makes nested Run() calls (a task itself calling
///     Run) deadlock-free: the nested caller simply drains its own tasks.
///   * Run() establishes a happens-before edge between each task's side
///     effects and its return (the join mutex), so callers may read
///     plain (non-atomic) per-task output slots afterwards.
///   * Run() may be called from multiple threads concurrently; tasks of
///     distinct jobs interleave over the same workers.
///   * fn must not throw (the tree builds without exceptions in hot
///     paths; a throwing task would terminate).
class ThreadPool {
 public:
  /// Starts with `num_workers` worker threads (0 is valid: Run() then
  /// degenerates to a serial loop on the calling thread).
  explicit ThreadPool(size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const CQA_EXCLUDES(mu_);

  /// Grows the pool to at least `n` workers; returns how many threads
  /// were spawned by this call (0 = pure reuse). Never shrinks.
  size_t EnsureWorkers(size_t n) CQA_EXCLUDES(mu_);

  /// Runs fn(t) for every t in [0, num_tasks) across the pool workers and
  /// the calling thread; returns when all tasks completed. Tasks run with
  /// mu_ released, so fn may itself call Run (nested fork/join).
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn)
      CQA_EXCLUDES(mu_);

  /// The process-wide pool the scheme layer shares. Grown on demand via
  /// EnsureWorkers; workers persist until process exit.
  static ThreadPool& Shared();

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    /// The submitting thread's innermost profile region (a string
    /// literal or nullptr), re-established around each task so CPU
    /// samples on pool workers attribute to the phase that spawned the
    /// work rather than to an anonymous worker loop.
    const char* region = nullptr;
    // next_task and outstanding are guarded by the owning pool's mu_
    // (Job has no handle on the pool, so this is a comment contract;
    // DrainJob, the only mutator, carries CQA_REQUIRES(mu_)).
    size_t next_task = 0;
    size_t outstanding = 0;  // Tasks claimed but not yet finished.
    bool AllClaimed() const { return next_task >= num_tasks; }
  };

  void WorkerLoop() CQA_EXCLUDES(mu_);
  /// Claims and runs tasks of `job` until none are left to claim. Holds
  /// mu_ at entry and exit but releases it around each fn invocation.
  void DrainJob(Job* job) CQA_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;  // Workers: a job arrived / shutdown.
  CondVar done_cv_;  // Callers: a job fully completed.
  std::vector<std::thread> workers_ CQA_GUARDED_BY(mu_);
  std::vector<Job*> jobs_ CQA_GUARDED_BY(mu_);  // Unclaimed-task jobs, FIFO.
  bool shutdown_ CQA_GUARDED_BY(mu_) = false;
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_THREAD_POOL_H_
