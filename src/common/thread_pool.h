#ifndef CQABENCH_COMMON_THREAD_POOL_H_
#define CQABENCH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cqa {

/// A persistent worker pool for the scheme layer's fork/join loops.
///
/// The parallel Monte Carlo main loop and the per-answer scheme phase are
/// both "run K independent tasks, join" patterns invoked once per answer,
/// per scheme, per benchmark cell — thousands of times per run. Spawning
/// std::threads at each call site pays a kernel thread create/destroy per
/// worker per call; this pool spawns each worker once and reuses it for
/// every subsequent Run(), across answers, schemes, and the estimator/main
/// phases.
///
/// Concurrency contract:
///   * Run() executes fn(0..num_tasks-1) with dynamic task claiming and
///     returns only when every task finished. The *calling thread also
///     claims tasks*, so Run() makes progress even when all pool workers
///     are busy — which makes nested Run() calls (a task itself calling
///     Run) deadlock-free: the nested caller simply drains its own tasks.
///   * Run() establishes a happens-before edge between each task's side
///     effects and its return (the join mutex), so callers may read
///     plain (non-atomic) per-task output slots afterwards.
///   * Run() may be called from multiple threads concurrently; tasks of
///     distinct jobs interleave over the same workers.
///   * fn must not throw (the tree builds without exceptions in hot
///     paths; a throwing task would terminate).
class ThreadPool {
 public:
  /// Starts with `num_workers` worker threads (0 is valid: Run() then
  /// degenerates to a serial loop on the calling thread).
  explicit ThreadPool(size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const;

  /// Grows the pool to at least `n` workers; returns how many threads
  /// were spawned by this call (0 = pure reuse). Never shrinks.
  size_t EnsureWorkers(size_t n);

  /// Runs fn(t) for every t in [0, num_tasks) across the pool workers and
  /// the calling thread; returns when all tasks completed.
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn);

  /// The process-wide pool the scheme layer shares. Grown on demand via
  /// EnsureWorkers; workers persist until process exit.
  static ThreadPool& Shared();

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next_task = 0;     // Guarded by mu_.
    size_t outstanding = 0;   // Tasks claimed but not yet finished.
    bool AllClaimed() const { return next_task >= num_tasks; }
  };

  void WorkerLoop();
  /// Claims and runs tasks of `job` until none are left to claim.
  /// Precondition: mu_ held; reacquires it before returning.
  void DrainJob(Job* job, std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Workers: a job arrived / shutdown.
  std::condition_variable done_cv_;  // Callers: a job fully completed.
  std::vector<std::thread> workers_;
  std::vector<Job*> jobs_;  // Jobs with unclaimed tasks, FIFO.
  bool shutdown_ = false;
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_THREAD_POOL_H_
