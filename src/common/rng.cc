#include "common/rng.h"

#include <unordered_set>

#include "common/macros.h"

namespace cqa {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CQA_CHECK(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  CQA_CHECK(n > 0);
  return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
}

double Rng::UniformReal() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CQA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CQA_CHECK(w >= 0.0);
    total += w;
  }
  CQA_CHECK(total > 0.0);
  double r = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CQA_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch space.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformIndex(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  Shuffle(result);
  return result;
}

}  // namespace cqa
