#include "common/rng.h"

#include <unordered_set>

#include "common/macros.h"

namespace cqa {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Rng::ForkSeed() {
  // Mixing the fork ordinal in before the engine draw keeps sibling seeds
  // distinct even if the engine ever produced a repeated value.
  return SplitMix64(engine_() + SplitMix64(++forks_));
}

uint64_t Rng::BoundedDraw(uint64_t n) {
  // Lemire's nearly-divisionless unbiased bounded draw ("Fast random
  // integer generation in an interval", TOMACS 2019): map one 64-bit
  // engine word into [0, n) with a widening multiply, rejecting only the
  // sliver of low products that would bias small residues. The rejection
  // branch — the only place that divides — is taken with probability
  // n / 2^64, so a draw is one engine word plus one multiply in practice.
  // The samplers spend one bounded draw per synopsis block per sample,
  // which made the per-call division of uniform_int_distribution the
  // single hottest instruction in the KL/KLM main loops.
  uint64_t x = engine_();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    while (low < threshold) {
      x = engine_();
      m = static_cast<unsigned __int128>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CQA_CHECK(lo <= hi);
  // Width computed in uint64_t so lo = INT64_MIN, hi = INT64_MAX wraps to
  // 0, which means "full range": any engine word is already uniform.
  const uint64_t width =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (width == 0) return static_cast<int64_t>(engine_());
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + BoundedDraw(width));
}

size_t Rng::UniformIndex(size_t n) {
  CQA_CHECK(n > 0);
  return static_cast<size_t>(BoundedDraw(n));
}

double Rng::UniformReal() {
  // The top 53 engine bits scaled by 2^-53: exactly uniform over the
  // dyadic grid in [0, 1), one engine word per draw.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CQA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CQA_CHECK(w >= 0.0);
    total += w;
  }
  CQA_CHECK(total > 0.0);
  double r = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CQA_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch space.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformIndex(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  Shuffle(result);
  return result;
}

}  // namespace cqa
