#ifndef CQABENCH_COMMON_RNG_H_
#define CQABENCH_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cqa {

/// The SplitMix64 output/finalizer function of Steele, Lea and Flood
/// ("Fast splittable pseudorandom number generators", OOPSLA 2014). Used
/// to derive decorrelated child-stream seeds from a parent generator:
/// even sequential inputs (0, 1, 2, ...) map to statistically independent
/// outputs, so seeding one engine per worker from it avoids the
/// correlated-lowbits trap of seeding from raw engine draws.
uint64_t SplitMix64(uint64_t x);

/// Pseudo-random source used by every randomized component of the library.
///
/// Wraps the 64-bit Mersenne Twister (the generator the paper cites, [23]).
/// All algorithms take an `Rng&` so experiments are reproducible from a
/// single seed and tests can pin the stream.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5DEECE66DULL) : engine_(seed) {}

  /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index i with probability weights[i] / sum(weights).
  /// Requires a non-empty vector with non-negative entries and positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[UniformIndex(i)]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives a seed for an independent child stream (one worker thread,
  /// one batch shard). Deterministic given the parent's seed and the
  /// sequence of calls: the k-th fork always yields the same seed. The
  /// fork counter feeds SplitMix64 together with an engine draw, so
  /// sibling streams are decorrelated even when the engine output has
  /// structure, and two parents with different seeds never collide.
  uint64_t ForkSeed();

  std::mt19937_64& engine() { return engine_; }

 private:
  /// Unbiased draw in [0, n) via Lemire's multiply-shift rejection —
  /// the shared fast path under UniformInt and UniformIndex.
  uint64_t BoundedDraw(uint64_t n);

  std::mt19937_64 engine_;
  uint64_t forks_ = 0;
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_RNG_H_
