#ifndef CQABENCH_COMMON_STOPWATCH_H_
#define CQABENCH_COMMON_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace cqa {

/// Monotonic wall-clock stopwatch used for timing scheme executions and
/// enforcing per-run deadlines (the paper's 1-hour timeout, scaled down).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget. A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() : limit_seconds_(-1.0) {}
  explicit Deadline(double limit_seconds) : limit_seconds_(limit_seconds) {}

  /// Deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return limit_seconds_ >= 0.0 && watch_.ElapsedSeconds() >= limit_seconds_;
  }

  /// Budget left before expiry, clamped at 0; +inf for the infinite
  /// deadline. Instrumented loops log this to expose budget pressure.
  double RemainingSeconds() const {
    if (limit_seconds_ < 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    double remaining = limit_seconds_ - watch_.ElapsedSeconds();
    return remaining > 0.0 ? remaining : 0.0;
  }

  double limit_seconds() const { return limit_seconds_; }

 private:
  double limit_seconds_;
  Stopwatch watch_;
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_STOPWATCH_H_
