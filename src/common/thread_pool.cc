#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
// Header-only by design so this file inherits no cqa_obs link
// dependency; under CQABENCH_NO_OBS both calls below are no-op stubs.
#include "obs/profile_region.h"

namespace cqa {

ThreadPool::ThreadPool(size_t num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  // Joining with mu_ held would deadlock against WorkerLoop's final lock
  // reacquisition, so move the handles out under the lock and join bare.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    workers = std::move(workers_);
    workers_.clear();
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers) w.join();
}

size_t ThreadPool::num_workers() const {
  MutexLock lock(mu_);
  return workers_.size();
}

size_t ThreadPool::EnsureWorkers(size_t n) {
  MutexLock lock(mu_);
  CQA_CHECK(!shutdown_);
  size_t spawned = 0;
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
    ++spawned;
  }
  return spawned;
}

void ThreadPool::DrainJob(Job* job) {
  while (!job->AllClaimed()) {
    size_t task = job->next_task++;
    ++job->outstanding;
    mu_.Unlock();
    if (job->region != nullptr) {
      obs::ScopedProfileRegion region(job->region);
      (*job->fn)(task);
    } else {
      (*job->fn)(task);
    }
    mu_.Lock();
    --job->outstanding;
  }
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!shutdown_ && jobs_.empty()) work_cv_.Wait(mu_);
    if (shutdown_) return;
    Job* job = jobs_.front();
    DrainJob(job);
    // This worker claimed the job's last task (or arrived after it was
    // fully claimed); drop it from the queue if still listed.
    auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
    if (job->outstanding == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  Job job;
  job.fn = &fn;
  job.num_tasks = num_tasks;
  job.region = obs::CurrentProfileRegion();
  MutexLock lock(mu_);
  if (num_tasks > 1 && !workers_.empty()) {
    jobs_.push_back(&job);
    work_cv_.NotifyAll();
  }
  // The caller participates: even with zero free workers (or a nested
  // Run from inside a task) the job completes.
  DrainJob(&job);
  auto it = std::find(jobs_.begin(), jobs_.end(), &job);
  if (it != jobs_.end()) jobs_.erase(it);
  while (job.outstanding != 0) done_cv_.Wait(mu_);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace cqa
