#include "common/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace cqa {

ThreadPool::ThreadPool(size_t num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::num_workers() const {
  std::unique_lock<std::mutex> lock(mu_);
  return workers_.size();
}

size_t ThreadPool::EnsureWorkers(size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  CQA_CHECK(!shutdown_);
  size_t spawned = 0;
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
    ++spawned;
  }
  return spawned;
}

void ThreadPool::DrainJob(Job* job, std::unique_lock<std::mutex>& lock) {
  while (!job->AllClaimed()) {
    size_t task = job->next_task++;
    ++job->outstanding;
    lock.unlock();
    (*job->fn)(task);
    lock.lock();
    --job->outstanding;
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
    if (shutdown_) return;
    Job* job = jobs_.front();
    DrainJob(job, lock);
    // This worker claimed the job's last task (or arrived after it was
    // fully claimed); drop it from the queue if still listed.
    auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
    if (job->outstanding == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  Job job;
  job.fn = &fn;
  job.num_tasks = num_tasks;
  std::unique_lock<std::mutex> lock(mu_);
  if (num_tasks > 1 && !workers_.empty()) {
    jobs_.push_back(&job);
    work_cv_.notify_all();
  }
  // The caller participates: even with zero free workers (or a nested
  // Run from inside a task) the job completes.
  DrainJob(&job, lock);
  auto it = std::find(jobs_.begin(), jobs_.end(), &job);
  if (it != jobs_.end()) jobs_.erase(it);
  done_cv_.wait(lock, [&job] { return job.outstanding == 0; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace cqa
