#ifndef CQABENCH_COMMON_THREAD_ANNOTATIONS_H_
#define CQABENCH_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations plus annotated wrappers over
// the std synchronization primitives. Under clang the macros expand to
// the TSA attributes and `-Wthread-safety -Werror` (the `tsa` preset)
// turns every locking-contract violation into a compile error; under
// GCC/MSVC they expand to nothing and the wrappers are zero-cost
// veneers. This header is the single place in the tree allowed to
// touch raw `std::mutex` / `std::condition_variable` (lint check 9).

#include <condition_variable>
#include <chrono>
#include <mutex>

#if defined(__clang__)
#define CQA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CQA_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

#define CQA_CAPABILITY(x) CQA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define CQA_SCOPED_CAPABILITY \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define CQA_GUARDED_BY(x) CQA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define CQA_PT_GUARDED_BY(x) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define CQA_ACQUIRED_BEFORE(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define CQA_ACQUIRED_AFTER(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define CQA_REQUIRES(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define CQA_ACQUIRE(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define CQA_RELEASE(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define CQA_TRY_ACQUIRE(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define CQA_EXCLUDES(...) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define CQA_ASSERT_CAPABILITY(x) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define CQA_RETURN_CAPABILITY(x) \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define CQA_NO_THREAD_SAFETY_ANALYSIS \
  CQA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace cqa {

// Annotated mutual-exclusion capability over std::mutex. Non-copyable,
// non-movable (guarded members reference it by address).
class CQA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CQA_ACQUIRE() { mu_.lock(); }
  void Unlock() CQA_RELEASE() { mu_.unlock(); }
  bool TryLock() CQA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped lock with explicit Unlock/Lock for hand-off sections (the
// clang-docs "MutexLocker" relockable idiom). The destructor releases
// only if currently held, which TSA models via the RELEASE annotation
// on a scoped capability.
class CQA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CQA_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.Lock();
  }
  ~MutexLock() CQA_RELEASE() {
    if (owned_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Temporarily release the mutex mid-scope (e.g. to run a callback
  // without holding it); pair with Lock() before the scope ends.
  void Unlock() CQA_RELEASE() {
    owned_ = false;
    mu_.Unlock();
  }
  void Lock() CQA_ACQUIRE() {
    mu_.Lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_;
};

// Condition variable that waits on an annotated Mutex. Wait requires
// the caller to hold the mutex, mirroring std::condition_variable's
// contract; the adopt/release dance hands the already-held native
// handle to std::condition_variable without double-locking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CQA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Returns true if the wait timed out without a notification.
  bool WaitForSeconds(Mutex& mu, double seconds) CQA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_for(native, std::chrono::duration<double>(seconds)) ==
        std::cv_status::timeout;
    native.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_THREAD_ANNOTATIONS_H_
