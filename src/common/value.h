#ifndef CQABENCH_COMMON_VALUE_H_
#define CQABENCH_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <variant>

namespace cqa {

/// The type of a database value (and of a relation attribute).
enum class ValueType { kInt, kDouble, kString };

/// Returns a human-readable name ("int", "double", "string").
const char* ValueTypeName(ValueType type);

/// A single database constant: a tagged union of int64, double and string.
///
/// Values are ordered and hashable so they can serve as key components,
/// join keys and members of the active domain. Comparisons across different
/// runtime types order by type tag first (int < double < string); the
/// library never relies on cross-type numeric coercion.
class Value {
 public:
  /// Default-constructs the integer 0.
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_int() const { return rep_.index() == 0; }
  bool is_double() const { return rep_.index() == 1; }
  bool is_string() const { return rep_.index() == 2; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for debugging and table output. Strings are quoted.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

 private:
  std::variant<int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Combines a hash into a seed (boost::hash_combine recipe).
inline void HashCombine(size_t& seed, size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_VALUE_H_
