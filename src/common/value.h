#ifndef CQABENCH_COMMON_VALUE_H_
#define CQABENCH_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <variant>

namespace cqa {

/// The type of a database value (and of a relation attribute).
enum class ValueType { kInt, kDouble, kString };

/// Returns a human-readable name ("int", "double", "string").
const char* ValueTypeName(ValueType type);

/// A single database constant: a tagged union of int64, double and string.
///
/// Values are ordered and hashable so they can serve as key components,
/// join keys and members of the active domain. Comparisons across different
/// runtime types order by type tag first (int < double < string); the
/// library never relies on cross-type numeric coercion.
class Value {
 public:
  /// Default-constructs the integer 0.
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  // Moves dispatch on the index explicitly instead of through
  // std::variant's visitor tables: GCC 12's -Wmaybe-uninitialized cannot
  // track the discriminant through the generated visitor and flags the
  // string alternative in any TU that moves a Value. Semantics match the
  // defaulted members (the moved-from value keeps its type tag). The
  // scoped suppression below covers the reports the explicit dispatch
  // still cannot satisfy (the string reads guarded by index checks GCC
  // loses across inlining) and the defaulted special members, whose
  // variant machinery trips the same false positive; it is deliberately
  // limited to this class's special members so the warning stays live
  // everywhere else.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  ~Value() = default;

  Value(Value&& other) noexcept {
    switch (other.rep_.index()) {
      case 1:
        rep_.emplace<double>(std::get<double>(other.rep_));
        break;
      case 2:
        rep_.emplace<std::string>(std::move(std::get<std::string>(other.rep_)));
        break;
      default:
        rep_.emplace<int64_t>(std::get<int64_t>(other.rep_));
        break;
    }
  }
  Value& operator=(Value&& other) noexcept {
    switch (other.rep_.index()) {
      case 1:
        rep_.emplace<double>(std::get<double>(other.rep_));
        break;
      case 2:
        rep_.emplace<std::string>(std::move(std::get<std::string>(other.rep_)));
        break;
      default:
        rep_.emplace<int64_t>(std::get<int64_t>(other.rep_));
        break;
    }
    return *this;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_int() const { return rep_.index() == 0; }
  bool is_double() const { return rep_.index() == 1; }
  bool is_string() const { return rep_.index() == 2; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for debugging and table output. Strings are quoted.
  std::string ToString() const;

  size_t Hash() const;

  // Comparisons use the same explicit index dispatch as the moves above
  // (same GCC 12 visitor false positive), preserving std::variant's
  // ordering: type tag first, then value.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  friend bool operator==(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) return false;
    switch (a.rep_.index()) {
      case 1:
        return std::get<double>(a.rep_) == std::get<double>(b.rep_);
      case 2:
        return std::get<std::string>(a.rep_) == std::get<std::string>(b.rep_);
      default:
        return std::get<int64_t>(a.rep_) == std::get<int64_t>(b.rep_);
    }
  }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) {
      return a.rep_.index() < b.rep_.index();
    }
    switch (a.rep_.index()) {
      case 1:
        return std::get<double>(a.rep_) < std::get<double>(b.rep_);
      case 2:
        return std::get<std::string>(a.rep_) < std::get<std::string>(b.rep_);
      default:
        return std::get<int64_t>(a.rep_) < std::get<int64_t>(b.rep_);
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }

 private:
  std::variant<int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Combines a hash into a seed (boost::hash_combine recipe).
inline void HashCombine(size_t& seed, size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cqa

#endif  // CQABENCH_COMMON_VALUE_H_
