#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace cqa {

void MeanVarAccumulator::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MeanVarAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MeanVarAccumulator::stddev() const { return std::sqrt(variance()); }

double LogSumExp(const std::vector<double>& log_terms) {
  if (log_terms.empty()) return -std::numeric_limits<double>::infinity();
  double max_term = *std::max_element(log_terms.begin(), log_terms.end());
  if (!std::isfinite(max_term)) return max_term;
  double sum = 0.0;
  for (double t : log_terms) sum += std::exp(t - max_term);
  return max_term + std::log(sum);
}

double ChiSquareStatistic(const std::vector<size_t>& observed,
                          const std::vector<double>& expected_probabilities) {
  CQA_CHECK(observed.size() == expected_probabilities.size());
  size_t total = 0;
  for (size_t o : observed) total += o;
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    double expected =
        expected_probabilities[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      CQA_CHECK_MSG(observed[i] == 0,
                    "observation in a zero-probability bucket");
      continue;
    }
    double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double ChiSquareCriticalValue(size_t degrees_of_freedom) {
  // Wilson–Hilferty: X²_k(p) ≈ k(1 - 2/(9k) + z_p·sqrt(2/(9k)))³ with
  // z_0.999 ≈ 3.09.
  CQA_CHECK(degrees_of_freedom >= 1);
  double k = static_cast<double>(degrees_of_freedom);
  double z = 3.09;
  double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

size_t CeilDiv(size_t a, size_t b) {
  CQA_CHECK(b > 0);
  return (a + b - 1) / b;
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace cqa
