#include "common/value.h"

#include <ostream>
#include <sstream>

namespace cqa {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

size_t Value::Hash() const {
  size_t seed = rep_.index();
  switch (rep_.index()) {
    case 0:
      HashCombine(seed, std::hash<int64_t>{}(std::get<int64_t>(rep_)));
      break;
    case 1:
      HashCombine(seed, std::hash<double>{}(std::get<double>(rep_)));
      break;
    case 2:
      HashCombine(seed, std::hash<std::string>{}(std::get<std::string>(rep_)));
      break;
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      os << v.AsInt();
      break;
    case ValueType::kDouble:
      os << v.AsDouble();
      break;
    case ValueType::kString:
      os << '\'' << v.AsString() << '\'';
      break;
  }
  return os;
}

}  // namespace cqa
