#include "bench/scenario.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "gen/dqg.h"
#include "gen/noise.h"
#include "gen/sqg.h"
#include "gen/tpch.h"
#include "query/evaluator.h"

namespace cqa {

namespace {

/// Generates one SQG base query with `joins` joins and two constants that
/// is non-empty and not too large over the base instance.
std::optional<ConjunctiveQuery> MakeBaseQuery(
    const Dataset& base, const FkGraph& fk_graph, const ConstantPool& pool,
    size_t joins, const ScenarioGridOptions& options, Rng& rng) {
  SqgOptions sqg;
  sqg.num_joins = joins;
  sqg.num_constants = 2;
  sqg.projection = 1.0;
  // First pass requires a dense witness set (>= min homomorphisms, the
  // regime the paper's 1 GB instances put every query in); the fallback
  // pass accepts any non-empty query.
  for (size_t floor : {options.min_base_homomorphisms, size_t{1}}) {
    for (size_t attempt = 0; attempt < options.sqg_attempts; ++attempt) {
      std::optional<ConjunctiveQuery> q =
          GenerateStaticQuery(*base.schema, fk_graph, pool, sqg, rng);
      if (!q.has_value()) continue;
      CqEvaluator evaluator(base.db.get());
      size_t homs = evaluator.CountHomomorphisms(
          *q, options.max_base_homomorphisms + 1);
      if (homs < floor || homs > options.max_base_homomorphisms) continue;
      return q;
    }
  }
  return std::nullopt;
}

}  // namespace

ScenarioGrid ScenarioGrid::Build(const ScenarioGridOptions& options) {
  ScenarioGrid grid;
  grid.options_ = options;

  TpchOptions tpch;
  tpch.scale_factor = options.scale_factor;
  tpch.seed = options.seed * 1000003 + 17;
  grid.base_ = GenerateTpch(tpch);
  const Dataset& base = grid.base_;

  Rng rng(options.seed);
  FkGraph fk_graph = FkGraph::Build(base.foreign_keys);
  ConstantPool pool = ConstantPool::FromDatabase(*base.db);

  for (size_t joins : options.join_levels) {
    for (size_t qi = 0; qi < options.queries_per_join; ++qi) {
      std::optional<ConjunctiveQuery> q =
          MakeBaseQuery(base, fk_graph, pool, joins, options, rng);
      if (!q.has_value()) {
        std::fprintf(stderr,
                     "scenario: could not generate a base query with %zu "
                     "joins; skipping\n",
                     joins);
        continue;
      }
      for (double noise : options.noise_levels) {
        // D_Q[p]: clone the consistent base and inject query-aware noise.
        auto noisy = std::make_shared<Database>(base.db->Clone());
        NoiseOptions noise_options;
        noise_options.p = noise;
        noise_options.min_block_size = options.min_block_size;
        noise_options.max_block_size = options.max_block_size;
        AddQueryAwareNoise(noisy.get(), *q, noise_options, rng);

        // Q_p[0]: the Boolean version.
        std::vector<double> dqg_targets;
        for (double target : options.balance_targets) {
          if (target == 0.0) {
            ScenarioPair pair;
            pair.db = noisy;
            pair.query = q->BooleanVersion();
            pair.joins = joins;
            pair.base_index = qi;
            pair.noise = noise;
            pair.balance_target = 0.0;
            pair.balance_actual = 0.0;
            grid.pairs_.push_back(std::move(pair));
          } else {
            dqg_targets.push_back(target);
          }
        }

        // Q_p[q] for q > 0: DQG projections tuned on the noisy database.
        if (!dqg_targets.empty()) {
          DqgOptions dqg;
          dqg.pool_size = options.dqg_pool_size;
          std::vector<DqgResult> balanced =
              GenerateBalancedQueries(*noisy, *q, dqg_targets, dqg, rng);
          for (DqgResult& r : balanced) {
            ScenarioPair pair;
            pair.db = noisy;
            pair.query = std::move(r.query);
            pair.joins = joins;
            pair.base_index = qi;
            pair.noise = noise;
            pair.balance_target = r.target;
            pair.balance_actual = r.balance;
            grid.pairs_.push_back(std::move(pair));
          }
        }
      }
    }
  }
  return grid;
}

std::vector<const ScenarioPair*> ScenarioGrid::Select(
    std::optional<size_t> joins, std::optional<double> noise,
    std::optional<double> balance_target) const {
  std::vector<const ScenarioPair*> selected;
  for (const ScenarioPair& pair : pairs_) {
    if (joins.has_value() && pair.joins != *joins) continue;
    if (noise.has_value() && std::abs(pair.noise - *noise) > 1e-9) continue;
    if (balance_target.has_value() &&
        std::abs(pair.balance_target - *balance_target) > 1e-9) {
      continue;
    }
    selected.push_back(&pair);
  }
  return selected;
}

}  // namespace cqa
