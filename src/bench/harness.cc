#include "bench/harness.h"

#include <cstdio>
#include <set>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng,
                                        const RunSinks& sinks,
                                        const obs::RunContext& context) {
  ApxParams run_params = params;
  if (sinks.WantsConvergence()) run_params.record_convergence = true;
  std::vector<SchemeTiming> timings;
  for (SchemeKind scheme : AllSchemeKinds()) {
    obs::TraceSpan span("harness.run_scheme");
    CQA_OBS_COUNT("harness.scheme_runs");
    Stopwatch watch;
    Deadline deadline(timeout_seconds);
    CqaRunResult run =
        ApxCqaOnSynopses(preprocessed, scheme, run_params, rng, deadline);
    SchemeTiming timing;
    timing.scheme = scheme;
    timing.seconds = watch.ElapsedSeconds();
    timing.timed_out = run.timed_out;
    timing.num_answers = run.answers.size();
    timing.estimator_samples = run.estimator_samples;
    timing.main_samples = run.main_samples;
    if (run.timed_out) CQA_OBS_COUNT("harness.timeouts");
    // Budget pressure at completion, in milliseconds (skipped for the
    // infinite deadline, whose remaining budget is +inf).
    if (deadline.limit_seconds() >= 0.0) {
      CQA_OBS_OBSERVE(
          "harness.remaining_budget_ms",
          static_cast<uint64_t>(deadline.RemainingSeconds() * 1000.0));
    }
    if (sinks.report != nullptr || sinks.bench_json != nullptr) {
      obs::RunRecord record =
          MakeRunRecord(run, scheme, context, timing.seconds);
      if (sinks.report != nullptr) sinks.report->Add(record);
      if (sinks.bench_json != nullptr) sinks.bench_json->AddRun(record);
    }
    if (sinks.convergence != nullptr) {
      for (const obs::ConvergenceSeries& series : run.convergence) {
        sinks.convergence->Add(context.scenario, context.x_label, context.x,
                               SchemeKindName(scheme), series);
      }
    }
    timings.push_back(timing);
  }
  return timings;
}

std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng,
                                        obs::RunReporter* reporter,
                                        const obs::RunContext& context) {
  RunSinks sinks;
  sinks.report = reporter;
  return RunAllSchemes(preprocessed, params, timeout_seconds, rng, sinks,
                       context);
}

void SeriesTable::Add(double x, SchemeKind scheme,
                      const SchemeTiming& timing) {
  Cell& cell = cells_[{x, scheme}];
  cell.seconds.Add(timing.seconds);
  cell.samples.Add(
      static_cast<double>(timing.estimator_samples + timing.main_samples));
  if (timing.timed_out) ++cell.timeouts;
}

void SeriesTable::Print(const std::string& title) const {
  std::printf("## %s\n", title.c_str());
  std::printf("%-10s %-8s %12s %12s %10s\n", x_label_.c_str(), "scheme",
              "mean_s", "samples", "timeouts");
  std::set<double> xs;
  for (const auto& [key, cell] : cells_) xs.insert(key.first);
  for (double x : xs) {
    for (SchemeKind scheme : AllSchemeKinds()) {
      auto it = cells_.find({x, scheme});
      if (it == cells_.end()) continue;
      const Cell& cell = it->second;
      std::printf("%-10.2f %-8s %12.4f %12.0f %7zu/%zu\n", x,
                  SchemeKindName(scheme), cell.seconds.mean(),
                  cell.samples.mean(), cell.timeouts, cell.seconds.count());
    }
  }
  std::printf("\n");
}

double SeriesTable::Mean(double x, SchemeKind scheme) const {
  auto it = cells_.find({x, scheme});
  if (it == cells_.end()) return -1.0;
  return it->second.seconds.mean();
}

double SeriesTable::MeanSamples(double x, SchemeKind scheme) const {
  auto it = cells_.find({x, scheme});
  if (it == cells_.end()) return -1.0;
  return it->second.samples.mean();
}

size_t SeriesTable::Timeouts(double x, SchemeKind scheme) const {
  auto it = cells_.find({x, scheme});
  if (it == cells_.end()) return 0;
  return it->second.timeouts;
}

bool SeriesTable::AllTimedOut(double x) const {
  bool any = false;
  for (SchemeKind scheme : AllSchemeKinds()) {
    auto it = cells_.find({x, scheme});
    if (it == cells_.end()) continue;
    any = true;
    if (it->second.timeouts < it->second.seconds.count()) return false;
  }
  return any;
}

SchemeKind SeriesTable::Winner(double x) const {
  SchemeKind best = SchemeKind::kNatural;
  double best_mean = -1.0;
  for (SchemeKind scheme : AllSchemeKinds()) {
    double m = Mean(x, scheme);
    if (m < 0) continue;
    if (best_mean < 0 || m < best_mean) {
      best_mean = m;
      best = scheme;
    }
  }
  return best;
}

}  // namespace cqa
