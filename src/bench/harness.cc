#include "bench/harness.h"

#include <cstdio>
#include <set>

#include "common/stopwatch.h"

namespace cqa {

std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng) {
  std::vector<SchemeTiming> timings;
  for (SchemeKind scheme : AllSchemeKinds()) {
    Stopwatch watch;
    Deadline deadline(timeout_seconds);
    CqaRunResult run =
        ApxCqaOnSynopses(preprocessed, scheme, params, rng, deadline);
    SchemeTiming timing;
    timing.scheme = scheme;
    timing.seconds = watch.ElapsedSeconds();
    timing.timed_out = run.timed_out;
    timing.num_answers = run.answers.size();
    timings.push_back(timing);
  }
  return timings;
}

void SeriesTable::Add(double x, SchemeKind scheme,
                      const SchemeTiming& timing) {
  Cell& cell = cells_[{x, scheme}];
  cell.seconds.Add(timing.seconds);
  if (timing.timed_out) ++cell.timeouts;
}

void SeriesTable::Print(const std::string& title) const {
  std::printf("## %s\n", title.c_str());
  std::printf("%-10s %-8s %12s %10s\n", x_label_.c_str(), "scheme",
              "mean_s", "timeouts");
  std::set<double> xs;
  for (const auto& [key, cell] : cells_) xs.insert(key.first);
  for (double x : xs) {
    for (SchemeKind scheme : AllSchemeKinds()) {
      auto it = cells_.find({x, scheme});
      if (it == cells_.end()) continue;
      const Cell& cell = it->second;
      std::printf("%-10.2f %-8s %12.4f %7zu/%zu\n", x,
                  SchemeKindName(scheme), cell.seconds.mean(), cell.timeouts,
                  cell.seconds.count());
    }
  }
  std::printf("\n");
}

double SeriesTable::Mean(double x, SchemeKind scheme) const {
  auto it = cells_.find({x, scheme});
  if (it == cells_.end()) return -1.0;
  return it->second.seconds.mean();
}

size_t SeriesTable::Timeouts(double x, SchemeKind scheme) const {
  auto it = cells_.find({x, scheme});
  if (it == cells_.end()) return 0;
  return it->second.timeouts;
}

bool SeriesTable::AllTimedOut(double x) const {
  bool any = false;
  for (SchemeKind scheme : AllSchemeKinds()) {
    auto it = cells_.find({x, scheme});
    if (it == cells_.end()) continue;
    any = true;
    if (it->second.timeouts < it->second.seconds.count()) return false;
  }
  return any;
}

SchemeKind SeriesTable::Winner(double x) const {
  SchemeKind best = SchemeKind::kNatural;
  double best_mean = -1.0;
  for (SchemeKind scheme : AllSchemeKinds()) {
    double m = Mean(x, scheme);
    if (m < 0) continue;
    if (best_mean < 0 || m < best_mean) {
      best_mean = m;
      best = scheme;
    }
  }
  return best;
}

}  // namespace cqa
