#ifndef CQABENCH_BENCH_HARNESS_H_
#define CQABENCH_BENCH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "cqa/apx_cqa.h"
#include "cqa/preprocess.h"
#include "obs/bench_json.h"
#include "obs/convergence.h"
#include "obs/report.h"

namespace cqa {

/// Timing of one scheme over one database-query pair.
struct SchemeTiming {
  SchemeKind scheme = SchemeKind::kNatural;
  double seconds = 0.0;
  bool timed_out = false;
  size_t num_answers = 0;
  /// Sample breakdown of the run: OptEstimate draws vs main-loop draws
  /// (coverage steps for Cover) — the cost structure behind `seconds`.
  size_t estimator_samples = 0;
  size_t main_samples = 0;
};

/// Optional observability outputs of a harness run. All pointers may be
/// null (that output is simply skipped); the struct exists so scenario
/// drivers pass one bundle instead of a growing parameter list.
struct RunSinks {
  /// JSONL run records (one line per scheme run).
  obs::RunReporter* report = nullptr;
  /// JSONL convergence trajectories (one line per recorded series). When
  /// non-null the harness turns on ApxParams::record_convergence for the
  /// runs it drives.
  obs::ConvergenceReporter* convergence = nullptr;
  /// Aggregated machine-readable benchmark results (BENCH_*.json).
  obs::BenchJsonWriter* bench_json = nullptr;

  bool WantsConvergence() const {
    return convergence != nullptr || bench_json != nullptr;
  }
};

/// Runs every approximation scheme over one preprocessed pair with a
/// per-scheme wall-clock budget (the paper's 1-hour timeout, scaled).
/// Preprocessing time is excluded, matching the paper's reporting.
///
/// Each scheme run is flattened into a RunRecord tagged with `context`
/// (scenario name and x coordinate) and fanned out to every non-null
/// sink. When a sink wants convergence telemetry, recording is switched
/// on for the driven runs (the caller's `params` is not mutated).
std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng,
                                        const RunSinks& sinks,
                                        const obs::RunContext& context = {});

/// Legacy convenience overload: JSONL run report only.
std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng,
                                        obs::RunReporter* reporter = nullptr,
                                        const obs::RunContext& context = {});

/// Accumulates (x, scheme) -> mean seconds + timeout counts and prints the
/// series a paper figure plots: one row per (x, scheme) with the mean
/// running time over the scenario's queries and `n_timeouts/n` — the
/// integers the paper annotates its plots with.
class SeriesTable {
 public:
  explicit SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

  const std::string& x_label() const { return x_label_; }

  void Add(double x, SchemeKind scheme, const SchemeTiming& timing);

  /// Prints "x <scheme>=<mean_s> ..." rows sorted by x, plus a mean
  /// total-sample column and timeout annotations; `title` identifies the
  /// figure/scenario.
  void Print(const std::string& title) const;

  /// Mean seconds for (x, scheme); -1 when absent. Timed-out runs count
  /// with their (truncated) elapsed time, as a lower bound.
  double Mean(double x, SchemeKind scheme) const;

  /// Mean total samples (estimator + main) for (x, scheme); -1 when
  /// absent.
  double MeanSamples(double x, SchemeKind scheme) const;

  /// Timed-out runs for (x, scheme); 0 when absent.
  size_t Timeouts(double x, SchemeKind scheme) const;

  /// True when every run of every scheme at x hit its deadline — the cell
  /// carries no ordering information.
  bool AllTimedOut(double x) const;

  /// The scheme with the smallest mean at x (ties: first in enum order).
  SchemeKind Winner(double x) const;

 private:
  struct Cell {
    MeanVarAccumulator seconds;
    MeanVarAccumulator samples;
    size_t timeouts = 0;
  };
  std::string x_label_;
  std::map<std::pair<double, SchemeKind>, Cell> cells_;
};

}  // namespace cqa

#endif  // CQABENCH_BENCH_HARNESS_H_
