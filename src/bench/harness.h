#ifndef CQABENCH_BENCH_HARNESS_H_
#define CQABENCH_BENCH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "cqa/apx_cqa.h"
#include "cqa/preprocess.h"

namespace cqa {

/// Timing of one scheme over one database-query pair.
struct SchemeTiming {
  SchemeKind scheme = SchemeKind::kNatural;
  double seconds = 0.0;
  bool timed_out = false;
  size_t num_answers = 0;
};

/// Runs every approximation scheme over one preprocessed pair with a
/// per-scheme wall-clock budget (the paper's 1-hour timeout, scaled).
/// Preprocessing time is excluded, matching the paper's reporting.
std::vector<SchemeTiming> RunAllSchemes(const PreprocessResult& preprocessed,
                                        const ApxParams& params,
                                        double timeout_seconds, Rng& rng);

/// Accumulates (x, scheme) -> mean seconds + timeout counts and prints the
/// series a paper figure plots: one row per (x, scheme) with the mean
/// running time over the scenario's queries and `n_timeouts/n` — the
/// integers the paper annotates its plots with.
class SeriesTable {
 public:
  explicit SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

  void Add(double x, SchemeKind scheme, const SchemeTiming& timing);

  /// Prints "x <scheme>=<mean_s> ..." rows sorted by x, plus timeout
  /// annotations; `title` identifies the figure/scenario.
  void Print(const std::string& title) const;

  /// Mean seconds for (x, scheme); -1 when absent. Timed-out runs count
  /// with their (truncated) elapsed time, as a lower bound.
  double Mean(double x, SchemeKind scheme) const;

  /// Timed-out runs for (x, scheme); 0 when absent.
  size_t Timeouts(double x, SchemeKind scheme) const;

  /// True when every run of every scheme at x hit its deadline — the cell
  /// carries no ordering information.
  bool AllTimedOut(double x) const;

  /// The scheme with the smallest mean at x (ties: first in enum order).
  SchemeKind Winner(double x) const;

 private:
  struct Cell {
    MeanVarAccumulator seconds;
    size_t timeouts = 0;
  };
  std::string x_label_;
  std::map<std::pair<double, SchemeKind>, Cell> cells_;
};

}  // namespace cqa

#endif  // CQABENCH_BENCH_HARNESS_H_
