#ifndef CQABENCH_BENCH_SCENARIO_H_
#define CQABENCH_BENCH_SCENARIO_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gen/dataset.h"
#include "query/cq.h"

namespace cqa {

/// One database-query pair of a test scenario (a member of the paper's
/// P_H), tagged with the grid coordinates it was generated for.
struct ScenarioPair {
  /// The inconsistent database D_Q[p]; shared by all queries derived from
  /// the same (base query, noise) cell.
  std::shared_ptr<const Database> db;
  /// The query Q_p[q] (the Boolean version when balance_target == 0).
  ConjunctiveQuery query;
  size_t joins = 0;
  size_t base_index = 0;
  double noise = 0.0;
  double balance_target = 0.0;
  /// Balance actually achieved by the DQG (0 for the Boolean version).
  double balance_actual = 0.0;
};

/// Grid parameters for building the benchmark's database-query pairs
/// (§6.2, reduced scale). Defaults give a single-core-friendly grid;
/// the paper's full grid is joins 1..5 × 5 queries × noise 0.1..1.0 ×
/// balance 0..1.0.
struct ScenarioGridOptions {
  double scale_factor = 0.001;
  uint64_t seed = 7;
  std::vector<size_t> join_levels = {1, 3, 5};
  size_t queries_per_join = 2;
  std::vector<double> noise_levels = {0.2, 0.6, 1.0};
  /// 0 denotes the Boolean version Q_p[0]; other entries are DQG targets.
  std::vector<double> balance_targets = {0.0, 0.3, 0.6, 1.0};
  size_t min_block_size = 2;
  size_t max_block_size = 5;
  size_t dqg_pool_size = 64;
  /// Base (consistent-database) queries whose homomorphism count exceeds
  /// this are rejected, bounding the benchmark's footprint.
  size_t max_base_homomorphisms = 4000;
  /// Queries with fewer homomorphisms than this are rejected in a first
  /// pass (falling back to any non-empty query when impossible). At the
  /// paper's 1 GB scale every non-empty SQG query is witnessed by many
  /// homomorphisms; this floor restores that density at small SF.
  size_t min_base_homomorphisms = 50;
  /// Attempts per SQG base query before giving up on a join level.
  size_t sqg_attempts = 300;
};

/// The materialized grid: TPC-H base instance, SQG base queries, noisy
/// databases and DQG-balanced queries — the reduced-scale counterpart of
/// the paper's 2750-pair set P_H.
class ScenarioGrid {
 public:
  static ScenarioGrid Build(const ScenarioGridOptions& options);

  const std::vector<ScenarioPair>& pairs() const { return pairs_; }
  const ScenarioGridOptions& options() const { return options_; }

  /// Pairs matching the given coordinates (nullopt = any): the scenario
  /// families Noise[q, j] (fix balance+joins), Balance[p, j] (fix
  /// noise+joins) and Joins[p, q] (fix noise+balance) are selections.
  std::vector<const ScenarioPair*> Select(
      std::optional<size_t> joins, std::optional<double> noise,
      std::optional<double> balance_target) const;

 private:
  ScenarioGridOptions options_;
  Dataset base_;  // Keeps the schema alive for the noisy clones.
  std::vector<ScenarioPair> pairs_;
};

}  // namespace cqa

#endif  // CQABENCH_BENCH_SCENARIO_H_
