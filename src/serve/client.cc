#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cqa::serve {

namespace {

bool SendAll(int fd, const std::string& data, std::string* error) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

CqaClient::~CqaClient() { Close(); }

bool CqaClient::Connect(const std::string& host, int port,
                        std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    Close();
    return false;
  }
  // Request/response framing benefits from immediate sends.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool CqaClient::Call(const Request& request, Response* response,
                     std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!in_flight_.empty()) {
    *error = "blocking Call with pipelined requests in flight";
    return false;
  }
  if (!SendAll(fd_, EncodeFrame(request.ToPayload(codec_)), error)) {
    return false;
  }
  std::string payload;
  if (!ReadFrame(&payload, error)) return false;
  return Response::FromPayload(payload, response, error);
}

bool CqaClient::Send(const Request& request, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (request.id.empty()) {
    *error = "pipelined requests need a non-empty id";
    return false;
  }
  if (in_flight_.count(request.id) != 0 || ready_.count(request.id) != 0) {
    *error = "duplicate in-flight request id \"" + request.id + "\"";
    return false;
  }
  if (!SendAll(fd_, EncodeFrame(request.ToPayload(codec_)), error)) {
    return false;
  }
  in_flight_.insert(request.id);
  return true;
}

bool CqaClient::Await(const std::string& id, Response* response,
                      std::string* error) {
  const auto stashed = ready_.find(id);
  if (stashed != ready_.end()) {
    *response = std::move(stashed->second);
    ready_.erase(stashed);
    return true;
  }
  if (in_flight_.count(id) == 0) {
    *error = "id \"" + id + "\" is not in flight";
    return false;
  }
  for (;;) {
    std::string payload;
    if (!ReadFrame(&payload, error)) return false;
    Response next;
    if (!Response::FromPayload(payload, &next, error)) return false;
    if (next.id == id) {
      in_flight_.erase(id);
      *response = std::move(next);
      return true;
    }
    // Some other in-flight request's response (out-of-order delivery is
    // the pipelining contract); stash it for its own Await.
    in_flight_.erase(next.id);
    ready_[next.id] = std::move(next);
  }
}

bool CqaClient::RawCall(const std::string& bytes,
                        std::string* response_payload, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!SendAll(fd_, bytes, error)) return false;
  return ReadFrame(response_payload, error);
}

bool CqaClient::ReadFrame(std::string* payload, std::string* error) {
  char buf[1 << 16];
  while (true) {
    std::string frame_error;
    const FrameDecoder::Status status = decoder_.Next(payload, &frame_error);
    if (status == FrameDecoder::Status::kFrame) return true;
    if (status == FrameDecoder::Status::kError) {
      *error = "response framing error: " + frame_error;
      return false;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      *error = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

void CqaClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
  in_flight_.clear();
  ready_.clear();
}

}  // namespace cqa::serve
