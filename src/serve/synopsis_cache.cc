#include "serve/synopsis_cache.h"

#include "common/macros.h"
#include "obs/metrics.h"

namespace cqa::serve {

std::string SynopsisCacheKey(const std::string& data_path,
                             const std::string& schema,
                             const std::string& query) {
  // '\n' cannot appear in a path or a parsed CQ, so it is a safe joiner.
  return data_path + "\n" + schema + "\n" + query;
}

SynopsisCache::SynopsisCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      entries_gauge_(
          obs::Registry::Instance().GetGauge("serve.cache_entries")) {}

std::shared_ptr<const PreprocessResult> SynopsisCache::Get(
    const std::string& key) {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.value == nullptr) {
    ++misses_;
    CQA_OBS_COUNT("serve.cache_misses");
    return nullptr;
  }
  ++hits_;
  CQA_OBS_COUNT("serve.cache_hits");
  Touch(&it->second, key);
  return it->second.value;
}

std::shared_ptr<const PreprocessResult> SynopsisCache::GetOrBuild(
    const std::string& key, const Builder& build, bool* hit,
    std::string* error) {
  MutexLock lock(mu_);
  while (true) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) break;
    Entry& entry = it->second;
    if (entry.value != nullptr) {
      ++hits_;
      CQA_OBS_COUNT("serve.cache_hits");
      if (hit != nullptr) *hit = true;
      Touch(&entry, key);
      return entry.value;
    }
    if (entry.building) {
      // Another request is preprocessing this key right now; wait for it
      // instead of duplicating the work (single-flight).
      CQA_OBS_COUNT("serve.cache_build_waits");
      while (true) {
        const auto current = entries_.find(key);
        if (current == entries_.end() || !current->second.building) break;
        build_cv_.Wait(mu_);
      }
      continue;  // Re-examine: value, failure, or entry vanished.
    }
    if (entry.failed) {
      // A completed-but-failed flight; clear it and retry the build
      // ourselves (the failure may have been transient, e.g. an unreadable
      // directory that has since appeared).
      entries_.erase(it);
      break;
    }
  }

  // Miss: this request owns the build.
  ++misses_;
  CQA_OBS_COUNT("serve.cache_misses");
  if (hit != nullptr) *hit = false;
  Entry& entry = entries_[key];
  entry.building = true;
  lock.Unlock();

  std::string build_error;
  const std::shared_ptr<const PreprocessResult> value = build(&build_error);

  lock.Lock();
  const auto it = entries_.find(key);
  CQA_CHECK_MSG(it != entries_.end() && it->second.building,
                "cache entry vanished under its own build");
  if (value == nullptr) {
    it->second.building = false;
    it->second.failed = true;
    it->second.build_error = build_error;
    // Failures are not cached: drop the tombstone once waiters saw it.
    build_cv_.NotifyAll();
    entries_.erase(it);
    if (error != nullptr) *error = build_error;
    return nullptr;
  }
  it->second.building = false;
  it->second.value = value;
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  EvictOverflow();
  entries_gauge_->Set(static_cast<int64_t>(lru_.size()));
  build_cv_.NotifyAll();
  return value;
}

void SynopsisCache::Clear() {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.building) {
      ++it;  // The build will re-insert; leave its entry alone.
    } else {
      it = entries_.erase(it);
    }
  }
  lru_.clear();
  entries_gauge_->Set(0);
}

size_t SynopsisCache::entries() const {
  MutexLock lock(mu_);
  return lru_.size();
}

uint64_t SynopsisCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t SynopsisCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

uint64_t SynopsisCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

void SynopsisCache::Touch(Entry* entry, const std::string& key) {
  lru_.erase(entry->lru_it);
  lru_.push_front(key);
  entry->lru_it = lru_.begin();
}

void SynopsisCache::EvictOverflow() {
  while (lru_.size() > capacity_) {
    const std::string& victim = lru_.back();
    // The shared_ptr keeps the synopses alive for any request still
    // running on them; eviction only forgets the cache's reference.
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    CQA_OBS_COUNT("serve.cache_evictions");
  }
}

}  // namespace cqa::serve
