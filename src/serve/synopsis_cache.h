// serve/synopsis_cache — the LRU cache that lets cqad amortize the
// paper's preprocessing step across requests. The synopsis set
// syn_{Σ,Q}(D) depends only on (database, Σ, Q); a repeat query on an
// unchanged database can skip Preprocess entirely and go straight to the
// scheme phase, which is the whole point of running CQA as a persistent
// service instead of a batch binary.
#ifndef CQABENCH_SERVE_SYNOPSIS_CACHE_H_
#define CQABENCH_SERVE_SYNOPSIS_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "cqa/preprocess.h"
#include "obs/metrics.h"

namespace cqa::serve {

/// The cache key (database, Σ, Q), flattened to one string. Σ is implied
/// by the named schema (its key constraints); the database is identified
/// by its canonicalized directory path. Query text is used verbatim —
/// textual identity is the invalidation-free choice (two spellings of one
/// query cost one redundant entry, never a wrong answer).
std::string SynopsisCacheKey(const std::string& data_path,
                             const std::string& schema,
                             const std::string& query);

/// A bounded, thread-safe LRU map from SynopsisCacheKey to a shared,
/// immutable PreprocessResult.
///
/// Concurrency contract:
///   * Readers receive shared_ptr<const PreprocessResult>; the scheme
///     phase only ever reads the synopses (samplers build their own
///     per-run scratch — see the thread-ownership notes in
///     cqa/synopsis.h), so any number of requests may run on one cached
///     entry concurrently, and eviction cannot free an entry that a
///     running request still holds.
///   * GetOrBuild is single-flight per key: when several requests miss on
///     the same key at once, one builds while the rest wait on it —
///     without that, a thundering herd of identical queries would each
///     pay the full Preprocess.
///   * Builds for *different* keys proceed in parallel (the cache lock is
///     dropped during the build).
///
/// Metrics: serve.cache_hits / serve.cache_misses / serve.cache_evictions
/// counters and the serve.cache_entries gauge (current completed-entry
/// count, updated on every insert/evict/clear).
class SynopsisCache {
 public:
  /// Keeps at most `capacity` entries (>= 1).
  explicit SynopsisCache(size_t capacity);

  using Builder =
      std::function<std::shared_ptr<const PreprocessResult>(std::string*)>;

  /// Returns the cached value for `key`, building it with `build` on a
  /// miss. `build` runs outside the cache lock and may fail by returning
  /// nullptr and setting its error-out param; the failure is propagated
  /// to every waiter of this flight and nothing is cached. `*hit` is set
  /// to whether this call was served from cache without waiting on a
  /// build (a waiter that piggybacks on another request's in-flight build
  /// counts as a miss: it did not pay Preprocess, but the work happened
  /// on its behalf).
  std::shared_ptr<const PreprocessResult> GetOrBuild(const std::string& key,
                                                     const Builder& build,
                                                     bool* hit,
                                                     std::string* error)
      CQA_EXCLUDES(mu_);

  /// Lookup without building; nullptr on miss. Counts hit/miss metrics.
  std::shared_ptr<const PreprocessResult> Get(const std::string& key)
      CQA_EXCLUDES(mu_);

  /// Drops every cached entry (in-flight builds are unaffected and will
  /// re-insert their results).
  void Clear() CQA_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  size_t entries() const CQA_EXCLUDES(mu_);
  uint64_t hits() const CQA_EXCLUDES(mu_);
  uint64_t misses() const CQA_EXCLUDES(mu_);
  uint64_t evictions() const CQA_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const PreprocessResult> value;  // null while building.
    bool building = false;
    bool failed = false;
    std::string build_error;
    std::list<std::string>::iterator lru_it;  // Valid iff value != null.
  };

  /// Entry holds a value; moves it to MRU.
  void Touch(Entry* entry, const std::string& key) CQA_REQUIRES(mu_);
  /// Evicts LRU entries down to capacity.
  void EvictOverflow() CQA_REQUIRES(mu_);

  const size_t capacity_;
  // Mirrors lru_.size() for /metrics and `stats`; updated directly (no
  // NO_OBS gating) so the gauge is live in every build mode.
  obs::Gauge* const entries_gauge_;
  mutable Mutex mu_;
  CondVar build_cv_;  // Signalled when a single-flight build completes.
  std::map<std::string, Entry> entries_ CQA_GUARDED_BY(mu_);
  // LRU order, most recent at the front; only completed entries appear.
  std::list<std::string> lru_ CQA_GUARDED_BY(mu_);
  uint64_t hits_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ CQA_GUARDED_BY(mu_) = 0;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_SYNOPSIS_CACHE_H_
