#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cqa::serve {

namespace {

constexpr int kPollTickMs = 100;
constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string HttpResponse(int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const MetricsHttpOptions& options)
    : options_(options) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid metrics listen address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = "bind metrics " + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    *error = std::string("listen (metrics): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::Loop() {
  pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load()) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ServeOne(fd);
  }
}

void MetricsHttpServer::ServeOne(int fd) {
  // Read until the end of the request head (blank line) or cap/timeout.
  // Scrapers send tiny GETs; ~2s of patience is plenty.
  std::string head;
  char buf[2048];
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (int ticks = 0; ticks < 20 && head.size() < kMaxRequestBytes; ++ticks) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      if (stop_.load()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  const size_t eol = head.find_first_of("\r\n");
  const std::string request_line =
      eol == std::string::npos ? head : head.substr(0, eol);
  SendAll(fd, HandleRequestLine(request_line));
  ::close(fd);
}

std::string MetricsHttpServer::HandleRequestLine(
    const std::string& request_line) const {
  // "GET /path HTTP/1.1" — method, one space, target, one space, rest.
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) {
    return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                        "bad request\n");
  }
  const std::string method = request_line.substr(0, sp1);
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string target = sp2 == std::string::npos
                           ? request_line.substr(sp1 + 1)
                           : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed",
                        "text/plain; charset=utf-8", "GET only\n");
  }
  if (target == "/metrics") {
    const std::string body =
        options_.metrics_body ? options_.metrics_body() : std::string();
    return HttpResponse(200, "OK",
                        "text/plain; version=0.0.4; charset=utf-8", body);
  }
  if (target == "/healthz") {
    const bool healthy = options_.healthy ? options_.healthy() : true;
    if (healthy) {
      return HttpResponse(200, "OK", "text/plain; charset=utf-8", "ok\n");
    }
    return HttpResponse(503, "Service Unavailable",
                        "text/plain; charset=utf-8", "draining\n");
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "not found\n");
}

}  // namespace cqa::serve
