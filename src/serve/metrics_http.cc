#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/resource.h"
#include "serve/reactor.h"
#ifndef CQABENCH_NO_OBS
#include "obs/profiler.h"
#endif

namespace cqa::serve {

namespace {

constexpr int kPollTickMs = 100;
constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string HttpResponse(int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string TextResponse(int status, const std::string& reason,
                         const std::string& body) {
  return HttpResponse(status, reason, "text/plain; charset=utf-8", body);
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// "seconds=2&hz=99" -> {{"seconds","2"},{"hz","99"}}. No %-decoding:
/// the recognized keys and values are plain numerics.
std::map<std::string, std::string> ParseQuery(const std::string& query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      params[pair] = "";
    }
    pos = amp + 1;
  }
  return params;
}

double ParamDouble(const std::map<std::string, std::string>& params,
                   const std::string& key, double fallback) {
  const auto it = params.find(key);
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return fallback;
  return v;
}

const char kPprofIndex[] =
    "cqad /debug/pprof endpoints:\n"
    "  /debug/pprof/profile?seconds=N[&hz=H][&fold=1]\n"
    "      CPU profile over N seconds (default 1): gzipped pprof\n"
    "      profile.proto, or collapsed stacks with fold=1.\n"
    "      409 = a collection is already running; 503 = draining;\n"
    "      501 = this build cannot profile.\n"
    "  /debug/pprof/heap     allocator counter snapshot\n"
    "  /debug/pprof/threads  live threads + sampler statistics\n";

}  // namespace

MetricsHttpServer::MetricsHttpServer(const MetricsHttpOptions& options)
    : options_(options) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid metrics listen address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = "bind metrics " + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    *error = std::string("listen (metrics): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (!stop_.exchange(true)) {
    // First Stop: the acceptor exits on its next tick; any in-flight
    // profile collection notices stop_ through its keep-going probe.
  }
  if (thread_.joinable()) thread_.join();
  ReapConnections(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::ReapConnections(bool all) {
  // Joining with conn_mu_ held would deadlock against a finishing
  // handler registering in done_, so move the handles out first.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(conn_mu_);
    if (all) {
      for (auto& [id, thread] : conns_) to_join.push_back(std::move(thread));
      conns_.clear();
      done_.clear();
    } else {
      for (const uint64_t id : done_) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        to_join.push_back(std::move(it->second));
        conns_.erase(it);
      }
      done_.clear();
    }
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void MetricsHttpServer::Loop() {
  while (!stop_.load()) {
    const int ready = PollReadable(listen_fd_, kPollTickMs);
    ReapConnections(/*all=*/false);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    MutexLock lock(conn_mu_);
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      lock.Unlock();
      SendAll(fd, TextResponse(503, "Service Unavailable", "busy\n"));
      ::close(fd);
      lock.Lock();
      continue;
    }
    const uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::thread([this, fd, id] {
      ServeOne(fd);
      MutexLock done_lock(conn_mu_);
      done_.push_back(id);
    }));
  }
}

void MetricsHttpServer::ServeOne(int fd) {
  // Read until the end of the request head (blank line) or cap/timeout.
  // Scrapers send tiny GETs; ~2s of patience is plenty.
  std::string head;
  char buf[2048];
  for (int ticks = 0; ticks < 20 && head.size() < kMaxRequestBytes; ++ticks) {
    const int ready = PollReadable(fd, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      if (stop_.load()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  const size_t eol = head.find_first_of("\r\n");
  const std::string request_line =
      eol == std::string::npos ? head : head.substr(0, eol);
  SendAll(fd, HandleRequestLine(request_line));
  ::close(fd);
}

std::string MetricsHttpServer::HandleProfile(
    const std::map<std::string, std::string>& params) const {
#ifdef CQABENCH_NO_OBS
  (void)params;
  return TextResponse(501, "Not Implemented",
                      "profiler compiled out (CQABENCH_NO_OBS build)\n");
#else
  if (!obs::Profiler::kAvailable) {
    return TextResponse(501, "Not Implemented",
                        "profiler unavailable in sanitizer builds\n");
  }
  const bool healthy = options_.healthy ? options_.healthy() : true;
  if (!healthy) {
    return TextResponse(503, "Service Unavailable", "draining\n");
  }
  double seconds = ParamDouble(params, "seconds", 1.0);
  if (!(seconds > 0.0)) seconds = 1.0;
  if (seconds > options_.max_profile_seconds) {
    seconds = options_.max_profile_seconds;
  }
  obs::ProfilerOptions popts;
  const double hz = ParamDouble(params, "hz", popts.hz);
  if (hz >= 1.0 && hz <= 1000.0) popts.hz = static_cast<int>(hz);

  // A drain or server Stop arriving mid-collection cuts the window
  // short; whatever was captured by then still goes out (200).
  const auto keep_going = [this] {
    if (stop_.load()) return false;
    return options_.healthy ? options_.healthy() : true;
  };
  std::string error;
  obs::Profiler& profiler = obs::Profiler::Instance();
  const auto result = profiler.CollectFor(seconds, popts, keep_going, &error);
  switch (result) {
    case obs::Profiler::CollectResult::kBusy:
      return TextResponse(409, "Conflict", error + "\n");
    case obs::Profiler::CollectResult::kError:
      return TextResponse(500, "Internal Server Error", error + "\n");
    case obs::Profiler::CollectResult::kOk:
      break;
  }
  if (params.count("fold") != 0 && params.at("fold") != "0") {
    return TextResponse(200, "OK", profiler.FoldedText());
  }
  return HttpResponse(200, "OK", "application/octet-stream",
                      profiler.PprofGzipped());
#endif  // CQABENCH_NO_OBS
}

std::string MetricsHttpServer::HandleRequestLine(
    const std::string& request_line) const {
  // "GET /path HTTP/1.1" — method, one space, target, one space, rest.
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) {
    return TextResponse(400, "Bad Request", "bad request\n");
  }
  const std::string method = request_line.substr(0, sp1);
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string target = sp2 == std::string::npos
                           ? request_line.substr(sp1 + 1)
                           : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::map<std::string, std::string> params;
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    params = ParseQuery(target.substr(query + 1));
    target.resize(query);
  }
  if (method != "GET") {
    return TextResponse(405, "Method Not Allowed", "GET only\n");
  }
  if (target == "/metrics") {
    const std::string body =
        options_.metrics_body ? options_.metrics_body() : std::string();
    return HttpResponse(200, "OK",
                        "text/plain; version=0.0.4; charset=utf-8", body);
  }
  if (target == "/healthz") {
    const bool healthy = options_.healthy ? options_.healthy() : true;
    if (healthy) {
      return TextResponse(200, "OK", "ok\n");
    }
    return TextResponse(503, "Service Unavailable", "draining\n");
  }
  if (target == "/debug/pprof" || target == "/debug/pprof/") {
    return TextResponse(200, "OK", kPprofIndex);
  }
  if (target == "/debug/pprof/profile") {
    return HandleProfile(params);
  }
  if (target == "/debug/pprof/heap") {
    return TextResponse(200, "OK", obs::HeapProfileText());
  }
  if (target == "/debug/pprof/threads") {
    std::string body = obs::ThreadListText();
#ifndef CQABENCH_NO_OBS
    const obs::ProfilerStats stats = obs::Profiler::Instance().stats();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "\nsampler: samples=%llu dropped_ring=%llu "
                  "dropped_untracked=%llu distinct_stacks=%llu\n",
                  static_cast<unsigned long long>(stats.samples),
                  static_cast<unsigned long long>(stats.dropped_ring),
                  static_cast<unsigned long long>(stats.dropped_untracked),
                  static_cast<unsigned long long>(stats.distinct_stacks));
    body += line;
    body += obs::Profiler::Instance().ThreadsText();
#endif
    return TextResponse(200, "OK", body);
  }
  return TextResponse(404, "Not Found", "not found\n");
}

}  // namespace cqa::serve
