// serve/metrics_http — a deliberately tiny HTTP/1.1 listener serving
// read-only operational endpoints next to the cqad frame protocol:
//   GET /metrics         — Prometheus text exposition of the registry
//                          (obs/exposition), stock scrapers work as-is;
//   GET /healthz         — "ok" 200 while serving, "draining" 503 once
//                          drain begins, so load balancers stop routing
//                          before the listener disappears;
//   GET /debug/pprof/    — index of the profiling endpoints below;
//   GET /debug/pprof/profile?seconds=N[&hz=H][&fold=1]
//                        — runs the in-process CPU sampling profiler for
//                          N seconds and returns the gzipped pprof
//                          protobuf (or collapsed stacks with fold=1).
//                          409 while another collection runs, 503 when
//                          drain has begun, 501 when the build cannot
//                          profile (CQABENCH_NO_OBS or sanitizers); a
//                          drain arriving mid-collection cuts it short
//                          and returns the partial profile with 200;
//   GET /debug/pprof/heap    — allocator counter snapshot (mallinfo2);
//   GET /debug/pprof/threads — live thread table + sampler stats.
// It is NOT a general HTTP server: a handful of short-lived connections
// (one thread each, hard cap, 503 when saturated), requests over 8 KiB
// rejected, anything but GET answered 405, any other path 404. That
// scope keeps the hand-rolled parser safe — it only ever inspects the
// request line. Connections get a thread each (not a serial loop)
// because a profile collection holds its connection open for seconds
// and must not block scrapes or health probes.
#ifndef CQABENCH_SERVE_METRICS_HTTP_H_
#define CQABENCH_SERVE_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace cqa::serve {

struct MetricsHttpOptions {
  /// Listen address; loopback by default like the frame listener.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Body provider for GET /metrics (normally RegistryPrometheusText).
  std::function<std::string()> metrics_body;
  /// Health probe for GET /healthz: true = 200 "ok", false = 503
  /// "draining" (normally wired to !CqadServer::draining()). The
  /// profile endpoint also polls it to cut a collection short when
  /// drain begins mid-profile.
  std::function<bool()> healthy;
  /// Hard cap on concurrent connection threads; excess connections get
  /// an immediate 503 "busy". One long profile + a scrape + a health
  /// probe fit comfortably under the default.
  int max_connections = 8;
  /// Ceiling for /debug/pprof/profile?seconds=N.
  double max_profile_seconds = 60.0;
};

/// One background accept thread; each accepted connection is served on
/// its own short-lived thread (bounded by max_connections). Start()
/// binds and spawns the acceptor; Stop() closes the listener, aborts
/// any in-flight profile collection, and joins every thread.
class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(const MetricsHttpOptions& options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool Start(std::string* error);
  void Stop();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Renders the full HTTP response for one request line ("GET /metrics
  /// HTTP/1.1"). Exposed for tests — routing without sockets. May block
  /// for the requested duration on /debug/pprof/profile.
  std::string HandleRequestLine(const std::string& request_line) const;

 private:
  void Loop();
  void ServeOne(int fd);
  /// Joins finished connection threads (called from the accept loop
  /// tick and from Stop).
  void ReapConnections(bool all) CQA_EXCLUDES(conn_mu_);

  std::string HandleProfile(
      const std::map<std::string, std::string>& params) const;

  const MetricsHttpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;

  mutable Mutex conn_mu_;
  /// Live connection threads by id; ids move to done_ when the handler
  /// finishes, and the accept loop joins + erases them on its next tick.
  std::map<uint64_t, std::thread> conns_ CQA_GUARDED_BY(conn_mu_);
  std::vector<uint64_t> done_ CQA_GUARDED_BY(conn_mu_);
  uint64_t next_conn_id_ CQA_GUARDED_BY(conn_mu_) = 1;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_METRICS_HTTP_H_
