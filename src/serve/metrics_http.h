// serve/metrics_http — a deliberately tiny HTTP/1.1 listener serving
// exactly two read-only endpoints next to the cqad frame protocol:
//   GET /metrics  — Prometheus text exposition of the metrics registry
//                   (obs/exposition), so stock scrapers work unmodified;
//   GET /healthz  — "ok" with 200 while serving, "draining" with 503
//                   once drain begins, so load balancers stop routing
//                   before the listener disappears.
// It is NOT a general HTTP server: one short-lived connection at a time,
// requests over 8 KiB rejected, anything but GET answered 405, any other
// path 404. That scope keeps the hand-rolled parser safe — it only ever
// inspects the request line.
#ifndef CQABENCH_SERVE_METRICS_HTTP_H_
#define CQABENCH_SERVE_METRICS_HTTP_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace cqa::serve {

struct MetricsHttpOptions {
  /// Listen address; loopback by default like the frame listener.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Body provider for GET /metrics (normally RegistryPrometheusText).
  std::function<std::string()> metrics_body;
  /// Health probe for GET /healthz: true = 200 "ok", false = 503
  /// "draining" (normally wired to !CqadServer::draining()).
  std::function<bool()> healthy;
};

/// One background thread accepting scrape connections serially —
/// Prometheus scrapes arrive every few seconds, so concurrency would be
/// pure complexity. Start() binds and spawns the thread; Stop() closes
/// the listener and joins.
class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(const MetricsHttpOptions& options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool Start(std::string* error);
  void Stop();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Renders the full HTTP response for one request line ("GET /metrics
  /// HTTP/1.1"). Exposed for tests — routing without sockets.
  std::string HandleRequestLine(const std::string& request_line) const;

 private:
  void Loop();
  void ServeOne(int fd);

  const MetricsHttpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_METRICS_HTTP_H_
