// serve/access_log — structured per-request JSONL access log for cqad
// (the file behind --obs_access_log=). One line per handled request:
// trace id, op, scheme, cache hit/miss, error code, and the phase
// latency breakdown, so offline tooling can join server-side phases
// against client-side latencies via the wire-propagated trace id.
//
// Volume control: lines are sampled with probability --obs_access_sample
// (an own-seeded cqa::Rng draw per request), but a request is *always*
// logged when it errored or when its total handling time reached
// --obs_access_slow_ms — the slow/failed tail is exactly what the log
// exists to explain, so it must never be sampled away.
#ifndef CQABENCH_SERVE_ACCESS_LOG_H_
#define CQABENCH_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "serve/protocol.h"

namespace cqa::serve {

struct AccessLogOptions {
  std::string path;
  /// Probability a non-slow, non-error request line is written. 1 logs
  /// everything, 0 logs only slow requests and errors.
  double sample_rate = 1.0;
  /// Requests whose total handling time reaches this are always logged.
  uint64_t slow_micros = 500000;
  /// Seed for the sampling Rng (deterministic tests).
  uint64_t seed = 0x5DEECE66DULL;
};

/// What one request contributes to the log. The server fills it from the
/// decoded request plus the response it is about to send.
struct AccessLogEntry {
  std::string trace_id;    // Empty when the client sent no trace context.
  std::string request_id;  // The request's "id" field, possibly empty.
  std::string op;          // "query" | "stats" | "ping".
  std::string scheme;      // Query op only.
  bool cache_hit = false;  // Query op only; meaningful iff code == kOk.
  ErrorCode code = ErrorCode::kOk;
  bool timed_out = false;
  PhaseTiming timing;      // Phase micros; total_micros drives slow-logging.
  uint64_t total_samples = 0;
};

/// Append-only JSONL writer, thread-safe (one mutex around the sampling
/// draw and the write; access-log lines are tiny compared to a query's
/// service time). Line schema is documented in docs/protocol.md and
/// locked down by tests/access_log_test.
class AccessLog {
 public:
  explicit AccessLog(const AccessLogOptions& options);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens the log file for appending. False with *error on failure.
  bool Open(std::string* error) CQA_EXCLUDES(mu_);

  /// Logs or samples out one request. Safe from any worker thread.
  void Append(const AccessLogEntry& entry) CQA_EXCLUDES(mu_);

  double sample_rate() const { return options_.sample_rate; }
  /// Lines actually written so far.
  uint64_t lines() const CQA_EXCLUDES(mu_);
  /// Requests dropped by the sampling draw.
  uint64_t sampled_out() const CQA_EXCLUDES(mu_);

  /// Renders one entry as its JSONL line (without trailing newline
  /// decisions — the returned string ends in '\n'). Exposed for tests.
  static std::string FormatLine(const AccessLogEntry& entry,
                                uint64_t unix_ms, bool slow);

 private:
  const AccessLogOptions options_;
  mutable Mutex mu_;
  std::FILE* file_ CQA_GUARDED_BY(mu_) = nullptr;
  Rng rng_ CQA_GUARDED_BY(mu_);
  uint64_t lines_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t sampled_out_ CQA_GUARDED_BY(mu_) = 0;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_ACCESS_LOG_H_
