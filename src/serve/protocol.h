// serve/protocol — the cqad wire protocol: length-prefixed frames with
// explicit versioning and HTTP-inspired error codes. This header is
// the single source of truth for the on-wire contract; the narrative
// reference lives in docs/protocol.md and the two must agree (lint
// check 7 ties every flag and field to the docs).
//
// Frame layout: a 4-byte big-endian unsigned payload length, then that
// many payload bytes. Length 0 and lengths above the negotiated maximum
// are protocol errors, not just bad requests: the receiver cannot
// resynchronize after them, so both sides must close the connection.
//
// Two payload codecs share that outer framing, distinguished by the
// payload's first byte: '{' opens the v1 UTF-8 JSON object codec, and
// kBinaryMagic (0x02) opens the v2 tagged binary codec (varint /
// fixed64 / length-delimited fields, packed answer arrays). Codec
// choice is per request; the server always answers in the codec the
// request arrived in.
#ifndef CQABENCH_SERVE_PROTOCOL_H_
#define CQABENCH_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.h"

namespace cqa::serve {

/// Protocol version carried in every request's "v" field. JSON payloads
/// must say 1 and binary payloads must say 2; the server rejects any
/// other value with kBadVersion. Versioning policy (when the number
/// bumps, what stays compatible) is documented in docs/protocol.md.
inline constexpr int kProtocolVersion = 1;

/// Version spoken by the tagged binary codec. A binary payload *is* the
/// version negotiation: its leading kBinaryMagic byte cannot appear at
/// the start of a JSON object, so the decoder dispatches per payload.
inline constexpr int kProtocolVersionBinary = 2;

/// First payload byte of every binary (v2) frame. 0x02 is illegal as the
/// first byte of JSON text, so codec detection needs no extra header.
inline constexpr unsigned char kBinaryMagic = 0x02;

/// Payload codec of one frame, detected from its first byte.
enum class WireCodec {
  kJson = 1,    // '{' — v1 UTF-8 JSON object.
  kBinary = 2,  // kBinaryMagic — v2 tagged binary.
};

/// Detects the codec from the payload's first byte (leading JSON
/// whitespace is tolerated). Returns false for an empty payload or an
/// unrecognizable first byte; the server answers kBadRequest in JSON.
bool DetectCodec(const std::string& payload, WireCodec* codec);

/// Default cap on one frame's payload. Requests are tiny; responses carry
/// answer lists and run records, which stay far below this for any
/// benchmark-scale database.
inline constexpr size_t kDefaultMaxFrameBytes = 8u * 1024u * 1024u;

/// Response status codes, HTTP-inspired so readers can guess semantics:
/// 4xx = the request is at fault (retrying unchanged will fail again),
/// 5xx = the server could not serve it (retrying may succeed).
enum class ErrorCode : int {
  kOk = 0,
  kBadRequest = 400,       // Malformed JSON, missing/invalid fields.
  kNotFound = 404,         // Data directory missing or unreadable.
  kDeadlineExceeded = 408, // Deadline expired while queued for admission.
  kFrameTooLarge = 413,    // Payload length above the server's cap.
  kBadVersion = 426,       // "v" is not kProtocolVersion.
  kInternal = 500,         // Unexpected server-side failure.
  kOverloaded = 503,       // Admission queue full; retry_after_s is set.
  kDraining = 504,         // Server is shutting down; do not retry here.
};

const char* ErrorCodeName(ErrorCode code);

/// Maximum accepted length of a client-chosen trace id. Long ids are a
/// kBadRequest, not a truncation: silently shortened ids would break the
/// client-side join between its own records and server spans/logs.
inline constexpr size_t kMaxTraceIdBytes = 128;

/// Per-request phase latency breakdown, all in integer microseconds.
/// Attached to ok query responses as the "timing" object when the server
/// recorded it. The phases partition the server-side handling time:
///   queue_wait  — waiting for an admission slot,
///   cache       — synopsis-cache lookup overhead (lock + single-flight
///                 coordination, excluding the build itself),
///   preprocess  — database load + query parse + synopsis build (near
///                 zero on a cache hit),
///   sample      — scheme execution (the sampling/estimation loop),
///   encode      — answer assembly + run-record rendering.
/// total_micros covers HandleFrame from parse to encoded response, so
/// the phases sum to slightly below it (residual = dispatch glue).
struct PhaseTiming {
  bool recorded = false;  // False: no "timing" object on the wire.
  uint64_t queue_wait_micros = 0;
  uint64_t cache_micros = 0;
  uint64_t preprocess_micros = 0;
  uint64_t sample_micros = 0;
  uint64_t encode_micros = 0;
  uint64_t total_micros = 0;

  /// Sum of the five phase buckets (excludes total_micros).
  uint64_t PhaseSumMicros() const {
    return queue_wait_micros + cache_micros + preprocess_micros +
           sample_micros + encode_micros;
  }
};

/// Encodes one frame: 4-byte big-endian length followed by the payload.
std::string EncodeFrame(const std::string& payload);

/// Incremental frame reassembly over an arbitrary byte stream (socket
/// reads land in chunks that need not align with frames).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Feeds raw bytes into the reassembly buffer.
  void Append(const char* data, size_t n);

  enum class Status {
    kNeedMore,  // No complete frame buffered yet.
    kFrame,     // *payload holds the next frame's payload.
    kError,     // Unrecoverable framing violation; close the connection.
  };

  /// Pops the next complete frame, if any. After kError the decoder stays
  /// poisoned: the stream has no trustworthy frame boundary anymore.
  Status Next(std::string* payload, std::string* error);

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  bool poisoned_ = false;
};

/// A decoded client request. One struct covers all operations; fields
/// beyond (version, op, id) matter only to op == "query".
struct Request {
  int version = kProtocolVersion;
  std::string op = "query";  // "query" | "stats" | "ping".
  std::string id;            // Opaque; echoed back verbatim.

  // Query fields (defaults match cqa_cli run).
  std::string schema = "tpch";  // "tpch" | "tpcds".
  std::string data;             // .tbl directory path on the server host.
  std::string query;            // CQ text, e.g. "Q(N) :- employee(I, N, D).".
  std::string scheme = "KLM";   // Natural | KL | KLM | Cover.
  double epsilon = 0.1;
  double delta = 0.25;
  double deadline_s = 0.0;      // <= 0: use the server's default deadline.
  uint64_t seed = 7;
  int threads = 1;              // Scheme-phase worker threads.
  bool want_record = false;     // Attach the obs RunRecord to the response.

  // Optional wire-propagated trace context ("trace" object, any op).
  // A non-empty trace_id makes the server stamp every span it records
  // for this request with the id and tag the access-log line with it.
  std::string trace_id;         // Client-chosen; <= kMaxTraceIdBytes.
  uint64_t trace_parent = 0;    // Client-side parent span id; 0 = none.

  /// Serializes as one request frame payload (client side).
  std::string ToJsonPayload() const;

  /// Serializes with the v2 tagged binary codec (magic + kind header,
  /// then tag-prefixed fields; layout table in docs/protocol.md).
  std::string ToBinaryPayload() const;

  /// Serializes with the given codec.
  std::string ToPayload(WireCodec codec) const;

  /// Decodes a request payload. On failure returns false with *code set
  /// to the rejection the server should answer with and *error to a
  /// human-readable reason.
  static bool FromJsonPayload(const std::string& payload, Request* out,
                              ErrorCode* code, std::string* error);

  /// Decodes a v2 binary request payload; same failure contract as the
  /// JSON decoder, and identical semantic validation of the fields.
  static bool FromBinaryPayload(const std::string& payload, Request* out,
                                ErrorCode* code, std::string* error);

  /// Detects the codec and dispatches to the matching decoder. Sets
  /// *codec to the detected codec whenever detection itself succeeds,
  /// so error replies can be encoded in the codec the client spoke.
  static bool FromPayload(const std::string& payload, Request* out,
                          WireCodec* codec, ErrorCode* code,
                          std::string* error);
};

/// One candidate answer in a query response.
struct ResponseAnswer {
  std::string tuple;        // TupleToString rendering, e.g. "(1, 'Bob')".
  double frequency = 0.0;   // Approximated relative frequency.
};

/// A decoded server response; the union of all operations' reply fields.
struct Response {
  int version = kProtocolVersion;
  std::string id;
  ErrorCode code = ErrorCode::kOk;
  std::string error;          // Non-empty iff code != kOk.
  double retry_after_s = 0.0; // Set with kOverloaded.

  // op == "query" results.
  std::vector<ResponseAnswer> answers;
  bool cache_hit = false;     // Synopsis cache hit (Preprocess skipped).
  bool timed_out = false;     // Deadline expired; answers are partial.
  double preprocess_seconds = 0.0;
  double scheme_seconds = 0.0;
  uint64_t total_samples = 0;
  std::string run_record_json;  // Raw JSON object; empty unless requested.
  PhaseTiming timing;           // Serialized iff timing.recorded.

  // op == "stats": the server's metrics registry dump plus server state.
  std::string metrics_json;  // Raw JSON object.
  std::string server_json;   // Raw JSON object.

  // op == "ping".
  bool pong = false;

  bool ok() const { return code == ErrorCode::kOk; }

  std::string ToJsonPayload() const;

  /// v2 binary encoding; the embedded raw-JSON blobs (run record,
  /// metrics, server state) ride along as length-delimited strings.
  std::string ToBinaryPayload() const;

  /// Serializes with the given codec (the codec the request arrived in).
  std::string ToPayload(WireCodec codec) const;

  static bool FromJsonPayload(const std::string& payload, Response* out,
                              std::string* error);

  /// Decodes a v2 binary response payload.
  static bool FromBinaryPayload(const std::string& payload, Response* out,
                                std::string* error);

  /// Detects the codec and dispatches to the matching decoder.
  static bool FromPayload(const std::string& payload, Response* out,
                          std::string* error);

  /// Shorthand for error replies.
  static Response MakeError(ErrorCode code, const std::string& message,
                            const std::string& id = std::string());
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_PROTOCOL_H_
