#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cqa::serve {

namespace {

/// Recursive-descent parser over a borrowed buffer. Depth is bounded so a
/// frame of ten thousand '[' characters cannot blow the stack.
class Parser {
 public:
  static constexpr int kMaxDepth = 64;

  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "json: %s at offset %zu", what, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true", 4)) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false", 5)) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!Literal("null", 4)) return false;
        *out = JsonValue::MakeNull();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    // Caller ensured text_[pos_] == '"'.
    ++pos_;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("dangling escape");
      switch (text_[pos_]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 >= text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape digit");
          }
          pos_ += 4;
          // UTF-8 encode the code point (surrogate pairs are passed
          // through as two 3-byte sequences — the protocol carries only
          // ASCII field names, this keeps the parser total).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
      ++pos_;
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      return Fail("bad number");
    }
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element, depth + 1)) return false;
      out->Append(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return Fail("expected ',' in array");
      ++pos_;
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(key, std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return Fail("expected ',' in object");
      ++pos_;
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

void SerializeTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      return;
    case JsonValue::Kind::kBool:
      out->append(v.AsBool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: {
      char buf[32];
      const double n = v.AsNumber();
      // Integers print exactly (seeds, counts, error codes); everything
      // else gets round-trippable precision.
      if (n == static_cast<double>(static_cast<long long>(n)) &&
          std::abs(n) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", n);
      }
      out->append(buf);
      return;
    }
    case JsonValue::Kind::kString:
      out->push_back('"');
      out->append(JsonEscape(v.AsString()));
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& e : v.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeTo(e, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        SerializeTo(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Append(JsonValue v) { array_.push_back(std::move(v)); }

void JsonValue::Set(const std::string& key, JsonValue v) {
  object_.emplace_back(key, std::move(v));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace cqa::serve
