// serve/dispatch — the bounded hand-off between reactor event loops and
// query execution. Event loops must never block on sampling, so parsed
// query requests are queued here and executed by `executors` long-lived
// loops parked on the shared ThreadPool (the server hosts them; this
// class creates no threads).
//
// Two-stage queue, reproducing the blocking server's observable
// admission behaviour. That server had `workers` request threads, each
// carrying one connection's request through AdmissionController::Enter:
// at most `workers` requests contended for admission at once, and every
// connection beyond that waited in the acceptor's fd queue (capped at
// max_pending_connections) without shedding. Here the same shape is:
//   outer wait queue  — requests beyond the active window park here,
//                       FIFO, capped at `wait_cap`; beyond the cap they
//                       shed with kOverloaded (the old accept-time
//                       "connection backlog full").
//   active window     — at most max(workers, executors + max_queue)
//                       requests are "active" (executing or committed
//                       for execution); a request pumped into the window
//                       sheds with kOverloaded iff the inner stage is
//                       full (busy >= executors AND pending >= max_queue
//                       — exactly the old Enter shed condition, which
//                       therefore only fires when workers exceeds
//                       executors + max_queue, as before).
// Deadlines are re-checked at dequeue (kDeadlineExceeded) and a drain
// flushes both stages with kDraining. AdmissionController::Enter/Leave
// still bracket each execution, so the inflight gauge and the
// retry-after EWMA stay exact; NoteQueued/NoteShed/NoteExpired mirror
// this queue into the gauges.
#ifndef CQABENCH_SERVE_DISPATCH_H_
#define CQABENCH_SERVE_DISPATCH_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "serve/admission.h"
#include "serve/protocol.h"

namespace cqa::serve {

/// One unit of deferred query work.
struct QueryJob {
  Deadline deadline = Deadline::Infinite();
  /// Admitted path: execute the query and deliver its response. Runs on
  /// an executor loop, bracketed by admission Enter/Leave.
  std::function<void()> run;
  /// Rejection path: deliver an error response (kOverloaded /
  /// kDeadlineExceeded / kDraining). Runs on the enqueuing thread for
  /// shed/drain-time rejections, on an executor for expiries.
  std::function<void(ErrorCode)> reject;
};

/// Thread-safe two-stage FIFO of QueryJobs. The server calls Submit
/// from event loops, hosts `executors` calls to RunExecutor on pool
/// threads, and Drains on shutdown.
class QueryDispatcher {
 public:
  /// `executors` is how many RunExecutor loops the server will host
  /// (the old max_inflight); `workers` is the old request-thread count
  /// that bounded concurrent admission attempts; `wait_cap` caps the
  /// outer wait queue (the old max_pending_connections backlog).
  /// admission must outlive the dispatcher.
  QueryDispatcher(size_t executors, size_t max_queue, size_t workers,
                  size_t wait_cap, AdmissionController* admission);

  /// Queues job, or rejects it immediately (kOverloaded when both
  /// stages are full, kDraining after Drain). Never blocks.
  void Submit(QueryJob job) CQA_EXCLUDES(mu_);

  /// Executor loop: pops jobs until Drain() empties the queue. The
  /// server parks `max_inflight` of these on the shared ThreadPool.
  void RunExecutor() CQA_EXCLUDES(mu_);

  /// Stops intake, flushes queued jobs with kDraining, and releases the
  /// executor loops once the queue is empty. Idempotent.
  void Drain() CQA_EXCLUDES(mu_);

  /// Jobs waiting in either stage (excludes executing jobs).
  size_t queue_depth() const CQA_EXCLUDES(mu_);

 private:
  /// Moves outer-queue jobs into the active window while it has room,
  /// splitting them into committed (inner queue) and shed. Callers
  /// notify work_cv_ / reject the shed jobs after releasing mu_ (reject
  /// closures take other locks; keeping them outside mu_ pins the lock
  /// order at dispatcher → admission/loop-mailbox).
  void PumpLocked(std::vector<QueryJob>* shed, size_t* committed)
      CQA_REQUIRES(mu_);

  /// Rejects every job in `shed` with kOverloaded and notifies one
  /// executor per committed job.
  void FinishPump(std::vector<QueryJob>* shed, size_t committed)
      CQA_EXCLUDES(mu_);

  /// Runs or rejects one dequeued job under admission bracketing.
  void RunOne(QueryJob* job) CQA_EXCLUDES(mu_);

  const size_t executors_;
  const size_t max_queue_;
  const size_t window_;    // max(workers, executors + max_queue).
  const size_t wait_cap_;
  AdmissionController* const admission_;
  mutable cqa::Mutex mu_;
  cqa::CondVar work_cv_;  // Signalled on commit and Drain.
  std::deque<QueryJob> wait_q_ CQA_GUARDED_BY(mu_);  // Outer stage.
  std::deque<QueryJob> queue_ CQA_GUARDED_BY(mu_);   // Committed stage.
  size_t busy_ CQA_GUARDED_BY(mu_) = 0;  // Executors running a job.
  bool draining_ CQA_GUARDED_BY(mu_) = false;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_DISPATCH_H_
