#include "serve/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace cqa::serve {

namespace {

// Flipped by the SIGTERM/SIGINT handler; async-signal-safe by
// construction (lock-free atomic store, nothing else in the handler).
std::atomic<bool> g_terminate{false};

void HandleTerminate(int /*signum*/) { g_terminate.store(true); }

// How often the signal watcher and the drain grace loop re-check their
// flags. Connection I/O itself is purely event-driven (no ticks).
constexpr long kWatchTickNs = 10 * 1000 * 1000;  // 10ms.

void SleepTick() {
  struct timespec ts = {0, kWatchTickNs};
  ::nanosleep(&ts, nullptr);
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// One best-effort non-blocking send for connections rejected before
// they ever reach a loop (accept-time shed). MSG_NOSIGNAL keeps a dead
// peer from raising SIGPIPE.
void BestEffortSend(int fd, const std::string& data) {
  [[maybe_unused]] ssize_t n =
      ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

const char* RejectMessage(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "admission queue full";
    case ErrorCode::kDeadlineExceeded:
      return "deadline expired in admission queue";
    case ErrorCode::kDraining: return "server is draining";
    default: return "request rejected";
  }
}

// The spans bracketing one asynchronous query. Held via shared_ptr by
// both the run and reject closures, which execute on executor threads
// while construction happened on a loop thread — hence CrossThreadSpan,
// not the same-thread RAII TraceSpan. Finish() is called at the exact
// moments the old blocking server destroyed the equivalent scoped spans
// (queue_wait ends when execution starts, the request root ends before
// the response is handed back), so span durations and the recording
// order stay faithful.
struct PendingSpans {
  PendingSpans(const std::string& trace_id, uint64_t trace_parent)
      : root("serve.request", trace_parent, trace_id),
        queue("serve.queue_wait", root.id(), trace_id) {}
  obs::CrossThreadSpan root;
  obs::CrossThreadSpan queue;
};

}  // namespace

// ---------------------------------------------------------------------------
// Per-connection state machine. Every member is confined to the owning
// loop's thread: events, mailbox deliveries, and drain sweeps all run
// there, so no locking is needed (TSA has nothing to annotate — the
// confinement is the discipline, see docs/architecture.md).
// ---------------------------------------------------------------------------

class CqadServer::Conn : public EpollHandler {
 public:
  Conn(CqadServer* server, EventLoop* loop, size_t loop_index, uint64_t id,
       int fd)
      : server_(server),
        loop_(loop),
        loop_index_(loop_index),
        id_(id),
        fd_(fd),
        decoder_(server->options_.max_frame_bytes) {}

  ~Conn() override {
    if (fd_ >= 0) ::close(fd_);
  }

  uint64_t id() const { return id_; }
  size_t loop_index() const { return loop_index_; }

  void OnEvents(uint32_t events) override {
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      ShutdownNow();
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      if (!Flush()) {
        ShutdownNow();
        return;
      }
      if (MaybeCloseAfterFlush()) return;
    }
    if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) OnReadable();
  }

  /// Reads until EAGAIN (edge-triggered contract) and handles every
  /// complete frame. May destroy the connection; callers must not touch
  /// it afterwards.
  void OnReadable() {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        decoder_.Append(buf, static_cast<size_t>(n));
        if (!DrainFrames()) return;  // Closed (or closing after flush).
        continue;
      }
      if (n == 0) {  // EOF.
        ShutdownNow();
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ShutdownNow();
      return;
    }
  }

  /// Queues an encoded frame and flushes as much as the socket takes.
  void QueueWrite(std::string frame) {
    write_q_.push_back(std::move(frame));
    if (!Flush()) {
      ShutdownNow();
      return;
    }
    MaybeCloseAfterFlush();
  }

  /// One pipelined response came back from an executor.
  void CompleteOne(std::string frame) {
    if (outstanding_ > 0) --outstanding_;
    QueueWrite(std::move(frame));
  }

  void NoteSubmitted() { ++outstanding_; }

  /// Drain sweep: idle connections close now; connections with pending
  /// responses or unflushed bytes close once those flush.
  void DrainSweep() {
    if (outstanding_ == 0 && write_q_.empty()) {
      ShutdownNow();
    } else {
      close_after_flush_ = true;
    }
  }

  /// Arms close-on-flush for fatal protocol errors (poisoned framing).
  void CloseAfterFlush() {
    close_after_flush_ = true;
    MaybeCloseAfterFlush();
  }

  /// Unregisters, removes from the server registry, and schedules
  /// destruction. Safe to call at most once; the object may be deleted
  /// before this returns (when called off the epoll dispatch path).
  void ShutdownNow() {
    if (closed_) return;
    closed_ = true;
    server_->conns_[loop_index_].erase(id_);
    const int64_t open = server_->open_conns_.fetch_sub(1) - 1;
    server_->connections_gauge_->Set(open);
    loop_->Destroy(fd_, this);  // ~Conn closes fd_.
  }

 private:
  /// Pops decoded frames into the server. False when the connection
  /// closed (fatal framing error or handler said stop).
  bool DrainFrames() {
    for (;;) {
      std::string payload;
      std::string frame_error;
      const FrameDecoder::Status status =
          decoder_.Next(&payload, &frame_error);
      if (status == FrameDecoder::Status::kNeedMore) return true;
      if (status == FrameDecoder::Status::kError) {
        const ErrorCode code =
            frame_error.find("exceeds") != std::string::npos
                ? ErrorCode::kFrameTooLarge
                : ErrorCode::kBadRequest;
        const Response reply = Response::MakeError(code, frame_error);
        write_q_.push_back(EncodeFrame(reply.ToJsonPayload()));
        if (!Flush()) {
          ShutdownNow();
          return false;
        }
        CloseAfterFlush();  // Framing is unrecoverable; close.
        return false;
      }
      if (!server_->HandleFrame(this, payload)) {
        ShutdownNow();
        return false;
      }
      if (closed_) return false;
    }
  }

  /// writev-flushes the queue until empty or EAGAIN. False on a fatal
  /// socket error (caller closes).
  bool Flush() {
    while (!write_q_.empty()) {
      struct iovec iov[64];
      int iovcnt = 0;
      size_t off = write_off_;
      for (const std::string& buf : write_q_) {
        if (iovcnt == 64) break;
        iov[iovcnt].iov_base = const_cast<char*>(buf.data() + off);
        iov[iovcnt].iov_len = buf.size() - off;
        ++iovcnt;
        off = 0;
      }
      struct msghdr msg;
      std::memset(&msg, 0, sizeof(msg));
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      const ssize_t sent = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      size_t remaining = static_cast<size_t>(sent);
      while (remaining > 0 && !write_q_.empty()) {
        const size_t avail = write_q_.front().size() - write_off_;
        if (remaining >= avail) {
          remaining -= avail;
          write_q_.pop_front();
          write_off_ = 0;
        } else {
          write_off_ += remaining;
          remaining = 0;
        }
      }
    }
    return true;
  }

  /// True when the connection was closed by the pending-close rule.
  bool MaybeCloseAfterFlush() {
    if (close_after_flush_ && write_q_.empty() && outstanding_ == 0) {
      ShutdownNow();
      return true;
    }
    return false;
  }

  CqadServer* const server_;
  EventLoop* const loop_;
  const size_t loop_index_;
  const uint64_t id_;
  const int fd_;
  FrameDecoder decoder_;
  std::deque<std::string> write_q_;  // Encoded frames awaiting the socket.
  size_t write_off_ = 0;             // Bytes of the front frame already sent.
  size_t outstanding_ = 0;           // Queries submitted, response pending.
  bool close_after_flush_ = false;
  bool closed_ = false;
};

// Accept handler: loop 0 owns the listening socket.
class CqadServer::Listener : public EpollHandler {
 public:
  explicit Listener(CqadServer* server) : server_(server) {}
  void OnEvents(uint32_t /*events*/) override { server_->AcceptReady(); }

 private:
  CqadServer* const server_;
};

CqadServer::CqadServer(const ServerOptions& options)
    : options_(options),
      executors_(options.max_inflight == 0 ? options.workers
                                           : options.max_inflight),
      engine_(options.engine),
      admission_(AdmissionOptions{
          options.max_inflight == 0 ? options.workers : options.max_inflight,
          options.max_queue}),
      dispatcher_(executors_, options.max_queue,
                  options.workers == 0 ? 1 : options.workers,
                  options.max_pending_connections, &admission_),
      connections_gauge_(
          obs::Registry::Instance().GetGauge("serve.connections_open")) {}

CqadServer::~CqadServer() {
  if (started_) {
    RequestDrain();
    Wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void CqadServer::InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleTerminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client closing mid-response must not kill the process; every send
  // already uses MSG_NOSIGNAL and handles the error path.
  ::signal(SIGPIPE, SIG_IGN);
}

bool CqadServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = "bind " + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 1024) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (!SetNonBlocking(listen_fd_)) {
    *error = std::string("fcntl(listen): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  const size_t n_loops = options_.workers == 0 ? 1 : options_.workers;
  conns_.resize(n_loops);
  for (size_t i = 0; i < n_loops; ++i) {
    auto loop = std::make_unique<EventLoop>("loop-" + std::to_string(i));
    if (!loop->ok()) {
      *error = "epoll setup failed for event loop " + std::to_string(i);
      ::close(listen_fd_);
      listen_fd_ = -1;
      loops_.clear();
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  listener_ = std::make_unique<Listener>(this);
  if (!loops_[0]->Add(listen_fd_, EPOLLIN | EPOLLET, listener_.get())) {
    *error = std::string("epoll_ctl(listen): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    loops_.clear();
    return false;
  }

  for (auto& loop : loops_) {
    EventLoop* raw = loop.get();
    loop_threads_.emplace_back([raw] { raw->Run(); });
  }
  // Executor loops run as ONE fork/join job on the shared pool: this
  // host thread parks until every executor exits at drain.
  executor_host_ = std::thread([this] {
    ThreadPool& pool = ThreadPool::Shared();
    pool.EnsureWorkers(executors_);
    pool.Run(executors_, [this](size_t) { dispatcher_.RunExecutor(); });
  });
  signal_watcher_ = std::thread([this] {
    while (!stopping_.load()) {
      if (g_terminate.load()) {
        RequestDrain();
        return;
      }
      SleepTick();
    }
  });
  drainer_ = std::thread([this] { DrainSequence(); });
  started_ = true;
  return true;
}

void CqadServer::RequestDrain() {
  if (draining_.exchange(true)) return;
  {
    cqa::MutexLock lock(drain_mu_);
    drain_requested_ = true;
  }
  drain_cv_.NotifyAll();
}

void CqadServer::Wait() {
  if (!started_) return;
  if (drainer_.joinable()) drainer_.join();
  for (std::thread& t : loop_threads_) {
    if (t.joinable()) t.join();
  }
  if (signal_watcher_.joinable()) signal_watcher_.join();
  started_ = false;
}

void CqadServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listen socket was shut down for drain.
    }
    ++connections_total_;
    CQA_OBS_COUNT("serve.connections");
    if (draining_.load()) {
      const Response reply = Response::MakeError(ErrorCode::kDraining,
                                                 "server is draining");
      BestEffortSend(fd, EncodeFrame(reply.ToJsonPayload()));
      ::close(fd);
      continue;
    }
    if (open_conns_.load() >=
        static_cast<int64_t>(options_.max_pending_connections)) {
      CQA_OBS_COUNT("serve.connections_shed");
      Response reply = Response::MakeError(ErrorCode::kOverloaded,
                                           "connection backlog full");
      reply.retry_after_s = admission_.RetryAfterSeconds();
      BestEffortSend(fd, EncodeFrame(reply.ToJsonPayload()));
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_gauge_->Set(open_conns_.fetch_add(1) + 1);
    AdoptConnection(next_loop_++ % loops_.size(), fd);
  }
}

void CqadServer::AdoptConnection(size_t loop_index, int fd) {
  EventLoop* loop = loops_[loop_index].get();
  const uint64_t conn_id = next_conn_id_.fetch_add(1);
  loop->Post([this, loop, loop_index, fd, conn_id] {
    Conn* conn = new Conn(this, loop, loop_index, conn_id, fd);
    if (!loop->Add(fd, EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP, conn)) {
      connections_gauge_->Set(open_conns_.fetch_sub(1) - 1);
      delete conn;  // ~Conn closes fd.
      return;
    }
    conns_[loop_index].emplace(conn_id, conn);
    // Bytes that landed before registration produce no further edge;
    // read once now (a spurious extra EAGAIN read is harmless).
    conn->OnReadable();
  });
}

bool CqadServer::HandleFrame(Conn* conn, const std::string& payload) {
  const Stopwatch request_watch;
  ++requests_total_;
  CQA_OBS_COUNT("serve.requests");

  Request request;
  WireCodec codec = WireCodec::kJson;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  const bool parsed =
      Request::FromPayload(payload, &request, &codec, &code, &error);
  if (!parsed) {
    Response response = Response::MakeError(code, error);
    conn->QueueWrite(
        FinishRequest(request, false, &response, request_watch, codec));
    return true;  // Bad requests keep the connection open.
  }
  if (request.op == "ping" || request.op == "stats") {
    Response response;
    response.id = request.id;
    {
      // The per-request root span; see SubmitQuery for the query path.
      obs::TraceSpan root_span("serve.request", request.trace_parent,
                               request.trace_id);
      if (request.op == "ping") {
        response.pong = true;
      } else {
        response.metrics_json = obs::Registry::Instance().ToJson();
        response.server_json = StatsJson();
      }
    }
    conn->QueueWrite(
        FinishRequest(request, true, &response, request_watch, codec));
    return true;
  }
  SubmitQuery(conn, std::move(request), codec, request_watch);
  return true;
}

void CqadServer::SubmitQuery(Conn* conn, Request request, WireCodec codec,
                             const Stopwatch& watch) {
  if (draining_.load()) {
    Response response = Response::MakeError(
        ErrorCode::kDraining, "server is draining", request.id);
    conn->QueueWrite(FinishRequest(request, true, &response, watch, codec));
    return;
  }
  const size_t loop_index = conn->loop_index();
  const uint64_t conn_id = conn->id();
  // The deadline starts here, before the dispatcher queue, so time
  // spent queued counts against the request's budget.
  const Deadline deadline = engine_.MakeDeadline(request);
  // The root span hangs the whole server-side tree under the client's
  // trace context; queue_wait ends exactly when execution starts.
  auto spans = std::make_shared<PendingSpans>(request.trace_id,
                                              request.trace_parent);
  const uint64_t root_id = spans->root.id();
  auto req = std::make_shared<Request>(std::move(request));
  const Stopwatch queue_watch;
  conn->NoteSubmitted();

  QueryJob job;
  job.deadline = deadline;
  job.run = [this, req, codec, watch, queue_watch, spans, root_id,
             loop_index, conn_id, deadline] {
    const uint64_t queue_wait_micros =
        static_cast<uint64_t>(queue_watch.ElapsedSeconds() * 1e6);
    spans->queue.Finish();
    Response response = engine_.ExecuteQuery(*req, deadline, root_id);
    if (response.timing.recorded) {
      response.timing.queue_wait_micros = queue_wait_micros;
    }
    spans->root.Finish();  // Recorded before the response is delivered.
    DeliverFrame(loop_index, conn_id,
                 FinishRequest(*req, true, &response, watch, codec));
  };
  job.reject = [this, req, codec, watch, spans, loop_index,
                conn_id](ErrorCode code) {
    spans->queue.Finish();
    Response response =
        Response::MakeError(code, RejectMessage(code), req->id);
    if (code == ErrorCode::kOverloaded) {
      response.retry_after_s = admission_.RetryAfterSeconds();
    }
    spans->root.Finish();
    DeliverFrame(loop_index, conn_id,
                 FinishRequest(*req, true, &response, watch, codec));
  };
  dispatcher_.Submit(std::move(job));
}

std::string CqadServer::FinishRequest(const Request& request, bool parsed,
                                      Response* response,
                                      const Stopwatch& watch,
                                      WireCodec codec) {
  if (!response->ok()) CQA_OBS_COUNT("serve.request_errors");
  // Total handling time ends here, before frame serialization, so the
  // response's own phase breakdown can sum close to it (the residual is
  // dispatch glue, not a hidden phase).
  const uint64_t total_micros =
      static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6);
  if (response->timing.recorded) {
    response->timing.total_micros = total_micros;
    CQA_OBS_OBSERVE("serve.phase_queue_wait_micros",
                    response->timing.queue_wait_micros);
    CQA_OBS_OBSERVE("serve.phase_cache_micros",
                    response->timing.cache_micros);
    CQA_OBS_OBSERVE("serve.phase_preprocess_micros",
                    response->timing.preprocess_micros);
    CQA_OBS_OBSERVE("serve.phase_sample_micros",
                    response->timing.sample_micros);
    CQA_OBS_OBSERVE("serve.phase_encode_micros",
                    response->timing.encode_micros);
  }
  CQA_OBS_OBSERVE("serve.request_micros", total_micros);
  if (options_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.op = parsed ? request.op : "invalid";
    entry.trace_id = request.trace_id;
    entry.request_id = request.id;
    entry.scheme = request.scheme;
    entry.cache_hit = response->cache_hit;
    entry.code = response->code;
    entry.timed_out = response->timed_out;
    entry.timing = response->timing;
    entry.timing.total_micros = total_micros;  // Set even when !recorded.
    entry.total_samples = response->total_samples;
    options_.access_log->Append(entry);
  }
  response->version = codec == WireCodec::kBinary ? kProtocolVersionBinary
                                                  : kProtocolVersion;
  return EncodeFrame(response->ToPayload(codec));
}

void CqadServer::DeliverFrame(size_t loop_index, uint64_t conn_id,
                              std::string frame) {
  loops_[loop_index]->Post(
      [this, loop_index, conn_id, frame = std::move(frame)]() mutable {
        auto& registry = conns_[loop_index];
        const auto it = registry.find(conn_id);
        if (it == registry.end()) return;  // Connection closed; drop.
        it->second->CompleteOne(std::move(frame));
      });
}

void CqadServer::DrainSequence() {
  {
    cqa::MutexLock lock(drain_mu_);
    while (!drain_requested_) drain_cv_.Wait(drain_mu_);
  }
  // Drain step 1: stop accepting. shutdown() empties and closes the
  // listen queue at the TCP layer; the fd itself is closed on loop 0 so
  // it cannot race an in-flight accept with a recycled descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  loops_[0]->Post([this] {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);  // epoll forgets closed fds automatically.
      listen_fd_ = -1;
    }
  });
  // Drain step 2: flush queued work with kDraining, finish in-flight
  // executions, and deliver every pending response.
  admission_.Shutdown();
  dispatcher_.Drain();
  if (executor_host_.joinable()) executor_host_.join();
  // All completions are now queued in loop mailboxes; the sweep posted
  // behind them closes idle connections and marks the rest
  // close-on-flush (mailboxes are FIFO per loop).
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->Post([this, i] {
      std::vector<Conn*> conns;
      conns.reserve(conns_[i].size());
      for (const auto& [id, conn] : conns_[i]) conns.push_back(conn);
      for (Conn* conn : conns) conn->DrainSweep();
    });
  }
  // Drain step 3: give pending flushes drain_timeout_s, then force.
  ForceCloseStragglers();
  for (auto& loop : loops_) loop->Stop();
  stopping_.store(true);
}

void CqadServer::ForceCloseStragglers() {
  const Deadline grace(options_.drain_timeout_s);
  while (!grace.Expired()) {
    if (open_conns_.load() == 0) return;
    SleepTick();
  }
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->Post([this, i] {
      std::vector<Conn*> conns;
      conns.reserve(conns_[i].size());
      for (const auto& [id, conn] : conns_[i]) conns.push_back(conn);
      for (Conn* conn : conns) {
        CQA_OBS_COUNT("serve.connections_force_closed");
        conn->ShutdownNow();
      }
    });
  }
  // Give the force-close posts a moment to run before loops stop.
  while (open_conns_.load() > 0) SleepTick();
}

std::string CqadServer::StatsJson() const {
  const SynopsisCache& cache = engine_.synopsis_cache();
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("uptime_seconds", JsonValue::MakeNumber(uptime_.ElapsedSeconds()));
  obj.Set("draining", JsonValue::MakeBool(draining_.load()));
  obj.Set("workers",
          JsonValue::MakeNumber(static_cast<double>(options_.workers)));
  // The instantaneous server-state fields read the same process-wide
  // gauges /metrics exports, so the two views can never disagree.
  obj.Set("connections_open",
          JsonValue::MakeNumber(static_cast<double>(
              connections_gauge_->value())));
  obj.Set("connections_total",
          JsonValue::MakeNumber(
              static_cast<double>(connections_total_.load())));
  obj.Set("requests_total",
          JsonValue::MakeNumber(static_cast<double>(requests_total_.load())));
  obj.Set("admission_inflight",
          JsonValue::MakeNumber(static_cast<double>(
              obs::Registry::Instance().GaugeValue(
                  "serve.admission_inflight"))));
  obj.Set("admission_queued",
          JsonValue::MakeNumber(static_cast<double>(
              obs::Registry::Instance().GaugeValue(
                  "serve.admission_queued"))));
  obj.Set("admission_shed",
          JsonValue::MakeNumber(
              static_cast<double>(admission_.shed_total())));
  obj.Set("trace_dropped_spans",
          JsonValue::MakeNumber(static_cast<double>(
              obs::TraceBuffer::Instance().dropped())));
  {
    JsonValue access = JsonValue::MakeObject();
    const AccessLog* log = options_.access_log;
    access.Set("enabled", JsonValue::MakeBool(log != nullptr));
    access.Set("sample_rate",
               JsonValue::MakeNumber(log != nullptr ? log->sample_rate()
                                                    : 0.0));
    access.Set("lines",
               JsonValue::MakeNumber(
                   log != nullptr ? static_cast<double>(log->lines()) : 0.0));
    access.Set("sampled_out",
               JsonValue::MakeNumber(
                   log != nullptr ? static_cast<double>(log->sampled_out())
                                  : 0.0));
    obj.Set("access_log", std::move(access));
  }
  obj.Set("cache_entries",
          JsonValue::MakeNumber(static_cast<double>(cache.entries())));
  obj.Set("cache_hits",
          JsonValue::MakeNumber(static_cast<double>(cache.hits())));
  obj.Set("cache_misses",
          JsonValue::MakeNumber(static_cast<double>(cache.misses())));
  obj.Set("cache_evictions",
          JsonValue::MakeNumber(static_cast<double>(cache.evictions())));
  return obj.Serialize();
}

}  // namespace cqa::serve
