#include "serve/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace cqa::serve {

namespace {

// Flipped by the SIGTERM/SIGINT handler; async-signal-safe by
// construction (lock-free atomic store, nothing else in the handler).
std::atomic<bool> g_terminate{false};

void HandleTerminate(int /*signum*/) { g_terminate.store(true); }

// Poll tick for every blocking socket wait: drain and terminate flags
// are observed within this interval.
constexpr int kPollTickMs = 100;

// Writes the whole buffer, retrying on partial sends. False on error
// (peer gone); MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

CqadServer::CqadServer(const ServerOptions& options)
    : options_(options),
      engine_(options.engine),
      admission_(AdmissionOptions{
          options.max_inflight == 0 ? options.workers : options.max_inflight,
          options.max_queue}),
      connections_gauge_(
          obs::Registry::Instance().GetGauge("serve.connections_open")) {}

CqadServer::~CqadServer() {
  if (started_) {
    RequestDrain();
    Wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void CqadServer::InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleTerminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client closing mid-response must not kill the process; SendAll
  // already handles the send() error path.
  ::signal(SIGPIPE, SIG_IGN);
}

bool CqadServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = "bind " + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { AcceptorLoop(); });
  // The connection loops run as ONE fork/join job on the shared pool:
  // the dispatcher parks here until every worker loop exits at drain.
  dispatcher_ = std::thread([this] {
    ThreadPool& pool = ThreadPool::Shared();
    pool.EnsureWorkers(options_.workers);
    pool.Run(options_.workers, [this](size_t) { WorkerLoop(); });
  });
  started_ = true;
  return true;
}

void CqadServer::RequestDrain() {
  if (draining_.exchange(true)) return;
  // Queued admission waiters wake with kShutdown → answered kDraining.
  admission_.Shutdown();
  // Workers parked on the hand-off queue wake to flush it with
  // kDraining replies, then exit.
  queue_cv_.NotifyAll();
}

void CqadServer::Wait() {
  if (!started_) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  started_ = false;
}

void CqadServer::AcceptorLoop() {
  pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!draining_.load()) {
    if (g_terminate.load()) {
      RequestDrain();
      break;
    }
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++connections_total_;
    CQA_OBS_COUNT("serve.connections");
    MutexLock lock(queue_mu_);
    if (conn_queue_.size() >= options_.max_pending_connections) {
      lock.Unlock();
      CQA_OBS_COUNT("serve.connections_shed");
      SendErrorAndClose(fd, ErrorCode::kOverloaded,
                        "connection backlog full");
      continue;
    }
    conn_queue_.push_back(fd);
    lock.Unlock();
    queue_cv_.NotifyOne();
  }
  // Drain step 1: stop accepting — close the listening socket so new
  // connects are refused at the TCP layer.
  ::close(listen_fd_);
  listen_fd_ = -1;
  RequestDrain();
  // Drain step 2 fallback: a connection this thread queued in the same
  // instant the workers took their final (empty-queue) look would never
  // be flushed by them and would hang its client on recv. The acceptor
  // is the only producer and is now past its last push, so flushing
  // here — racing harmlessly with any worker still popping, both sides
  // answer kDraining under queue_mu_ — leaves nothing stranded.
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      if (conn_queue_.empty()) break;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    SendErrorAndClose(fd, ErrorCode::kDraining, "server is draining");
  }
  // Drain step 3: give in-flight requests drain_timeout_s to finish,
  // then force-close whatever is left so blocked workers fail fast.
  ForceCloseStragglers();
}

void CqadServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      while (!draining_.load() && conn_queue_.empty()) {
        queue_cv_.Wait(queue_mu_);
      }
      if (conn_queue_.empty()) return;  // Draining and nothing queued.
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    if (draining_.load()) {
      // Drain step 2: connections that never reached a worker get an
      // honest kDraining instead of a hung socket.
      SendErrorAndClose(fd, ErrorCode::kDraining, "server is draining");
      continue;
    }
    ServeConnection(fd);
  }
}

void CqadServer::ServeConnection(int fd) {
  {
    MutexLock lock(conns_mu_);
    open_conns_.insert(fd);
    connections_gauge_->Set(static_cast<int64_t>(open_conns_.size()));
  }
  FrameDecoder decoder(options_.max_frame_bytes);
  char buf[1 << 16];
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  bool keep = true;
  while (keep) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      // Idle tick: under drain, an idle connection is closed rather
      // than held open past shutdown.
      if (draining_.load()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF or error.
    decoder.Append(buf, static_cast<size_t>(n));
    while (keep) {
      std::string payload;
      std::string frame_error;
      FrameDecoder::Status status = decoder.Next(&payload, &frame_error);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        const ErrorCode code =
            frame_error.find("exceeds") != std::string::npos
                ? ErrorCode::kFrameTooLarge
                : ErrorCode::kBadRequest;
        const Response reply = Response::MakeError(code, frame_error);
        SendAll(fd, EncodeFrame(reply.ToJsonPayload()));
        keep = false;  // Framing is unrecoverable; close.
        break;
      }
      keep = HandleFrame(fd, payload);
    }
  }
  {
    MutexLock lock(conns_mu_);
    open_conns_.erase(fd);
    connections_gauge_->Set(static_cast<int64_t>(open_conns_.size()));
  }
  ::close(fd);
}

bool CqadServer::HandleFrame(int fd, const std::string& payload) {
  const Stopwatch request_watch;
  ++requests_total_;
  CQA_OBS_COUNT("serve.requests");

  Request request;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  Response response;
  const bool parsed = Request::FromJsonPayload(payload, &request, &code,
                                               &error);
  if (!parsed) {
    response = Response::MakeError(code, error);
  } else {
    // The per-request root span. The client's trace context hangs the
    // whole server-side tree under its own span id; an untraced request
    // still gets a root span (with an empty trace id) so the ring shows
    // every request.
    obs::TraceSpan root_span("serve.request", request.trace_parent,
                             request.trace_id);
    if (request.op == "ping") {
      response.id = request.id;
      response.pong = true;
    } else if (request.op == "stats") {
      response.id = request.id;
      response.metrics_json = obs::Registry::Instance().ToJson();
      response.server_json = StatsJson();
    } else {  // "query" — FromJsonPayload rejected any other op.
      response = ExecuteWithAdmission(request, root_span.id());
    }
  }
  if (!response.ok()) CQA_OBS_COUNT("serve.request_errors");
  // Total handling time ends here, before frame serialization, so the
  // response's own phase breakdown can sum close to it (the residual is
  // dispatch glue, not a hidden phase).
  const uint64_t total_micros =
      static_cast<uint64_t>(request_watch.ElapsedSeconds() * 1e6);
  if (response.timing.recorded) {
    response.timing.total_micros = total_micros;
    CQA_OBS_OBSERVE("serve.phase_queue_wait_micros",
                    response.timing.queue_wait_micros);
    CQA_OBS_OBSERVE("serve.phase_cache_micros",
                    response.timing.cache_micros);
    CQA_OBS_OBSERVE("serve.phase_preprocess_micros",
                    response.timing.preprocess_micros);
    CQA_OBS_OBSERVE("serve.phase_sample_micros",
                    response.timing.sample_micros);
    CQA_OBS_OBSERVE("serve.phase_encode_micros",
                    response.timing.encode_micros);
  }
  CQA_OBS_OBSERVE("serve.request_micros", total_micros);
  if (options_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.op = parsed ? request.op : "invalid";
    entry.trace_id = request.trace_id;
    entry.request_id = request.id;
    entry.scheme = request.scheme;
    entry.cache_hit = response.cache_hit;
    entry.code = response.code;
    entry.timed_out = response.timed_out;
    entry.timing = response.timing;
    entry.timing.total_micros = total_micros;  // Set even when !recorded.
    entry.total_samples = response.total_samples;
    options_.access_log->Append(entry);
  }
  return SendAll(fd, EncodeFrame(response.ToJsonPayload()));
}

Response CqadServer::ExecuteWithAdmission(const Request& request,
                                          uint64_t root_span) {
  if (draining_.load()) {
    return Response::MakeError(ErrorCode::kDraining, "server is draining",
                               request.id);
  }
  // The deadline starts here, before the admission wait, so time spent
  // queued counts against the request's budget.
  const Deadline deadline = engine_.MakeDeadline(request);
  const Stopwatch service_watch;
  Admission decision;
  uint64_t queue_wait_micros = 0;
  {
    obs::TraceSpan queue_span("serve.queue_wait", root_span,
                              request.trace_id);
    const Stopwatch queue_watch;
    decision = admission_.Enter(deadline);
    queue_wait_micros =
        static_cast<uint64_t>(queue_watch.ElapsedSeconds() * 1e6);
  }
  switch (decision) {
    case Admission::kShed: {
      Response response = Response::MakeError(
          ErrorCode::kOverloaded, "admission queue full", request.id);
      response.retry_after_s = admission_.RetryAfterSeconds();
      return response;
    }
    case Admission::kExpired:
      return Response::MakeError(ErrorCode::kDeadlineExceeded,
                                 "deadline expired in admission queue",
                                 request.id);
    case Admission::kShutdown:
      return Response::MakeError(ErrorCode::kDraining,
                                 "server is draining", request.id);
    case Admission::kAdmitted:
      break;
  }
  Response response = engine_.ExecuteQuery(request, deadline, root_span);
  admission_.Leave(service_watch.ElapsedSeconds());
  if (response.timing.recorded) {
    response.timing.queue_wait_micros = queue_wait_micros;
  }
  return response;
}

void CqadServer::SendErrorAndClose(int fd, ErrorCode code,
                                   const std::string& message) {
  Response reply = Response::MakeError(code, message);
  if (code == ErrorCode::kOverloaded) {
    reply.retry_after_s = admission_.RetryAfterSeconds();
  }
  SendAll(fd, EncodeFrame(reply.ToJsonPayload()));
  ::close(fd);
}

void CqadServer::ForceCloseStragglers() {
  const Deadline grace(options_.drain_timeout_s);
  while (!grace.Expired()) {
    {
      MutexLock lock(conns_mu_);
      if (open_conns_.empty()) return;
    }
    struct timespec ts = {0, 20 * 1000 * 1000};  // 20ms.
    ::nanosleep(&ts, nullptr);
  }
  MutexLock lock(conns_mu_);
  for (int fd : open_conns_) {
    // shutdown(), not close(): the owning worker still holds the fd and
    // will observe recv()/send() failing, then close it itself.
    ::shutdown(fd, SHUT_RDWR);
    CQA_OBS_COUNT("serve.connections_force_closed");
  }
}

std::string CqadServer::StatsJson() const {
  const SynopsisCache& cache = engine_.synopsis_cache();
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("uptime_seconds", JsonValue::MakeNumber(uptime_.ElapsedSeconds()));
  obj.Set("draining", JsonValue::MakeBool(draining_.load()));
  obj.Set("workers",
          JsonValue::MakeNumber(static_cast<double>(options_.workers)));
  // The instantaneous server-state fields read the same process-wide
  // gauges /metrics exports, so the two views can never disagree.
  obj.Set("connections_open",
          JsonValue::MakeNumber(static_cast<double>(
              connections_gauge_->value())));
  obj.Set("connections_total",
          JsonValue::MakeNumber(
              static_cast<double>(connections_total_.load())));
  obj.Set("requests_total",
          JsonValue::MakeNumber(static_cast<double>(requests_total_.load())));
  obj.Set("admission_inflight",
          JsonValue::MakeNumber(static_cast<double>(
              obs::Registry::Instance().GaugeValue(
                  "serve.admission_inflight"))));
  obj.Set("admission_queued",
          JsonValue::MakeNumber(static_cast<double>(
              obs::Registry::Instance().GaugeValue(
                  "serve.admission_queued"))));
  obj.Set("admission_shed",
          JsonValue::MakeNumber(
              static_cast<double>(admission_.shed_total())));
  obj.Set("trace_dropped_spans",
          JsonValue::MakeNumber(static_cast<double>(
              obs::TraceBuffer::Instance().dropped())));
  {
    JsonValue access = JsonValue::MakeObject();
    const AccessLog* log = options_.access_log;
    access.Set("enabled", JsonValue::MakeBool(log != nullptr));
    access.Set("sample_rate",
               JsonValue::MakeNumber(log != nullptr ? log->sample_rate()
                                                    : 0.0));
    access.Set("lines",
               JsonValue::MakeNumber(
                   log != nullptr ? static_cast<double>(log->lines()) : 0.0));
    access.Set("sampled_out",
               JsonValue::MakeNumber(
                   log != nullptr ? static_cast<double>(log->sampled_out())
                                  : 0.0));
    obj.Set("access_log", std::move(access));
  }
  obj.Set("cache_entries",
          JsonValue::MakeNumber(static_cast<double>(cache.entries())));
  obj.Set("cache_hits",
          JsonValue::MakeNumber(static_cast<double>(cache.hits())));
  obj.Set("cache_misses",
          JsonValue::MakeNumber(static_cast<double>(cache.misses())));
  obj.Set("cache_evictions",
          JsonValue::MakeNumber(static_cast<double>(cache.evictions())));
  return obj.Serialize();
}

}  // namespace cqa::serve
