#include "serve/access_log.h"

#include <chrono>

#include "serve/json.h"

namespace cqa::serve {

AccessLog::AccessLog(const AccessLogOptions& options)
    : options_(options), rng_(options.seed) {}

AccessLog::~AccessLog() {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

bool AccessLog::Open(std::string* error) {
  MutexLock lock(mu_);
  file_ = std::fopen(options_.path.c_str(), "a");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open access log " + options_.path + " for appending";
    }
    return false;
  }
  return true;
}

std::string AccessLog::FormatLine(const AccessLogEntry& entry,
                                  uint64_t unix_ms, bool slow) {
  std::string out = "{\"unix_ms\":" + std::to_string(unix_ms);
  out += ",\"op\":\"" + JsonEscape(entry.op) + "\"";
  if (!entry.trace_id.empty()) {
    out += ",\"trace_id\":\"" + JsonEscape(entry.trace_id) + "\"";
  }
  if (!entry.request_id.empty()) {
    out += ",\"id\":\"" + JsonEscape(entry.request_id) + "\"";
  }
  out += ",\"code\":" + std::to_string(static_cast<int>(entry.code));
  out += ",\"code_name\":\"" + std::string(ErrorCodeName(entry.code)) + "\"";
  if (entry.op == "query") {
    out += ",\"scheme\":\"" + JsonEscape(entry.scheme) + "\"";
    if (entry.code == ErrorCode::kOk) {
      out += ",\"cache\":\"" + std::string(entry.cache_hit ? "hit" : "miss") +
             "\"";
      out += ",\"timed_out\":" +
             std::string(entry.timed_out ? "true" : "false");
      out += ",\"total_samples\":" + std::to_string(entry.total_samples);
    }
  }
  const PhaseTiming& t = entry.timing;
  out += ",\"queue_wait_micros\":" + std::to_string(t.queue_wait_micros);
  out += ",\"cache_micros\":" + std::to_string(t.cache_micros);
  out += ",\"preprocess_micros\":" + std::to_string(t.preprocess_micros);
  out += ",\"sample_micros\":" + std::to_string(t.sample_micros);
  out += ",\"encode_micros\":" + std::to_string(t.encode_micros);
  out += ",\"total_micros\":" + std::to_string(t.total_micros);
  if (slow) out += ",\"slow\":true";
  out += "}\n";
  return out;
}

void AccessLog::Append(const AccessLogEntry& entry) {
  const uint64_t unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  const bool slow = entry.timing.total_micros >= options_.slow_micros;
  const bool must_log = slow || entry.code != ErrorCode::kOk;
  if (!must_log && options_.sample_rate < 1.0 &&
      !rng_.Bernoulli(options_.sample_rate)) {
    ++sampled_out_;
    return;
  }
  const std::string line = FormatLine(entry, unix_ms, slow);
  std::fwrite(line.data(), 1, line.size(), file_);
  // Flush per line: the log is a debugging artifact read while the
  // server runs (and after a crash); buffered tails would defeat both.
  std::fflush(file_);
  ++lines_;
}

uint64_t AccessLog::lines() const {
  MutexLock lock(mu_);
  return lines_;
}

uint64_t AccessLog::sampled_out() const {
  MutexLock lock(mu_);
  return sampled_out_;
}

}  // namespace cqa::serve
