// serve/reactor — the single owner of epoll/poll syscalls in this tree
// (lint check 10, mirroring the lock-wrapper rule of check 9). An
// EventLoop is one edge-triggered epoll instance plus an eventfd-woken
// mailbox of closures; cqad runs `workers` of them, each driven by one
// thread that server.cc constructs (thread construction stays confined
// to its allow-list). Handlers implement EpollHandler and are invoked
// on the loop thread only, so per-connection state needs no locking —
// cross-thread work enters a loop exclusively through Post().
//
// Deletion safety: one epoll_wait batch can carry events for a handler
// an earlier event in the same batch destroyed. Destroy() removes the
// fd, shields the rest of the batch via a dead-set, and deletes the
// handler after the batch finishes.
#ifndef CQABENCH_SERVE_REACTOR_H_
#define CQABENCH_SERVE_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"

namespace cqa::serve {

/// Blocks until fd is readable (POLLIN) or timeout_ms elapses. Returns
/// poll()'s contract: > 0 readable, 0 timed out, < 0 error. Exists so
/// modules outside the reactor (the metrics sidecar's accept/read
/// ticks) never touch poll() directly.
int PollReadable(int fd, int timeout_ms);

/// Per-fd event callback, invoked on the owning loop's thread.
class EpollHandler {
 public:
  virtual ~EpollHandler() = default;

  /// events is the raw epoll bitmask (EPOLLIN | EPOLLOUT | ...).
  virtual void OnEvents(uint32_t events) = 0;
};

/// One edge-triggered epoll event loop. Construct, register fds, then
/// dedicate a thread to Run(); every other method is safe to call from
/// any thread unless marked loop-thread-only.
class EventLoop {
 public:
  /// name labels the loop in logs/diagnostics, e.g. "loop-0".
  explicit EventLoop(std::string name);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False if epoll/eventfd creation failed at construction.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }
  const std::string& name() const { return name_; }

  /// Runs the loop until Stop(); call from the loop's dedicated thread.
  void Run();

  /// Asks Run() to return after draining the mailbox. Any thread.
  void Stop();

  /// Queues fn to run on the loop thread and wakes the loop. Any
  /// thread. Closures queued after Stop() still run before Run()
  /// returns; closures posted after Run() returned run in ~EventLoop.
  void Post(std::function<void()> fn) CQA_EXCLUDES(mailbox_mu_);

  /// Registers fd with the given epoll event mask (caller includes
  /// EPOLLET for edge-triggered handlers); events route to *handler.
  /// Loop thread or pre-Run setup. Returns false on epoll_ctl failure.
  bool Add(int fd, uint32_t events, EpollHandler* handler);

  /// Rearms fd with a new mask. Loop thread only.
  bool Mod(int fd, uint32_t events, EpollHandler* handler);

  /// Unregisters fd, shields handler for the rest of the current
  /// dispatch batch, and deletes it once the batch completes. The
  /// caller must not touch *handler afterwards; fd is NOT closed (the
  /// handler's destructor owns that). Loop thread only.
  void Destroy(int fd, EpollHandler* handler);

  /// True when called on the thread currently inside Run().
  bool InLoopThread() const;

 private:
  void DrainWake();
  void RunMailbox() CQA_EXCLUDES(mailbox_mu_);
  void FlushGraveyard();

  const std::string name_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; readable when the mailbox has work.
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> loop_thread_id_{0};  // std::hash of thread::id.

  cqa::Mutex mailbox_mu_;
  std::vector<std::function<void()>> mailbox_ CQA_GUARDED_BY(mailbox_mu_);

  // Loop-thread-only dispatch-batch state (no lock by construction).
  bool dispatching_ = false;
  std::unordered_set<EpollHandler*> dead_;
  std::vector<EpollHandler*> graveyard_;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_REACTOR_H_
