#include "serve/dispatch.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace cqa::serve {

namespace {

// executors + max_queue with saturation (max_queue may be huge).
size_t SaturatingAdd(size_t a, size_t b) {
  return a > std::numeric_limits<size_t>::max() - b
             ? std::numeric_limits<size_t>::max()
             : a + b;
}

}  // namespace

QueryDispatcher::QueryDispatcher(size_t executors, size_t max_queue,
                                 size_t workers, size_t wait_cap,
                                 AdmissionController* admission)
    : executors_(executors),
      max_queue_(max_queue),
      window_(std::max(workers, SaturatingAdd(executors, max_queue))),
      wait_cap_(wait_cap),
      admission_(admission) {}

void QueryDispatcher::Submit(QueryJob job) {
  std::vector<QueryJob> shed;
  size_t committed = 0;
  {
    cqa::MutexLock lock(mu_);
    if (draining_) {
      lock.Unlock();
      job.reject(ErrorCode::kDraining);
      return;
    }
    if (wait_q_.size() >= wait_cap_) {
      lock.Unlock();
      admission_->NoteShed();
      job.reject(ErrorCode::kOverloaded);
      return;
    }
    wait_q_.push_back(std::move(job));
    PumpLocked(&shed, &committed);
  }
  FinishPump(&shed, committed);
}

void QueryDispatcher::PumpLocked(std::vector<QueryJob>* shed,
                                 size_t* committed) {
  while (!wait_q_.empty() && busy_ + queue_.size() < window_) {
    QueryJob job = std::move(wait_q_.front());
    wait_q_.pop_front();
    // The old Enter() shed condition: every inflight slot taken AND the
    // admission queue at capacity. Committed-but-unpicked jobs count as
    // inflight — the blocking server's Enter() claimed its slot
    // synchronously, before any executor ran.
    if (busy_ + queue_.size() >= SaturatingAdd(executors_, max_queue_)) {
      shed->push_back(std::move(job));
      continue;
    }
    queue_.push_back(std::move(job));
    ++*committed;
  }
}

void QueryDispatcher::FinishPump(std::vector<QueryJob>* shed,
                                 size_t committed) {
  for (size_t i = 0; i < committed; ++i) {
    admission_->NoteQueued(+1);
    work_cv_.NotifyOne();
  }
  for (QueryJob& job : *shed) {
    admission_->NoteShed();
    job.reject(ErrorCode::kOverloaded);
  }
}

void QueryDispatcher::RunExecutor() {
  for (;;) {
    QueryJob job;
    {
      cqa::MutexLock lock(mu_);
      while (queue_.empty() && !draining_) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // Draining and nothing left.
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    admission_->NoteQueued(-1);
    RunOne(&job);
    std::vector<QueryJob> shed;
    size_t committed = 0;
    {
      cqa::MutexLock lock(mu_);
      --busy_;
      // A finished job frees an active-window slot: promote waiters.
      PumpLocked(&shed, &committed);
    }
    FinishPump(&shed, committed);
  }
}

void QueryDispatcher::RunOne(QueryJob* job) {
  if (job->deadline.Expired()) {
    admission_->NoteExpired();
    job->reject(ErrorCode::kDeadlineExceeded);
    return;
  }
  // With at most `max_inflight` executors, Enter always admits
  // instantly (the FIFO above is the real queue); it is kept so the
  // inflight gauge and the EWMA behind retry_after_s stay exact.
  const Admission admission = admission_->Enter(job->deadline);
  if (admission == Admission::kShutdown) {
    job->reject(ErrorCode::kDraining);
    return;
  }
  if (admission != Admission::kAdmitted) {
    job->reject(admission == Admission::kExpired
                    ? ErrorCode::kDeadlineExceeded
                    : ErrorCode::kOverloaded);
    return;
  }
  Stopwatch service;
  job->run();
  admission_->Leave(service.ElapsedSeconds());
}

void QueryDispatcher::Drain() {
  std::vector<QueryJob> flushed;
  size_t was_committed = 0;
  {
    cqa::MutexLock lock(mu_);
    if (draining_ && queue_.empty() && wait_q_.empty()) {
      work_cv_.NotifyAll();
      return;
    }
    draining_ = true;
    was_committed = queue_.size();
    while (!queue_.empty()) {
      flushed.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    while (!wait_q_.empty()) {
      flushed.push_back(std::move(wait_q_.front()));
      wait_q_.pop_front();
    }
  }
  for (size_t i = 0; i < flushed.size(); ++i) {
    if (i < was_committed) admission_->NoteQueued(-1);
    flushed[i].reject(ErrorCode::kDraining);
  }
  work_cv_.NotifyAll();
}

size_t QueryDispatcher::queue_depth() const {
  cqa::MutexLock lock(mu_);
  return wait_q_.size() + queue_.size();
}

}  // namespace cqa::serve
