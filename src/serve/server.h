// serve/server — the TCP transport of cqad. A single acceptor thread
// owns the listening socket; accepted connections go through a bounded
// hand-off queue to connection workers that run as one long-lived job on
// the process-wide ThreadPool (no per-connection thread spawning).
// Admission control bounds concurrent query executions, and a SIGTERM /
// RequestDrain() triggers the graceful drain documented in DESIGN.md §9:
// stop accepting, answer queued work with kDraining, finish in-flight
// requests, force-close stragglers after a timeout.
#ifndef CQABENCH_SERVE_SERVER_H_
#define CQABENCH_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>

#include "common/thread_annotations.h"
#include "serve/access_log.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace cqa::serve {

struct ServerOptions {
  /// Listen address. Loopback by default: cqad has no auth layer, so it
  /// must not be exposed beyond the host without an external gate.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Connection workers — also the ceiling on concurrently *serviced*
  /// connections. Runs as one job on ThreadPool::Shared().
  size_t workers = 4;
  /// Accepted connections allowed to wait for a free worker before new
  /// arrivals are answered with kOverloaded and closed.
  size_t max_pending_connections = 256;
  /// Admission bound on concurrent query executions. 0 = `workers`.
  size_t max_inflight = 0;
  /// Admission queue length; beyond it requests shed with kOverloaded.
  size_t max_queue = 64;
  /// Cap on one request frame's payload bytes.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Grace period for in-flight requests during drain before their
  /// connections are force-closed.
  double drain_timeout_s = 10.0;
  /// When non-null, every handled request appends one JSONL line there
  /// (the log behind cqad --obs_access_log=). Not owned; must outlive
  /// the server.
  AccessLog* access_log = nullptr;
  EngineOptions engine;
};

/// The cqad server. Lifecycle: Start() → (clients connect) →
/// RequestDrain() or SIGTERM → Wait() returns once drained.
///
/// Thread model: one acceptor thread (poll + accept, 200ms tick) and one
/// dispatcher thread that parks `workers` connection loops on
/// ThreadPool::Shared(). Every blocking socket wait is a poll with a
/// short tick so drain flags are observed promptly.
class CqadServer {
 public:
  explicit CqadServer(const ServerOptions& options);
  ~CqadServer();

  CqadServer(const CqadServer&) = delete;
  CqadServer& operator=(const CqadServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. False with
  /// *error on socket failure.
  bool Start(std::string* error);

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Initiates graceful drain: stop accepting, shed queued work with
  /// kDraining, let in-flight requests finish. Idempotent, non-blocking.
  /// Also triggered by SIGTERM/SIGINT after InstallSignalHandlers().
  void RequestDrain();

  /// Blocks until the server has fully drained and all threads joined.
  void Wait();

  bool draining() const { return draining_.load(); }

  CqaEngine& engine() { return engine_; }
  AdmissionController& admission() { return admission_; }

  /// Registers a process-wide SIGTERM/SIGINT handler that flips an
  /// async-signal-safe flag; every running CqadServer's acceptor notices
  /// it within one poll tick and begins draining.
  static void InstallSignalHandlers();

  /// The server-state JSON object served by op == "stats" (connections,
  /// admission, cache, uptime); schema in docs/protocol.md.
  std::string StatsJson() const;

 private:
  void AcceptorLoop() CQA_EXCLUDES(queue_mu_, conns_mu_);
  void WorkerLoop() CQA_EXCLUDES(queue_mu_);
  /// Serves one connection until EOF, protocol error, or drain.
  void ServeConnection(int fd) CQA_EXCLUDES(conns_mu_);
  /// Decodes and answers one frame. False → close the connection.
  bool HandleFrame(int fd, const std::string& payload);
  /// Runs a query op through admission; `root_span` parents the
  /// queue-wait and engine phase spans.
  Response ExecuteWithAdmission(const Request& request, uint64_t root_span);
  /// Best-effort single-frame error reply for connections shed before a
  /// worker ever serviced them.
  void SendErrorAndClose(int fd, ErrorCode code, const std::string& message);
  /// After drain_timeout_s, force-close connections still open so workers
  /// blocked on socket I/O fail fast.
  void ForceCloseStragglers() CQA_EXCLUDES(conns_mu_);

  const ServerOptions options_;
  CqaEngine engine_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;

  std::atomic<bool> draining_{false};
  std::thread acceptor_;
  std::thread dispatcher_;

  mutable Mutex queue_mu_;
  CondVar queue_cv_;  // Signalled on hand-off push and on drain.
  std::deque<int> conn_queue_ CQA_GUARDED_BY(queue_mu_);

  mutable Mutex conns_mu_;
  std::set<int> open_conns_ CQA_GUARDED_BY(conns_mu_);
  // Mirrors open_conns_.size() as the serve.connections_open gauge
  // (updated unconditionally; serving state is not NO_OBS-gated).
  obs::Gauge* const connections_gauge_;

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> requests_total_{0};
  Stopwatch uptime_;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_SERVER_H_
