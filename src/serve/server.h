// serve/server — the TCP transport of cqad, built on the epoll reactor
// in serve/reactor.h. `workers` edge-triggered event loops own all
// connection I/O (loop 0 additionally owns the listening socket and
// hands accepted fds out round-robin); each connection is a small state
// machine with growable read/write buffers that supports pipelining —
// many outstanding requests per connection, responses matched by the
// client-assigned `id` and possibly delivered out of order. Query
// execution never runs on an event loop: parsed requests go through the
// bounded QueryDispatcher to executor loops parked on the process-wide
// ThreadPool, bracketed by admission control. A SIGTERM/RequestDrain()
// triggers the graceful drain documented in DESIGN.md §9: stop
// accepting, flush queued work with kDraining, finish in-flight
// requests, force-close stragglers after a timeout.
#ifndef CQABENCH_SERVE_SERVER_H_
#define CQABENCH_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "serve/access_log.h"
#include "serve/admission.h"
#include "serve/dispatch.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/reactor.h"

namespace cqa::serve {

struct ServerOptions {
  /// Listen address. Loopback by default: cqad has no auth layer, so it
  /// must not be exposed beyond the host without an external gate.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Event-loop threads. Each loop multiplexes an unbounded share of
  /// the open connections; loops never block on query execution.
  size_t workers = 4;
  /// Cap on concurrently open connections; accepts beyond it are
  /// answered with kOverloaded and closed immediately.
  size_t max_pending_connections = 256;
  /// Executor loops bounding concurrent query executions. 0 = `workers`.
  size_t max_inflight = 0;
  /// Dispatcher queue length; beyond it requests shed with kOverloaded.
  size_t max_queue = 64;
  /// Cap on one request frame's payload bytes.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Grace period for in-flight requests during drain before their
  /// connections are force-closed.
  double drain_timeout_s = 10.0;
  /// When non-null, every handled request appends one JSONL line there
  /// (the log behind cqad --obs_access_log=). Not owned; must outlive
  /// the server.
  AccessLog* access_log = nullptr;
  EngineOptions engine;
};

/// The cqad server. Lifecycle: Start() → (clients connect) →
/// RequestDrain() or SIGTERM → Wait() returns once drained.
///
/// Thread model: `workers` event-loop threads (epoll, edge-triggered),
/// `max_inflight` executor loops parked on ThreadPool::Shared() via one
/// host thread, a signal-watcher thread, and a drainer thread that runs
/// the three-step shutdown. Connection state is confined to its owning
/// loop thread; cross-thread work enters a loop only via Post().
class CqadServer {
 public:
  explicit CqadServer(const ServerOptions& options);
  ~CqadServer();

  CqadServer(const CqadServer&) = delete;
  CqadServer& operator=(const CqadServer&) = delete;

  /// Binds, listens, and starts the reactor + executor threads. False
  /// with *error on socket failure.
  bool Start(std::string* error);

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Initiates graceful drain: stop accepting, shed queued work with
  /// kDraining, let in-flight requests finish. Idempotent, non-blocking.
  /// Also triggered by SIGTERM/SIGINT after InstallSignalHandlers().
  void RequestDrain();

  /// Blocks until the server has fully drained and all threads joined.
  void Wait();

  bool draining() const { return draining_.load(); }

  CqaEngine& engine() { return engine_; }
  AdmissionController& admission() { return admission_; }

  /// Registers a process-wide SIGTERM/SIGINT handler that flips an
  /// async-signal-safe flag; the signal watcher notices it within a few
  /// milliseconds and begins draining.
  static void InstallSignalHandlers();

  /// The server-state JSON object served by op == "stats" (connections,
  /// admission, cache, uptime); schema in docs/protocol.md.
  std::string StatsJson() const;

 private:
  class Conn;      // Per-connection state machine (loop-thread-only).
  class Listener;  // Accept handler on loop 0.
  friend class Conn;
  friend class Listener;

  /// Accepts until EAGAIN; runs on loop 0.
  void AcceptReady();
  /// Registers an accepted fd with its owning loop (posted there).
  void AdoptConnection(size_t loop_index, int fd);
  /// Handles one decoded frame payload from a connection. Runs on the
  /// connection's loop thread. False → close the connection.
  bool HandleFrame(Conn* conn, const std::string& payload);
  /// Builds the query job (spans, deadline, completion) and submits it.
  /// `watch` started when the frame was decoded; `codec` is echoed in
  /// the response.
  void SubmitQuery(Conn* conn, Request request, WireCodec codec,
                   const Stopwatch& watch);
  /// Post-execution accounting shared by every op: phase metrics,
  /// access log, response encode. Returns the encoded frame.
  std::string FinishRequest(const Request& request, bool parsed,
                            Response* response, const Stopwatch& watch,
                            WireCodec codec);
  /// Posts an encoded response frame back to the owning loop's conn;
  /// dropped silently if the connection closed meanwhile.
  void DeliverFrame(size_t loop_index, uint64_t conn_id, std::string frame);
  /// Runs the three-step drain; body of the drainer thread.
  void DrainSequence();
  /// After drain_timeout_s, force-close connections still open.
  void ForceCloseStragglers();

  const ServerOptions options_;
  const size_t executors_;  // Effective max_inflight.
  CqaEngine engine_;
  AdmissionController admission_;
  QueryDispatcher dispatcher_;

  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> loop_threads_;
  std::thread executor_host_;  // Parks executor loops on the ThreadPool.
  std::thread signal_watcher_;
  std::thread drainer_;
  std::unique_ptr<Listener> listener_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};  // Flips when drain completes.
  cqa::Mutex drain_mu_;
  cqa::CondVar drain_cv_;  // Wakes the drainer thread.
  bool drain_requested_ CQA_GUARDED_BY(drain_mu_) = false;

  // Live connections, one registry per loop. Each registry is confined
  // to its loop's thread (created, read, and erased there only), so no
  // lock guards it — the confinement is the synchronization.
  std::vector<std::unordered_map<uint64_t, Conn*>> conns_;

  // Round-robin accept distribution (only touched on loop 0).
  size_t next_loop_ = 0;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<int64_t> open_conns_{0};

  // Mirrors open_conns_ as the serve.connections_open gauge (updated
  // unconditionally; serving state is not NO_OBS-gated).
  obs::Gauge* const connections_gauge_;

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> requests_total_{0};
  Stopwatch uptime_;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_SERVER_H_
