// serve/engine — the socket-free core of cqad: resolves a decoded query
// Request against cached databases and cached synopses and runs the
// approximation scheme. Splitting this from the server keeps the whole
// request path (validation, cache keying, deadline mapping, response
// assembly) unit-testable without a TCP connection, and the server a
// thin transport.
#ifndef CQABENCH_SERVE_ENGINE_H_
#define CQABENCH_SERVE_ENGINE_H_

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "cqa/apx_cqa.h"
#include "obs/report.h"
#include "query/evaluator.h"
#include "serve/protocol.h"
#include "serve/synopsis_cache.h"
#include "storage/database.h"

namespace cqa::serve {

struct EngineOptions {
  /// Synopsis-cache capacity in (database, Σ, Q) entries.
  size_t cache_entries = 64;
  /// Loaded-database cache capacity (a database is the expensive part:
  /// .tbl parsing plus evaluation indexes).
  size_t db_cache_entries = 4;
  /// Deadline applied when a request carries none. <= 0 means no limit.
  double default_deadline_s = 30.0;
  /// When non-null, every query run appends its RunRecord there (the
  /// JSONL file behind cqad --obs_report=).
  obs::RunReporter* reporter = nullptr;
};

/// One loaded .tbl directory with its schema and evaluation indexes.
/// `preprocess_mu` serializes synopsis builds on this database: the
/// evaluator's DatabaseIndexCache is not thread-safe, so concurrent
/// *misses* on one database queue up while hits proceed lock-free.
struct LoadedDatabase {
  Schema schema;
  Database db;
  // mutable so a const LoadedDatabase can still serialize builds: the
  // lock protects scratch (the evaluator's indexes), not logical state.
  mutable Mutex preprocess_mu;
  DatabaseIndexCache index_cache CQA_GUARDED_BY(preprocess_mu);

  // The schema must be complete before the Database is constructed (the
  // Database sizes its relation store from it), hence by-value injection
  // rather than assign-after-construct.
  explicit LoadedDatabase(Schema s)
      : schema(std::move(s)), db(&schema), index_cache(&db) {}
};

/// Executes query requests. Thread-safe: any number of server workers
/// may call ExecuteQuery concurrently.
class CqaEngine {
 public:
  explicit CqaEngine(const EngineOptions& options);

  /// Runs one op == "query" request to completion under `deadline` and
  /// returns the full response (ok or error). The caller creates the
  /// deadline (normally via MakeDeadline) when the request is *received*,
  /// so queue wait and preprocessing count against the budget. Never
  /// throws.
  ///
  /// `parent_span` hangs the engine's phase spans (serve.cache,
  /// serve.preprocess, serve.sample, serve.encode) off the server's
  /// per-request root span; 0 records them as roots. Ok responses carry
  /// the cache/preprocess/sample/encode slots of response.timing filled
  /// (the server adds queue_wait and total).
  Response ExecuteQuery(const Request& request, const Deadline& deadline,
                        uint64_t parent_span = 0);

  SynopsisCache& synopsis_cache() { return synopsis_cache_; }
  const SynopsisCache& synopsis_cache() const { return synopsis_cache_; }

  /// Maps the request's deadline onto the engine's default: the
  /// per-request value wins when positive, otherwise the configured
  /// default, otherwise no limit.
  Deadline MakeDeadline(const Request& request) const;

 private:
  /// Returns the cached database for (schema, canonical path), loading it
  /// on a miss. nullptr with *code/*error set on failure.
  std::shared_ptr<LoadedDatabase> GetDatabase(const std::string& schema,
                                              const std::string& data_path,
                                              ErrorCode* code,
                                              std::string* error)
      CQA_EXCLUDES(db_mu_);

  const EngineOptions options_;
  SynopsisCache synopsis_cache_;

  mutable Mutex db_mu_;
  // Tiny LRU of loaded databases, most recent at the front.
  std::list<std::pair<std::string, std::shared_ptr<LoadedDatabase>>>
      db_cache_ CQA_GUARDED_BY(db_mu_);
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_ENGINE_H_
