// serve/json — a small recursive-descent JSON reader/writer for the wire
// protocol. The obs layer only *writes* JSON (reports, bench files); the
// serving layer also has to *parse* untrusted request payloads, so this
// is a strict parser: it rejects trailing garbage, unterminated strings,
// bad escapes, and nesting deeper than a fixed bound (stack safety
// against hostile frames). Numbers are stored as doubles — every field
// the protocol carries (seeds included) fits in the 53-bit mantissa.
#ifndef CQABENCH_SERVE_JSON_H_
#define CQABENCH_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cqa::serve {

/// One JSON value. Objects keep their members in insertion order (the
/// protocol never relies on ordering, but deterministic serialization
/// keeps tests and golden files stable).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON value spanning the whole input. Returns
  /// false (and sets *error with an offset) on any syntax violation.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with fallbacks, for flat request decoding.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Compact serialization (no whitespace), suitable for framing.
  std::string Serialize() const;

  // Construction helpers for response building.
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  void Append(JsonValue v);                      // Arrays.
  void Set(const std::string& key, JsonValue v); // Objects (no dedup).

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in a JSON document (quotes not
/// included). Control characters become \u00XX.
std::string JsonEscape(const std::string& s);

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_JSON_H_
