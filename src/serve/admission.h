// serve/admission — bounded admission control for cqad request workers.
// A CQA query can burn seconds of CPU; without a bound, a burst of
// requests would queue unboundedly and every client would time out. The
// controller admits up to `max_inflight` concurrent executions, parks up
// to `max_queue` more in a FIFO wait queue, and sheds everything beyond
// that with a 503-style rejection carrying a retry_after hint derived
// from observed service times.
#ifndef CQABENCH_SERVE_ADMISSION_H_
#define CQABENCH_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <set>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cqa::serve {

struct AdmissionOptions {
  /// Concurrent request executions. 0 means "one per worker" (the server
  /// substitutes its worker count).
  size_t max_inflight = 0;
  /// Requests allowed to wait for a slot before shedding starts.
  size_t max_queue = 64;
};

/// Decision returned by Enter().
enum class Admission {
  kAdmitted,   // Run now; call Leave() when done.
  kShed,       // Queue full: reject with kOverloaded + RetryAfterSeconds.
  kExpired,    // The request's deadline passed while it waited in queue.
  kShutdown,   // The controller was shut down while the request waited.
};

/// Thread-safe admission gate. All waits are FIFO-fair in practice
/// (condition-variable wakeups re-check a ticket order).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Tries to claim an execution slot, waiting in the bounded queue when
  /// all slots are busy. Returns kShed immediately when the queue is
  /// full, kExpired when `deadline` fires first, kShutdown when
  /// Shutdown() is called while waiting.
  Admission Enter(const Deadline& deadline) CQA_EXCLUDES(mu_);

  /// Releases a slot claimed by a successful Enter(). `service_seconds`
  /// feeds the EWMA behind RetryAfterSeconds.
  void Leave(double service_seconds) CQA_EXCLUDES(mu_);

  /// Hint for shed clients: the expected time until a slot frees up,
  /// estimated as (queued + inflight) / max_inflight times the EWMA
  /// service time, clamped to [0.05, 60] seconds.
  double RetryAfterSeconds() const CQA_EXCLUDES(mu_);

  /// Wakes every queued waiter with kShutdown and makes all future
  /// Enter() calls return kShutdown. Idempotent.
  void Shutdown() CQA_EXCLUDES(mu_);

  size_t inflight() const CQA_EXCLUDES(mu_);
  size_t queued() const CQA_EXCLUDES(mu_);
  uint64_t shed_total() const CQA_EXCLUDES(mu_);

  // --- External-queue bookkeeping (reactor mode) -----------------------
  // The reactor parks waiting requests in the QueryDispatcher's queue
  // instead of blocking threads inside Enter(); these hooks keep the
  // queued gauge, shed counter, and RetryAfterSeconds' backlog estimate
  // accurate while the dispatcher owns the actual FIFO. Enter()/Leave()
  // still bracket every execution, so inflight and the EWMA are exact.

  /// Adjusts the externally-queued request count by delta (+1 enqueue,
  /// -1 dequeue). Reflected in queued() and the queued gauge.
  void NoteQueued(int64_t delta) CQA_EXCLUDES(mu_);

  /// Records one shed decision made by an external queue (full FIFO).
  void NoteShed() CQA_EXCLUDES(mu_);

  /// Records one externally-queued request whose deadline expired
  /// before execution started.
  void NoteExpired() CQA_EXCLUDES(mu_);

 private:
  /// Removes an abandoned waiter's ticket from the FIFO order so later
  /// tickets are not stalled behind it.
  void AdvancePast(uint64_t ticket) CQA_REQUIRES(mu_);

  const size_t max_inflight_;
  const size_t max_queue_;
  // Process-wide gauges mirroring inflight_/queued_ for /metrics and
  // `stats`. Updated unconditionally (not via the NO_OBS-gated macros):
  // admission state must stay accurate in every build mode.
  obs::Gauge* const inflight_gauge_;
  obs::Gauge* const queued_gauge_;
  mutable Mutex mu_;
  CondVar slot_cv_;  // Signalled when a slot frees or state changes.
  size_t inflight_ CQA_GUARDED_BY(mu_) = 0;
  size_t queued_ CQA_GUARDED_BY(mu_) = 0;
  // Ticketing keeps the queue FIFO: waiters are served in Enter order.
  uint64_t next_ticket_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t serving_ticket_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t shed_total_ CQA_GUARDED_BY(mu_) = 0;
  // Tickets whose waiters left the queue (deadline/shutdown) before
  // being served; skipped when the serving counter reaches them.
  std::set<uint64_t> abandoned_ CQA_GUARDED_BY(mu_);
  // Requests waiting in an external FIFO (see NoteQueued); added to
  // queued_ for the gauge, queued() and the retry-after backlog.
  size_t external_queued_ CQA_GUARDED_BY(mu_) = 0;
  bool shutdown_ CQA_GUARDED_BY(mu_) = false;
  double ewma_service_seconds_ CQA_GUARDED_BY(mu_) = 0.1;  // Optimistic prior.
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_ADMISSION_H_
