#include "serve/reactor.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <thread>
#include <utility>

namespace cqa::serve {

namespace {

uint64_t CurrentThreadHash() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

}  // namespace

int PollReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_ms);
}

EventLoop::EventLoop(std::string name) : name_(std::move(name)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    struct epoll_event ev;
    ev.events = EPOLLIN;  // Level-triggered: re-fires until drained.
    ev.data.ptr = nullptr;  // nullptr marks the wake fd.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  RunMailbox();  // Late Post()ed cleanups still run.
  FlushGraveyard();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Run() {
  loop_thread_id_.store(CurrentThreadHash(), std::memory_order_relaxed);
  constexpr int kMaxEvents = 128;
  struct epoll_event events[kMaxEvents];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable epoll failure; loop dies quietly.
    }
    // One batch: shield handlers Destroy()ed by earlier events in it.
    dispatching_ = true;
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      EpollHandler* handler = static_cast<EpollHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        woken = true;
        continue;
      }
      if (dead_.find(handler) != dead_.end()) continue;
      handler->OnEvents(events[i].events);
    }
    dispatching_ = false;
    dead_.clear();
    FlushGraveyard();
    if (woken) DrainWake();
    RunMailbox();
    if (stop_.load(std::memory_order_acquire)) {
      RunMailbox();  // Stop raced with a final Post; drain once more.
      break;
    }
  }
  loop_thread_id_.store(0, std::memory_order_relaxed);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    cqa::MutexLock lock(mailbox_mu_);
    mailbox_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::Add(int fd, uint32_t events, EpollHandler* handler) {
  struct epoll_event ev;
  ev.events = events;
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::Mod(int fd, uint32_t events, EpollHandler* handler) {
  struct epoll_event ev;
  ev.events = events;
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Destroy(int fd, EpollHandler* handler) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Deletion is ALWAYS deferred (to the end of the dispatch batch or
  // the current mailbox run): a handler may Destroy itself from inside
  // one of its own member functions, and callers up the stack may still
  // read its state before unwinding.
  dead_.insert(handler);
  graveyard_.push_back(handler);
}

bool EventLoop::InLoopThread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) ==
         CurrentThreadHash();
}

void EventLoop::DrainWake() {
  uint64_t counter = 0;
  while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
  }
}

void EventLoop::RunMailbox() {
  std::vector<std::function<void()>> batch;
  {
    cqa::MutexLock lock(mailbox_mu_);
    batch.swap(mailbox_);
  }
  for (std::function<void()>& fn : batch) fn();
  if (!dispatching_) FlushGraveyard();
}

void EventLoop::FlushGraveyard() {
  for (EpollHandler* h : graveyard_) delete h;
  graveyard_.clear();
  dead_.clear();
}

}  // namespace cqa::serve
