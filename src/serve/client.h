// serve/client — the TCP client behind cqa_client, loadgen parity
// checks, and the e2e tests. One CqaClient owns one connection and is
// single-threaded; concurrency is achieved by opening one client per
// thread, or — against the reactor server — by pipelining many
// requests on one connection. Two modes share the socket:
//   blocking   — Call(): send one request, wait for its response;
//   pipelined  — Send() many requests (each with a unique id), then
//                Await() each id, tntcxx-Connection-style: Await drives
//                the shared read loop and stashes other ids' responses
//                until their own Await asks for them. Responses may
//                arrive in any order; the id is the join key.
// set_codec() switches the payload codec (JSON v1 / binary v2) for
// everything sent afterwards.
#ifndef CQABENCH_SERVE_CLIENT_H_
#define CQABENCH_SERVE_CLIENT_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "serve/protocol.h"

namespace cqa::serve {

class CqaClient {
 public:
  CqaClient() = default;
  ~CqaClient();

  CqaClient(const CqaClient&) = delete;
  CqaClient& operator=(const CqaClient&) = delete;

  /// Opens a TCP connection. False with *error on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }

  /// Payload codec used by Call() and Send(). Default JSON (v1).
  void set_codec(WireCodec codec) { codec_ = codec; }
  WireCodec codec() const { return codec_; }

  /// Sends `request` and blocks for the matching response. False with
  /// *error on transport failure (send/recv/frame decode); a server-side
  /// error is a *successful* call with response->ok() == false. Not
  /// mixable with in-flight pipelined requests.
  bool Call(const Request& request, Response* response, std::string* error);

  /// Pipelined mode: sends `request` without waiting. request.id must
  /// be non-empty and unique among this connection's in-flight ids
  /// (the server echoes it so responses can be matched out of order).
  bool Send(const Request& request, std::string* error);

  /// Blocks until the response for `id` arrives (draining the socket
  /// and stashing other in-flight ids' responses on the way). False
  /// with *error on transport failure or if `id` is not in flight.
  bool Await(const std::string& id, Response* response, std::string* error);

  /// Requests sent via Send() whose responses have not been Await()ed.
  size_t pending() const { return in_flight_.size(); }

  /// Transport-level escape hatch for protocol tests: sends raw bytes
  /// verbatim (no framing added) and reads back one response frame.
  bool RawCall(const std::string& bytes, std::string* response_payload,
               std::string* error);

  void Close();

 private:
  /// Reads until one full frame is decoded. False on EOF/error.
  bool ReadFrame(std::string* payload, std::string* error);

  int fd_ = -1;
  FrameDecoder decoder_;
  WireCodec codec_ = WireCodec::kJson;
  std::unordered_set<std::string> in_flight_;
  std::unordered_map<std::string, Response> ready_;  // Stashed by Await.
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_CLIENT_H_
