// serve/client — the blocking TCP client behind cqa_client and the e2e
// tests: connect, frame a Request, read back one Response frame. One
// CqaClient owns one connection and is single-threaded; concurrency is
// achieved by opening one client per thread (connections are cheap, the
// server multiplexes them across its workers).
#ifndef CQABENCH_SERVE_CLIENT_H_
#define CQABENCH_SERVE_CLIENT_H_

#include <string>

#include "serve/protocol.h"

namespace cqa::serve {

class CqaClient {
 public:
  CqaClient() = default;
  ~CqaClient();

  CqaClient(const CqaClient&) = delete;
  CqaClient& operator=(const CqaClient&) = delete;

  /// Opens a TCP connection. False with *error on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and blocks for the matching response. False with
  /// *error on transport failure (send/recv/frame decode); a server-side
  /// error is a *successful* call with response->ok() == false.
  bool Call(const Request& request, Response* response, std::string* error);

  /// Transport-level escape hatch for protocol tests: sends raw bytes
  /// verbatim (no framing added) and reads back one response frame.
  bool RawCall(const std::string& bytes, std::string* response_payload,
               std::string* error);

  void Close();

 private:
  /// Reads until one full frame is decoded. False on EOF/error.
  bool ReadFrame(std::string* payload, std::string* error);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace cqa::serve

#endif  // CQABENCH_SERVE_CLIENT_H_
