#include "serve/engine.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/schemes.h"
#include "gen/tpcds.h"
#include "gen/tpch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "storage/tbl_io.h"
#include "storage/tuple.h"

namespace cqa::serve {

namespace {

// Canonicalizes the data directory so "./db" and "db/" share one cache
// slot. Falls back to the raw path when the filesystem cannot resolve it
// (the load will then fail with a proper not-found error).
std::string CanonicalDataPath(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path canonical =
      std::filesystem::weakly_canonical(path, ec);
  if (ec) return path;
  return canonical.string();
}

}  // namespace

CqaEngine::CqaEngine(const EngineOptions& options)
    : options_(options), synopsis_cache_(options.cache_entries) {}

Deadline CqaEngine::MakeDeadline(const Request& request) const {
  if (request.deadline_s > 0) return Deadline(request.deadline_s);
  if (options_.default_deadline_s > 0) {
    return Deadline(options_.default_deadline_s);
  }
  return Deadline::Infinite();
}

std::shared_ptr<LoadedDatabase> CqaEngine::GetDatabase(
    const std::string& schema, const std::string& data_path,
    ErrorCode* code, std::string* error) {
  const std::string key = schema + "\n" + CanonicalDataPath(data_path);
  // The lock is held across the load on purpose: database loads are rare
  // (the LRU holds the working set) and concurrent loads of one directory
  // would duplicate hundreds of MB; serializing them is the simple safe
  // choice. See docs/architecture.md §cqad.
  MutexLock lock(db_mu_);
  for (auto it = db_cache_.begin(); it != db_cache_.end(); ++it) {
    if (it->first == key) {
      db_cache_.splice(db_cache_.begin(), db_cache_, it);
      return db_cache_.front().second;
    }
  }
  std::shared_ptr<LoadedDatabase> loaded;
  if (schema == "tpch") {
    loaded = std::make_shared<LoadedDatabase>(MakeTpchSchema());
  } else if (schema == "tpcds") {
    loaded = std::make_shared<LoadedDatabase>(MakeTpcdsSchema());
  } else {
    *code = ErrorCode::kBadRequest;
    *error = "unknown schema: " + schema;
    return nullptr;
  }
  std::string read_error;
  if (!ReadTblDirectory(&loaded->db, data_path, &read_error)) {
    *code = ErrorCode::kNotFound;
    *error = "cannot load database '" + data_path + "': " + read_error;
    return nullptr;
  }
  CQA_OBS_COUNT("serve.db_loads");
  db_cache_.emplace_front(key, std::move(loaded));
  while (db_cache_.size() > std::max<size_t>(1, options_.db_cache_entries)) {
    db_cache_.pop_back();
  }
  return db_cache_.front().second;
}

Response CqaEngine::ExecuteQuery(const Request& request,
                                 const Deadline& deadline,
                                 uint64_t parent_span) {
  Response response;
  response.id = request.id;

  const std::optional<SchemeKind> scheme = ParseSchemeKind(request.scheme);
  if (!scheme.has_value()) {
    return Response::MakeError(ErrorCode::kBadRequest,
                               "unknown scheme: " + request.scheme,
                               request.id);
  }

  // The preprocess phase accumulates everything that stands between the
  // wire request and runnable synopses: database load, query parse, and
  // (on a cache miss) the synopsis build inside the cache's flight.
  const Stopwatch preprocess_watch;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  const std::shared_ptr<LoadedDatabase> db =
      GetDatabase(request.schema, request.data, &code, &error);
  if (db == nullptr) return Response::MakeError(code, error, request.id);

  ConjunctiveQuery query;
  if (!ParseCq(db->schema, request.query, &query, &error)) {
    return Response::MakeError(ErrorCode::kBadRequest,
                               "query parse error: " + error, request.id);
  }
  const uint64_t load_parse_micros =
      static_cast<uint64_t>(preprocess_watch.ElapsedSeconds() * 1e6);

  const std::string cache_key =
      SynopsisCacheKey(CanonicalDataPath(request.data), request.schema,
                       request.query);
  bool cache_hit = false;
  uint64_t build_micros = 0;
  std::shared_ptr<const PreprocessResult> pre;
  const Stopwatch cache_watch;
  {
    obs::TraceSpan cache_span("serve.cache", parent_span, request.trace_id);
    pre = synopsis_cache_.GetOrBuild(
        cache_key,
        [&](std::string* build_error)
            -> std::shared_ptr<const PreprocessResult> {
          obs::TraceSpan build_span("serve.preprocess", cache_span.id(),
                                    request.trace_id);
          const Stopwatch build_watch;
          // DatabaseIndexCache is single-threaded; one build at a time per
          // database (builds for *other* databases proceed in parallel).
          MutexLock build_lock(db->preprocess_mu);
          PreprocessResult result =
              BuildSynopses(db->db, query, &db->index_cache);
          (void)build_error;
          build_micros =
              static_cast<uint64_t>(build_watch.ElapsedSeconds() * 1e6);
          return std::make_shared<const PreprocessResult>(std::move(result));
        },
        &cache_hit, &error);
  }
  const uint64_t cache_total_micros =
      static_cast<uint64_t>(cache_watch.ElapsedSeconds() * 1e6);
  response.timing.recorded = true;
  // Cache overhead is the lookup minus the build it ran on this thread;
  // for a single-flight waiter it is the whole wait on the builder.
  response.timing.cache_micros =
      cache_total_micros > build_micros ? cache_total_micros - build_micros
                                        : 0;
  response.timing.preprocess_micros = load_parse_micros + build_micros;
  if (pre == nullptr) {
    return Response::MakeError(ErrorCode::kInternal,
                               "preprocess failed: " + error, request.id);
  }
  if (deadline.Expired()) {
    return Response::MakeError(ErrorCode::kDeadlineExceeded,
                               "deadline expired during preprocessing",
                               request.id);
  }

  ApxParams params;
  params.epsilon = request.epsilon;
  params.delta = request.delta;
  params.num_threads = request.threads;
  Rng rng(request.seed);
  const Stopwatch watch;
  CqaRunResult run;
  {
    obs::TraceSpan sample_span("serve.sample", parent_span, request.trace_id);
    run = ApxCqaOnSynopses(*pre, *scheme, params, rng, deadline);
  }
  const double total_seconds = watch.ElapsedSeconds();
  response.timing.sample_micros =
      static_cast<uint64_t>(total_seconds * 1e6);

  const Stopwatch encode_watch;
  {
    obs::TraceSpan encode_span("serve.encode", parent_span, request.trace_id);
    response.code = ErrorCode::kOk;
    response.cache_hit = cache_hit;
    response.timed_out = run.timed_out;
    // Report the preprocessing this request actually paid: 0 when the
    // synopses came from cache (that is the service's amortization win).
    response.preprocess_seconds = cache_hit ? 0.0 : pre->stats().seconds;
    response.scheme_seconds = run.scheme_seconds;
    response.total_samples = run.total_samples;
    response.answers.reserve(run.answers.size());
    for (const CqaAnswer& answer : run.answers) {
      response.answers.push_back(
          ResponseAnswer{TupleToString(answer.tuple), answer.frequency});
    }

    if (request.want_record || options_.reporter != nullptr) {
      obs::RunContext context;
      context.scenario = "cqad";
      context.x_label = "seed";
      context.x = static_cast<double>(request.seed);
      obs::RunRecord record =
          MakeRunRecord(run, *scheme, context, total_seconds);
      record.preprocess_seconds = cache_hit ? 0.0 : pre->stats().seconds;
      if (request.want_record) {
        response.run_record_json = obs::RunRecordToJson(record);
      }
      if (options_.reporter != nullptr) options_.reporter->Add(record);
    }
  }
  response.timing.encode_micros =
      static_cast<uint64_t>(encode_watch.ElapsedSeconds() * 1e6);

  CQA_OBS_COUNT("serve.queries");
  if (run.timed_out) CQA_OBS_COUNT("serve.query_timeouts");
  CQA_OBS_OBSERVE("serve.query_micros", total_seconds * 1e6);
  return response;
}

}  // namespace cqa::serve
