#include "serve/protocol.h"

#include <cstdio>
#include <cstring>

namespace cqa::serve {

namespace {

// ---------------------------------------------------------------------------
// v2 binary codec primitives. Tag byte = (field << 3) | wire_type with
// protobuf-style wire types: 0 = varint, 1 = little-endian fixed64,
// 2 = length-delimited (varint byte count, then the bytes). Unknown
// fields are skipped by wire type so future minor additions stay
// readable; structural damage (truncated varint, length past the end,
// reserved wire type) is a hard decode error.
// ---------------------------------------------------------------------------

enum WireType { kWireVarint = 0, kWireFixed64 = 1, kWireLen = 2 };

// Binary payload kind byte (right after kBinaryMagic).
enum BinaryKind { kKindRequest = 1, kKindResponse = 2 };

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutTag(std::string* out, int field, int wire) {
  out->push_back(static_cast<char>((field << 3) | wire));
}

void PutVarintField(std::string* out, int field, uint64_t v) {
  PutTag(out, field, kWireVarint);
  PutVarint(out, v);
}

void PutFixed64Field(std::string* out, int field, double v) {
  PutTag(out, field, kWireFixed64);
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void PutFixed64Raw(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void PutLenField(std::string* out, int field, const std::string& s) {
  PutTag(out, field, kWireLen);
  PutVarint(out, s.size());
  out->append(s);
}

// Bounds-checked cursor over a binary payload body.
class BinReader {
 public:
  BinReader(const unsigned char* p, size_t n) : p_(p), end_(p + n) {}

  bool AtEnd() const { return p_ == end_; }

  bool ReadVarint(uint64_t* v) {
    uint64_t out = 0;
    int shift = 0;
    while (p_ != end_) {
      const unsigned char b = *p_++;
      if (shift >= 64 || (shift == 63 && (b & 0x7E) != 0)) return false;
      out |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *v = out;
        return true;
      }
      shift += 7;
    }
    return false;  // Truncated mid-varint.
  }

  bool ReadFixed64(double* v) {
    if (end_ - p_ < 8) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(p_[i]) << (8 * i);
    }
    p_ += 8;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(std::string* s) {
    uint64_t n = 0;
    if (!ReadVarint(&n)) return false;
    if (n > static_cast<uint64_t>(end_ - p_)) return false;
    s->assign(reinterpret_cast<const char*>(p_), static_cast<size_t>(n));
    p_ += n;
    return true;
  }

  bool SkipField(int wire) {
    switch (wire) {
      case kWireVarint: {
        uint64_t scratch;
        return ReadVarint(&scratch);
      }
      case kWireFixed64: {
        double scratch;
        return ReadFixed64(&scratch);
      }
      case kWireLen: {
        uint64_t n = 0;
        if (!ReadVarint(&n)) return false;
        if (n > static_cast<uint64_t>(end_ - p_)) return false;
        p_ += n;
        return true;
      }
      default:
        return false;  // Reserved wire type.
    }
  }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
};

// Request field numbers (v2 binary). docs/protocol.md mirrors this table.
enum ReqField {
  kReqOp = 1,           // varint: 0 query, 1 stats, 2 ping.
  kReqId = 2,           // len.
  kReqSchema = 3,       // varint: 0 tpch, 1 tpcds.
  kReqData = 4,         // len.
  kReqQuery = 5,        // len.
  kReqScheme = 6,       // len.
  kReqEpsilon = 7,      // fixed64.
  kReqDelta = 8,        // fixed64.
  kReqDeadlineS = 9,    // fixed64.
  kReqSeed = 10,        // varint.
  kReqThreads = 11,     // varint.
  kReqWantRecord = 12,  // varint bool.
  kReqTraceId = 13,     // len.
  kReqTraceParent = 14, // varint.
};

// Response field numbers (v2 binary).
enum RespField {
  kRespId = 1,              // len.
  kRespCode = 2,            // varint ErrorCode.
  kRespError = 3,           // len.
  kRespRetryAfterS = 4,     // fixed64.
  kRespFlags = 5,           // varint: bit0 cache_hit, bit1 timed_out, bit2 pong.
  kRespPreprocessS = 6,     // fixed64.
  kRespSchemeS = 7,         // fixed64.
  kRespTotalSamples = 8,    // varint.
  kRespTiming = 9,          // len: six varints (queue_wait..total micros).
  kRespAnswers = 10,        // len: packed answers (see EncodeAnswers).
  kRespRunRecord = 11,      // len raw JSON.
  kRespMetrics = 12,        // len raw JSON.
  kRespServer = 13,         // len raw JSON.
};

// Semantic request validation shared by the JSON and binary decoders so
// the two codecs accept exactly the same request space (structural
// checks — JSON types, trace object shape — stay codec-local).
bool ValidateRequestFields(Request* out, ErrorCode* code,
                           std::string* error) {
  if (out->op != "query" && out->op != "stats" && out->op != "ping") {
    *code = ErrorCode::kBadRequest;
    *error = "unknown op \"" + out->op + "\"";
    return false;
  }
  if (out->trace_id.size() > kMaxTraceIdBytes) {
    *code = ErrorCode::kBadRequest;
    *error = "trace id longer than " + std::to_string(kMaxTraceIdBytes) +
             " bytes";
    return false;
  }
  if (out->op != "query") return true;
  if (out->schema != "tpch" && out->schema != "tpcds") {
    *code = ErrorCode::kBadRequest;
    *error = "unknown schema \"" + out->schema + "\" (tpch|tpcds)";
    return false;
  }
  if (out->data.empty() || out->query.empty()) {
    *code = ErrorCode::kBadRequest;
    *error = "query requests need \"data\" and \"query\"";
    return false;
  }
  if (!(out->epsilon > 0.0 && out->epsilon < 1.0) ||
      !(out->delta > 0.0 && out->delta < 1.0)) {
    *code = ErrorCode::kBadRequest;
    *error = "epsilon and delta must lie in (0, 1)";
    return false;
  }
  if (out->threads < 1 || out->threads > 256) {
    *code = ErrorCode::kBadRequest;
    *error = "threads must lie in [1, 256]";
    return false;
  }
  return true;
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
  }
  return "?";
}

std::string EncodeFrame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>((n >> 24) & 0xFF));
  frame.push_back(static_cast<char>((n >> 16) & 0xFF));
  frame.push_back(static_cast<char>((n >> 8) & 0xFF));
  frame.push_back(static_cast<char>(n & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Append(const char* data, size_t n) {
  buffer_.append(data, n);
}

FrameDecoder::Status FrameDecoder::Next(std::string* payload,
                                        std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "frame stream already poisoned";
    return Status::kError;
  }
  if (buffer_.size() < 4) return Status::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n == 0) {
    poisoned_ = true;
    if (error != nullptr) *error = "zero-length frame";
    return Status::kError;
  }
  if (n > max_frame_bytes_) {
    poisoned_ = true;
    if (error != nullptr) {
      *error = "frame of " + std::to_string(n) + " bytes exceeds cap of " +
               std::to_string(max_frame_bytes_);
    }
    return Status::kError;
  }
  if (buffer_.size() < 4u + n) return Status::kNeedMore;
  payload->assign(buffer_, 4, n);
  buffer_.erase(0, 4u + n);
  return Status::kFrame;
}

std::string Request::ToJsonPayload() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::MakeNumber(version));
  obj.Set("op", JsonValue::MakeString(op));
  if (!id.empty()) obj.Set("id", JsonValue::MakeString(id));
  if (!trace_id.empty()) {
    JsonValue trace = JsonValue::MakeObject();
    trace.Set("id", JsonValue::MakeString(trace_id));
    if (trace_parent != 0) {
      trace.Set("parent",
                JsonValue::MakeNumber(static_cast<double>(trace_parent)));
    }
    obj.Set("trace", std::move(trace));
  }
  if (op == "query") {
    obj.Set("schema", JsonValue::MakeString(schema));
    obj.Set("data", JsonValue::MakeString(data));
    obj.Set("query", JsonValue::MakeString(query));
    obj.Set("scheme", JsonValue::MakeString(scheme));
    obj.Set("epsilon", JsonValue::MakeNumber(epsilon));
    obj.Set("delta", JsonValue::MakeNumber(delta));
    if (deadline_s > 0) obj.Set("deadline_s", JsonValue::MakeNumber(deadline_s));
    obj.Set("seed", JsonValue::MakeNumber(static_cast<double>(seed)));
    if (threads > 1) obj.Set("threads", JsonValue::MakeNumber(threads));
    if (want_record) obj.Set("record", JsonValue::MakeBool(true));
  }
  return obj.Serialize();
}

bool Request::FromJsonPayload(const std::string& payload, Request* out,
                              ErrorCode* code, std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!JsonValue::Parse(payload, &root, &parse_error) || !root.is_object()) {
    *code = ErrorCode::kBadRequest;
    *error = parse_error.empty() ? "request is not a JSON object"
                                 : parse_error;
    return false;
  }
  const JsonValue* v = root.Find("v");
  if (v == nullptr || !v->is_number()) {
    *code = ErrorCode::kBadVersion;
    *error = "missing protocol version field \"v\"";
    return false;
  }
  if (static_cast<int>(v->AsNumber()) != kProtocolVersion) {
    *code = ErrorCode::kBadVersion;
    *error = "unsupported protocol version " +
             std::to_string(static_cast<int>(v->AsNumber())) +
             " (server speaks " + std::to_string(kProtocolVersion) + ")";
    return false;
  }
  out->version = kProtocolVersion;
  out->op = root.GetString("op", "query");
  out->id = root.GetString("id", "");
  const JsonValue* trace = root.Find("trace");
  if (trace != nullptr) {
    if (!trace->is_object()) {
      *code = ErrorCode::kBadRequest;
      *error = "\"trace\" must be an object";
      return false;
    }
    out->trace_id = trace->GetString("id", "");
    if (out->trace_id.empty()) {
      *code = ErrorCode::kBadRequest;
      *error = "\"trace\" needs a non-empty string \"id\"";
      return false;
    }
    const double parent = trace->GetNumber("parent", 0.0);
    if (parent < 0.0) {
      *code = ErrorCode::kBadRequest;
      *error = "trace parent must be a non-negative span id";
      return false;
    }
    out->trace_parent = static_cast<uint64_t>(parent);
  }
  out->schema = root.GetString("schema", "tpch");
  out->data = root.GetString("data", "");
  out->query = root.GetString("query", "");
  out->scheme = root.GetString("scheme", "KLM");
  out->epsilon = root.GetNumber("epsilon", 0.1);
  out->delta = root.GetNumber("delta", 0.25);
  out->deadline_s = root.GetNumber("deadline_s", 0.0);
  out->seed = static_cast<uint64_t>(root.GetNumber("seed", 7));
  out->threads = static_cast<int>(root.GetNumber("threads", 1));
  out->want_record = root.GetBool("record", false);
  return ValidateRequestFields(out, code, error);
}

bool DetectCodec(const std::string& payload, WireCodec* codec) {
  for (const char c : payload) {
    const unsigned char b = static_cast<unsigned char>(c);
    if (b == ' ' || b == '\t' || b == '\r' || b == '\n') continue;
    if (b == '{') {
      *codec = WireCodec::kJson;
      return true;
    }
    if (b == kBinaryMagic) {
      *codec = WireCodec::kBinary;
      return true;
    }
    return false;
  }
  return false;  // Empty or all-whitespace payload.
}

std::string Request::ToBinaryPayload() const {
  std::string out;
  out.push_back(static_cast<char>(kBinaryMagic));
  out.push_back(static_cast<char>(kKindRequest));
  uint64_t op_code = 0;
  if (op == "stats") op_code = 1;
  else if (op == "ping") op_code = 2;
  PutVarintField(&out, kReqOp, op_code);
  if (!id.empty()) PutLenField(&out, kReqId, id);
  if (!trace_id.empty()) {
    PutLenField(&out, kReqTraceId, trace_id);
    if (trace_parent != 0) PutVarintField(&out, kReqTraceParent, trace_parent);
  }
  if (op == "query") {
    PutVarintField(&out, kReqSchema, schema == "tpcds" ? 1 : 0);
    PutLenField(&out, kReqData, data);
    PutLenField(&out, kReqQuery, query);
    PutLenField(&out, kReqScheme, scheme);
    PutFixed64Field(&out, kReqEpsilon, epsilon);
    PutFixed64Field(&out, kReqDelta, delta);
    if (deadline_s > 0) PutFixed64Field(&out, kReqDeadlineS, deadline_s);
    PutVarintField(&out, kReqSeed, seed);
    if (threads > 1) {
      PutVarintField(&out, kReqThreads, static_cast<uint64_t>(threads));
    }
    if (want_record) PutVarintField(&out, kReqWantRecord, 1);
  }
  return out;
}

std::string Request::ToPayload(WireCodec codec) const {
  return codec == WireCodec::kBinary ? ToBinaryPayload() : ToJsonPayload();
}

bool Request::FromBinaryPayload(const std::string& payload, Request* out,
                                ErrorCode* code, std::string* error) {
  if (payload.size() < 2 ||
      static_cast<unsigned char>(payload[0]) != kBinaryMagic) {
    *code = ErrorCode::kBadRequest;
    *error = "not a binary request payload";
    return false;
  }
  if (static_cast<unsigned char>(payload[1]) != kKindRequest) {
    *code = ErrorCode::kBadRequest;
    *error = "binary payload kind is not request";
    return false;
  }
  out->version = kProtocolVersionBinary;
  BinReader r(reinterpret_cast<const unsigned char*>(payload.data()) + 2,
              payload.size() - 2);
  while (!r.AtEnd()) {
    uint64_t tag = 0;
    if (!r.ReadVarint(&tag)) {
      *code = ErrorCode::kBadRequest;
      *error = "truncated binary request field tag";
      return false;
    }
    const int field = static_cast<int>(tag >> 3);
    const int wire = static_cast<int>(tag & 0x7);
    bool field_ok = true;
    switch (field) {
      case kReqOp: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) {
          out->op = v == 0 ? "query"
                  : v == 1 ? "stats"
                  : v == 2 ? "ping"
                           : "op#" + std::to_string(v);
        }
        break;
      }
      case kReqId:
        field_ok = wire == kWireLen && r.ReadBytes(&out->id);
        break;
      case kReqSchema: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) {
          out->schema = v == 0 ? "tpch"
                      : v == 1 ? "tpcds"
                               : "schema#" + std::to_string(v);
        }
        break;
      }
      case kReqData:
        field_ok = wire == kWireLen && r.ReadBytes(&out->data);
        break;
      case kReqQuery:
        field_ok = wire == kWireLen && r.ReadBytes(&out->query);
        break;
      case kReqScheme:
        field_ok = wire == kWireLen && r.ReadBytes(&out->scheme);
        break;
      case kReqEpsilon:
        field_ok = wire == kWireFixed64 && r.ReadFixed64(&out->epsilon);
        break;
      case kReqDelta:
        field_ok = wire == kWireFixed64 && r.ReadFixed64(&out->delta);
        break;
      case kReqDeadlineS:
        field_ok = wire == kWireFixed64 && r.ReadFixed64(&out->deadline_s);
        break;
      case kReqSeed:
        field_ok = wire == kWireVarint && r.ReadVarint(&out->seed);
        break;
      case kReqThreads: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) {
          out->threads = v > 100000 ? 100000 : static_cast<int>(v);
        }
        break;
      }
      case kReqWantRecord: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) out->want_record = v != 0;
        break;
      }
      case kReqTraceId:
        field_ok = wire == kWireLen && r.ReadBytes(&out->trace_id);
        break;
      case kReqTraceParent:
        field_ok = wire == kWireVarint && r.ReadVarint(&out->trace_parent);
        break;
      default:
        field_ok = r.SkipField(wire);  // Unknown field: skip, stay readable.
        break;
    }
    if (!field_ok) {
      *code = ErrorCode::kBadRequest;
      *error = "malformed binary request field " + std::to_string(field);
      return false;
    }
  }
  return ValidateRequestFields(out, code, error);
}

bool Request::FromPayload(const std::string& payload, Request* out,
                          WireCodec* codec, ErrorCode* code,
                          std::string* error) {
  if (!DetectCodec(payload, codec)) {
    *codec = WireCodec::kJson;  // Error replies fall back to JSON.
    *code = ErrorCode::kBadRequest;
    *error = "unrecognized payload codec";
    return false;
  }
  return *codec == WireCodec::kBinary
             ? FromBinaryPayload(payload, out, code, error)
             : FromJsonPayload(payload, out, code, error);
}

std::string Response::ToJsonPayload() const {
  // Hand-assembled so the raw embedded objects (run record, metrics) can
  // be spliced in without reparsing them.
  std::string out = "{\"v\":" + std::to_string(version);
  if (!id.empty()) out += ",\"id\":\"" + JsonEscape(id) + "\"";
  if (code != ErrorCode::kOk) {
    out += ",\"status\":\"error\",\"code\":" +
           std::to_string(static_cast<int>(code));
    out += ",\"code_name\":\"" + std::string(ErrorCodeName(code)) + "\"";
    out += ",\"error\":\"" + JsonEscape(error) + "\"";
    if (retry_after_s > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", retry_after_s);
      out += ",\"retry_after_s\":" + std::string(buf);
    }
    out += "}";
    return out;
  }
  out += ",\"status\":\"ok\"";
  if (pong) {
    out += ",\"pong\":true}";
    return out;
  }
  if (!metrics_json.empty() || !server_json.empty()) {
    if (!metrics_json.empty()) out += ",\"metrics\":" + metrics_json;
    if (!server_json.empty()) out += ",\"server\":" + server_json;
    out += "}";
    return out;
  }
  out += ",\"cache\":\"" + std::string(cache_hit ? "hit" : "miss") + "\"";
  out += ",\"timed_out\":" + std::string(timed_out ? "true" : "false");
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"preprocess_seconds\":%.9g",
                preprocess_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"scheme_seconds\":%.9g", scheme_seconds);
  out += buf;
  out += ",\"total_samples\":" + std::to_string(total_samples);
  if (timing.recorded) {
    out += ",\"timing\":{\"queue_wait_micros\":" +
           std::to_string(timing.queue_wait_micros);
    out += ",\"cache_micros\":" + std::to_string(timing.cache_micros);
    out += ",\"preprocess_micros\":" + std::to_string(timing.preprocess_micros);
    out += ",\"sample_micros\":" + std::to_string(timing.sample_micros);
    out += ",\"encode_micros\":" + std::to_string(timing.encode_micros);
    out += ",\"total_micros\":" + std::to_string(timing.total_micros) + "}";
  }
  out += ",\"answers\":[";
  bool first = true;
  for (const ResponseAnswer& a : answers) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.17g", a.frequency);
    out += "{\"tuple\":\"" + JsonEscape(a.tuple) +
           "\",\"frequency\":" + buf + "}";
  }
  out += "]";
  if (!run_record_json.empty()) out += ",\"run_record\":" + run_record_json;
  out += "}";
  return out;
}

bool Response::FromJsonPayload(const std::string& payload, Response* out,
                               std::string* error) {
  JsonValue root;
  if (!JsonValue::Parse(payload, &root, error) || !root.is_object()) {
    if (error != nullptr && error->empty()) {
      *error = "response is not a JSON object";
    }
    return false;
  }
  out->version = static_cast<int>(root.GetNumber("v", 0));
  out->id = root.GetString("id", "");
  const std::string status = root.GetString("status", "");
  if (status == "error") {
    out->code = static_cast<ErrorCode>(
        static_cast<int>(root.GetNumber("code", 500)));
    out->error = root.GetString("error", "unknown error");
    out->retry_after_s = root.GetNumber("retry_after_s", 0.0);
    return true;
  }
  if (status != "ok") {
    if (error != nullptr) *error = "response has no status field";
    return false;
  }
  out->code = ErrorCode::kOk;
  out->pong = root.GetBool("pong", false);
  out->cache_hit = root.GetString("cache", "miss") == "hit";
  out->timed_out = root.GetBool("timed_out", false);
  out->preprocess_seconds = root.GetNumber("preprocess_seconds", 0.0);
  out->scheme_seconds = root.GetNumber("scheme_seconds", 0.0);
  out->total_samples =
      static_cast<uint64_t>(root.GetNumber("total_samples", 0.0));
  const JsonValue* answers = root.Find("answers");
  if (answers != nullptr && answers->is_array()) {
    for (const JsonValue& a : answers->AsArray()) {
      ResponseAnswer answer;
      answer.tuple = a.GetString("tuple", "");
      answer.frequency = a.GetNumber("frequency", 0.0);
      out->answers.push_back(std::move(answer));
    }
  }
  const JsonValue* timing = root.Find("timing");
  if (timing != nullptr && timing->is_object()) {
    out->timing.recorded = true;
    out->timing.queue_wait_micros =
        static_cast<uint64_t>(timing->GetNumber("queue_wait_micros", 0.0));
    out->timing.cache_micros =
        static_cast<uint64_t>(timing->GetNumber("cache_micros", 0.0));
    out->timing.preprocess_micros =
        static_cast<uint64_t>(timing->GetNumber("preprocess_micros", 0.0));
    out->timing.sample_micros =
        static_cast<uint64_t>(timing->GetNumber("sample_micros", 0.0));
    out->timing.encode_micros =
        static_cast<uint64_t>(timing->GetNumber("encode_micros", 0.0));
    out->timing.total_micros =
        static_cast<uint64_t>(timing->GetNumber("total_micros", 0.0));
  }
  const JsonValue* record = root.Find("run_record");
  if (record != nullptr) out->run_record_json = record->Serialize();
  const JsonValue* metrics = root.Find("metrics");
  if (metrics != nullptr) out->metrics_json = metrics->Serialize();
  const JsonValue* server = root.Find("server");
  if (server != nullptr) out->server_json = server->Serialize();
  return true;
}

std::string Response::ToBinaryPayload() const {
  std::string out;
  out.push_back(static_cast<char>(kBinaryMagic));
  out.push_back(static_cast<char>(kKindResponse));
  if (!id.empty()) PutLenField(&out, kRespId, id);
  if (code != ErrorCode::kOk) {
    PutVarintField(&out, kRespCode, static_cast<uint64_t>(code));
    PutLenField(&out, kRespError, error);
    if (retry_after_s > 0) {
      PutFixed64Field(&out, kRespRetryAfterS, retry_after_s);
    }
    return out;
  }
  uint64_t flags = 0;
  if (cache_hit) flags |= 1;
  if (timed_out) flags |= 2;
  if (pong) flags |= 4;
  if (flags != 0) PutVarintField(&out, kRespFlags, flags);
  if (pong) return out;
  if (!metrics_json.empty() || !server_json.empty()) {
    if (!metrics_json.empty()) PutLenField(&out, kRespMetrics, metrics_json);
    if (!server_json.empty()) PutLenField(&out, kRespServer, server_json);
    return out;
  }
  PutFixed64Field(&out, kRespPreprocessS, preprocess_seconds);
  PutFixed64Field(&out, kRespSchemeS, scheme_seconds);
  PutVarintField(&out, kRespTotalSamples, total_samples);
  if (timing.recorded) {
    std::string t;
    PutVarint(&t, timing.queue_wait_micros);
    PutVarint(&t, timing.cache_micros);
    PutVarint(&t, timing.preprocess_micros);
    PutVarint(&t, timing.sample_micros);
    PutVarint(&t, timing.encode_micros);
    PutVarint(&t, timing.total_micros);
    PutLenField(&out, kRespTiming, t);
  }
  // Answers ride as one packed block: varint count, then count
  // length-delimited tuple strings, then count fixed64 frequencies.
  std::string packed;
  PutVarint(&packed, answers.size());
  for (const ResponseAnswer& a : answers) {
    PutVarint(&packed, a.tuple.size());
    packed.append(a.tuple);
  }
  for (const ResponseAnswer& a : answers) PutFixed64Raw(&packed, a.frequency);
  PutLenField(&out, kRespAnswers, packed);
  if (!run_record_json.empty()) {
    PutLenField(&out, kRespRunRecord, run_record_json);
  }
  return out;
}

std::string Response::ToPayload(WireCodec codec) const {
  return codec == WireCodec::kBinary ? ToBinaryPayload() : ToJsonPayload();
}

bool Response::FromBinaryPayload(const std::string& payload, Response* out,
                                 std::string* error) {
  if (payload.size() < 2 ||
      static_cast<unsigned char>(payload[0]) != kBinaryMagic ||
      static_cast<unsigned char>(payload[1]) != kKindResponse) {
    if (error != nullptr) *error = "not a binary response payload";
    return false;
  }
  out->version = kProtocolVersionBinary;
  out->code = ErrorCode::kOk;
  BinReader r(reinterpret_cast<const unsigned char*>(payload.data()) + 2,
              payload.size() - 2);
  while (!r.AtEnd()) {
    uint64_t tag = 0;
    if (!r.ReadVarint(&tag)) {
      if (error != nullptr) *error = "truncated binary response field tag";
      return false;
    }
    const int field = static_cast<int>(tag >> 3);
    const int wire = static_cast<int>(tag & 0x7);
    bool field_ok = true;
    switch (field) {
      case kRespId:
        field_ok = wire == kWireLen && r.ReadBytes(&out->id);
        break;
      case kRespCode: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) out->code = static_cast<ErrorCode>(v);
        break;
      }
      case kRespError:
        field_ok = wire == kWireLen && r.ReadBytes(&out->error);
        break;
      case kRespRetryAfterS:
        field_ok = wire == kWireFixed64 && r.ReadFixed64(&out->retry_after_s);
        break;
      case kRespFlags: {
        uint64_t v = 0;
        field_ok = wire == kWireVarint && r.ReadVarint(&v);
        if (field_ok) {
          out->cache_hit = (v & 1) != 0;
          out->timed_out = (v & 2) != 0;
          out->pong = (v & 4) != 0;
        }
        break;
      }
      case kRespPreprocessS:
        field_ok =
            wire == kWireFixed64 && r.ReadFixed64(&out->preprocess_seconds);
        break;
      case kRespSchemeS:
        field_ok = wire == kWireFixed64 && r.ReadFixed64(&out->scheme_seconds);
        break;
      case kRespTotalSamples:
        field_ok = wire == kWireVarint && r.ReadVarint(&out->total_samples);
        break;
      case kRespTiming: {
        std::string t;
        field_ok = wire == kWireLen && r.ReadBytes(&t);
        if (field_ok) {
          BinReader tr(reinterpret_cast<const unsigned char*>(t.data()),
                       t.size());
          field_ok = tr.ReadVarint(&out->timing.queue_wait_micros) &&
                     tr.ReadVarint(&out->timing.cache_micros) &&
                     tr.ReadVarint(&out->timing.preprocess_micros) &&
                     tr.ReadVarint(&out->timing.sample_micros) &&
                     tr.ReadVarint(&out->timing.encode_micros) &&
                     tr.ReadVarint(&out->timing.total_micros);
          out->timing.recorded = field_ok;
        }
        break;
      }
      case kRespAnswers: {
        std::string packed;
        field_ok = wire == kWireLen && r.ReadBytes(&packed);
        if (field_ok) {
          BinReader ar(reinterpret_cast<const unsigned char*>(packed.data()),
                       packed.size());
          uint64_t count = 0;
          field_ok = ar.ReadVarint(&count) && count <= packed.size();
          if (field_ok) {
            out->answers.clear();
            out->answers.reserve(static_cast<size_t>(count));
            for (uint64_t i = 0; field_ok && i < count; ++i) {
              ResponseAnswer a;
              field_ok = ar.ReadBytes(&a.tuple);
              if (field_ok) out->answers.push_back(std::move(a));
            }
            for (size_t i = 0; field_ok && i < out->answers.size(); ++i) {
              field_ok = ar.ReadFixed64(&out->answers[i].frequency);
            }
          }
        }
        break;
      }
      case kRespRunRecord:
        field_ok = wire == kWireLen && r.ReadBytes(&out->run_record_json);
        break;
      case kRespMetrics:
        field_ok = wire == kWireLen && r.ReadBytes(&out->metrics_json);
        break;
      case kRespServer:
        field_ok = wire == kWireLen && r.ReadBytes(&out->server_json);
        break;
      default:
        field_ok = r.SkipField(wire);
        break;
    }
    if (!field_ok) {
      if (error != nullptr) {
        *error = "malformed binary response field " + std::to_string(field);
      }
      return false;
    }
  }
  return true;
}

bool Response::FromPayload(const std::string& payload, Response* out,
                           std::string* error) {
  WireCodec codec = WireCodec::kJson;
  if (!DetectCodec(payload, &codec)) {
    if (error != nullptr) *error = "unrecognized payload codec";
    return false;
  }
  return codec == WireCodec::kBinary ? FromBinaryPayload(payload, out, error)
                                     : FromJsonPayload(payload, out, error);
}

Response Response::MakeError(ErrorCode code, const std::string& message,
                             const std::string& id) {
  Response r;
  r.code = code;
  r.error = message;
  r.id = id;
  return r;
}

}  // namespace cqa::serve
