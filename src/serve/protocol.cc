#include "serve/protocol.h"

#include <cstdio>

namespace cqa::serve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
  }
  return "?";
}

std::string EncodeFrame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>((n >> 24) & 0xFF));
  frame.push_back(static_cast<char>((n >> 16) & 0xFF));
  frame.push_back(static_cast<char>((n >> 8) & 0xFF));
  frame.push_back(static_cast<char>(n & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Append(const char* data, size_t n) {
  buffer_.append(data, n);
}

FrameDecoder::Status FrameDecoder::Next(std::string* payload,
                                        std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "frame stream already poisoned";
    return Status::kError;
  }
  if (buffer_.size() < 4) return Status::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n == 0) {
    poisoned_ = true;
    if (error != nullptr) *error = "zero-length frame";
    return Status::kError;
  }
  if (n > max_frame_bytes_) {
    poisoned_ = true;
    if (error != nullptr) {
      *error = "frame of " + std::to_string(n) + " bytes exceeds cap of " +
               std::to_string(max_frame_bytes_);
    }
    return Status::kError;
  }
  if (buffer_.size() < 4u + n) return Status::kNeedMore;
  payload->assign(buffer_, 4, n);
  buffer_.erase(0, 4u + n);
  return Status::kFrame;
}

std::string Request::ToJsonPayload() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::MakeNumber(version));
  obj.Set("op", JsonValue::MakeString(op));
  if (!id.empty()) obj.Set("id", JsonValue::MakeString(id));
  if (!trace_id.empty()) {
    JsonValue trace = JsonValue::MakeObject();
    trace.Set("id", JsonValue::MakeString(trace_id));
    if (trace_parent != 0) {
      trace.Set("parent",
                JsonValue::MakeNumber(static_cast<double>(trace_parent)));
    }
    obj.Set("trace", std::move(trace));
  }
  if (op == "query") {
    obj.Set("schema", JsonValue::MakeString(schema));
    obj.Set("data", JsonValue::MakeString(data));
    obj.Set("query", JsonValue::MakeString(query));
    obj.Set("scheme", JsonValue::MakeString(scheme));
    obj.Set("epsilon", JsonValue::MakeNumber(epsilon));
    obj.Set("delta", JsonValue::MakeNumber(delta));
    if (deadline_s > 0) obj.Set("deadline_s", JsonValue::MakeNumber(deadline_s));
    obj.Set("seed", JsonValue::MakeNumber(static_cast<double>(seed)));
    if (threads > 1) obj.Set("threads", JsonValue::MakeNumber(threads));
    if (want_record) obj.Set("record", JsonValue::MakeBool(true));
  }
  return obj.Serialize();
}

bool Request::FromJsonPayload(const std::string& payload, Request* out,
                              ErrorCode* code, std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!JsonValue::Parse(payload, &root, &parse_error) || !root.is_object()) {
    *code = ErrorCode::kBadRequest;
    *error = parse_error.empty() ? "request is not a JSON object"
                                 : parse_error;
    return false;
  }
  const JsonValue* v = root.Find("v");
  if (v == nullptr || !v->is_number()) {
    *code = ErrorCode::kBadVersion;
    *error = "missing protocol version field \"v\"";
    return false;
  }
  if (static_cast<int>(v->AsNumber()) != kProtocolVersion) {
    *code = ErrorCode::kBadVersion;
    *error = "unsupported protocol version " +
             std::to_string(static_cast<int>(v->AsNumber())) +
             " (server speaks " + std::to_string(kProtocolVersion) + ")";
    return false;
  }
  out->version = kProtocolVersion;
  out->op = root.GetString("op", "query");
  if (out->op != "query" && out->op != "stats" && out->op != "ping") {
    *code = ErrorCode::kBadRequest;
    *error = "unknown op \"" + out->op + "\"";
    return false;
  }
  out->id = root.GetString("id", "");
  const JsonValue* trace = root.Find("trace");
  if (trace != nullptr) {
    if (!trace->is_object()) {
      *code = ErrorCode::kBadRequest;
      *error = "\"trace\" must be an object";
      return false;
    }
    out->trace_id = trace->GetString("id", "");
    if (out->trace_id.empty()) {
      *code = ErrorCode::kBadRequest;
      *error = "\"trace\" needs a non-empty string \"id\"";
      return false;
    }
    if (out->trace_id.size() > kMaxTraceIdBytes) {
      *code = ErrorCode::kBadRequest;
      *error = "trace id longer than " + std::to_string(kMaxTraceIdBytes) +
               " bytes";
      return false;
    }
    const double parent = trace->GetNumber("parent", 0.0);
    if (parent < 0.0) {
      *code = ErrorCode::kBadRequest;
      *error = "trace parent must be a non-negative span id";
      return false;
    }
    out->trace_parent = static_cast<uint64_t>(parent);
  }
  if (out->op != "query") return true;

  out->schema = root.GetString("schema", "tpch");
  if (out->schema != "tpch" && out->schema != "tpcds") {
    *code = ErrorCode::kBadRequest;
    *error = "unknown schema \"" + out->schema + "\" (tpch|tpcds)";
    return false;
  }
  out->data = root.GetString("data", "");
  out->query = root.GetString("query", "");
  if (out->data.empty() || out->query.empty()) {
    *code = ErrorCode::kBadRequest;
    *error = "query requests need \"data\" and \"query\"";
    return false;
  }
  out->scheme = root.GetString("scheme", "KLM");
  out->epsilon = root.GetNumber("epsilon", 0.1);
  out->delta = root.GetNumber("delta", 0.25);
  if (!(out->epsilon > 0.0 && out->epsilon < 1.0) ||
      !(out->delta > 0.0 && out->delta < 1.0)) {
    *code = ErrorCode::kBadRequest;
    *error = "epsilon and delta must lie in (0, 1)";
    return false;
  }
  out->deadline_s = root.GetNumber("deadline_s", 0.0);
  out->seed = static_cast<uint64_t>(root.GetNumber("seed", 7));
  out->threads = static_cast<int>(root.GetNumber("threads", 1));
  if (out->threads < 1 || out->threads > 256) {
    *code = ErrorCode::kBadRequest;
    *error = "threads must lie in [1, 256]";
    return false;
  }
  out->want_record = root.GetBool("record", false);
  return true;
}

std::string Response::ToJsonPayload() const {
  // Hand-assembled so the raw embedded objects (run record, metrics) can
  // be spliced in without reparsing them.
  std::string out = "{\"v\":" + std::to_string(version);
  if (!id.empty()) out += ",\"id\":\"" + JsonEscape(id) + "\"";
  if (code != ErrorCode::kOk) {
    out += ",\"status\":\"error\",\"code\":" +
           std::to_string(static_cast<int>(code));
    out += ",\"code_name\":\"" + std::string(ErrorCodeName(code)) + "\"";
    out += ",\"error\":\"" + JsonEscape(error) + "\"";
    if (retry_after_s > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", retry_after_s);
      out += ",\"retry_after_s\":" + std::string(buf);
    }
    out += "}";
    return out;
  }
  out += ",\"status\":\"ok\"";
  if (pong) {
    out += ",\"pong\":true}";
    return out;
  }
  if (!metrics_json.empty() || !server_json.empty()) {
    if (!metrics_json.empty()) out += ",\"metrics\":" + metrics_json;
    if (!server_json.empty()) out += ",\"server\":" + server_json;
    out += "}";
    return out;
  }
  out += ",\"cache\":\"" + std::string(cache_hit ? "hit" : "miss") + "\"";
  out += ",\"timed_out\":" + std::string(timed_out ? "true" : "false");
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"preprocess_seconds\":%.9g",
                preprocess_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"scheme_seconds\":%.9g", scheme_seconds);
  out += buf;
  out += ",\"total_samples\":" + std::to_string(total_samples);
  if (timing.recorded) {
    out += ",\"timing\":{\"queue_wait_micros\":" +
           std::to_string(timing.queue_wait_micros);
    out += ",\"cache_micros\":" + std::to_string(timing.cache_micros);
    out += ",\"preprocess_micros\":" + std::to_string(timing.preprocess_micros);
    out += ",\"sample_micros\":" + std::to_string(timing.sample_micros);
    out += ",\"encode_micros\":" + std::to_string(timing.encode_micros);
    out += ",\"total_micros\":" + std::to_string(timing.total_micros) + "}";
  }
  out += ",\"answers\":[";
  bool first = true;
  for (const ResponseAnswer& a : answers) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.17g", a.frequency);
    out += "{\"tuple\":\"" + JsonEscape(a.tuple) +
           "\",\"frequency\":" + buf + "}";
  }
  out += "]";
  if (!run_record_json.empty()) out += ",\"run_record\":" + run_record_json;
  out += "}";
  return out;
}

bool Response::FromJsonPayload(const std::string& payload, Response* out,
                               std::string* error) {
  JsonValue root;
  if (!JsonValue::Parse(payload, &root, error) || !root.is_object()) {
    if (error != nullptr && error->empty()) {
      *error = "response is not a JSON object";
    }
    return false;
  }
  out->version = static_cast<int>(root.GetNumber("v", 0));
  out->id = root.GetString("id", "");
  const std::string status = root.GetString("status", "");
  if (status == "error") {
    out->code = static_cast<ErrorCode>(
        static_cast<int>(root.GetNumber("code", 500)));
    out->error = root.GetString("error", "unknown error");
    out->retry_after_s = root.GetNumber("retry_after_s", 0.0);
    return true;
  }
  if (status != "ok") {
    if (error != nullptr) *error = "response has no status field";
    return false;
  }
  out->code = ErrorCode::kOk;
  out->pong = root.GetBool("pong", false);
  out->cache_hit = root.GetString("cache", "miss") == "hit";
  out->timed_out = root.GetBool("timed_out", false);
  out->preprocess_seconds = root.GetNumber("preprocess_seconds", 0.0);
  out->scheme_seconds = root.GetNumber("scheme_seconds", 0.0);
  out->total_samples =
      static_cast<uint64_t>(root.GetNumber("total_samples", 0.0));
  const JsonValue* answers = root.Find("answers");
  if (answers != nullptr && answers->is_array()) {
    for (const JsonValue& a : answers->AsArray()) {
      ResponseAnswer answer;
      answer.tuple = a.GetString("tuple", "");
      answer.frequency = a.GetNumber("frequency", 0.0);
      out->answers.push_back(std::move(answer));
    }
  }
  const JsonValue* timing = root.Find("timing");
  if (timing != nullptr && timing->is_object()) {
    out->timing.recorded = true;
    out->timing.queue_wait_micros =
        static_cast<uint64_t>(timing->GetNumber("queue_wait_micros", 0.0));
    out->timing.cache_micros =
        static_cast<uint64_t>(timing->GetNumber("cache_micros", 0.0));
    out->timing.preprocess_micros =
        static_cast<uint64_t>(timing->GetNumber("preprocess_micros", 0.0));
    out->timing.sample_micros =
        static_cast<uint64_t>(timing->GetNumber("sample_micros", 0.0));
    out->timing.encode_micros =
        static_cast<uint64_t>(timing->GetNumber("encode_micros", 0.0));
    out->timing.total_micros =
        static_cast<uint64_t>(timing->GetNumber("total_micros", 0.0));
  }
  const JsonValue* record = root.Find("run_record");
  if (record != nullptr) out->run_record_json = record->Serialize();
  const JsonValue* metrics = root.Find("metrics");
  if (metrics != nullptr) out->metrics_json = metrics->Serialize();
  const JsonValue* server = root.Find("server");
  if (server != nullptr) out->server_json = server->Serialize();
  return true;
}

Response Response::MakeError(ErrorCode code, const std::string& message,
                             const std::string& id) {
  Response r;
  r.code = code;
  r.error = message;
  r.id = id;
  return r;
}

}  // namespace cqa::serve
