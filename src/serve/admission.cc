#include "serve/admission.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace cqa::serve {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : max_inflight_(options.max_inflight == 0 ? 1 : options.max_inflight),
      max_queue_(options.max_queue),
      inflight_gauge_(
          obs::Registry::Instance().GetGauge("serve.admission_inflight")),
      queued_gauge_(
          obs::Registry::Instance().GetGauge("serve.admission_queued")) {}

Admission AdmissionController::Enter(const Deadline& deadline) {
  MutexLock lock(mu_);
  if (shutdown_) return Admission::kShutdown;
  if (queued_ == 0 && inflight_ < max_inflight_) {
    ++inflight_;
    inflight_gauge_->Set(static_cast<int64_t>(inflight_));
    CQA_OBS_COUNT("serve.admission_admitted");
    return Admission::kAdmitted;
  }
  if (queued_ >= max_queue_) {
    ++shed_total_;
    CQA_OBS_COUNT("serve.admission_shed");
    return Admission::kShed;
  }
  const uint64_t ticket = next_ticket_++;
  ++queued_;
  queued_gauge_->Set(static_cast<int64_t>(queued_));
  CQA_OBS_OBSERVE("serve.admission_queue_depth", queued_);
  bool expired = false;
  while (!(shutdown_ ||
           (ticket == serving_ticket_ && inflight_ < max_inflight_))) {
    const double remaining = deadline.RemainingSeconds();
    if (remaining == std::numeric_limits<double>::infinity()) {
      slot_cv_.Wait(mu_);
      continue;
    }
    if (remaining <= 0.0) {
      expired = true;
      break;
    }
    slot_cv_.WaitForSeconds(mu_, remaining);
  }
  --queued_;
  queued_gauge_->Set(static_cast<int64_t>(queued_));
  if (shutdown_) {
    AdvancePast(ticket);
    return Admission::kShutdown;
  }
  if (expired) {
    AdvancePast(ticket);
    CQA_OBS_COUNT("serve.admission_expired");
    return Admission::kExpired;
  }
  // The wait condition held: this waiter is at the head with a free slot.
  ++serving_ticket_;
  // Tickets abandoned earlier may sit right behind; skip them so the
  // next live waiter sees its turn.
  while (abandoned_.erase(serving_ticket_) > 0) ++serving_ticket_;
  ++inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(inflight_));
  CQA_OBS_COUNT("serve.admission_admitted");
  slot_cv_.NotifyAll();
  return Admission::kAdmitted;
}

void AdmissionController::AdvancePast(uint64_t ticket) {
  // A waiter abandoning the queue must not stall the tickets behind it:
  // if it was the one being served next, pass the turn on; otherwise
  // remember the hole so the serving counter can skip it later.
  if (ticket == serving_ticket_) {
    ++serving_ticket_;
    while (abandoned_.erase(serving_ticket_) > 0) ++serving_ticket_;
    slot_cv_.NotifyAll();
  } else if (ticket > serving_ticket_) {
    abandoned_.insert(ticket);
  }
}

void AdmissionController::Leave(double service_seconds) {
  MutexLock lock(mu_);
  if (inflight_ > 0) --inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(inflight_));
  // EWMA with alpha 0.2: smooth enough to ride out one slow query, fresh
  // enough to track a workload shift within a handful of requests.
  ewma_service_seconds_ =
      0.8 * ewma_service_seconds_ + 0.2 * service_seconds;
  slot_cv_.NotifyAll();
}

double AdmissionController::RetryAfterSeconds() const {
  MutexLock lock(mu_);
  const double backlog =
      static_cast<double>(queued_ + external_queued_ + inflight_) /
      static_cast<double>(max_inflight_);
  return std::clamp(backlog * ewma_service_seconds_, 0.05, 60.0);
}

void AdmissionController::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  slot_cv_.NotifyAll();
}

size_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

size_t AdmissionController::queued() const {
  MutexLock lock(mu_);
  return queued_ + external_queued_;
}

void AdmissionController::NoteQueued(int64_t delta) {
  MutexLock lock(mu_);
  if (delta < 0 && external_queued_ < static_cast<size_t>(-delta)) {
    external_queued_ = 0;  // Defensive: never underflow the gauge.
  } else {
    external_queued_ += delta;
  }
  queued_gauge_->Set(static_cast<int64_t>(queued_ + external_queued_));
  if (delta > 0) {
    CQA_OBS_OBSERVE("serve.admission_queue_depth",
                    queued_ + external_queued_);
  }
}

void AdmissionController::NoteShed() {
  MutexLock lock(mu_);
  ++shed_total_;
  CQA_OBS_COUNT("serve.admission_shed");
}

void AdmissionController::NoteExpired() {
  MutexLock lock(mu_);
  CQA_OBS_COUNT("serve.admission_expired");
}

uint64_t AdmissionController::shed_total() const {
  MutexLock lock(mu_);
  return shed_total_;
}

}  // namespace cqa::serve
