#include "storage/block_index.h"

#include "common/macros.h"

namespace cqa {

RelationBlockIndex RelationBlockIndex::Build(const Relation& rel) {
  RelationBlockIndex index;
  index.annotations_.resize(rel.size());
  index.block_by_key_.reserve(rel.size());
  for (size_t row = 0; row < rel.size(); ++row) {
    Tuple key = rel.KeyOf(row);
    auto [it, inserted] =
        index.block_by_key_.emplace(std::move(key), index.blocks_.size());
    if (inserted) index.blocks_.emplace_back();
    std::vector<size_t>& block = index.blocks_[it->second];
    index.annotations_[row] =
        BlockAnnotation{it->second, block.size(), /*block_size=*/0};
    block.push_back(row);
  }
  for (size_t bid = 0; bid < index.blocks_.size(); ++bid) {
    const std::vector<size_t>& block = index.blocks_[bid];
    if (block.size() > 1) ++index.conflicting_blocks_;
    for (size_t row : block) {
      index.annotations_[row].block_size = block.size();
    }
  }
  return index;
}

std::optional<size_t> RelationBlockIndex::FindBlock(const Tuple& key) const {
  auto it = block_by_key_.find(key);
  if (it == block_by_key_.end()) return std::nullopt;
  return it->second;
}

BlockIndex BlockIndex::Build(const Database& db) {
  BlockIndex index;
  index.per_relation_.reserve(db.NumRelations());
  for (size_t id = 0; id < db.NumRelations(); ++id) {
    index.per_relation_.push_back(RelationBlockIndex::Build(db.relation(id)));
  }
  return index;
}

size_t BlockIndex::TotalBlocks() const {
  size_t total = 0;
  for (const RelationBlockIndex& r : per_relation_) total += r.NumBlocks();
  return total;
}

double BlockIndex::InconsistencyRatio(const Database& db) const {
  size_t conflicting_facts = 0;
  size_t total_facts = 0;
  for (size_t id = 0; id < per_relation_.size(); ++id) {
    const RelationBlockIndex& rbi = per_relation_[id];
    total_facts += db.relation(id).size();
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      if (rbi.block(bid).size() > 1) conflicting_facts += rbi.block(bid).size();
    }
  }
  if (total_facts == 0) return 0.0;
  return static_cast<double>(conflicting_facts) /
         static_cast<double>(total_facts);
}

}  // namespace cqa
