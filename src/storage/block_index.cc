#include "storage/block_index.h"

#include <algorithm>

#include "common/macros.h"

namespace cqa {

namespace {

/// Flattens an int column (decoding dictionary chunks) into one vector.
std::vector<int64_t> DecodeIntColumn(const Relation& rel, size_t col) {
  std::vector<int64_t> out;
  out.reserve(rel.size());
  rel.ForEachRun(col, [&](const ColumnRun& run) {
    if (run.encoding == SegmentEncoding::kDictionary) {
      for (size_t i = 0; i < run.length; ++i) {
        out.push_back(run.int_dict[run.codes[i]]);
      }
    } else {
      out.insert(out.end(), run.ints, run.ints + run.length);
    }
  });
  return out;
}

/// Chunk-statistics prefilter for the sorted-key fast path: can the key
/// column still be strictly ascending? Rejects without touching values
/// when a dictionary chunk holds duplicates (distinct < rows) or when
/// consecutive chunk [min, max] ranges fail to increase. `weak_bounds`
/// allows equal boundary values (the int-pair path, where ties break on
/// the second column).
bool ChunkBoundsAscending(const Relation& rel, size_t col, bool weak_bounds) {
  for (size_t c = 0; c < rel.NumChunks(); ++c) {
    const ChunkColumnStats& stats = rel.chunk_stats(c, col);
    if (!stats.valid) continue;
    if (!weak_bounds && stats.distinct != 0 &&
        stats.distinct < rel.chunk_rows(c)) {
      return false;
    }
    if (c > 0) {
      const ChunkColumnStats& prev = rel.chunk_stats(c - 1, col);
      if (prev.valid) {
        bool ok = weak_bounds ? !(stats.min < prev.max)
                              : prev.max < stats.min;
        if (!ok) return false;
      }
    }
  }
  return true;
}

bool StrictlyAscending(const std::vector<int64_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

}  // namespace

RelationBlockIndex RelationBlockIndex::Build(const Relation& rel) {
  RelationBlockIndex index;
  index.annotations_.resize(rel.size());
  if (rel.empty()) return index;

  const RelationSchema& rs = rel.schema();
  const std::vector<size_t>& kp = rs.key_positions();
  auto is_int = [&](size_t pos) {
    return rs.attribute(pos).type == ValueType::kInt;
  };
  if (rs.has_key() && kp.size() == 1 && is_int(kp[0])) {
    index.BuildIntKey(rel, kp[0]);
  } else if (rs.has_key() && kp.size() == 1 &&
             rs.attribute(kp[0]).type == ValueType::kString) {
    index.BuildStringKey(rel, kp[0]);
  } else if (rs.has_key() && kp.size() == 2 && is_int(kp[0]) &&
             is_int(kp[1])) {
    index.BuildIntPairKey(rel, kp[0], kp[1]);
  } else {
    index.BuildTupleKey(rel);
  }
  index.FinishSizes();
  return index;
}

void RelationBlockIndex::BuildIntKey(const Relation& rel, size_t col) {
  std::vector<int64_t> keys = DecodeIntColumn(rel, col);
  // Sorted-distinct fast path: when chunk statistics allow it and the
  // decoded column verifies strictly ascending, every key is distinct —
  // every block is a singleton with block id == row index, and grouping
  // needs no hash table at all.
  if (ChunkBoundsAscending(rel, col, /*weak_bounds=*/false) &&
      StrictlyAscending(keys)) {
    build_path_ = BuildPath::kSortedInt;
    blocks_.resize(keys.size());
    for (size_t row = 0; row < keys.size(); ++row) {
      blocks_[row].push_back(row);
      annotations_[row] = BlockAnnotation{row, 0, 0};
    }
    sorted_ints_ = std::move(keys);
    return;
  }
  build_path_ = BuildPath::kInt;
  block_by_int_.reserve(keys.size());
  for (size_t row = 0; row < keys.size(); ++row) {
    auto [it, inserted] = block_by_int_.emplace(keys[row], blocks_.size());
    if (inserted) blocks_.emplace_back();
    std::vector<size_t>& block = blocks_[it->second];
    annotations_[row] = BlockAnnotation{it->second, block.size(), 0};
    block.push_back(row);
  }
}

void RelationBlockIndex::BuildStringKey(const Relation& rel, size_t col) {
  build_path_ = BuildPath::kString;
  block_by_string_.reserve(rel.size());
  std::vector<size_t> code_block;  // Per-chunk code -> block id cache.
  rel.ForEachRun(col, [&](const ColumnRun& run) {
    if (run.encoding == SegmentEncoding::kDictionary) {
      // One string hash per distinct code per chunk; repeats hit the
      // interning cache instead of rehashing the string.
      code_block.assign(run.dict_size, SIZE_MAX);
      for (size_t i = 0; i < run.length; ++i) {
        uint32_t code = run.codes[i];
        size_t& cached = code_block[code];
        if (cached == SIZE_MAX) {
          auto [it, inserted] =
              block_by_string_.emplace(run.string_dict[code], blocks_.size());
          if (inserted) blocks_.emplace_back();
          cached = it->second;
        }
        std::vector<size_t>& block = blocks_[cached];
        annotations_[run.row0 + i] =
            BlockAnnotation{cached, block.size(), 0};
        block.push_back(run.row0 + i);
      }
    } else {
      for (size_t i = 0; i < run.length; ++i) {
        auto [it, inserted] =
            block_by_string_.emplace(run.strings[i], blocks_.size());
        if (inserted) blocks_.emplace_back();
        std::vector<size_t>& block = blocks_[it->second];
        annotations_[run.row0 + i] =
            BlockAnnotation{it->second, block.size(), 0};
        block.push_back(run.row0 + i);
      }
    }
  });
}

void RelationBlockIndex::BuildIntPairKey(const Relation& rel, size_t col_a,
                                         size_t col_b) {
  std::vector<int64_t> a = DecodeIntColumn(rel, col_a);
  std::vector<int64_t> b = DecodeIntColumn(rel, col_b);
  CQA_DCHECK(a.size() == b.size());
  // Sorted fast path under the lexicographic order: the first column's
  // chunk bounds must be non-decreasing, and the pairs strictly ascend.
  if (ChunkBoundsAscending(rel, col_a, /*weak_bounds=*/true)) {
    bool ascending = true;
    for (size_t i = 1; i < a.size() && ascending; ++i) {
      ascending = a[i - 1] < a[i] || (a[i - 1] == a[i] && b[i - 1] < b[i]);
    }
    if (ascending) {
      build_path_ = BuildPath::kSortedIntPair;
      blocks_.resize(a.size());
      sorted_int_pairs_.reserve(a.size());
      for (size_t row = 0; row < a.size(); ++row) {
        blocks_[row].push_back(row);
        annotations_[row] = BlockAnnotation{row, 0, 0};
        sorted_int_pairs_.emplace_back(a[row], b[row]);
      }
      return;
    }
  }
  build_path_ = BuildPath::kIntPair;
  block_by_int_pair_.reserve(a.size());
  for (size_t row = 0; row < a.size(); ++row) {
    auto [it, inserted] = block_by_int_pair_.emplace(
        std::make_pair(a[row], b[row]), blocks_.size());
    if (inserted) blocks_.emplace_back();
    std::vector<size_t>& block = blocks_[it->second];
    annotations_[row] = BlockAnnotation{it->second, block.size(), 0};
    block.push_back(row);
  }
}

void RelationBlockIndex::BuildTupleKey(const Relation& rel) {
  build_path_ = BuildPath::kTuple;
  block_by_tuple_.reserve(rel.size());
  for (size_t row = 0; row < rel.size(); ++row) {
    Tuple key = rel.KeyOf(row);
    auto [it, inserted] =
        block_by_tuple_.emplace(std::move(key), blocks_.size());
    if (inserted) blocks_.emplace_back();
    std::vector<size_t>& block = blocks_[it->second];
    annotations_[row] = BlockAnnotation{it->second, block.size(), 0};
    block.push_back(row);
  }
}

void RelationBlockIndex::FinishSizes() {
  for (size_t bid = 0; bid < blocks_.size(); ++bid) {
    const std::vector<size_t>& block = blocks_[bid];
    if (block.size() > 1) ++conflicting_blocks_;
    for (size_t row : block) {
      annotations_[row].block_size = block.size();
    }
  }
}

std::optional<size_t> RelationBlockIndex::FindBlock(const Tuple& key) const {
  switch (build_path_) {
    case BuildPath::kEmpty:
      return std::nullopt;
    case BuildPath::kTuple: {
      auto it = block_by_tuple_.find(key);
      if (it == block_by_tuple_.end()) return std::nullopt;
      return it->second;
    }
    case BuildPath::kInt: {
      if (key.size() != 1 || !key[0].is_int()) return std::nullopt;
      auto it = block_by_int_.find(key[0].AsInt());
      if (it == block_by_int_.end()) return std::nullopt;
      return it->second;
    }
    case BuildPath::kString: {
      if (key.size() != 1 || !key[0].is_string()) return std::nullopt;
      auto it = block_by_string_.find(key[0].AsString());
      if (it == block_by_string_.end()) return std::nullopt;
      return it->second;
    }
    case BuildPath::kIntPair: {
      if (key.size() != 2 || !key[0].is_int() || !key[1].is_int()) {
        return std::nullopt;
      }
      auto it = block_by_int_pair_.find(
          std::make_pair(key[0].AsInt(), key[1].AsInt()));
      if (it == block_by_int_pair_.end()) return std::nullopt;
      return it->second;
    }
    case BuildPath::kSortedInt: {
      if (key.size() != 1 || !key[0].is_int()) return std::nullopt;
      auto it = std::lower_bound(sorted_ints_.begin(), sorted_ints_.end(),
                                 key[0].AsInt());
      if (it == sorted_ints_.end() || *it != key[0].AsInt()) {
        return std::nullopt;
      }
      return static_cast<size_t>(it - sorted_ints_.begin());
    }
    case BuildPath::kSortedIntPair: {
      if (key.size() != 2 || !key[0].is_int() || !key[1].is_int()) {
        return std::nullopt;
      }
      std::pair<int64_t, int64_t> want{key[0].AsInt(), key[1].AsInt()};
      auto it = std::lower_bound(sorted_int_pairs_.begin(),
                                 sorted_int_pairs_.end(), want);
      if (it == sorted_int_pairs_.end() || *it != want) return std::nullopt;
      return static_cast<size_t>(it - sorted_int_pairs_.begin());
    }
  }
  return std::nullopt;
}

BlockIndex BlockIndex::Build(const Database& db) {
  BlockIndex index;
  index.per_relation_.reserve(db.NumRelations());
  for (size_t id = 0; id < db.NumRelations(); ++id) {
    index.per_relation_.push_back(RelationBlockIndex::Build(db.relation(id)));
  }
  return index;
}

size_t BlockIndex::TotalBlocks() const {
  size_t total = 0;
  for (const RelationBlockIndex& r : per_relation_) total += r.NumBlocks();
  return total;
}

double BlockIndex::InconsistencyRatio(const Database& db) const {
  size_t conflicting_facts = 0;
  size_t total_facts = 0;
  for (size_t id = 0; id < per_relation_.size(); ++id) {
    const RelationBlockIndex& rbi = per_relation_[id];
    total_facts += db.relation(id).size();
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      if (rbi.block(bid).size() > 1) conflicting_facts += rbi.block(bid).size();
    }
  }
  if (total_facts == 0) return 0.0;
  return static_cast<double>(conflicting_facts) /
         static_cast<double>(total_facts);
}

}  // namespace cqa
