// dbgen-compatible `.tbl` readers and writers. Writing streams straight
// out of column runs (no tuple materialization); reading appends into the
// relations' tail buffers and seals them, so loaded instances carry
// segment encodings and chunk statistics end to end.
#ifndef CQABENCH_STORAGE_TBL_IO_H_
#define CQABENCH_STORAGE_TBL_IO_H_

#include <string>

#include "storage/database.h"

namespace cqa {

/// dbgen-compatible `.tbl` serialization: one line per fact, fields
/// separated and terminated by '|' (the format TPC's dbgen/dsdgen emit
/// and the paper loads into PostgreSQL). Doubles round-trip exactly
/// (%.17g); strings must not contain '|' or newlines.

/// Writes one relation to `path`. On failure returns false and stores a
/// message in *error.
bool WriteTblFile(const Relation& relation, const std::string& path,
                  std::string* error);

/// Writes every relation of `db` as `<dir>/<relation>.tbl`. The directory
/// must exist.
bool WriteTblDirectory(const Database& db, const std::string& dir,
                       std::string* error);

/// Appends the facts of `path` to the named relation of *db, validating
/// arity and coercing each field to the attribute type. Seals the
/// relation's tail afterwards, so loaded instances are fully columnar.
bool ReadTblFile(Database* db, const std::string& relation_name,
                 const std::string& path, std::string* error);

/// Loads `<dir>/<relation>.tbl` for every relation of db's schema.
/// Missing files are an error (generated directories are complete).
bool ReadTblDirectory(Database* db, const std::string& dir,
                      std::string* error);

}  // namespace cqa

#endif  // CQABENCH_STORAGE_TBL_IO_H_
