#include "storage/chunk_stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace cqa {

namespace {

/// Bucket of an int value within [min, max]. Widths are computed in
/// unsigned arithmetic so max - min cannot overflow.
size_t IntBin(int64_t v, int64_t min, int64_t max) {
  uint64_t range = static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  uint64_t offset = static_cast<uint64_t>(v) - static_cast<uint64_t>(min);
  if (range < ChunkColumnStats::kHistogramBins) {
    return static_cast<size_t>(offset);
  }
  uint64_t width = range / ChunkColumnStats::kHistogramBins + 1;
  return static_cast<size_t>(offset / width);
}

size_t DoubleBin(double v, double min, double max) {
  if (!(max > min)) return 0;
  double frac = (v - min) / (max - min);
  if (!(frac > 0.0)) return 0;
  size_t bin = static_cast<size_t>(frac * ChunkColumnStats::kHistogramBins);
  return std::min(bin, ChunkColumnStats::kHistogramBins - 1);
}

}  // namespace

size_t ChunkColumnStats::BinOf(const Value& v) const {
  CQA_DCHECK(has_histogram);
  if (v.is_int()) return IntBin(v.AsInt(), min.AsInt(), max.AsInt());
  return DoubleBin(v.AsDouble(), min.AsDouble(), max.AsDouble());
}

bool ChunkColumnStats::MayContainEqual(const Value& v) const {
  if (!valid) return false;
  if (v.type() != min.type()) return false;
  if (v < min || max < v) return false;
  if (has_histogram && bins[BinOf(v)] == 0) return false;
  return true;
}

ChunkColumnStats BuildChunkColumnStats(const Segment& segment) {
  ChunkColumnStats stats;
  if (segment.size() == 0) return stats;
  stats.valid = true;

  ColumnRun run = segment.Run(0);
  if (run.encoding == SegmentEncoding::kDictionary) {
    // The dictionary is sorted: bounds are its ends, distinct its size.
    stats.distinct = static_cast<uint32_t>(run.dict_size);
    if (run.type == ValueType::kInt) {
      stats.min = Value(run.int_dict[0]);
      stats.max = Value(run.int_dict[run.dict_size - 1]);
    } else {
      stats.min = Value(run.string_dict[0]);
      stats.max = Value(run.string_dict[run.dict_size - 1]);
    }
  } else {
    switch (run.type) {
      case ValueType::kInt: {
        auto [lo, hi] = std::minmax_element(run.ints, run.ints + run.length);
        stats.min = Value(*lo);
        stats.max = Value(*hi);
        break;
      }
      case ValueType::kDouble: {
        auto [lo, hi] =
            std::minmax_element(run.doubles, run.doubles + run.length);
        stats.min = Value(*lo);
        stats.max = Value(*hi);
        break;
      }
      case ValueType::kString: {
        auto [lo, hi] =
            std::minmax_element(run.strings, run.strings + run.length);
        stats.min = Value(*lo);
        stats.max = Value(*hi);
        break;
      }
    }
  }

  if (run.type == ValueType::kString) return stats;  // min/max only.

  stats.has_histogram = true;
  if (run.type == ValueType::kInt) {
    int64_t min = stats.min.AsInt(), max = stats.max.AsInt();
    if (run.encoding == SegmentEncoding::kDictionary) {
      // One bucket lookup per dictionary entry, then scatter by code.
      size_t entry_bin[256];
      if (run.dict_size <= 256) {
        for (size_t d = 0; d < run.dict_size; ++d) {
          entry_bin[d] = IntBin(run.int_dict[d], min, max);
        }
        for (size_t i = 0; i < run.length; ++i) {
          ++stats.bins[entry_bin[run.codes[i]]];
        }
      } else {
        for (size_t i = 0; i < run.length; ++i) {
          ++stats.bins[IntBin(run.int_dict[run.codes[i]], min, max)];
        }
      }
    } else {
      for (size_t i = 0; i < run.length; ++i) {
        ++stats.bins[IntBin(run.ints[i], min, max)];
      }
    }
  } else {
    double min = stats.min.AsDouble(), max = stats.max.AsDouble();
    for (size_t i = 0; i < run.length; ++i) {
      ++stats.bins[DoubleBin(run.doubles[i], min, max)];
    }
  }
  return stats;
}

}  // namespace cqa
