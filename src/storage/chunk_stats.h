// Per-chunk, per-column statistics for scan pruning: inclusive min/max
// bounds, a small equi-width histogram for numeric columns, and the exact
// distinct count when the segment is dictionary-encoded. The only contract
// is one-sided: MayContainEqual never returns false for a value the chunk
// holds (a false positive merely costs a scan), which is what makes the
// pruning in Relation::ScanMatching and the sorted-unique fast path in
// block construction safe (docs/storage.md, "Chunk statistics").
#ifndef CQABENCH_STORAGE_CHUNK_STATS_H_
#define CQABENCH_STORAGE_CHUNK_STATS_H_

#include <cstdint>

#include "storage/segment.h"

namespace cqa {

/// Statistics of one column within one sealed chunk.
struct ChunkColumnStats {
  static constexpr size_t kHistogramBins = 16;

  /// False for empty chunks: no bounds, MayContainEqual says no.
  bool valid = false;

  /// Inclusive bounds over the chunk's values (same type as the column).
  Value min;
  Value max;

  /// Exact distinct count when the segment is dictionary-encoded;
  /// 0 = unknown (plain segments do not pay a distinct pass).
  uint32_t distinct = 0;

  /// Equi-width histogram over [min, max] for int and double columns
  /// (string columns keep min/max only and leave has_histogram false).
  /// bins[i] counts the chunk's values mapped into bucket i; a zero bucket
  /// proves the absence of every value that maps there.
  bool has_histogram = false;
  uint32_t bins[kHistogramBins] = {};

  /// Bucket index of `v` under this histogram's [min, max] split. Only
  /// meaningful when has_histogram and min <= v <= max.
  size_t BinOf(const Value& v) const;

  /// True unless the statistics *prove* `v` is absent from the chunk
  /// (type mismatch, out of [min, max], or an empty histogram bucket).
  bool MayContainEqual(const Value& v) const;
};

/// Builds the statistics of one sealed segment.
ChunkColumnStats BuildChunkColumnStats(const Segment& segment);

}  // namespace cqa

#endif  // CQABENCH_STORAGE_CHUNK_STATS_H_
