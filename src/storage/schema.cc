#include "storage/schema.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace cqa {

RelationSchema::RelationSchema(std::string name,
                               std::vector<Attribute> attributes,
                               std::vector<size_t> key_positions)
    : name_(std::move(name)),
      attributes_(std::move(attributes)),
      key_positions_(std::move(key_positions)) {
  for (size_t pos : key_positions_) {
    CQA_CHECK_MSG(pos < attributes_.size(), name_.c_str());
  }
}

bool RelationSchema::IsKeyPosition(size_t pos) const {
  return std::find(key_positions_.begin(), key_positions_.end(), pos) !=
         key_positions_.end();
}

std::optional<size_t> RelationSchema::FindAttribute(
    const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string RelationSchema::ToString() const {
  std::ostringstream os;
  os << name_ << '(';
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << ", ";
    if (IsKeyPosition(i)) os << '*';
    os << attributes_[i].name << ':' << ValueTypeName(attributes_[i].type);
  }
  os << ')';
  return os.str();
}

size_t Schema::AddRelation(RelationSchema relation) {
  CQA_CHECK_MSG(by_name_.find(relation.name()) == by_name_.end(),
                relation.name().c_str());
  size_t id = relations_.size();
  by_name_.emplace(relation.name(), id);
  relations_.push_back(std::move(relation));
  return id;
}

std::optional<size_t> Schema::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

size_t Schema::RelationId(const std::string& name) const {
  auto id = FindRelation(name);
  CQA_CHECK_MSG(id.has_value(), name.c_str());
  return *id;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (const RelationSchema& r : relations_) os << r.ToString() << '\n';
  return os.str();
}

}  // namespace cqa
