// Typed per-column value segments: the storage unit of the chunked
// columnar data plane (docs/storage.md). A Segment holds one column of one
// sealed chunk, either as a plain typed vector or dictionary-encoded
// (sorted duplicate-free dictionary + uint32 codes). Sealing picks the
// encoding from the value distribution; readers consume segments either
// through point accessors (GetValue/ValueEquals) or as raw ColumnRun spans
// via Run(), the zero-copy currency of the segment-iteration layer.
// Segments are immutable after Seal* and safe to share across threads.
#ifndef CQABENCH_STORAGE_SEGMENT_H_
#define CQABENCH_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace cqa {

/// How a sealed segment physically stores its column.
enum class SegmentEncoding { kPlain, kDictionary };

/// Returns "plain" or "dictionary".
const char* SegmentEncodingName(SegmentEncoding encoding);

/// A contiguous typed run of one column: raw pointers into a segment (or a
/// relation's unsealed tail buffer). Valid until the owning relation is
/// mutated. Exactly one payload family is populated:
///   * plain runs set one of `ints`/`doubles`/`strings`;
///   * dictionary runs set `codes` plus `int_dict` or `string_dict`, where
///     codes[i] indexes the sorted duplicate-free dictionary.
struct ColumnRun {
  ValueType type = ValueType::kInt;
  SegmentEncoding encoding = SegmentEncoding::kPlain;
  size_t row0 = 0;    ///< Global row index of the run's first value.
  size_t length = 0;  ///< Number of values in the run.

  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const std::string* strings = nullptr;

  const uint32_t* codes = nullptr;
  const int64_t* int_dict = nullptr;
  const std::string* string_dict = nullptr;
  size_t dict_size = 0;

  /// Materializes the value at run-local index `i` (i < length).
  Value ValueAt(size_t i) const;
};

/// One column of one sealed chunk. Construction goes through the Seal*
/// factories, which consume the plain append buffer and choose the
/// encoding (docs/storage.md, "Encoding selection"):
///   * int columns dictionary-encode when 2·distinct <= rows (4-byte codes
///     plus an 8-byte dictionary must undercut 8-byte plain values);
///   * string columns dictionary-encode whenever any value repeats
///     (all-distinct columns stay plain — a dictionary would only add the
///     code array on top of the same strings);
///   * double columns always stay plain (bit-exact round-trip matters more
///     than the rare low-cardinality double column).
/// Dictionaries are sorted ascending and duplicate-free, so code order
/// mirrors value order and min/max fall out of the dictionary ends.
class Segment {
 public:
  Segment() = default;

  static Segment SealInts(std::vector<int64_t> values);
  static Segment SealDoubles(std::vector<double> values);
  static Segment SealStrings(std::vector<std::string> values);

  ValueType type() const { return type_; }
  SegmentEncoding encoding() const { return encoding_; }
  size_t size() const { return size_; }

  /// Materializes the value at index `i`.
  Value GetValue(size_t i) const;

  /// Compares the value at index `i` against `v` without materializing
  /// (no string copies; dictionary lookups touch the dict entry in place).
  bool ValueEquals(size_t i, const Value& v) const;

  /// The whole segment as a raw run starting at global row `row0`.
  ColumnRun Run(size_t row0) const;

  /// Dictionary code of `v` if this segment is dictionary-encoded and `v`
  /// is present; kNoCode otherwise (also for plain segments).
  static constexpr uint32_t kNoCode = UINT32_MAX;
  uint32_t FindCode(const Value& v) const;

  /// Number of dictionary entries (0 for plain segments).
  size_t dict_size() const;

  /// Heap footprint in bytes (payload vectors, not the object header).
  size_t MemoryBytes() const;

 private:
  ValueType type_ = ValueType::kInt;
  SegmentEncoding encoding_ = SegmentEncoding::kPlain;
  size_t size_ = 0;

  // Plain payloads (one used, by type_).
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;

  // Dictionary payloads.
  std::vector<uint32_t> codes_;
  std::vector<int64_t> int_dict_;
  std::vector<std::string> string_dict_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_SEGMENT_H_
