// A relation stored as chunked columnar segments. Facts append into plain
// per-column tail buffers; every kDefaultChunkCapacity rows the tail is
// sealed into an immutable chunk of typed Segments (dictionary-encoded
// where profitable) with per-column ChunkColumnStats. Row indexes are
// stable (no deletion), which keeps FactRef, block ids and tuple ids valid
// while noise is injected. Readers either consume column runs through
// ForEachRun/ScanMatching (the vectorized path) or materialize tuples
// through the row-view adapter (row/rows/KeyOf), which preserves the
// pre-columnar API. See docs/storage.md for the full storage contract.
#ifndef CQABENCH_STORAGE_RELATION_H_
#define CQABENCH_STORAGE_RELATION_H_

#include <functional>
#include <vector>

#include "storage/chunk_stats.h"
#include "storage/schema.h"
#include "storage/segment.h"
#include "storage/tuple.h"

namespace cqa {

/// A fact of the database, addressed globally as (relation id, row index).
struct FactRef {
  size_t relation_id = 0;
  size_t row = 0;

  friend bool operator==(const FactRef& a, const FactRef& b) {
    return a.relation_id == b.relation_id && a.row == b.row;
  }
  friend bool operator<(const FactRef& a, const FactRef& b) {
    if (a.relation_id != b.relation_id) return a.relation_id < b.relation_id;
    return a.row < b.row;
  }
};

struct FactRefHash {
  size_t operator()(const FactRef& f) const {
    size_t seed = f.relation_id;
    HashCombine(seed, f.row);
    return seed;
  }
};

/// An in-memory instance of one relation: a bag of facts in insertion
/// order, stored column-wise in chunks.
class Relation {
 public:
  /// Rows per sealed chunk. Small enough that a chunk's working set stays
  /// cache-resident during scans, large enough to amortize the dictionary
  /// sort at seal time.
  static constexpr size_t kDefaultChunkCapacity = 4096;

  explicit Relation(const RelationSchema* schema,
                    size_t chunk_capacity = kDefaultChunkCapacity);

  const RelationSchema& schema() const { return *schema_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  // --- Row-view compatibility adapter -----------------------------------
  // The pre-columnar tuple API, kept source-compatible for samplers,
  // repairs, audits and tests. row() and rows() materialize: hot paths
  // should use ValueAt/ValueEquals/ForEachRun instead.

  /// Materializes row `i` as a tuple.
  Tuple row(size_t i) const;

  /// Materializes every row (test/tooling convenience, O(facts) copies).
  std::vector<Tuple> rows() const;

  /// Extracts the key value of row `i` (the key projection; the whole
  /// tuple if the relation has no key).
  Tuple KeyOf(size_t i) const;

  /// Projects row `i` onto `positions`, reading only those columns.
  Tuple ProjectRow(size_t i, const std::vector<size_t>& positions) const;

  // --- Point access over columns ----------------------------------------

  /// Materializes the value at (row, column).
  Value ValueAt(size_t row, size_t col) const;

  /// Compares the value at (row, column) against `v` without
  /// materializing (no string copies).
  bool ValueEquals(size_t row, size_t col, const Value& v) const;

  /// True iff rows `a` and `b` agree on every column.
  bool RowsEqual(size_t a, size_t b) const;

  // --- Mutation ---------------------------------------------------------

  /// Appends a tuple; aborts if the arity or a value type does not match
  /// the schema. Returns the new row index.
  size_t Insert(Tuple t);

  /// Seals the open tail into a (possibly short) chunk so its values gain
  /// an encoding and statistics. Called by the generators and tbl loader
  /// after bulk builds; appending afterwards opens a fresh tail.
  void SealTail();

  // --- Chunked columnar structure ---------------------------------------

  /// Number of sealed chunks (the open tail is not a chunk).
  size_t NumChunks() const { return chunks_.size(); }
  size_t chunk_rows(size_t c) const { return chunks_[c].rows; }
  size_t chunk_row0(size_t c) const { return chunks_[c].row0; }
  const Segment& chunk_segment(size_t c, size_t col) const {
    return chunks_[c].columns[col];
  }
  const ChunkColumnStats& chunk_stats(size_t c, size_t col) const {
    return chunks_[c].stats[col];
  }
  /// Rows living in the unsealed tail.
  size_t tail_rows() const { return tail_rows_; }

  // --- Segment iteration ------------------------------------------------

  /// Calls `fn(const ColumnRun&)` for each run of column `col`: sealed
  /// chunks in order, then the open tail (as a plain run).
  void ForEachRun(size_t col, const std::function<void(const ColumnRun&)>& fn)
      const;

  /// Enumerates rows whose columns at `positions` equal `key` pairwise, in
  /// ascending row order, skipping chunks whose statistics prove a
  /// mismatch. Dictionary columns compare codes (one dictionary probe per
  /// chunk). `fn` returns false to stop. Returns false iff stopped.
  bool ScanMatching(const std::vector<size_t>& positions, const Tuple& key,
                    const std::function<bool(size_t)>& fn) const;

  /// Chunks skipped by ScanMatching statistics since construction
  /// (bench/test observability).
  size_t chunks_pruned() const { return chunks_pruned_; }

  /// Heap footprint of all segments and tail buffers, in bytes.
  size_t MemoryBytes() const;

 private:
  struct Chunk {
    size_t row0 = 0;
    size_t rows = 0;
    std::vector<Segment> columns;        // One per attribute.
    std::vector<ChunkColumnStats> stats; // Parallel to columns.
  };

  /// Plain append buffer of one column (only the schema-typed vector is
  /// used).
  struct TailColumn {
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
  };

  /// (chunk index or kTailChunk, offset within it) of a global row.
  static constexpr size_t kTailChunk = SIZE_MAX;
  size_t ChunkOf(size_t row, size_t* offset) const;

  void SealTailChunk();
  Value TailValue(size_t offset, size_t col) const;

  const RelationSchema* schema_;  // Owned by the Database's Schema.
  size_t chunk_capacity_;
  size_t num_rows_ = 0;
  size_t tail_rows_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<TailColumn> tail_;
  // True while every sealed chunk holds exactly chunk_capacity_ rows, so
  // row -> chunk is a division instead of a binary search.
  bool regular_ = true;
  mutable size_t chunks_pruned_ = 0;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_RELATION_H_
