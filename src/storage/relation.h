#ifndef CQABENCH_STORAGE_RELATION_H_
#define CQABENCH_STORAGE_RELATION_H_

#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace cqa {

/// A fact of the database, addressed globally as (relation id, row index).
struct FactRef {
  size_t relation_id = 0;
  size_t row = 0;

  friend bool operator==(const FactRef& a, const FactRef& b) {
    return a.relation_id == b.relation_id && a.row == b.row;
  }
  friend bool operator<(const FactRef& a, const FactRef& b) {
    if (a.relation_id != b.relation_id) return a.relation_id < b.relation_id;
    return a.row < b.row;
  }
};

struct FactRefHash {
  size_t operator()(const FactRef& f) const {
    size_t seed = f.relation_id;
    HashCombine(seed, f.row);
    return seed;
  }
};

/// An in-memory instance of one relation: a bag of tuples in insertion
/// order. Row indexes are stable (no deletion), which lets FactRef, block
/// ids and tuple ids stay valid while noise is injected.
class Relation {
 public:
  explicit Relation(const RelationSchema* schema) : schema_(schema) {}

  const RelationSchema& schema() const { return *schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a tuple; aborts if the arity does not match the schema.
  /// Returns the new row index.
  size_t Insert(Tuple t);

  /// Extracts the key value of row `i` (the key projection; the whole tuple
  /// if the relation has no key).
  Tuple KeyOf(size_t i) const;

 private:
  const RelationSchema* schema_;  // Owned by the Database's Schema.
  std::vector<Tuple> rows_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_RELATION_H_
