// Conflict-block construction over the columnar storage plane: groups each
// relation's facts by primary-key value into blocks, the in-memory
// equivalent of the paper's Q_R view. Block ids and tuple ids are assigned
// by first appearance in row order — identical across every build path, so
// synopses stay bit-for-bit reproducible. Construction is vectorized over
// column runs: single-int, single-string and int-pair keys group through
// typed hash maps with one dictionary probe per distinct code per chunk,
// and key columns that chunk statistics prove strictly ascending skip
// hashing entirely (every block is a singleton). Everything else falls
// back to tuple-keyed grouping.
#ifndef CQABENCH_STORAGE_BLOCK_INDEX_H_
#define CQABENCH_STORAGE_BLOCK_INDEX_H_

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/database.h"

namespace cqa {

/// Per-row block annotation: the in-memory equivalent of the paper's
/// `Q_R` SQL view (Appendix C), which tags every tuple with
///   bid  = dense_rank()  OVER (ORDER BY key)          — block identifier
///   tid  = row_number()  OVER (PARTITION BY key ...)  — position in block
///   kcnt = count(*)      OVER (PARTITION BY key)      — block cardinality
/// Identifiers are assigned by first appearance instead of sort order; the
/// approximation schemes are oblivious to the concrete numbering (§5).
struct BlockAnnotation {
  size_t block_id = 0;
  size_t tuple_id = 0;
  size_t block_size = 0;
};

/// Blocks of one relation: facts grouped by key value.
class RelationBlockIndex {
 public:
  RelationBlockIndex() = default;

  /// Builds the index over `rel`. A relation without a key yields one
  /// block per distinct whole tuple (its facts are never in conflict).
  static RelationBlockIndex Build(const Relation& rel);

  size_t NumBlocks() const { return blocks_.size(); }

  /// Row indexes of block `bid`, in tuple-id order.
  const std::vector<size_t>& block(size_t bid) const { return blocks_[bid]; }

  const BlockAnnotation& annotation(size_t row) const {
    return annotations_[row];
  }

  /// Block holding the given key value, if any.
  std::optional<size_t> FindBlock(const Tuple& key) const;

  /// Number of non-singleton blocks (blocks witnessing inconsistency).
  size_t NumConflictingBlocks() const { return conflicting_blocks_; }

  /// Which grouping strategy Build picked (bench/test observability).
  enum class BuildPath { kEmpty, kTuple, kInt, kString, kIntPair,
                         kSortedInt, kSortedIntPair };
  BuildPath build_path() const { return build_path_; }

 private:
  struct IntPairHash {
    size_t operator()(const std::pair<int64_t, int64_t>& p) const {
      size_t seed = std::hash<int64_t>()(p.first);
      HashCombine(seed, std::hash<int64_t>()(p.second));
      return seed;
    }
  };

  void BuildIntKey(const Relation& rel, size_t col);
  void BuildStringKey(const Relation& rel, size_t col);
  void BuildIntPairKey(const Relation& rel, size_t col_a, size_t col_b);
  void BuildTupleKey(const Relation& rel);
  void FinishSizes();

  std::vector<std::vector<size_t>> blocks_;
  std::vector<BlockAnnotation> annotations_;
  size_t conflicting_blocks_ = 0;
  BuildPath build_path_ = BuildPath::kEmpty;

  // Key lookup: the structure matching build_path_ is populated.
  std::unordered_map<Tuple, size_t, TupleHash> block_by_tuple_;
  std::unordered_map<int64_t, size_t> block_by_int_;
  std::unordered_map<std::string, size_t> block_by_string_;
  std::unordered_map<std::pair<int64_t, int64_t>, size_t, IntPairHash>
      block_by_int_pair_;
  // Sorted paths: block id == row index; lookup is a binary search.
  std::vector<int64_t> sorted_ints_;
  std::vector<std::pair<int64_t, int64_t>> sorted_int_pairs_;
};

/// Block structure of a whole database: one RelationBlockIndex per relation.
class BlockIndex {
 public:
  /// Builds indexes for every relation of `db`.
  static BlockIndex Build(const Database& db);

  const RelationBlockIndex& relation(size_t relation_id) const {
    return per_relation_[relation_id];
  }

  size_t NumRelations() const { return per_relation_.size(); }

  /// Total number of blocks across relations.
  size_t TotalBlocks() const;

  /// Fraction of facts that live in a non-singleton block.
  double InconsistencyRatio(const Database& db) const;

 private:
  std::vector<RelationBlockIndex> per_relation_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_BLOCK_INDEX_H_
