#ifndef CQABENCH_STORAGE_BLOCK_INDEX_H_
#define CQABENCH_STORAGE_BLOCK_INDEX_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/database.h"

namespace cqa {

/// Per-row block annotation: the in-memory equivalent of the paper's
/// `Q_R` SQL view (Appendix C), which tags every tuple with
///   bid  = dense_rank()  OVER (ORDER BY key)          — block identifier
///   tid  = row_number()  OVER (PARTITION BY key ...)  — position in block
///   kcnt = count(*)      OVER (PARTITION BY key)      — block cardinality
/// Identifiers are assigned by first appearance instead of sort order; the
/// approximation schemes are oblivious to the concrete numbering (§5).
struct BlockAnnotation {
  size_t block_id = 0;
  size_t tuple_id = 0;
  size_t block_size = 0;
};

/// Blocks of one relation: facts grouped by key value.
class RelationBlockIndex {
 public:
  RelationBlockIndex() = default;

  /// Builds the index over `rel`. A relation without a key yields singleton
  /// blocks only (each fact is its own block).
  static RelationBlockIndex Build(const Relation& rel);

  size_t NumBlocks() const { return blocks_.size(); }

  /// Row indexes of block `bid`, in tuple-id order.
  const std::vector<size_t>& block(size_t bid) const { return blocks_[bid]; }

  const BlockAnnotation& annotation(size_t row) const {
    return annotations_[row];
  }

  /// Block holding the given key value, if any.
  std::optional<size_t> FindBlock(const Tuple& key) const;

  /// Number of non-singleton blocks (blocks witnessing inconsistency).
  size_t NumConflictingBlocks() const { return conflicting_blocks_; }

 private:
  std::vector<std::vector<size_t>> blocks_;
  std::vector<BlockAnnotation> annotations_;
  std::unordered_map<Tuple, size_t, TupleHash> block_by_key_;
  size_t conflicting_blocks_ = 0;
};

/// Block structure of a whole database: one RelationBlockIndex per relation.
class BlockIndex {
 public:
  /// Builds indexes for every relation of `db`.
  static BlockIndex Build(const Database& db);

  const RelationBlockIndex& relation(size_t relation_id) const {
    return per_relation_[relation_id];
  }

  size_t NumRelations() const { return per_relation_.size(); }

  /// Total number of blocks across relations.
  size_t TotalBlocks() const;

  /// Fraction of facts that live in a non-singleton block.
  double InconsistencyRatio(const Database& db) const;

 private:
  std::vector<RelationBlockIndex> per_relation_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_BLOCK_INDEX_H_
