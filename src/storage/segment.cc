#include "storage/segment.h"

#include <algorithm>

#include "common/macros.h"

namespace cqa {

const char* SegmentEncodingName(SegmentEncoding encoding) {
  switch (encoding) {
    case SegmentEncoding::kPlain:
      return "plain";
    case SegmentEncoding::kDictionary:
      return "dictionary";
  }
  return "?";
}

Value ColumnRun::ValueAt(size_t i) const {
  CQA_DCHECK(i < length);
  if (encoding == SegmentEncoding::kDictionary) {
    uint32_t code = codes[i];
    CQA_DCHECK(code < dict_size);
    if (type == ValueType::kInt) return Value(int_dict[code]);
    return Value(string_dict[code]);
  }
  switch (type) {
    case ValueType::kInt:
      return Value(ints[i]);
    case ValueType::kDouble:
      return Value(doubles[i]);
    case ValueType::kString:
      return Value(strings[i]);
  }
  return Value();
}

namespace {

/// Builds a sorted duplicate-free dictionary plus per-row codes.
template <typename T>
void BuildDictionary(const std::vector<T>& values, std::vector<T>* dict,
                     std::vector<uint32_t>* codes) {
  *dict = values;
  std::sort(dict->begin(), dict->end());
  dict->erase(std::unique(dict->begin(), dict->end()), dict->end());
  // The erase keeps the full-column allocation; a low-cardinality
  // dictionary must not pin rows*sizeof(T) of dead capacity.
  dict->shrink_to_fit();
  codes->reserve(values.size());
  for (const T& v : values) {
    auto it = std::lower_bound(dict->begin(), dict->end(), v);
    codes->push_back(static_cast<uint32_t>(it - dict->begin()));
  }
}

/// Number of distinct values (sort-based, consumes a scratch copy).
template <typename T>
size_t CountDistinct(const std::vector<T>& values) {
  std::vector<T> scratch = values;
  std::sort(scratch.begin(), scratch.end());
  return static_cast<size_t>(
      std::unique(scratch.begin(), scratch.end()) - scratch.begin());
}

}  // namespace

Segment Segment::SealInts(std::vector<int64_t> values) {
  Segment s;
  s.type_ = ValueType::kInt;
  s.size_ = values.size();
  size_t distinct = values.empty() ? 0 : CountDistinct(values);
  if (!values.empty() && 2 * distinct <= values.size()) {
    s.encoding_ = SegmentEncoding::kDictionary;
    BuildDictionary(values, &s.int_dict_, &s.codes_);
  } else {
    s.encoding_ = SegmentEncoding::kPlain;
    s.ints_ = std::move(values);
  }
  return s;
}

Segment Segment::SealDoubles(std::vector<double> values) {
  Segment s;
  s.type_ = ValueType::kDouble;
  s.size_ = values.size();
  s.encoding_ = SegmentEncoding::kPlain;
  s.doubles_ = std::move(values);
  return s;
}

Segment Segment::SealStrings(std::vector<std::string> values) {
  Segment s;
  s.type_ = ValueType::kString;
  s.size_ = values.size();
  size_t distinct = values.empty() ? 0 : CountDistinct(values);
  if (!values.empty() && distinct < values.size()) {
    s.encoding_ = SegmentEncoding::kDictionary;
    BuildDictionary(values, &s.string_dict_, &s.codes_);
  } else {
    s.encoding_ = SegmentEncoding::kPlain;
    s.strings_ = std::move(values);
  }
  return s;
}

Value Segment::GetValue(size_t i) const {
  CQA_DCHECK(i < size_);
  if (encoding_ == SegmentEncoding::kDictionary) {
    uint32_t code = codes_[i];
    if (type_ == ValueType::kInt) return Value(int_dict_[code]);
    return Value(string_dict_[code]);
  }
  switch (type_) {
    case ValueType::kInt:
      return Value(ints_[i]);
    case ValueType::kDouble:
      return Value(doubles_[i]);
    case ValueType::kString:
      return Value(strings_[i]);
  }
  return Value();
}

bool Segment::ValueEquals(size_t i, const Value& v) const {
  CQA_DCHECK(i < size_);
  if (v.type() != type_) return false;
  if (encoding_ == SegmentEncoding::kDictionary) {
    uint32_t code = codes_[i];
    if (type_ == ValueType::kInt) return int_dict_[code] == v.AsInt();
    return string_dict_[code] == v.AsString();
  }
  switch (type_) {
    case ValueType::kInt:
      return ints_[i] == v.AsInt();
    case ValueType::kDouble:
      return doubles_[i] == v.AsDouble();
    case ValueType::kString:
      return strings_[i] == v.AsString();
  }
  return false;
}

ColumnRun Segment::Run(size_t row0) const {
  ColumnRun run;
  run.type = type_;
  run.encoding = encoding_;
  run.row0 = row0;
  run.length = size_;
  if (encoding_ == SegmentEncoding::kDictionary) {
    run.codes = codes_.data();
    run.int_dict = int_dict_.data();
    run.string_dict = string_dict_.data();
    run.dict_size = dict_size();
  } else {
    run.ints = ints_.data();
    run.doubles = doubles_.data();
    run.strings = strings_.data();
  }
  return run;
}

uint32_t Segment::FindCode(const Value& v) const {
  if (encoding_ != SegmentEncoding::kDictionary || v.type() != type_) {
    return kNoCode;
  }
  if (type_ == ValueType::kInt) {
    auto it = std::lower_bound(int_dict_.begin(), int_dict_.end(), v.AsInt());
    if (it == int_dict_.end() || *it != v.AsInt()) return kNoCode;
    return static_cast<uint32_t>(it - int_dict_.begin());
  }
  auto it = std::lower_bound(string_dict_.begin(), string_dict_.end(),
                             v.AsString());
  if (it == string_dict_.end() || *it != v.AsString()) return kNoCode;
  return static_cast<uint32_t>(it - string_dict_.begin());
}

size_t Segment::dict_size() const {
  if (encoding_ != SegmentEncoding::kDictionary) return 0;
  return type_ == ValueType::kInt ? int_dict_.size() : string_dict_.size();
}

size_t Segment::MemoryBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(uint32_t) +
                 int_dict_.capacity() * sizeof(int64_t);
  for (const std::string& s : strings_) bytes += sizeof(s) + s.capacity();
  for (const std::string& s : string_dict_) bytes += sizeof(s) + s.capacity();
  return bytes;
}

}  // namespace cqa
