#include "storage/database.h"

#include <unordered_map>

#include "common/macros.h"

namespace cqa {

Database::Database(const Schema* schema) : schema_(schema) {
  CQA_CHECK(schema != nullptr);
  relations_.reserve(schema->NumRelations());
  for (size_t id = 0; id < schema->NumRelations(); ++id) {
    relations_.emplace_back(&schema->relation(id));
  }
}

Relation& Database::relation(const std::string& name) {
  return relations_[schema_->RelationId(name)];
}

const Relation& Database::relation(const std::string& name) const {
  return relations_[schema_->RelationId(name)];
}

FactRef Database::Insert(size_t relation_id, Tuple t) {
  CQA_CHECK(relation_id < relations_.size());
  size_t row = relations_[relation_id].Insert(std::move(t));
  return FactRef{relation_id, row};
}

FactRef Database::Insert(const std::string& relation, Tuple t) {
  return Insert(schema_->RelationId(relation), std::move(t));
}

size_t Database::NumFacts() const {
  size_t total = 0;
  for (const Relation& r : relations_) total += r.size();
  return total;
}

bool Database::SatisfiesKeys() const {
  return FindKeyViolations(/*limit=*/1).empty();
}

std::vector<KeyViolation> Database::FindKeyViolations(size_t limit) const {
  std::vector<KeyViolation> violations;
  for (size_t id = 0; id < relations_.size(); ++id) {
    const Relation& rel = relations_[id];
    if (!rel.schema().has_key()) continue;
    std::unordered_map<Tuple, size_t, TupleHash> first_row;
    first_row.reserve(rel.size());
    for (size_t row = 0; row < rel.size(); ++row) {
      Tuple key = rel.KeyOf(row);
      auto [it, inserted] = first_row.emplace(std::move(key), row);
      if (!inserted && !rel.RowsEqual(it->second, row)) {
        violations.push_back(
            KeyViolation{FactRef{id, it->second}, FactRef{id, row}});
        if (limit != 0 && violations.size() >= limit) return violations;
      }
    }
  }
  return violations;
}

void Database::SealStorage() {
  for (Relation& r : relations_) r.SealTail();
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const Relation& r : relations_) bytes += r.MemoryBytes();
  return bytes;
}

Database Database::Clone() const {
  Database copy(schema_);
  copy.relations_ = relations_;
  return copy;
}

}  // namespace cqa
