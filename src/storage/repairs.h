// Repair counting and enumeration over the conflict-block structure: the
// exponential-time oracles (|rep(D, Σ)|, ForEachRepair, MaterializeRepair)
// that tests and exact baselines check the approximation schemes against.
#ifndef CQABENCH_STORAGE_REPAIRS_H_
#define CQABENCH_STORAGE_REPAIRS_H_

#include <functional>
#include <vector>

#include "storage/block_index.h"
#include "storage/database.h"

namespace cqa {

/// Repair machinery for primary keys. A repair keeps exactly one fact from
/// each block (§2). These routines are exponential-time oracles meant for
/// tests, examples and exact baselines — the approximation schemes never
/// enumerate repairs.

/// log10 of |rep(D, Σ)| = Σ_blocks log10 |block|. Exact in log space even
/// when the count itself overflows.
double CountRepairsLog10(const Database& db, const BlockIndex& index);

/// |rep(D, Σ)| as a double (may be +inf for huge instances).
double CountRepairs(const Database& db, const BlockIndex& index);

/// Invokes `fn` once per repair, passing the selected facts (one per
/// block, relations in id order, blocks in block-id order). Stops early if
/// `fn` returns false or after `max_repairs` repairs (0 = unlimited).
/// Returns true iff every repair was visited.
bool ForEachRepair(const Database& db, const BlockIndex& index,
                   const std::function<bool(const std::vector<FactRef>&)>& fn,
                   size_t max_repairs = 0);

/// Materializes the repair selecting the given facts into a standalone
/// database over the same schema.
Database MaterializeRepair(const Database& db,
                           const std::vector<FactRef>& selection);

}  // namespace cqa

#endif  // CQABENCH_STORAGE_REPAIRS_H_
