// Audit predicates for the storage layer (CQA_AUDIT): block-partition and
// repair-selection invariants plus the structural checks of the columnar
// plane — chunk tiling, dictionary order, and the one-sided chunk
// statistics contract pruning correctness rests on.
#ifndef CQABENCH_STORAGE_AUDIT_H_
#define CQABENCH_STORAGE_AUDIT_H_

#include <string>
#include <vector>

#include "storage/block_index.h"
#include "storage/database.h"

namespace cqa::audit {

/// Audit predicates for the storage layer, run through CQA_AUDIT (see
/// common/macros.h). Each returns true when the invariant holds; on a
/// violation it writes a diagnostic to *why (when non-null) and returns
/// false so tests can probe corrupted states without dying.

/// The blocks of every relation partition its rows: each row appears in
/// exactly one block, at the position its annotation claims, and the
/// annotated block size matches the block's actual cardinality. This is
/// the "blocks partition the inconsistent relation" precondition every
/// synopsis and repair-enumeration result rests on.
bool CheckBlockPartition(const Database& db, const BlockIndex& index,
                         std::string* why);

/// A repair selection picks exactly one fact per block, and each picked
/// row is a member of the block it stands for (in block order, matching
/// ForEachRepair's enumeration).
bool CheckRepairSelection(const Database& db, const BlockIndex& index,
                          const std::vector<FactRef>& selection,
                          std::string* why);

/// Structural invariants of the columnar storage plane, for every relation
/// of `db`: chunks tile the row space contiguously, each segment holds
/// exactly its chunk's rows, dictionaries are sorted and duplicate-free
/// with every code in range, and chunk statistics honor their one-sided
/// contract (min/max bound each stored value, histogram bins sum to the
/// row count, MayContainEqual never rejects a value the chunk holds).
bool CheckColumnarStorage(const Database& db, std::string* why);

}  // namespace cqa::audit

#endif  // CQABENCH_STORAGE_AUDIT_H_
