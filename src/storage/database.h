// An in-memory database instance: one chunked-columnar Relation per
// relation of a shared Schema, plus key-violation detection, storage
// sealing (SealStorage) and the deep Clone the noise generator extends.
#ifndef CQABENCH_STORAGE_DATABASE_H_
#define CQABENCH_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"

namespace cqa {

/// A key-constraint violation: two facts of the same relation that agree on
/// the key but differ elsewhere.
struct KeyViolation {
  FactRef first;
  FactRef second;
};

/// An in-memory relational database instance over a fixed Schema.
///
/// The schema (including the set of primary keys Σ) is shared, not owned:
/// the paper's test scenarios evaluate many databases over one schema.
class Database {
 public:
  explicit Database(const Schema* schema);

  const Schema& schema() const { return *schema_; }
  size_t NumRelations() const { return relations_.size(); }

  Relation& relation(size_t id) { return relations_[id]; }
  const Relation& relation(size_t id) const { return relations_[id]; }
  Relation& relation(const std::string& name);
  const Relation& relation(const std::string& name) const;

  /// Appends a fact to relation `relation_id`.
  FactRef Insert(size_t relation_id, Tuple t);
  FactRef Insert(const std::string& relation, Tuple t);

  /// Total number of facts across relations.
  size_t NumFacts() const;

  /// Materializes the fact's tuple from its relation's column segments.
  Tuple FactTuple(const FactRef& f) const {
    return relations_[f.relation_id].row(f.row);
  }

  /// Seals every relation's open tail (see Relation::SealTail) so freshly
  /// built instances carry encodings and chunk statistics end to end.
  void SealStorage();

  /// Heap footprint of all relations' storage, in bytes.
  size_t MemoryBytes() const;

  /// True iff the instance satisfies every primary key of the schema.
  bool SatisfiesKeys() const;

  /// All key violations, at most `limit` (0 = unlimited). Each conflicting
  /// block of size k reports k-1 violations (each later fact against the
  /// first fact of its block).
  std::vector<KeyViolation> FindKeyViolations(size_t limit = 0) const;

  /// Deep copy (used by the noise generator, which extends a consistent
  /// base instance into several inconsistent variants).
  Database Clone() const;

 private:
  const Schema* schema_;
  std::vector<Relation> relations_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_DATABASE_H_
