#include "storage/tbl_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cqa {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Emits the value at run-local index `i` of `run` without materializing a
/// Value (dictionary runs read the dict entry in place).
bool AppendRunField(const ColumnRun& run, size_t i, std::string* line,
                    std::string* error) {
  switch (run.type) {
    case ValueType::kInt: {
      int64_t v = run.encoding == SegmentEncoding::kDictionary
                      ? run.int_dict[run.codes[i]]
                      : run.ints[i];
      line->append(std::to_string(v));
      break;
    }
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", run.doubles[i]);
      line->append(buf);
      break;
    }
    case ValueType::kString: {
      const std::string& s = run.encoding == SegmentEncoding::kDictionary
                                 ? run.string_dict[run.codes[i]]
                                 : run.strings[i];
      if (s.find('|') != std::string::npos ||
          s.find('\n') != std::string::npos) {
        return Fail(error, "string value contains '|' or newline: " + s);
      }
      line->append(s);
      break;
    }
  }
  line->push_back('|');
  return true;
}

bool ParseField(const std::string& field, ValueType type, Value* out,
                std::string* error) {
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Fail(error, "bad int field: " + field);
      }
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Fail(error, "bad double field: " + field);
      }
      *out = Value(v);
      return true;
    }
    case ValueType::kString:
      *out = Value(field);
      return true;
  }
  return Fail(error, "unknown value type");
}

}  // namespace

bool WriteTblFile(const Relation& relation, const std::string& path,
                  std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  // Zip the columns' runs (run boundaries agree across columns: the same
  // chunks, then the tail) and emit row-major without materializing tuples.
  size_t arity = relation.schema().arity();
  if (arity == 0 || relation.empty()) {
    out.flush();
    return out ? true : Fail(error, "write error on " + path);
  }
  std::vector<std::vector<ColumnRun>> runs(arity);
  for (size_t col = 0; col < arity; ++col) {
    relation.ForEachRun(
        col, [&](const ColumnRun& run) { runs[col].push_back(run); });
  }
  std::string line;
  for (size_t r = 0; r < runs[0].size(); ++r) {
    for (size_t offset = 0; offset < runs[0][r].length; ++offset) {
      line.clear();
      for (size_t col = 0; col < arity; ++col) {
        if (!AppendRunField(runs[col][r], offset, &line, error)) return false;
      }
      line.push_back('\n');
      out << line;
    }
  }
  out.flush();
  if (!out) return Fail(error, "write error on " + path);
  return true;
}

bool WriteTblDirectory(const Database& db, const std::string& dir,
                       std::string* error) {
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    std::string path = dir + "/" + rel.schema().name() + ".tbl";
    if (!WriteTblFile(rel, path, error)) return false;
  }
  return true;
}

bool ReadTblFile(Database* db, const std::string& relation_name,
                 const std::string& path, std::string* error) {
  auto relation_id = db->schema().FindRelation(relation_name);
  if (!relation_id.has_value()) {
    return Fail(error, "unknown relation " + relation_name);
  }
  const RelationSchema& schema = db->schema().relation(*relation_id);

  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    Tuple tuple;
    tuple.reserve(schema.arity());
    size_t start = 0;
    while (start < line.size()) {
      size_t bar = line.find('|', start);
      if (bar == std::string::npos) {
        return Fail(error, path + ":" + std::to_string(line_number) +
                               ": unterminated field");
      }
      if (tuple.size() >= schema.arity()) {
        return Fail(error, path + ":" + std::to_string(line_number) +
                               ": too many fields");
      }
      Value v;
      if (!ParseField(line.substr(start, bar - start),
                      schema.attribute(tuple.size()).type, &v, error)) {
        return false;
      }
      tuple.push_back(std::move(v));
      start = bar + 1;
    }
    if (tuple.size() != schema.arity()) {
      return Fail(error, path + ":" + std::to_string(line_number) +
                             ": expected " + std::to_string(schema.arity()) +
                             " fields, got " + std::to_string(tuple.size()));
    }
    db->Insert(*relation_id, std::move(tuple));
  }
  // Seal so the freshly loaded relation carries encodings and chunk
  // statistics even when its size is not a chunk-capacity multiple.
  db->relation(*relation_id).SealTail();
  return true;
}

bool ReadTblDirectory(Database* db, const std::string& dir,
                      std::string* error) {
  for (size_t rid = 0; rid < db->schema().NumRelations(); ++rid) {
    const std::string& name = db->schema().relation(rid).name();
    if (!ReadTblFile(db, name, dir + "/" + name + ".tbl", error)) {
      return false;
    }
  }
  return true;
}

}  // namespace cqa
