// Relational schemas: typed attributes per relation plus the primary-key
// constraint set Σ the paper's consistency notion is defined against. A
// Schema is shared (not owned) by every Database instantiated over it and
// fixes the per-column value types the columnar segments are built from.
#ifndef CQABENCH_STORAGE_SCHEMA_H_
#define CQABENCH_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace cqa {

/// An attribute of a relation: a name plus a value type.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// Schema of a single relation, including its (at most one) primary key.
///
/// Following the paper, a set of *primary* keys has at most one key per
/// relation; a relation without a declared key behaves as if every position
/// were part of the key (its facts are never in conflict).
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes,
                 std::vector<size_t> key_positions = {});

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// 0-based attribute positions forming the primary key; empty if the
  /// relation has no declared key.
  const std::vector<size_t>& key_positions() const { return key_positions_; }
  bool has_key() const { return !key_positions_.empty(); }
  bool IsKeyPosition(size_t pos) const;

  /// Position of the attribute named `name`, if any.
  std::optional<size_t> FindAttribute(const std::string& name) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<size_t> key_positions_;
};

/// A relational schema: an ordered set of relation schemas with unique
/// names. Relation ids are dense indexes assigned in insertion order; they
/// double as the `rid` component of the synopsis encoding.
class Schema {
 public:
  /// Adds a relation and returns its id. Aborts on duplicate names.
  size_t AddRelation(RelationSchema relation);

  size_t NumRelations() const { return relations_.size(); }
  const RelationSchema& relation(size_t id) const { return relations_[id]; }

  /// Id of the relation named `name`, if present.
  std::optional<size_t> FindRelation(const std::string& name) const;

  /// Like FindRelation but aborts if the relation is unknown.
  size_t RelationId(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace cqa

#endif  // CQABENCH_STORAGE_SCHEMA_H_
