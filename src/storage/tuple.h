// Row-view tuples: the materialized form of a fact. Storage itself is
// columnar (storage/relation.h); a Tuple is what Relation::row() and the
// compatibility adapters hand to samplers, repairs and tests, and what
// Insert accepts on the way in.
#ifndef CQABENCH_STORAGE_TUPLE_H_
#define CQABENCH_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace cqa {

/// A database tuple: a fixed-arity sequence of constants.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& t);

/// Projects `t` onto `positions` (0-based), in the given order.
Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& positions);

}  // namespace cqa

#endif  // CQABENCH_STORAGE_TUPLE_H_
