#include "storage/audit.h"

#include <cstdio>

namespace cqa::audit {

namespace {

bool Fail(std::string* why, const char* fmt, size_t a, size_t b, size_t c) {
  if (why != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, a, b, c);
    *why = buf;
  }
  return false;
}

}  // namespace

bool CheckBlockPartition(const Database& db, const BlockIndex& index,
                         std::string* why) {
  if (index.NumRelations() != db.NumRelations()) {
    return Fail(why, "index covers %zu relations, database has %zu (%zu)",
                index.NumRelations(), db.NumRelations(), 0);
  }
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    const RelationBlockIndex& rbi = index.relation(rid);
    // Every row of the relation must be claimed by exactly one block.
    std::vector<char> seen(rel.size(), 0);
    size_t covered = 0;
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      const std::vector<size_t>& rows = rbi.block(bid);
      if (rows.empty()) {
        return Fail(why, "relation %zu: block %zu is empty (%zu)", rid, bid,
                    0);
      }
      for (size_t tid = 0; tid < rows.size(); ++tid) {
        size_t row = rows[tid];
        if (row >= rel.size()) {
          return Fail(why, "relation %zu: block %zu references row %zu "
                           "past the relation",
                      rid, bid, row);
        }
        if (seen[row] != 0) {
          return Fail(why, "relation %zu: row %zu appears in two blocks "
                           "(second: %zu)",
                      rid, row, bid);
        }
        seen[row] = 1;
        ++covered;
        const BlockAnnotation& ann = rbi.annotation(row);
        if (ann.block_id != bid || ann.tuple_id != tid ||
            ann.block_size != rows.size()) {
          return Fail(why, "relation %zu: row %zu has annotation "
                           "inconsistent with block %zu",
                      rid, row, bid);
        }
      }
    }
    if (covered != rel.size()) {
      return Fail(why, "relation %zu: blocks cover %zu of %zu rows", rid,
                  covered, rel.size());
    }
  }
  return true;
}

bool CheckRepairSelection(const Database& db, const BlockIndex& index,
                          const std::vector<FactRef>& selection,
                          std::string* why) {
  size_t pos = 0;
  for (size_t rid = 0; rid < index.NumRelations(); ++rid) {
    const RelationBlockIndex& rbi = index.relation(rid);
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      if (pos >= selection.size()) {
        return Fail(why, "selection has %zu facts, fewer than the %zu "
                         "blocks of the database",
                    selection.size(), index.TotalBlocks(), 0);
      }
      const FactRef& f = selection[pos];
      if (f.relation_id != rid) {
        return Fail(why, "selection entry %zu names relation %zu, "
                         "expected %zu",
                    pos, f.relation_id, rid);
      }
      if (f.relation_id >= db.NumRelations() ||
          f.row >= db.relation(f.relation_id).size()) {
        return Fail(why, "selection entry %zu references row %zu past "
                         "relation %zu",
                    pos, f.row, f.relation_id);
      }
      const BlockAnnotation& ann = rbi.annotation(f.row);
      if (ann.block_id != bid) {
        return Fail(why, "selection entry %zu picks a row of block %zu, "
                         "expected block %zu",
                    pos, ann.block_id, bid);
      }
      ++pos;
    }
  }
  if (pos != selection.size()) {
    return Fail(why, "selection has %zu facts, more than the %zu blocks "
                     "of the database",
                selection.size(), pos, 0);
  }
  return true;
}

bool CheckColumnarStorage(const Database& db, std::string* why) {
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    size_t arity = rel.schema().arity();
    size_t expected_row0 = 0;
    for (size_t c = 0; c < rel.NumChunks(); ++c) {
      if (rel.chunk_row0(c) != expected_row0) {
        return Fail(why, "relation %zu: chunk %zu starts at row %zu, "
                         "leaving a gap",
                    rid, c, rel.chunk_row0(c));
      }
      size_t rows = rel.chunk_rows(c);
      if (rows == 0) {
        return Fail(why, "relation %zu: chunk %zu is empty (%zu)", rid, c, 0);
      }
      expected_row0 += rows;
      for (size_t col = 0; col < arity; ++col) {
        const Segment& segment = rel.chunk_segment(c, col);
        if (segment.size() != rows) {
          return Fail(why, "relation %zu: chunk %zu column segment holds "
                           "%zu values, expected the chunk's rows",
                      rid, c, segment.size());
        }
        if (segment.type() != rel.schema().attribute(col).type) {
          return Fail(why, "relation %zu: chunk %zu column %zu type "
                           "mismatches the schema",
                      rid, c, col);
        }
        const ColumnRun run = segment.Run(rel.chunk_row0(c));
        if (segment.encoding() == SegmentEncoding::kDictionary) {
          size_t ds = run.dict_size;
          if (ds == 0 || ds > rows) {
            return Fail(why, "relation %zu: chunk %zu dictionary has %zu "
                             "entries for a smaller chunk",
                        rid, c, ds);
          }
          for (size_t e = 1; e < ds; ++e) {
            bool sorted = run.int_dict != nullptr
                              ? run.int_dict[e - 1] < run.int_dict[e]
                              : run.string_dict[e - 1] < run.string_dict[e];
            if (!sorted) {
              return Fail(why, "relation %zu: chunk %zu dictionary entry "
                               "%zu out of order",
                          rid, c, e);
            }
          }
          for (size_t i = 0; i < rows; ++i) {
            if (run.codes[i] >= ds) {
              return Fail(why, "relation %zu: chunk %zu code at offset %zu "
                               "exceeds the dictionary",
                          rid, c, i);
            }
          }
        }
        const ChunkColumnStats& stats = rel.chunk_stats(c, col);
        if (!stats.valid) {
          return Fail(why, "relation %zu: chunk %zu column %zu has no "
                           "statistics",
                      rid, c, col);
        }
        if (segment.encoding() == SegmentEncoding::kDictionary &&
            stats.distinct != segment.dict_size()) {
          return Fail(why, "relation %zu: chunk %zu column %zu distinct "
                           "count disagrees with the dictionary",
                      rid, c, col);
        }
        if (stats.has_histogram) {
          size_t total = 0;
          for (size_t b = 0; b < ChunkColumnStats::kHistogramBins; ++b) {
            total += stats.bins[b];
          }
          if (total != rows) {
            return Fail(why, "relation %zu: chunk %zu histogram counts %zu "
                             "values, expected the chunk's rows",
                        rid, c, total);
          }
        }
        // The one-sided pruning contract: statistics must never prove the
        // absence of a value the chunk actually holds.
        for (size_t i = 0; i < rows; ++i) {
          Value v = segment.GetValue(i);
          if (v < stats.min || stats.max < v ||
              !stats.MayContainEqual(v)) {
            return Fail(why, "relation %zu: chunk %zu statistics reject a "
                             "stored value at offset %zu",
                        rid, c, i);
          }
        }
      }
    }
    if (expected_row0 + rel.tail_rows() != rel.size()) {
      return Fail(why, "relation %zu: chunks and tail cover %zu of %zu rows",
                  rid, expected_row0 + rel.tail_rows(), rel.size());
    }
  }
  return true;
}

}  // namespace cqa::audit
