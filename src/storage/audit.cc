#include "storage/audit.h"

#include <cstdio>

namespace cqa::audit {

namespace {

bool Fail(std::string* why, const char* fmt, size_t a, size_t b, size_t c) {
  if (why != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, a, b, c);
    *why = buf;
  }
  return false;
}

}  // namespace

bool CheckBlockPartition(const Database& db, const BlockIndex& index,
                         std::string* why) {
  if (index.NumRelations() != db.NumRelations()) {
    return Fail(why, "index covers %zu relations, database has %zu (%zu)",
                index.NumRelations(), db.NumRelations(), 0);
  }
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    const RelationBlockIndex& rbi = index.relation(rid);
    // Every row of the relation must be claimed by exactly one block.
    std::vector<char> seen(rel.size(), 0);
    size_t covered = 0;
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      const std::vector<size_t>& rows = rbi.block(bid);
      if (rows.empty()) {
        return Fail(why, "relation %zu: block %zu is empty (%zu)", rid, bid,
                    0);
      }
      for (size_t tid = 0; tid < rows.size(); ++tid) {
        size_t row = rows[tid];
        if (row >= rel.size()) {
          return Fail(why, "relation %zu: block %zu references row %zu "
                           "past the relation",
                      rid, bid, row);
        }
        if (seen[row] != 0) {
          return Fail(why, "relation %zu: row %zu appears in two blocks "
                           "(second: %zu)",
                      rid, row, bid);
        }
        seen[row] = 1;
        ++covered;
        const BlockAnnotation& ann = rbi.annotation(row);
        if (ann.block_id != bid || ann.tuple_id != tid ||
            ann.block_size != rows.size()) {
          return Fail(why, "relation %zu: row %zu has annotation "
                           "inconsistent with block %zu",
                      rid, row, bid);
        }
      }
    }
    if (covered != rel.size()) {
      return Fail(why, "relation %zu: blocks cover %zu of %zu rows", rid,
                  covered, rel.size());
    }
  }
  return true;
}

bool CheckRepairSelection(const Database& db, const BlockIndex& index,
                          const std::vector<FactRef>& selection,
                          std::string* why) {
  size_t pos = 0;
  for (size_t rid = 0; rid < index.NumRelations(); ++rid) {
    const RelationBlockIndex& rbi = index.relation(rid);
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      if (pos >= selection.size()) {
        return Fail(why, "selection has %zu facts, fewer than the %zu "
                         "blocks of the database",
                    selection.size(), index.TotalBlocks(), 0);
      }
      const FactRef& f = selection[pos];
      if (f.relation_id != rid) {
        return Fail(why, "selection entry %zu names relation %zu, "
                         "expected %zu",
                    pos, f.relation_id, rid);
      }
      if (f.relation_id >= db.NumRelations() ||
          f.row >= db.relation(f.relation_id).size()) {
        return Fail(why, "selection entry %zu references row %zu past "
                         "relation %zu",
                    pos, f.row, f.relation_id);
      }
      const BlockAnnotation& ann = rbi.annotation(f.row);
      if (ann.block_id != bid) {
        return Fail(why, "selection entry %zu picks a row of block %zu, "
                         "expected block %zu",
                    pos, ann.block_id, bid);
      }
      ++pos;
    }
  }
  if (pos != selection.size()) {
    return Fail(why, "selection has %zu facts, more than the %zu blocks "
                     "of the database",
                selection.size(), pos, 0);
  }
  return true;
}

}  // namespace cqa::audit
