#include "storage/relation.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace cqa {

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) os << ", ";
    os << t[i];
  }
  os << ')';
  return os.str();
}

Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (size_t pos : positions) {
    CQA_CHECK(pos < t.size());
    out.push_back(t[pos]);
  }
  return out;
}

Relation::Relation(const RelationSchema* schema, size_t chunk_capacity)
    : schema_(schema), chunk_capacity_(chunk_capacity) {
  CQA_CHECK(chunk_capacity_ > 0);
  tail_.resize(schema_->arity());
}

size_t Relation::ChunkOf(size_t row, size_t* offset) const {
  CQA_DCHECK(row < num_rows_);
  size_t sealed_rows = num_rows_ - tail_rows_;
  if (row >= sealed_rows) {
    *offset = row - sealed_rows;
    return kTailChunk;
  }
  if (regular_) {
    *offset = row % chunk_capacity_;
    return row / chunk_capacity_;
  }
  // Short chunks exist (forced seals): binary-search the chunk starts.
  size_t lo = 0, hi = chunks_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (chunks_[mid].row0 <= row) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  *offset = row - chunks_[lo].row0;
  return lo;
}

Value Relation::TailValue(size_t offset, size_t col) const {
  const TailColumn& tc = tail_[col];
  switch (schema_->attribute(col).type) {
    case ValueType::kInt:
      return Value(tc.ints[offset]);
    case ValueType::kDouble:
      return Value(tc.doubles[offset]);
    case ValueType::kString:
      return Value(tc.strings[offset]);
  }
  return Value();
}

Value Relation::ValueAt(size_t row, size_t col) const {
  CQA_DCHECK(col < schema_->arity());
  size_t offset = 0;
  size_t c = ChunkOf(row, &offset);
  if (c == kTailChunk) return TailValue(offset, col);
  return chunks_[c].columns[col].GetValue(offset);
}

bool Relation::ValueEquals(size_t row, size_t col, const Value& v) const {
  CQA_DCHECK(col < schema_->arity());
  size_t offset = 0;
  size_t c = ChunkOf(row, &offset);
  if (c != kTailChunk) return chunks_[c].columns[col].ValueEquals(offset, v);
  const TailColumn& tc = tail_[col];
  ValueType type = schema_->attribute(col).type;
  if (v.type() != type) return false;
  switch (type) {
    case ValueType::kInt:
      return tc.ints[offset] == v.AsInt();
    case ValueType::kDouble:
      return tc.doubles[offset] == v.AsDouble();
    case ValueType::kString:
      return tc.strings[offset] == v.AsString();
  }
  return false;
}

bool Relation::RowsEqual(size_t a, size_t b) const {
  if (a == b) return true;
  for (size_t col = 0; col < schema_->arity(); ++col) {
    if (!ValueEquals(b, col, ValueAt(a, col))) return false;
  }
  return true;
}

Tuple Relation::row(size_t i) const {
  Tuple t;
  t.reserve(schema_->arity());
  for (size_t col = 0; col < schema_->arity(); ++col) {
    t.push_back(ValueAt(i, col));
  }
  return t;
}

std::vector<Tuple> Relation::rows() const {
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) out.push_back(row(i));
  return out;
}

Tuple Relation::KeyOf(size_t i) const {
  CQA_CHECK(i < num_rows_);
  if (!schema_->has_key()) return row(i);
  return ProjectRow(i, schema_->key_positions());
}

Tuple Relation::ProjectRow(size_t i, const std::vector<size_t>& positions)
    const {
  Tuple out;
  out.reserve(positions.size());
  for (size_t pos : positions) {
    CQA_CHECK(pos < schema_->arity());
    out.push_back(ValueAt(i, pos));
  }
  return out;
}

size_t Relation::Insert(Tuple t) {
  CQA_CHECK_MSG(t.size() == schema_->arity(), schema_->name().c_str());
  for (size_t col = 0; col < t.size(); ++col) {
    ValueType want = schema_->attribute(col).type;
    CQA_CHECK_MSG(t[col].type() == want, schema_->name().c_str());
    TailColumn& tc = tail_[col];
    switch (want) {
      case ValueType::kInt:
        tc.ints.push_back(t[col].AsInt());
        break;
      case ValueType::kDouble:
        tc.doubles.push_back(t[col].AsDouble());
        break;
      case ValueType::kString:
        tc.strings.push_back(t[col].AsString());
        break;
    }
  }
  ++tail_rows_;
  ++num_rows_;
  if (tail_rows_ == chunk_capacity_) SealTailChunk();
  return num_rows_ - 1;
}

void Relation::SealTailChunk() {
  Chunk chunk;
  chunk.row0 = num_rows_ - tail_rows_;
  chunk.rows = tail_rows_;
  chunk.columns.reserve(schema_->arity());
  chunk.stats.reserve(schema_->arity());
  for (size_t col = 0; col < schema_->arity(); ++col) {
    TailColumn& tc = tail_[col];
    Segment segment;
    switch (schema_->attribute(col).type) {
      case ValueType::kInt:
        segment = Segment::SealInts(std::move(tc.ints));
        break;
      case ValueType::kDouble:
        segment = Segment::SealDoubles(std::move(tc.doubles));
        break;
      case ValueType::kString:
        segment = Segment::SealStrings(std::move(tc.strings));
        break;
    }
    tc = TailColumn();
    chunk.stats.push_back(BuildChunkColumnStats(segment));
    chunk.columns.push_back(std::move(segment));
  }
  if (chunk.rows != chunk_capacity_) regular_ = false;
  chunks_.push_back(std::move(chunk));
  tail_rows_ = 0;
}

void Relation::SealTail() {
  if (tail_rows_ == 0) return;
  SealTailChunk();
}

void Relation::ForEachRun(
    size_t col, const std::function<void(const ColumnRun&)>& fn) const {
  CQA_CHECK(col < schema_->arity());
  for (const Chunk& chunk : chunks_) {
    fn(chunk.columns[col].Run(chunk.row0));
  }
  if (tail_rows_ > 0) {
    const TailColumn& tc = tail_[col];
    ColumnRun run;
    run.type = schema_->attribute(col).type;
    run.encoding = SegmentEncoding::kPlain;
    run.row0 = num_rows_ - tail_rows_;
    run.length = tail_rows_;
    run.ints = tc.ints.data();
    run.doubles = tc.doubles.data();
    run.strings = tc.strings.data();
    fn(run);
  }
}

namespace {

/// Per-chunk matcher of one (column, constant) conjunct: either a code
/// comparison against a dictionary segment or a typed value comparison.
struct SegmentMatcher {
  const Segment* segment = nullptr;
  const uint32_t* codes = nullptr;  // Non-null iff comparing by code.
  uint32_t code = Segment::kNoCode;
  const Value* want = nullptr;

  bool Matches(size_t offset) const {
    if (codes != nullptr) return codes[offset] == code;
    return segment->ValueEquals(offset, *want);
  }
};

}  // namespace

bool Relation::ScanMatching(const std::vector<size_t>& positions,
                            const Tuple& key,
                            const std::function<bool(size_t)>& fn) const {
  CQA_CHECK(positions.size() == key.size());
  std::vector<SegmentMatcher> matchers(positions.size());
  for (const Chunk& chunk : chunks_) {
    bool skip = false;
    for (size_t i = 0; i < positions.size() && !skip; ++i) {
      skip = !chunk.stats[positions[i]].MayContainEqual(key[i]);
    }
    if (skip) {
      ++chunks_pruned_;
      continue;
    }
    // Resolve dictionary codes once per chunk; an absent code proves the
    // chunk holds no match.
    for (size_t i = 0; i < positions.size() && !skip; ++i) {
      const Segment& segment = chunk.columns[positions[i]];
      matchers[i] = SegmentMatcher{&segment, nullptr, Segment::kNoCode,
                                   &key[i]};
      if (segment.encoding() == SegmentEncoding::kDictionary) {
        matchers[i].code = segment.FindCode(key[i]);
        if (matchers[i].code == Segment::kNoCode) {
          skip = true;
        } else {
          matchers[i].codes = segment.Run(chunk.row0).codes;
        }
      }
    }
    if (skip) {
      ++chunks_pruned_;
      continue;
    }
    for (size_t offset = 0; offset < chunk.rows; ++offset) {
      bool match = true;
      for (const SegmentMatcher& m : matchers) {
        if (!m.Matches(offset)) {
          match = false;
          break;
        }
      }
      if (match && !fn(chunk.row0 + offset)) return false;
    }
  }
  size_t tail_row0 = num_rows_ - tail_rows_;
  for (size_t offset = 0; offset < tail_rows_; ++offset) {
    bool match = true;
    for (size_t i = 0; i < positions.size() && match; ++i) {
      match = ValueEquals(tail_row0 + offset, positions[i], key[i]);
    }
    if (match && !fn(tail_row0 + offset)) return false;
  }
  return true;
}

size_t Relation::MemoryBytes() const {
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) {
    for (const Segment& segment : chunk.columns) {
      bytes += segment.MemoryBytes();
    }
  }
  for (const TailColumn& tc : tail_) {
    bytes += tc.ints.capacity() * sizeof(int64_t) +
             tc.doubles.capacity() * sizeof(double);
    for (const std::string& s : tc.strings) bytes += sizeof(s) + s.capacity();
  }
  return bytes;
}

}  // namespace cqa
