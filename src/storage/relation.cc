#include "storage/relation.h"

#include <sstream>

#include "common/macros.h"

namespace cqa {

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) os << ", ";
    os << t[i];
  }
  os << ')';
  return os.str();
}

Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (size_t pos : positions) {
    CQA_CHECK(pos < t.size());
    out.push_back(t[pos]);
  }
  return out;
}

size_t Relation::Insert(Tuple t) {
  CQA_CHECK_MSG(t.size() == schema_->arity(), schema_->name().c_str());
  rows_.push_back(std::move(t));
  return rows_.size() - 1;
}

Tuple Relation::KeyOf(size_t i) const {
  CQA_CHECK(i < rows_.size());
  if (!schema_->has_key()) return rows_[i];
  return ProjectTuple(rows_[i], schema_->key_positions());
}

}  // namespace cqa
