#include "storage/repairs.h"

#include <cmath>

#include "common/macros.h"
#include "storage/audit.h"

namespace cqa {

namespace {

/// Flattens the blocks of every relation into one list of (relation id,
/// rows) choice points.
std::vector<std::pair<size_t, const std::vector<size_t>*>> AllBlocks(
    const Database& db, const BlockIndex& index) {
  std::vector<std::pair<size_t, const std::vector<size_t>*>> blocks;
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const RelationBlockIndex& rbi = index.relation(rid);
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      blocks.emplace_back(rid, &rbi.block(bid));
    }
  }
  return blocks;
}

}  // namespace

double CountRepairsLog10(const Database& db, const BlockIndex& index) {
  double log_count = 0.0;
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const RelationBlockIndex& rbi = index.relation(rid);
    for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
      log_count += std::log10(static_cast<double>(rbi.block(bid).size()));
    }
  }
  return log_count;
}

double CountRepairs(const Database& db, const BlockIndex& index) {
  return std::pow(10.0, CountRepairsLog10(db, index));
}

bool ForEachRepair(const Database& db, const BlockIndex& index,
                   const std::function<bool(const std::vector<FactRef>&)>& fn,
                   size_t max_repairs) {
  // The enumeration below assumes the blocks partition every relation;
  // a broken partition would repeat or skip repairs silently.
  CQA_AUDIT(audit::CheckBlockPartition, db, index);
  auto blocks = AllBlocks(db, index);
  std::vector<size_t> choice(blocks.size(), 0);
  std::vector<FactRef> selection(blocks.size());
  size_t visited = 0;
  while (true) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      CQA_DCHECK(choice[i] < blocks[i].second->size());
      selection[i] = FactRef{blocks[i].first, (*blocks[i].second)[choice[i]]};
    }
    ++visited;
    if (visited == 1) {
      // One structural audit per enumeration: the selection names one
      // fact per block, in block order.
      CQA_AUDIT(audit::CheckRepairSelection, db, index, selection);
    }
    if (!fn(selection)) return false;
    if (max_repairs != 0 && visited >= max_repairs) {
      // Did we stop exactly at the last repair?
      for (size_t i = 0; i < blocks.size(); ++i) {
        if (choice[i] + 1 < blocks[i].second->size()) return false;
      }
      return true;
    }
    // Odometer increment over block choices.
    size_t i = 0;
    for (; i < blocks.size(); ++i) {
      if (++choice[i] < blocks[i].second->size()) break;
      choice[i] = 0;
    }
    if (i == blocks.size()) return true;  // Wrapped around: all visited.
  }
}

Database MaterializeRepair(const Database& db,
                           const std::vector<FactRef>& selection) {
  Database repair(&db.schema());
  for (const FactRef& f : selection) {
    repair.Insert(f.relation_id, db.FactTuple(f));
  }
  return repair;
}

}  // namespace cqa
