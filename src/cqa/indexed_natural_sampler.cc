#include "cqa/indexed_natural_sampler.h"

#include <algorithm>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

IndexedNaturalSampler::IndexedNaturalSampler(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "natural sampler requires H != {}");
  const auto& blocks = synopsis->blocks();
  images_by_fact_.resize(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    images_by_fact_[b].resize(blocks[b].size);
  }
  const auto& images = synopsis->images();
  image_sizes_.reserve(images.size());
  for (uint32_t i = 0; i < images.size(); ++i) {
    image_sizes_.push_back(static_cast<uint32_t>(images[i].facts.size()));
    for (const Synopsis::ImageFact& f : images[i].facts) {
      images_by_fact_[f.block][f.tid].push_back(i);
    }
  }
  hits_.assign(images.size(), 0);
  stamp_.assign(images.size(), 0);
}

double IndexedNaturalSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.indexed_natural.draws");
  const auto& blocks = synopsis_->blocks();
  scratch_.resize(blocks.size());
  if (++generation_ == 0) {
    // Generation counter wrapped: clear stamps to avoid false matches.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    generation_ = 1;
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    uint32_t tid = static_cast<uint32_t>(rng.UniformIndex(blocks[b].size));
    scratch_[b] = tid;
    for (uint32_t image : images_by_fact_[b][tid]) {
      if (stamp_[image] != generation_) {
        stamp_[image] = generation_;
        hits_[image] = 0;
      }
      if (++hits_[image] == image_sizes_[image]) {
        // All facts of this image were drawn: it survives. We still need
        // to finish nothing — containment of one image suffices.
        CQA_AUDIT(audit::CheckImageInPrefix, *synopsis_, image, scratch_,
                  b + 1);
        CQA_OBS_COUNT("sampler.indexed_natural.hits");
        return 1.0;
      }
    }
  }
  // Cross-validate the inverted-index miss against the naive scan.
  CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 0.0);
  return 0.0;
}

}  // namespace cqa
