#include "cqa/indexed_natural_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

IndexedNaturalSampler::IndexedNaturalSampler(const Synopsis* synopsis)
    : synopsis_(synopsis), index_(synopsis), digits_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "natural sampler requires H != {}");
}

double IndexedNaturalSampler::DrawImpl(Rng& rng) {
  const auto& blocks = synopsis_->blocks();
  scratch_.resize(blocks.size());
  index_.BeginDraw();
  TidDigitPlan::Stream stream;
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    uint32_t tid = digits_.Next(rng, b, &stream);
    scratch_[b] = tid;
    bool hit = index_.AddFact(b, tid, [&](uint32_t image) {
      // Containment of one image suffices — stop before drawing the
      // remaining blocks; they cannot flip the outcome.
      CQA_AUDIT(audit::CheckImageInPrefix, *synopsis_, image, scratch_,
                b + 1);
      return true;
    });
    if (hit) return 1.0;
  }
  // Cross-validate the inverted-index miss against the naive scan.
  CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 0.0);
  return 0.0;
}

double IndexedNaturalSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.indexed_natural.draws");
  double v = DrawImpl(rng);
  if (v == 1.0) CQA_OBS_COUNT("sampler.indexed_natural.hits");
  return v;
}

void IndexedNaturalSampler::DrawBatch(Rng& rng, size_t n, double* out) {
  size_t hits = 0;
  for (size_t k = 0; k < n; ++k) {
    out[k] = DrawImpl(rng);
    hits += out[k] == 1.0 ? 1 : 0;
  }
  CQA_OBS_COUNT_N("sampler.indexed_natural.draws", n);
  CQA_OBS_COUNT_N("sampler.indexed_natural.hits", hits);
}

}  // namespace cqa
