#include "cqa/symbolic_space.h"

#include <algorithm>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

SymbolicSpace::SymbolicSpace(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "symbolic space requires H != {}");
  CQA_OBS_COUNT("symbolic_space.builds");
  CQA_OBS_OBSERVE("symbolic_space.num_images", synopsis->NumImages());
  CQA_OBS_OBSERVE("symbolic_space.num_blocks", synopsis->blocks().size());
  weights_ = synopsis->ImageWeights();
  const size_t n = weights_.size();
  double acc = 0.0;
  for (double w : weights_) {
    CQA_CHECK(w > 0.0);
    acc += w;
  }
  total_weight_ = acc;

  // Vose's alias method: scale every weight to mean 1, then pair each
  // under-full column (scaled < 1) with an over-full donor image that
  // absorbs the column's residual mass. Every column ends up holding at
  // most two images, so a draw is one uniform index + one coin flip.
  alias_prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (uint32_t i = 0; i < n; ++i) {
    alias_[i] = i;
    scaled[i] = weights_[i] * scale;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    alias_prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers on either list hold (up to FP rounding) exactly their own
  // unit of mass: their columns keep alias_prob_ = 1, alias_ = self.
  alias_cut_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    alias_cut_[k] = alias_prob_[k] >= 1.0
                        ? ~0ull
                        : static_cast<uint64_t>(alias_prob_[k] * 0x1p64);
  }
  digits_ = TidDigitPlan(synopsis);
  CQA_AUDIT(audit::CheckSymbolicSpace, *this);
}

size_t SymbolicSpace::SampleElement(Rng& rng,
                                    Synopsis::Choice* choice) const {
  // Pick the image index i with probability w_i / Σ w_j (alias draw).
  size_t i = SampleImageIndex(rng);

  // Pick I uniformly among the databases containing H_i: every block is
  // free except those pinned by the image. The tid draws come packed out
  // of the digit plan — a couple of engine words for the whole sample
  // instead of one per block.
  const std::vector<Synopsis::Block>& blocks = synopsis_->blocks();
  choice->resize(blocks.size());
  TidDigitPlan::Stream stream;
  for (size_t b = 0; b < blocks.size(); ++b) {
    (*choice)[b] = digits_.Next(rng, b, &stream);
  }
  for (const Synopsis::ImageFact& f : synopsis_->images()[i].facts) {
    (*choice)[f.block] = f.tid;
  }
  // (i, I) ∈ S• by construction: H_i's facts were just pinned into I.
  CQA_AUDIT(audit::CheckSampledElement, *this, i, *choice);
  return i;
}

}  // namespace cqa
