#include "cqa/symbolic_space.h"

#include <algorithm>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

SymbolicSpace::SymbolicSpace(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "symbolic space requires H != {}");
  CQA_OBS_COUNT("symbolic_space.builds");
  CQA_OBS_OBSERVE("symbolic_space.num_images", synopsis->NumImages());
  CQA_OBS_OBSERVE("symbolic_space.num_blocks", synopsis->blocks().size());
  weights_ = synopsis->ImageWeights();
  cumulative_.reserve(weights_.size());
  double acc = 0.0;
  for (double w : weights_) {
    CQA_CHECK(w > 0.0);
    acc += w;
    cumulative_.push_back(acc);
  }
  total_weight_ = acc;
  CQA_AUDIT(audit::CheckSymbolicSpace, *this);
}

size_t SymbolicSpace::SampleElement(Rng& rng,
                                    Synopsis::Choice* choice) const {
  // Pick the image index i with probability w_i / Σ w_j.
  double r = rng.UniformReal() * total_weight_;
  size_t i = static_cast<size_t>(
      std::upper_bound(cumulative_.begin(), cumulative_.end(), r) -
      cumulative_.begin());
  if (i >= weights_.size()) i = weights_.size() - 1;  // FP slack.

  // Pick I uniformly among the databases containing H_i: every block is
  // free except those pinned by the image.
  const std::vector<Synopsis::Block>& blocks = synopsis_->blocks();
  choice->resize(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    (*choice)[b] = static_cast<uint32_t>(rng.UniformIndex(blocks[b].size));
  }
  for (const Synopsis::ImageFact& f : synopsis_->images()[i].facts) {
    (*choice)[f.block] = f.tid;
  }
  // (i, I) ∈ S• by construction: H_i's facts were just pinned into I.
  CQA_AUDIT(audit::CheckSampledElement, *this, i, *choice);
  return i;
}

}  // namespace cqa
