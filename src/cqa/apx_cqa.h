// ApxCQA, the end-to-end pipeline of the paper: preprocess a database
// into per-answer synopses, then run one approximation scheme per
// candidate answer to estimate its relative frequency. Entry points for
// one-shot runs (ApxCqa) and for running schemes over an already-built
// PreprocessResult (ApxCqaOnSynopses) -- the latter is what the serving
// layer's synopsis cache amortizes.
#ifndef CQABENCH_CQA_APX_CQA_H_
#define CQABENCH_CQA_APX_CQA_H_

#include <vector>

#include "cqa/preprocess.h"
#include "cqa/schemes.h"
#include "obs/report.h"
#include "query/cq.h"
#include "storage/database.h"

namespace cqa {

/// One entry of ans_{D,Σ}(Q): a candidate answer with its approximated
/// relative frequency.
struct CqaAnswer {
  Tuple tuple;
  double frequency = 0.0;
  ApxResult detail;
};

/// Result of one ApxCQA[scheme] execution.
struct CqaRunResult {
  std::vector<CqaAnswer> answers;
  /// Time spent computing syn_{Σ,Q}(D); excluded from scheme_seconds,
  /// matching the paper's reporting ("running times ... do not consider
  /// the time of the preprocessing step").
  double preprocess_seconds = 0.0;
  /// Time spent in the approximation scheme proper, across all synopses.
  double scheme_seconds = 0.0;
  /// Total samples drawn across synopses.
  size_t total_samples = 0;
  /// True if the deadline expired; `answers` is then incomplete.
  bool timed_out = false;
  /// Per-phase totals across synopses: OptEstimate samples/time vs
  /// main-loop samples/time (total_samples = estimator + main).
  size_t estimator_samples = 0;
  size_t main_samples = 0;
  double estimator_seconds = 0.0;
  double main_seconds = 0.0;
  /// Element-wise sum of the per-synopsis per-worker main-loop sample
  /// counts: entry t is the total drawn by worker t (size 1 when serial).
  std::vector<size_t> per_thread_samples;
  /// Convergence series recorded across all synopsis runs (empty unless
  /// ApxParams::record_convergence was set). Moved out of the per-answer
  /// ApxResults so one run-level export sees everything.
  std::vector<obs::ConvergenceSeries> convergence;
};

/// Algorithm 1 (ApxCQA[ApxRelativeFreq]) with the §5 implementation: all
/// synopses are computed by one preprocessing pass, then the scheme is
/// invoked per (t̄, (H, B)) pair. The deadline budgets only the scheme
/// phase (preprocessing is common to all schemes).
CqaRunResult ApxCqa(const Database& db, const ConjunctiveQuery& q,
                    SchemeKind scheme, const ApxParams& params, Rng& rng,
                    const Deadline& deadline = Deadline());

/// The scheme phase alone, for callers that computed the preprocessing
/// once and want to run several schemes over it (the benchmark harness).
CqaRunResult ApxCqaOnSynopses(const PreprocessResult& preprocessed,
                              SchemeKind scheme, const ApxParams& params,
                              Rng& rng,
                              const Deadline& deadline = Deadline());

/// Flattens a run into the JSONL run-report record: phase timings,
/// sample counts, per-thread balance. `total_seconds` is the caller's
/// wall-clock for the scheme phase (the harness measures it around the
/// run; the CLI uses run.scheme_seconds).
obs::RunRecord MakeRunRecord(const CqaRunResult& run, SchemeKind scheme,
                             const obs::RunContext& context,
                             double total_seconds);

}  // namespace cqa

#endif  // CQABENCH_CQA_APX_CQA_H_
