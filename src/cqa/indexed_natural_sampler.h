#ifndef CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_
#define CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_

#include <vector>

#include "cqa/sampler.h"
#include "cqa/synopsis.h"

namespace cqa {

/// Drop-in replacement for NaturalSampler with an inverted index.
///
/// The plain sampler answers "does some image survive the drawn database"
/// by scanning all of H — Θ(Σ_i |H_i|) per draw. This variant indexes
/// images by (block, tid): after drawing a choice, it only touches the
/// images that contain at least one *drawn* fact, counting per-image hits
/// and comparing against the image size. Per-draw cost drops to
/// Θ(#blocks + Σ_{drawn facts} |images containing that fact|), a large
/// win on the big, sparse H sets of the Boolean scenarios.
///
/// Same distribution as NaturalSampler (1-good); `bench_micro` quantifies
/// the speedup and the test suite checks statistical agreement.
class IndexedNaturalSampler : public Sampler {
 public:
  /// The synopsis must be non-empty and outlive the sampler.
  explicit IndexedNaturalSampler(const Synopsis* synopsis);

  double Draw(Rng& rng) override;
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "SampleNatural/indexed"; }

 private:
  const Synopsis* synopsis_;
  // images_by_fact_[block] maps tid -> image ids containing (block, tid).
  std::vector<std::vector<std::vector<uint32_t>>> images_by_fact_;
  std::vector<uint32_t> image_sizes_;
  // Per-draw scratch: hit counters with a generation stamp so they need
  // no O(|H|) reset between draws.
  mutable std::vector<uint32_t> hits_;
  mutable std::vector<uint32_t> stamp_;
  mutable uint32_t generation_ = 0;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_
