// Index-accelerated variant of the natural sampler: per draw it touches
// only the images sharing a drawn fact instead of scanning all of H.
#ifndef CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_
#define CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_

#include "cqa/image_index.h"
#include "cqa/sampler.h"
#include "cqa/synopsis.h"

namespace cqa {

/// Drop-in replacement for NaturalSampler built on the shared ImageIndex.
///
/// The plain sampler answers "does some image survive the drawn database"
/// by scanning all of H — Θ(Σ_i |H_i|) per draw. This variant indexes
/// images by (block, tid): after drawing a choice, it only touches the
/// images that contain at least one *drawn* fact, counting per-image hits
/// and comparing against the image size. Per-draw cost drops to
/// Θ(#blocks + Σ_{drawn facts} |images containing that fact|), a large
/// win on the big, sparse H sets of the Boolean scenarios. The Natural
/// scheme runs on this sampler; the plain scan survives as the
/// cross-validation reference.
///
/// Same distribution as NaturalSampler (1-good); `bench_micro` quantifies
/// the speedup and the test suite checks statistical agreement.
class IndexedNaturalSampler : public Sampler {
 public:
  /// The synopsis must be non-empty and outlive the sampler.
  explicit IndexedNaturalSampler(const Synopsis* synopsis);

  double Draw(Rng& rng) override;
  void DrawBatch(Rng& rng, size_t n, double* out) override;
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "SampleNatural/indexed"; }

 private:
  /// One draw without obs accounting (shared by Draw and DrawBatch).
  double DrawImpl(Rng& rng);

  const Synopsis* synopsis_;
  ImageIndex index_;
  TidDigitPlan digits_;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_INDEXED_NATURAL_SAMPLER_H_
