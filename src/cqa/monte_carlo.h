// MonteCarlo[Sample] (the paper's Algorithm 2): OptEstimate picks the
// sample count N, the main loop averages N draws, and the result converts
// back to R(H, B) through the sampler's goodness factor.
#ifndef CQABENCH_CQA_MONTE_CARLO_H_
#define CQABENCH_CQA_MONTE_CARLO_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/sampler.h"
#include "obs/convergence.h"

namespace cqa {

struct MonteCarloResult {
  /// Mean of the main-phase samples: the (ε, δ)-approximation of
  /// E[Sample((H, B))]. Divide by Sampler::GoodnessFactor() to recover
  /// R(H, B).
  double estimate = 0.0;
  /// Samples consumed by OptEstimate.
  size_t estimator_samples = 0;
  /// Samples of the main loop (the N of Algorithm 2).
  size_t main_samples = 0;
  bool timed_out = false;
  /// Wall-clock split of the two phases: the OptEstimate call vs the
  /// main sampling loop. Always filled (cheap: two stopwatch reads per
  /// estimate, never per draw).
  double estimator_seconds = 0.0;
  double main_seconds = 0.0;
  /// Main-loop samples per worker: size 1 for the serial algorithm, one
  /// entry per thread for ParallelMonteCarloEstimate — the spread makes
  /// worker imbalance visible in run reports.
  std::vector<size_t> per_thread_samples;
};

/// Algorithm 2, MonteCarlo[Sample]: asks OptEstimate for the optimal
/// iteration count N, then averages N fresh samples. Under Lemma 4.2's
/// conditions this is an efficient randomized approximation scheme for
/// EV[Sample].
///
/// The optional recorders collect convergence telemetry: every estimator
/// draw goes to `estimator_convergence` and every main-loop draw to
/// `main_convergence` (null = off; compiled out under CQABENCH_NO_OBS).
MonteCarloResult MonteCarloEstimate(
    Sampler& sampler, double epsilon, double delta, Rng& rng,
    const Deadline& deadline = Deadline(),
    obs::ConvergenceRecorder* estimator_convergence = nullptr,
    obs::ConvergenceRecorder* main_convergence = nullptr);

}  // namespace cqa

#endif  // CQABENCH_CQA_MONTE_CARLO_H_
