#include "cqa/image_index.h"

#include "common/macros.h"

namespace cqa {

ImageIndex::ImageIndex(const Synopsis* synopsis) {
  CQA_CHECK(synopsis != nullptr);
  const std::vector<Synopsis::Block>& blocks = synopsis->blocks();
  const std::vector<Synopsis::Image>& images = synopsis->images();

  // Lay the (block, tid) cells out back to back, then two passes: count
  // list lengths into the offsets, prefix-sum, fill.
  block_base_.resize(blocks.size());
  size_t num_cells = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    block_base_[b] = num_cells;
    num_cells += blocks[b].size;
  }
  cell_offsets_.assign(num_cells + 1, 0);
  image_sizes_.reserve(images.size());
  for (const Synopsis::Image& image : images) {
    image_sizes_.push_back(static_cast<uint32_t>(image.facts.size()));
    for (const Synopsis::ImageFact& f : image.facts) {
      ++cell_offsets_[block_base_[f.block] + f.tid + 1];
    }
  }
  for (size_t c = 1; c < cell_offsets_.size(); ++c) {
    cell_offsets_[c] += cell_offsets_[c - 1];
  }
  images_.resize(cell_offsets_.back());
  std::vector<uint32_t> fill_pos(cell_offsets_.begin(),
                                 cell_offsets_.end() - 1);
  for (uint32_t i = 0; i < images.size(); ++i) {
    for (const Synopsis::ImageFact& f : images[i].facts) {
      images_[fill_pos[block_base_[f.block] + f.tid]++] = i;
    }
  }

  hits_.assign(images.size(), 0);
  stamp_.assign(images.size(), 0);
}

TidDigitPlan::TidDigitPlan(const Synopsis* synopsis) {
  CQA_CHECK(synopsis != nullptr);
  const std::vector<Synopsis::Block>& blocks = synopsis->blocks();
  sizes_.reserve(blocks.size());
  refill_.assign(blocks.size(), 0);
  // Granularity left in the current word; starts exhausted so the first
  // entropy-consuming block always pulls a fresh word.
  unsigned __int128 capacity = 0;
  constexpr unsigned __int128 kFull = static_cast<unsigned __int128>(1)
                                      << 64;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const size_t s = blocks[b].size;
    CQA_CHECK(s > 0 && s <= UINT32_MAX);
    sizes_.push_back(static_cast<uint32_t>(s));
    if (s == 1) continue;  // tid is always 0: no entropy needed.
    // Keep >= 32 bits of granularity after extracting this digit.
    if (capacity < (static_cast<unsigned __int128>(s) << 32)) {
      refill_[b] = 1;
      capacity = kFull;
    }
    capacity /= s;
  }
}

}  // namespace cqa
