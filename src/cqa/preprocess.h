// The preprocessing step syn_{Sigma,Q}(D): evaluates Q over D and folds
// every homomorphism into per-answer synopses (consistent images + the
// blocks they touch). A PreprocessResult is immutable once built --
// concurrent readers need no lock, which is what lets the serving
// layer's synopsis cache hand one shared_ptr<const PreprocessResult> to
// many worker threads at once (proved under TSan by
// tests/parallel_race_test.cc).
#ifndef CQABENCH_CQA_PREPROCESS_H_
#define CQABENCH_CQA_PREPROCESS_H_

#include <vector>

#include "cqa/synopsis.h"
#include "query/evaluator.h"
#include "storage/block_index.h"
#include "storage/database.h"

namespace cqa {

/// A candidate answer together with its (Σ, Q)-synopsis.
struct AnswerSynopsis {
  Tuple answer;
  Synopsis synopsis;
};

struct PreprocessStats {
  /// Total homomorphisms from Q to D (consistent or not).
  size_t num_homomorphisms = 0;
  /// Σ_i |H_i|: consistent homomorphic images, counted per answer.
  size_t num_images = 0;
  /// |∪_i H_i|: globally distinct consistent images (the paper's
  /// "homomorphic size of Q w.r.t. D").
  size_t num_distinct_images = 0;
  /// Wall-clock time of the preprocessing step.
  double seconds = 0.0;
};

/// Output of the preprocessing step of §5: the set syn_{Σ,Q}(D) of pairs
/// (t̄, (H, B)), with only-positive-frequency answers included, plus the
/// block structure of the database it was computed against.
class PreprocessResult {
 public:
  PreprocessResult(std::vector<AnswerSynopsis> answers, BlockIndex index,
                   PreprocessStats stats)
      : answers_(std::move(answers)),
        block_index_(std::move(index)),
        stats_(stats) {}

  const std::vector<AnswerSynopsis>& answers() const { return answers_; }
  const BlockIndex& block_index() const { return block_index_; }
  const PreprocessStats& stats() const { return stats_; }

  size_t NumAnswers() const { return answers_.size(); }

  /// The balance of Q w.r.t. D (§6.1): |syn_{Σ,Q}(D)| / |∪_i H_i|, i.e.
  /// the inverse of the average synopsis size. 0 when the query is empty.
  /// A Boolean query with many images has balance close to 0; a query
  /// whose every answer has a single witnessing image has balance 1.
  double Balance() const;

  /// Distinct facts appearing in some consistent homomorphic image — the
  /// query-relevant portion of D the noise generator perturbs (§6.1).
  std::vector<FactRef> ImageFactRefs() const;

 private:
  std::vector<AnswerSynopsis> answers_;
  BlockIndex block_index_;
  PreprocessStats stats_;
};

/// The preprocessing step: computes syn_{Σ,Q}(D) in one pass.
///
/// Mirrors the paper's SQL rewriting Q^rew (Appendix C): annotate every
/// fact with (rid, bid, tid, kcnt) via the block index, enumerate all
/// homomorphisms, keep the consistent images (no block mapped to two
/// distinct tuple ids), and group them by answer tuple h(x̄). Runs in time
/// polynomial in ||D|| (Lemma 4.1).
///
/// `cache` optionally shares evaluation indexes across calls on the same
/// database.
PreprocessResult BuildSynopses(const Database& db, const ConjunctiveQuery& q,
                               DatabaseIndexCache* cache = nullptr);

}  // namespace cqa

#endif  // CQABENCH_CQA_PREPROCESS_H_
