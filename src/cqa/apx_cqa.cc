#include "cqa/apx_cqa.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {

/// Accumulates one synopsis run into the per-scheme-run totals,
/// summing the per-worker counts element-wise.
void Accumulate(CqaRunResult* result, const ApxResult& apx) {
  result->total_samples += apx.samples;
  result->estimator_samples += apx.estimator_samples;
  result->main_samples += apx.main_samples;
  result->estimator_seconds += apx.estimator_seconds;
  result->main_seconds += apx.main_seconds;
  if (apx.per_thread_samples.size() > result->per_thread_samples.size()) {
    result->per_thread_samples.resize(apx.per_thread_samples.size(), 0);
  }
  for (size_t t = 0; t < apx.per_thread_samples.size(); ++t) {
    result->per_thread_samples[t] += apx.per_thread_samples[t];
  }
}

}  // namespace

CqaRunResult ApxCqaOnSynopses(const PreprocessResult& preprocessed,
                              SchemeKind scheme, const ApxParams& params,
                              Rng& rng, const Deadline& deadline) {
  CqaRunResult result;
  result.preprocess_seconds = preprocessed.stats().seconds;
  std::unique_ptr<ApxRelativeFreqScheme> apx =
      ApxRelativeFreqScheme::Create(scheme);
  obs::TraceSpan span("apx_cqa.scheme_phase");
  Stopwatch watch;
  const std::vector<AnswerSynopsis>& answers = preprocessed.answers();

  if (params.num_threads > 1 && answers.size() > 1) {
    // Batch evaluation parallelizes across answers instead of inside each
    // estimate: answers are independent, so this spreads whole runs over
    // the persistent pool with zero hot-path synchronization. Each answer
    // runs the scheme single-threaded on its own forked RNG stream
    // (seeds drawn sequentially up front for determinism).
    ApxParams inner = params;
    inner.num_threads = 1;
    size_t width = std::min(params.num_threads, answers.size());
    ThreadPool& pool = ThreadPool::Shared();
    size_t spawned = pool.EnsureWorkers(width - 1);
    CQA_OBS_COUNT_N("apx_cqa.workers_launched", spawned);
    if (spawned == 0) CQA_OBS_COUNT("apx_cqa.pool_reuses");
    std::vector<uint64_t> seeds(answers.size());
    for (uint64_t& seed : seeds) seed = rng.ForkSeed();
    std::vector<ApxResult> outcomes(answers.size());
    std::vector<uint8_t> ran(answers.size(), 0);
    pool.Run(answers.size(), [&](size_t idx) {
      if (deadline.Expired()) return;  // Left as "not run" -> timeout.
      Rng answer_rng(seeds[idx]);
      outcomes[idx] =
          apx->Run(answers[idx].synopsis, inner, answer_rng, deadline);
      ran[idx] = 1;
    });
    // Fold in answer order so timeout semantics match the serial loop:
    // the first answer that timed out (or never ran) is accumulated and
    // every later one is dropped.
    for (size_t idx = 0; idx < answers.size(); ++idx) {
      if (!ran[idx]) {
        result.timed_out = true;
        break;
      }
      ApxResult& apx_result = outcomes[idx];
      // Each answer ran single-threaded; attribute its counts to a worker
      // lane (answers round-robin over the pool width) so the aggregated
      // per_thread_samples still reports the parallel split.
      if (!apx_result.per_thread_samples.empty()) {
        std::vector<size_t> lanes(width, 0);
        for (size_t s : apx_result.per_thread_samples) {
          lanes[idx % width] += s;
        }
        apx_result.per_thread_samples = std::move(lanes);
      }
      Accumulate(&result, apx_result);
      for (obs::ConvergenceSeries& series : apx_result.convergence) {
        result.convergence.push_back(std::move(series));
      }
      apx_result.convergence.clear();
      if (apx_result.timed_out) {
        result.timed_out = true;
        break;
      }
      result.answers.push_back(CqaAnswer{answers[idx].answer,
                                         apx_result.estimate,
                                         std::move(apx_result)});
    }
    result.scheme_seconds = watch.ElapsedSeconds();
    return result;
  }

  for (const AnswerSynopsis& as : answers) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    ApxResult apx_result = apx->Run(as.synopsis, params, rng, deadline);
    Accumulate(&result, apx_result);
    for (obs::ConvergenceSeries& series : apx_result.convergence) {
      result.convergence.push_back(std::move(series));
    }
    apx_result.convergence.clear();
    if (apx_result.timed_out) {
      result.timed_out = true;
      break;
    }
    result.answers.push_back(
        CqaAnswer{as.answer, apx_result.estimate, std::move(apx_result)});
  }
  result.scheme_seconds = watch.ElapsedSeconds();
  return result;
}

CqaRunResult ApxCqa(const Database& db, const ConjunctiveQuery& q,
                    SchemeKind scheme, const ApxParams& params, Rng& rng,
                    const Deadline& deadline) {
  PreprocessResult preprocessed = BuildSynopses(db, q);
  return ApxCqaOnSynopses(preprocessed, scheme, params, rng, deadline);
}

obs::RunRecord MakeRunRecord(const CqaRunResult& run, SchemeKind scheme,
                             const obs::RunContext& context,
                             double total_seconds) {
  obs::RunRecord record;
  record.scenario = context.scenario;
  record.x_label = context.x_label;
  record.x = context.x;
  record.scheme = SchemeKindName(scheme);
  record.num_answers = run.answers.size();
  double frequency_sum = 0.0;
  for (const CqaAnswer& a : run.answers) frequency_sum += a.frequency;
  if (!run.answers.empty()) {
    record.estimate = frequency_sum / static_cast<double>(run.answers.size());
  }
  record.estimator_samples = run.estimator_samples;
  record.main_samples = run.main_samples;
  record.total_samples = run.total_samples;
  record.estimator_seconds = run.estimator_seconds;
  record.main_seconds = run.main_seconds;
  record.total_seconds = total_seconds;
  record.preprocess_seconds = run.preprocess_seconds;
  record.timed_out = run.timed_out;
  record.per_thread_samples = run.per_thread_samples;
  record.convergence = obs::Summarize(run.convergence);
  return record;
}

}  // namespace cqa
