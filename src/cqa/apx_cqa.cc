#include "cqa/apx_cqa.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {

/// Accumulates one synopsis run into the per-scheme-run totals,
/// summing the per-worker counts element-wise.
void Accumulate(CqaRunResult* result, const ApxResult& apx) {
  result->total_samples += apx.samples;
  result->estimator_samples += apx.estimator_samples;
  result->main_samples += apx.main_samples;
  result->estimator_seconds += apx.estimator_seconds;
  result->main_seconds += apx.main_seconds;
  if (apx.per_thread_samples.size() > result->per_thread_samples.size()) {
    result->per_thread_samples.resize(apx.per_thread_samples.size(), 0);
  }
  for (size_t t = 0; t < apx.per_thread_samples.size(); ++t) {
    result->per_thread_samples[t] += apx.per_thread_samples[t];
  }
}

}  // namespace

CqaRunResult ApxCqaOnSynopses(const PreprocessResult& preprocessed,
                              SchemeKind scheme, const ApxParams& params,
                              Rng& rng, const Deadline& deadline) {
  CqaRunResult result;
  result.preprocess_seconds = preprocessed.stats().seconds;
  std::unique_ptr<ApxRelativeFreqScheme> apx =
      ApxRelativeFreqScheme::Create(scheme);
  obs::TraceSpan span("apx_cqa.scheme_phase");
  Stopwatch watch;
  for (const AnswerSynopsis& as : preprocessed.answers()) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    ApxResult apx_result = apx->Run(as.synopsis, params, rng, deadline);
    Accumulate(&result, apx_result);
    for (obs::ConvergenceSeries& series : apx_result.convergence) {
      result.convergence.push_back(std::move(series));
    }
    apx_result.convergence.clear();
    if (apx_result.timed_out) {
      result.timed_out = true;
      break;
    }
    result.answers.push_back(
        CqaAnswer{as.answer, apx_result.estimate, std::move(apx_result)});
  }
  result.scheme_seconds = watch.ElapsedSeconds();
  return result;
}

CqaRunResult ApxCqa(const Database& db, const ConjunctiveQuery& q,
                    SchemeKind scheme, const ApxParams& params, Rng& rng,
                    const Deadline& deadline) {
  PreprocessResult preprocessed = BuildSynopses(db, q);
  return ApxCqaOnSynopses(preprocessed, scheme, params, rng, deadline);
}

obs::RunRecord MakeRunRecord(const CqaRunResult& run, SchemeKind scheme,
                             const obs::RunContext& context,
                             double total_seconds) {
  obs::RunRecord record;
  record.scenario = context.scenario;
  record.x_label = context.x_label;
  record.x = context.x;
  record.scheme = SchemeKindName(scheme);
  record.num_answers = run.answers.size();
  double frequency_sum = 0.0;
  for (const CqaAnswer& a : run.answers) frequency_sum += a.frequency;
  if (!run.answers.empty()) {
    record.estimate = frequency_sum / static_cast<double>(run.answers.size());
  }
  record.estimator_samples = run.estimator_samples;
  record.main_samples = run.main_samples;
  record.total_samples = run.total_samples;
  record.estimator_seconds = run.estimator_seconds;
  record.main_seconds = run.main_seconds;
  record.total_seconds = total_seconds;
  record.preprocess_seconds = run.preprocess_seconds;
  record.timed_out = run.timed_out;
  record.per_thread_samples = run.per_thread_samples;
  record.convergence = obs::Summarize(run.convergence);
  return record;
}

}  // namespace cqa
