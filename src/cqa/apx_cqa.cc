#include "cqa/apx_cqa.h"

#include "common/stopwatch.h"

namespace cqa {

CqaRunResult ApxCqaOnSynopses(const PreprocessResult& preprocessed,
                              SchemeKind scheme, const ApxParams& params,
                              Rng& rng, const Deadline& deadline) {
  CqaRunResult result;
  result.preprocess_seconds = preprocessed.stats().seconds;
  std::unique_ptr<ApxRelativeFreqScheme> apx =
      ApxRelativeFreqScheme::Create(scheme);
  Stopwatch watch;
  for (const AnswerSynopsis& as : preprocessed.answers()) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    ApxResult apx_result = apx->Run(as.synopsis, params, rng, deadline);
    result.total_samples += apx_result.samples;
    if (apx_result.timed_out) {
      result.timed_out = true;
      break;
    }
    result.answers.push_back(
        CqaAnswer{as.answer, apx_result.estimate, apx_result});
  }
  result.scheme_seconds = watch.ElapsedSeconds();
  return result;
}

CqaRunResult ApxCqa(const Database& db, const ConjunctiveQuery& q,
                    SchemeKind scheme, const ApxParams& params, Rng& rng,
                    const Deadline& deadline) {
  PreprocessResult preprocessed = BuildSynopses(db, q);
  return ApxCqaOnSynopses(preprocessed, scheme, params, rng, deadline);
}

}  // namespace cqa
