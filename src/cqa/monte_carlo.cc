#include "cqa/monte_carlo.h"

#include "cqa/opt_estimate.h"

namespace cqa {

namespace {
constexpr size_t kDeadlineStride = 64;
}  // namespace

MonteCarloResult MonteCarloEstimate(Sampler& sampler, double epsilon,
                                    double delta, Rng& rng,
                                    const Deadline& deadline) {
  MonteCarloResult result;
  OptEstimateResult opt = OptEstimate(sampler, epsilon, delta, rng, deadline);
  result.estimator_samples = opt.samples_used;
  if (opt.timed_out) {
    result.timed_out = true;
    return result;
  }

  double sum = 0.0;
  size_t n = opt.num_iterations;
  for (size_t i = 0; i < n; ++i) {
    sum += sampler.Draw(rng);
    if (i % kDeadlineStride == 0 && deadline.Expired()) {
      result.main_samples = i;
      result.timed_out = true;
      return result;
    }
  }
  result.main_samples = n;
  result.estimate = sum / static_cast<double>(n);
  return result;
}

}  // namespace cqa
