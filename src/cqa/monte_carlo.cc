#include "cqa/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "cqa/opt_estimate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {
/// Main-loop draws come in blocks: one virtual call, one deadline check,
/// and one audit per block instead of per draw. n is fixed up front, so
/// batching is stream-identical to drawing one by one.
constexpr size_t kBatch = 256;
}  // namespace

MonteCarloResult MonteCarloEstimate(
    Sampler& sampler, double epsilon, double delta, Rng& rng,
    const Deadline& deadline, obs::ConvergenceRecorder* estimator_convergence,
    obs::ConvergenceRecorder* main_convergence) {
  MonteCarloResult result;
  Stopwatch phase_watch;
  OptEstimateResult opt;
  {
    obs::TraceSpan span("monte_carlo.estimator");
    opt = OptEstimate(sampler, epsilon, delta, rng, deadline,
                      estimator_convergence);
  }
  result.estimator_samples = opt.samples_used;
  result.estimator_seconds = phase_watch.ElapsedSeconds();
  if (opt.timed_out) {
    result.timed_out = true;
    return result;
  }

  phase_watch.Restart();
  obs::TraceSpan span("monte_carlo.main_loop");
  double sum = 0.0;
  size_t n = opt.num_iterations;
  size_t done = 0;
  std::vector<double> buf(kBatch);
  while (done < n) {
    size_t m = std::min(n - done, kBatch);
    sampler.DrawBatch(rng, m, buf.data());
    CQA_AUDIT(audit::CheckBatchDraws, sampler, buf.data(), m);
    for (size_t k = 0; k < m; ++k) {
      sum += buf[k];
      if (main_convergence != nullptr) main_convergence->Observe(buf[k]);
    }
    done += m;
    if (done < n && deadline.Expired()) {
      result.main_samples = done;
      result.timed_out = true;
      result.main_seconds = phase_watch.ElapsedSeconds();
      result.per_thread_samples = {done};
      CQA_OBS_COUNT_N("monte_carlo.main_draws", done);
      CQA_OBS_COUNT("monte_carlo.timeouts");
      return result;
    }
  }
  result.main_samples = n;
  result.estimate = sum / static_cast<double>(n);
  result.main_seconds = phase_watch.ElapsedSeconds();
  result.per_thread_samples = {n};
  CQA_AUDIT(audit::CheckMonteCarloResult, result);
  CQA_OBS_COUNT_N("monte_carlo.main_draws", n);
  CQA_OBS_COUNT("monte_carlo.runs");
  return result;
}

}  // namespace cqa
