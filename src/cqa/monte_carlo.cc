#include "cqa/monte_carlo.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "cqa/opt_estimate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {
constexpr size_t kDeadlineStride = 64;
}  // namespace

MonteCarloResult MonteCarloEstimate(
    Sampler& sampler, double epsilon, double delta, Rng& rng,
    const Deadline& deadline, obs::ConvergenceRecorder* estimator_convergence,
    obs::ConvergenceRecorder* main_convergence) {
  MonteCarloResult result;
  Stopwatch phase_watch;
  OptEstimateResult opt;
  {
    obs::TraceSpan span("monte_carlo.estimator");
    opt = OptEstimate(sampler, epsilon, delta, rng, deadline,
                      estimator_convergence);
  }
  result.estimator_samples = opt.samples_used;
  result.estimator_seconds = phase_watch.ElapsedSeconds();
  if (opt.timed_out) {
    result.timed_out = true;
    return result;
  }

  phase_watch.Restart();
  obs::TraceSpan span("monte_carlo.main_loop");
  double sum = 0.0;
  size_t n = opt.num_iterations;
  for (size_t i = 0; i < n; ++i) {
    double x = sampler.Draw(rng);
    sum += x;
    if (main_convergence != nullptr) main_convergence->Observe(x);
    if (i % kDeadlineStride == 0 && deadline.Expired()) {
      result.main_samples = i;
      result.timed_out = true;
      result.main_seconds = phase_watch.ElapsedSeconds();
      result.per_thread_samples = {i};
      CQA_OBS_COUNT_N("monte_carlo.main_draws", i);
      CQA_OBS_COUNT("monte_carlo.timeouts");
      return result;
    }
  }
  result.main_samples = n;
  result.estimate = sum / static_cast<double>(n);
  result.main_seconds = phase_watch.ElapsedSeconds();
  result.per_thread_samples = {n};
  CQA_AUDIT(audit::CheckMonteCarloResult, result);
  CQA_OBS_COUNT_N("monte_carlo.main_draws", n);
  CQA_OBS_COUNT("monte_carlo.runs");
  return result;
}

}  // namespace cqa
