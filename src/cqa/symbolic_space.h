// The symbolic sampling space S* of section 4.2, with alias-table image
// selection. Immutable after construction; samplers draw from it through
// their own per-thread scratch.
#ifndef CQABENCH_CQA_SYMBOLIC_SPACE_H_
#define CQABENCH_CQA_SYMBOLIC_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "cqa/image_index.h"
#include "cqa/synopsis.h"

namespace cqa {

/// The symbolic sampling space S• of §4.2:
///   S• = { (i, I) | i ∈ [|H|], I ∈ db(B), H_i ⊆ I }.
///
/// All cardinalities are handled as ratios against |db(B)| so nothing
/// overflows: w_i = |I_i|/|db(B)| = Π_{blocks of H_i} 1/|block| and
/// |S•|/|db(B)| = Σ_i w_i. Sampling (i, I) uniformly from S• = draw
/// i with probability w_i / Σ w_j, fix the facts of H_i, and choose the
/// remaining blocks uniformly.
///
/// Image selection uses a Walker/Vose alias table built once at
/// construction: O(1) per draw (one uniform index + one uniform real)
/// instead of the O(log |H|) binary search over prefix sums a cumulative
/// table costs — on the million-draw main loops of the KL/KLM schemes the
/// search was a measurable fraction of every draw.
class SymbolicSpace {
 public:
  /// The synopsis must be non-empty and outlive the space.
  explicit SymbolicSpace(const Synopsis* synopsis);

  const Synopsis& synopsis() const { return *synopsis_; }

  /// |S•| / |db(B)| = Σ_i w_i. This is the `r`-goodness inverse: the
  /// KL/KLM samplers are (|db(B)|/|S•|)-good.
  double total_weight() const { return total_weight_; }

  const std::vector<double>& weights() const { return weights_; }

  /// The Vose alias table: column k selects image k with probability
  /// alias_prob()[k], else image alias()[k]. Exposed for the audit layer
  /// and the distribution tests, which reconstruct each image's selection
  /// mass from the table and compare it against weights().
  const std::vector<double>& alias_prob() const { return alias_prob_; }
  const std::vector<uint32_t>& alias() const { return alias_; }

  /// alias_prob() rescaled to 64-bit integer coin thresholds — what the
  /// draw actually compares against. Exposed for the audit layer, which
  /// re-derives each cutoff from alias_prob().
  const std::vector<uint64_t>& alias_cut() const { return alias_cut_; }

  /// Draws the image index i with probability w_i / Σ w_j — the alias
  /// draw alone, without materializing a database. One engine word does
  /// both halves of the alias draw: u·n splits into the column index
  /// ⌊u·n⌋ and the coin frac(u·n), which is the classic one-uniform alias
  /// formulation (the coin's granularity is 2^64/n, far below anything
  /// the chi-square tests can see).
  size_t SampleImageIndex(Rng& rng) const {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(rng.engine()()) * alias_cut_.size();
    const size_t k = static_cast<size_t>(m >> 64);
    return static_cast<uint64_t>(m) < alias_cut_[k] ? k : alias_[k];
  }

  /// Draws (i, I) uniformly from S•. Overwrites *choice (resized to the
  /// number of blocks) with I and returns i.
  size_t SampleElement(Rng& rng, Synopsis::Choice* choice) const;

 private:
  const Synopsis* synopsis_;
  std::vector<double> weights_;
  // Walker/Vose alias table over weights_ (one column per image).
  // alias_cut_ is alias_prob_ rescaled to a 64-bit integer threshold so
  // the draw compares raw fraction bits instead of converting to double.
  std::vector<double> alias_prob_;
  std::vector<uint64_t> alias_cut_;
  std::vector<uint32_t> alias_;
  // Refill schedule for packing all free-block tid draws of one sample
  // into ~⌈Σ log2 |block|/32⌉ engine words.
  TidDigitPlan digits_;
  double total_weight_ = 0.0;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_SYMBOLIC_SPACE_H_
