#ifndef CQABENCH_CQA_SYMBOLIC_SPACE_H_
#define CQABENCH_CQA_SYMBOLIC_SPACE_H_

#include <vector>

#include "common/rng.h"
#include "cqa/synopsis.h"

namespace cqa {

/// The symbolic sampling space S• of §4.2:
///   S• = { (i, I) | i ∈ [|H|], I ∈ db(B), H_i ⊆ I }.
///
/// All cardinalities are handled as ratios against |db(B)| so nothing
/// overflows: w_i = |I_i|/|db(B)| = Π_{blocks of H_i} 1/|block| and
/// |S•|/|db(B)| = Σ_i w_i. Sampling (i, I) uniformly from S• = draw
/// i with probability w_i / Σ w_j, fix the facts of H_i, and choose the
/// remaining blocks uniformly.
class SymbolicSpace {
 public:
  /// The synopsis must be non-empty and outlive the space.
  explicit SymbolicSpace(const Synopsis* synopsis);

  const Synopsis& synopsis() const { return *synopsis_; }

  /// |S•| / |db(B)| = Σ_i w_i. This is the `r`-goodness inverse: the
  /// KL/KLM samplers are (|db(B)|/|S•|)-good.
  double total_weight() const { return total_weight_; }

  const std::vector<double>& weights() const { return weights_; }

  /// Draws (i, I) uniformly from S•. Overwrites *choice (resized to the
  /// number of blocks) with I and returns i.
  size_t SampleElement(Rng& rng, Synopsis::Choice* choice) const;

 private:
  const Synopsis* synopsis_;
  std::vector<double> weights_;
  std::vector<double> cumulative_;  // Prefix sums of weights_, for O(log n).
  double total_weight_ = 0.0;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_SYMBOLIC_SPACE_H_
