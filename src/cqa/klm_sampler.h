// SampleKLM (Karp-Luby-Madras): symbolic-space sampler returning 1/k for
// k witnessing images -- same expectation as SampleKL, lower variance.
#ifndef CQABENCH_CQA_KLM_SAMPLER_H_
#define CQABENCH_CQA_KLM_SAMPLER_H_

#include "cqa/image_index.h"
#include "cqa/sampler.h"
#include "cqa/symbolic_space.h"

namespace cqa {

/// Sampler 3 (SampleKLM), the Karp–Luby–Madras variation (after the
/// coverage estimator in Vazirani's presentation [26]): draws (i, I)
/// uniformly from S• and returns 1/k where k = |{j : I ∈ I_j}| is the
/// number of images witnessing I. (|db(B)|/|S•|)-good (Lemma 4.7), same
/// expectation as SampleKL but smaller variance at the price of counting
/// every witness instead of stopping at the first.
///
/// The witness count runs over the shared ImageIndex: only images sharing
/// a drawn fact are visited, instead of re-testing containment of all of
/// H against the drawn database.
class KlmSampler : public Sampler {
 public:
  /// The space (and its synopsis) must outlive the sampler.
  explicit KlmSampler(const SymbolicSpace* space);

  double Draw(Rng& rng) override;
  void DrawBatch(Rng& rng, size_t n, double* out) override;
  double GoodnessFactor() const override {
    return 1.0 / space_->total_weight();
  }
  const char* name() const override { return "SampleKLM"; }

 private:
  /// One draw; adds this draw's witness count to *witnesses.
  double DrawImpl(Rng& rng, size_t* witnesses);

  const SymbolicSpace* space_;
  ImageIndex index_;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_KLM_SAMPLER_H_
