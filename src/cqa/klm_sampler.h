#ifndef CQABENCH_CQA_KLM_SAMPLER_H_
#define CQABENCH_CQA_KLM_SAMPLER_H_

#include "cqa/sampler.h"
#include "cqa/symbolic_space.h"

namespace cqa {

/// Sampler 3 (SampleKLM), the Karp–Luby–Madras variation (after the
/// coverage estimator in Vazirani's presentation [26]): draws (i, I)
/// uniformly from S• and returns 1/k where k = |{j : I ∈ I_j}| is the
/// number of images witnessing I. (|db(B)|/|S•|)-good (Lemma 4.7), same
/// expectation as SampleKL but smaller variance at the price of always
/// scanning all of H.
class KlmSampler : public Sampler {
 public:
  /// The space (and its synopsis) must outlive the sampler.
  explicit KlmSampler(const SymbolicSpace* space);

  double Draw(Rng& rng) override;
  double GoodnessFactor() const override {
    return 1.0 / space_->total_weight();
  }
  const char* name() const override { return "SampleKLM"; }

 private:
  const SymbolicSpace* space_;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_KLM_SAMPLER_H_
