// SampleNatural: reference sampler over the natural space db(B); kept as
// the cross-validation oracle for the indexed variant.
#ifndef CQABENCH_CQA_NATURAL_SAMPLER_H_
#define CQABENCH_CQA_NATURAL_SAMPLER_H_

#include "cqa/sampler.h"
#include "cqa/synopsis.h"

namespace cqa {

/// Sampler 1 (SampleNatural): draws I uniformly from the natural sampling
/// space S = db(B) and returns 1 iff some image H ∈ H is contained in I.
/// 1-good: E[Draw] = R(H, B) (Lemma 4.3).
///
/// This is the reference implementation — a full scan of H per draw. The
/// Natural scheme runs on IndexedNaturalSampler instead; this sampler
/// stays as the cross-validation oracle for the audit layer and tests.
class NaturalSampler : public Sampler {
 public:
  /// The synopsis must be non-empty and outlive the sampler.
  explicit NaturalSampler(const Synopsis* synopsis);

  double Draw(Rng& rng) override;
  void DrawBatch(Rng& rng, size_t n, double* out) override;
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "SampleNatural"; }

 private:
  /// One draw without obs accounting (shared by Draw and DrawBatch).
  double DrawImpl(Rng& rng);

  const Synopsis* synopsis_;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_NATURAL_SAMPLER_H_
