#include "cqa/natural_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

NaturalSampler::NaturalSampler(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "natural sampler requires H != {}");
  CQA_AUDIT(audit::CheckSynopsis, *synopsis);
}

double NaturalSampler::DrawImpl(Rng& rng) {
  const std::vector<Synopsis::Block>& blocks = synopsis_->blocks();
  scratch_.resize(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    scratch_[b] = static_cast<uint32_t>(rng.UniformIndex(blocks[b].size));
  }
  if (synopsis_->AnyImageContainedIn(scratch_)) {
    CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 1.0);
    return 1.0;
  }
  CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 0.0);
  return 0.0;
}

double NaturalSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.natural.draws");
  double v = DrawImpl(rng);
  if (v == 1.0) CQA_OBS_COUNT("sampler.natural.hits");
  return v;
}

void NaturalSampler::DrawBatch(Rng& rng, size_t n, double* out) {
  size_t hits = 0;
  for (size_t k = 0; k < n; ++k) {
    out[k] = DrawImpl(rng);
    hits += out[k] == 1.0 ? 1 : 0;
  }
  CQA_OBS_COUNT_N("sampler.natural.draws", n);
  CQA_OBS_COUNT_N("sampler.natural.hits", hits);
}

}  // namespace cqa
