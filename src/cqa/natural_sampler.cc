#include "cqa/natural_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

NaturalSampler::NaturalSampler(const Synopsis* synopsis)
    : synopsis_(synopsis) {
  CQA_CHECK(synopsis != nullptr);
  CQA_CHECK_MSG(!synopsis->Empty(), "natural sampler requires H != {}");
  CQA_AUDIT(audit::CheckSynopsis, *synopsis);
}

double NaturalSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.natural.draws");
  const std::vector<Synopsis::Block>& blocks = synopsis_->blocks();
  scratch_.resize(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    scratch_[b] = static_cast<uint32_t>(rng.UniformIndex(blocks[b].size));
  }
  if (synopsis_->AnyImageContainedIn(scratch_)) {
    CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 1.0);
    CQA_OBS_COUNT("sampler.natural.hits");
    return 1.0;
  }
  CQA_AUDIT(audit::CheckNaturalDraw, *synopsis_, scratch_, 0.0);
  return 0.0;
}

}  // namespace cqa
