// Bridge from database synopses to positive Block DNF formulas, exposing
// the relative-frequency problem to DNF-counting tooling.
#ifndef CQABENCH_CQA_BLOCK_DNF_H_
#define CQABENCH_CQA_BLOCK_DNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cqa/synopsis.h"

namespace cqa {

/// A positive Block DNF formula (the paper's Appendix E footnote): the
/// variables are partitioned into blocks X_1, ..., X_m, every clause is a
/// conjunction of variables, and only assignments making *exactly one*
/// variable per block true are considered. A database synopsis is such a
/// formula: facts are variables, blocks are the partition, consistent
/// homomorphic images are the clauses — and R(H, B) is the fraction of
/// block-consistent assignments that satisfy it. This bridge exposes
/// synopses to DNF-counting tooling (e.g. ADCS-style suites).
struct BlockDnf {
  /// A literal: variable `index` of block `block`.
  struct Literal {
    uint32_t block = 0;
    uint32_t index = 0;
  };

  std::vector<size_t> block_sizes;
  std::vector<std::vector<Literal>> clauses;

  size_t NumVariables() const;
  size_t NumBlocks() const { return block_sizes.size(); }
  size_t NumClauses() const { return clauses.size(); }

  /// Human-readable rendering: "(x1_0 & x3_2) | ..." with blocks listed.
  std::string ToString() const;
};

/// The synopsis-to-formula translation described above.
BlockDnf SynopsisToBlockDnf(const Synopsis& synopsis);

/// The fraction of block-consistent assignments satisfying the formula,
/// by enumeration — an independent oracle for R(H, B). Returns nullopt
/// when the number of assignments exceeds `max_assignments`.
std::optional<double> SatisfyingFraction(const BlockDnf& formula,
                                         size_t max_assignments = 1 << 22);

}  // namespace cqa

#endif  // CQABENCH_CQA_BLOCK_DNF_H_
