// Audit predicates for the estimator stack (compiled in by the sanitizer
// presets): structural synopsis invariants, sampler goodness bounds, and
// estimator post-conditions.
#ifndef CQABENCH_CQA_INVARIANTS_H_
#define CQABENCH_CQA_INVARIANTS_H_

#include <cstddef>
#include <string>

#include "cqa/coverage.h"
#include "cqa/monte_carlo.h"
#include "cqa/opt_estimate.h"
#include "cqa/sampler.h"
#include "cqa/symbolic_space.h"
#include "cqa/synopsis.h"

namespace cqa::audit {

/// Audit predicates for the estimator stack, run through CQA_AUDIT (see
/// common/macros.h). Each returns true when the invariant holds; on a
/// violation it writes a diagnostic to *why (when non-null) and returns
/// false, so tests can probe deliberately corrupted states without dying.
///
/// These encode the load-bearing guarantees of §4–§5: a violated one does
/// not crash a Release benchmark — it silently skews every reported
/// estimate — which is exactly why the sanitizer presets compile them in.

/// Structural synopsis invariants: block sizes >= 1; every image
/// non-empty, sorted by block, at most one fact per block (consistency),
/// with in-range block/tid references; images pairwise distinct; every
/// image weight in (0, 1].
bool CheckSynopsis(const Synopsis& synopsis, std::string* why);

/// The space's cached weights are exactly the synopsis image weights and
/// total_weight() is their sum (the |S•|/|db(B)| conversion factor every
/// symbolic scheme multiplies by). Also runs CheckAliasTable.
bool CheckSymbolicSpace(const SymbolicSpace& space, std::string* why);

/// The Walker/Vose alias table encodes exactly the normalized weights:
/// reconstructing image i's selection mass — its own column's acceptance
/// probability plus the residual 1 - alias_prob()[k] of every column k
/// aliased to i — and dividing by the column count recovers w_i / W up to
/// FP tolerance. Catches any construction bug that would silently bias
/// every KL/KLM draw.
bool CheckAliasTable(const SymbolicSpace& space, std::string* why);

/// Postcondition of a Sampler::DrawBatch block: every value lies in
/// [0, 1], the range the (ε, δ) analysis of the estimator stack assumes.
bool CheckBatchDraws(const Sampler& sampler, const double* values, size_t n,
                     std::string* why);

/// A sampled element (i, I) of S• is well-formed: i indexes an image, I
/// picks an in-range tuple for every block, and H_i ⊆ I — the
/// block-membership property KL/KLM acceptance relies on.
bool CheckSampledElement(const SymbolicSpace& space, size_t image_index,
                         const Synopsis::Choice& choice, std::string* why);

/// All facts of image `image_index` lie in blocks < prefix_blocks and
/// match the partially drawn choice — the early-accept invariant of the
/// indexed natural sampler, which stops drawing once an image completes.
bool CheckImageInPrefix(const Synopsis& synopsis, size_t image_index,
                        const Synopsis::Choice& choice, size_t prefix_blocks,
                        std::string* why);

/// A natural-space draw returned 1.0 iff some image is contained in the
/// fully drawn choice (cross-validates indexed fast paths against the
/// naive scan).
bool CheckNaturalDraw(const Synopsis& synopsis, const Synopsis::Choice& choice,
                      double value, std::string* why);

/// OptEstimate's (ε, δ) precondition: both strictly inside (0, 1).
bool CheckOptEstimateParams(double epsilon, double delta, std::string* why);

/// Postconditions of a completed (non-timed-out) OptEstimate run:
/// μ̂ ∈ (0, 1] (samples live in [0, 1]), ρ̂ >= ε·μ̂ (the variance clamp),
/// and at least one main-loop iteration was requested.
bool CheckOptEstimateResult(const OptEstimateResult& result, double epsilon,
                            std::string* why);

/// A Monte Carlo result is internally consistent: the per-thread sample
/// counts sum to main_samples, phase times are non-negative, and a
/// completed estimate lies in [0, 1] (samplers emit values in [0, 1]).
bool CheckMonteCarloResult(const MonteCarloResult& result, std::string* why);

/// The coverage loop respected its deterministic budget: steps <= N + 1,
/// every trial cost at least one step, and the normalized estimate of a
/// completed run is non-negative.
bool CheckCoverageResult(const CoverageResult& result, size_t budget,
                         std::string* why);

}  // namespace cqa::audit

#endif  // CQABENCH_CQA_INVARIANTS_H_
