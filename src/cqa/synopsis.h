// The encoded admissible pair (H, B): blocks with cardinalities plus
// consistent homomorphic images as (block, tid) fact lists. Immutable
// after construction and therefore safe to share across any number of
// concurrent scheme runs -- samplers and spaces keep their mutable
// scratch elsewhere (see image_index.h). The serving layer relies on
// this to serve cached synopses lock-free.
#ifndef CQABENCH_CQA_SYNOPSIS_H_
#define CQABENCH_CQA_SYNOPSIS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace cqa {

/// The admissible pair (H, B) of §4.1 in encoded form (§5 / Appendix C).
///
/// A synopsis collects, for one candidate answer t̄, the consistent
/// homomorphic images H of Q(t̄) in D and the blocks B of the facts those
/// images touch. The approximation schemes are oblivious to the syntactic
/// shape of facts, so the encoding keeps only:
///   * per block: its cardinality (`kcnt`) plus its origin (relation id +
///     block id within the relation) for traceability;
///   * per image: the facts it contains, each as (local block index,
///     tuple id within the block).
/// Facts of a block that appear in no image are represented implicitly by
/// the block cardinality — exactly the integer-identifier encoding
/// enc(syn) the paper derives from the SQL rewriting Q^rew.
class Synopsis {
 public:
  /// A block of B. `size` >= 1; tuple ids within the block are
  /// [0, size). (relation_id, block_id) locate the block in the database's
  /// BlockIndex (useful for debugging and the noise generator).
  struct Block {
    size_t size = 0;
    size_t relation_id = 0;
    size_t block_id = 0;
  };

  /// One fact of an image: tuple `tid` of local block `block`.
  struct ImageFact {
    uint32_t block = 0;
    uint32_t tid = 0;

    friend bool operator==(const ImageFact& a, const ImageFact& b) {
      return a.block == b.block && a.tid == b.tid;
    }
    friend bool operator<(const ImageFact& a, const ImageFact& b) {
      if (a.block != b.block) return a.block < b.block;
      return a.tid < b.tid;
    }
  };

  /// A consistent homomorphic image H_i: facts sorted by block, at most
  /// one fact per block (consistency), non-empty, duplicate-free.
  struct Image {
    std::vector<ImageFact> facts;
  };

  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Image>& images() const { return images_; }
  size_t NumBlocks() const { return blocks_.size(); }
  size_t NumImages() const { return images_.size(); }
  bool Empty() const { return images_.empty(); }

  /// Registers a block and returns its local index.
  size_t AddBlock(Block block);

  /// Adds an image. `facts` need not be sorted; duplicates are removed.
  /// Aborts if the image maps two distinct facts into one block (it would
  /// not be consistent) or references an unknown block/tid.
  /// Returns false if an identical image was already present (H is a set).
  bool AddImage(std::vector<ImageFact> facts);

  /// log10 |db(B)| = Σ log10(block size).
  double LogDbSize() const;

  /// w_i = |I_i| / |db(B)| = Π_{blocks of image i} 1/size, for each image.
  /// These drive the symbolic sampling space: |S•|/|db(B)| = Σ_i w_i.
  std::vector<double> ImageWeights() const;

  /// Σ_i w_i (the factor converting symbolic estimates back to R(H, B)).
  double SymbolicToNaturalFactor() const;

  /// A "choice" is one database of db(B): one tuple id per block.
  using Choice = std::vector<uint32_t>;

  /// True iff image `i` is contained in the database selected by `choice`.
  bool ImageContainedIn(size_t i, const Choice& choice) const;

  /// True iff some image is contained in the selected database.
  bool AnyImageContainedIn(const Choice& choice) const;

  std::string DebugString() const;

 private:
  std::vector<Block> blocks_;
  std::vector<Image> images_;
  // Canonical (sorted) images already present, for set semantics.
  std::set<std::vector<ImageFact>> image_keys_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_SYNOPSIS_H_
