// OptEstimate (Dagum-Karp-Luby-Ross): the optimal-in-expectation
// stopping rule that sizes the Monte Carlo main loop for an
// (eps, delta) relative-error guarantee.
#ifndef CQABENCH_CQA_OPT_ESTIMATE_H_
#define CQABENCH_CQA_OPT_ESTIMATE_H_

#include <cstddef>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/sampler.h"
#include "obs/convergence.h"

namespace cqa {

/// Result of OptEstimate[Sample]((H, B), ε, δ).
struct OptEstimateResult {
  /// The (up to constants) optimal number of Monte Carlo iterations N such
  /// that the mean of N samples is within relative error ε of E[Sample]
  /// with probability >= 1 - δ.
  size_t num_iterations = 0;
  /// Samples consumed by the estimator itself (stopping-rule phase plus
  /// variance phase).
  size_t samples_used = 0;
  /// Stopping-rule estimate of E[Sample].
  double mu_hat = 0.0;
  /// Variance estimate max{S/N₂, ε·μ̂}.
  double rho_hat = 0.0;
  /// True when the deadline expired before the estimate finished; the
  /// other fields are then unusable.
  bool timed_out = false;
};

/// The optimal Monte Carlo estimation algorithm of Dagum, Karp, Luby and
/// Ross (SIAM J. Comput. 29(5), 2000) — the 𝒜𝒜 algorithm the paper's
/// OptEstimate[Sample] relies on [8]. Requires 0 < ε < 1, 0 < δ < 1 and a
/// sampler with E[Draw] > 0 on [0, 1]-valued outcomes.
///
/// Phase 1 runs the stopping-rule algorithm with (min(1/2, √ε), δ/3) to
/// obtain μ̂; phase 2 estimates the variance ρ̂ from ⌈Υ₂·ε/μ̂⌉ sample pairs;
/// the returned iteration count is N = ⌈Υ₂·ρ̂/μ̂²⌉ with
/// Υ₂ = 2(1+√ε)(1+2√ε)(1+ln(3/2)/ln(2/δ))·Υ and Υ = 4(e-2)ln(2/δ)/ε².
///
/// The expected running time is proportional to 1/E[Draw] (phase 1) and to
/// the relative variance (phase 2), which is exactly the cost asymmetry
/// the paper's experiments expose between the samplers.
///
/// When `recorder` is non-null every draw of both phases is fed to it, so
/// the convergence telemetry covers the estimator's own sampling cost.
OptEstimateResult OptEstimate(Sampler& sampler, double epsilon, double delta,
                              Rng& rng, const Deadline& deadline = Deadline(),
                              obs::ConvergenceRecorder* recorder = nullptr);

}  // namespace cqa

#endif  // CQABENCH_CQA_OPT_ESTIMATE_H_
