// Exact (exponential-time) oracles for R(H, B) and relative frequency:
// ground truth for tests and for validating the (eps, delta) guarantees
// of the randomized schemes on small inputs.
#ifndef CQABENCH_CQA_EXACT_H_
#define CQABENCH_CQA_EXACT_H_

#include <optional>

#include "cqa/synopsis.h"
#include "query/cq.h"
#include "storage/database.h"

namespace cqa {

/// Exact baselines for R(H, B) and R_{D,Σ,Q}(t̄).
///
/// These are exponential-time oracles: RelativeFreq is #P-hard, so they
/// only serve small inputs — ground truth for tests, the (ε, δ)-guarantee
/// validation of the randomized schemes, and the `exact` mode of the
/// example binaries.

/// R(H, B) by enumerating every database of db(B) (the natural space).
/// Returns nullopt when |db(B)| exceeds `max_choices`.
std::optional<double> ExactRatioByEnumeration(const Synopsis& synopsis,
                                              size_t max_choices = 1 << 22);

/// R(H, B) by inclusion–exclusion over the image subsets:
///   R = Σ_{∅≠S⊆H, ∪S consistent} (-1)^{|S|+1} Π_{B ∈ blocks(∪S)} 1/|B|.
/// Exact for |H| <= max_images (2^|H| subsets); nullopt beyond that.
std::optional<double> ExactRatioInclusionExclusion(const Synopsis& synopsis,
                                                   size_t max_images = 22);

/// R(H, B) via connected-component decomposition. Images that share no
/// block are independent events over the uniform choice of db(B), so
///   R = 1 - Π_c (1 - R_c)
/// over the components c of the image/block co-occurrence graph, each
/// solved by inclusion–exclusion on its own images. This scales to far
/// larger synopses than the monolithic oracles whenever image overlap is
/// local; nullopt when some single component exceeds
/// `max_component_images`.
std::optional<double> ExactRatioDecomposed(const Synopsis& synopsis,
                                           size_t max_component_images = 22);

/// The relative frequency R_{D,Σ,Q}(t̄) by enumerating every repair of D
/// and evaluating Q on each. Returns nullopt when the number of repairs
/// exceeds `max_repairs`. `answer` must have |x̄| components.
std::optional<double> ExactRelativeFrequencyByRepairs(
    const Database& db, const ConjunctiveQuery& q, const Tuple& answer,
    size_t max_repairs = 1 << 20);

/// Certain-answer semantics: true iff t̄ ∈ Q(D') for *every* repair D'.
/// Classic CQA, provided for comparison in examples; same exponential
/// caveat as above (nullopt when over budget).
std::optional<bool> IsCertainAnswerByRepairs(const Database& db,
                                             const ConjunctiveQuery& q,
                                             const Tuple& answer,
                                             size_t max_repairs = 1 << 20);

}  // namespace cqa

#endif  // CQABENCH_CQA_EXACT_H_
