#include "cqa/rewriting.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "query/evaluator.h"

namespace cqa {

namespace {

/// Comma-joined attribute list, optionally alias-qualified.
std::string AttrList(const RelationSchema& rel,
                     const std::vector<size_t>& positions) {
  std::ostringstream os;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) os << ", ";
    os << rel.attribute(positions[i]).name;
  }
  return os.str();
}

std::vector<size_t> AllPositions(const RelationSchema& rel) {
  std::vector<size_t> all(rel.arity());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

std::vector<size_t> NonKeyPositions(const RelationSchema& rel) {
  std::vector<size_t> non_key;
  for (size_t i = 0; i < rel.arity(); ++i) {
    if (!rel.IsKeyPosition(i)) non_key.push_back(i);
  }
  return non_key;
}

std::string SqlLiteral(const Value& v) {
  if (v.is_string()) return "'" + v.AsString() + "'";
  return v.ToString();
}

}  // namespace

std::string RelationViewSql(const RelationSchema& rel, size_t rid) {
  // A relation without a key never conflicts: its "blocks" are the rows
  // themselves, which dense_rank over all attributes reproduces.
  std::vector<size_t> key =
      rel.has_key() ? rel.key_positions() : AllPositions(rel);
  std::vector<size_t> non_key =
      rel.has_key() ? NonKeyPositions(rel) : std::vector<size_t>{};
  std::string key_list = AttrList(rel, key);
  std::string order_list = non_key.empty() ? key_list : AttrList(rel, non_key);

  std::ostringstream os;
  os << "CREATE VIEW q_" << rel.name() << " AS\n"
     << "SELECT " << AttrList(rel, AllPositions(rel)) << ",\n"
     << "       " << rid << " AS rid,\n"
     << "       dense_rank() OVER (ORDER BY " << key_list << ") AS bid,\n"
     << "       row_number() OVER (PARTITION BY " << key_list
     << " ORDER BY " << order_list << ") AS tid,\n"
     << "       count(*) OVER (PARTITION BY " << key_list << ") AS kcnt\n"
     << "FROM " << rel.name() << ";";
  return os.str();
}

std::string RewritingSql(const Schema& schema, const ConjunctiveQuery& q) {
  std::ostringstream os;
  // SELECT: the answer attributes (first occurrence of each answer
  // variable), then the annotation columns of every atom.
  os << "SELECT ";
  bool first = true;
  for (size_t v : q.answer_vars()) {
    // Find the first (atom, position) holding variable v.
    for (size_t a = 0; a < q.NumAtoms() && true; ++a) {
      const Atom& atom = q.atom(a);
      bool found = false;
      for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
        if (atom.terms[pos].is_variable() && atom.terms[pos].var() == v) {
          if (!first) os << ", ";
          first = false;
          os << "r" << a + 1 << "."
             << schema.relation(atom.relation_id).attribute(pos).name;
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  for (size_t a = 0; a < q.NumAtoms(); ++a) {
    if (!first) os << ", ";
    first = false;
    os << "r" << a + 1 << ".rid, r" << a + 1 << ".bid, r" << a + 1
       << ".tid, r" << a + 1 << ".kcnt";
  }

  // FROM: one aliased view instance per atom (self-joins get distinct
  // aliases).
  os << "\nFROM ";
  for (size_t a = 0; a < q.NumAtoms(); ++a) {
    if (a > 0) os << ", ";
    os << "q_" << schema.relation(q.atom(a).relation_id).name() << " AS r"
       << a + 1;
  }

  // WHERE: constants plus variable-equality chains.
  std::vector<std::string> conditions;
  std::map<size_t, std::pair<size_t, size_t>> first_occurrence;
  for (size_t a = 0; a < q.NumAtoms(); ++a) {
    const Atom& atom = q.atom(a);
    const RelationSchema& rel = schema.relation(atom.relation_id);
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      std::ostringstream lhs;
      lhs << "r" << a + 1 << "." << rel.attribute(pos).name;
      if (t.is_constant()) {
        conditions.push_back(lhs.str() + " = " + SqlLiteral(t.constant()));
      } else {
        auto [it, inserted] =
            first_occurrence.emplace(t.var(), std::make_pair(a, pos));
        if (!inserted) {
          auto [fa, fpos] = it->second;
          std::ostringstream rhs;
          rhs << "r" << fa + 1 << "."
              << schema.relation(q.atom(fa).relation_id)
                     .attribute(fpos)
                     .name;
          conditions.push_back(lhs.str() + " = " + rhs.str());
        }
      }
    }
  }
  if (!conditions.empty()) {
    os << "\nWHERE ";
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) os << "\n  AND ";
      os << conditions[i];
    }
  }

  // ORDER BY the answer columns (so synopses can be streamed one answer
  // at a time, see the Remark in Appendix C).
  if (!q.answer_vars().empty()) {
    os << "\nORDER BY ";
    for (size_t i = 0; i < q.answer_vars().size(); ++i) {
      if (i > 0) os << ", ";
      os << i + 1;
    }
  }
  os << ";";
  return os.str();
}

std::vector<QrewRow> ExecuteRewriting(const Database& db,
                                      const ConjunctiveQuery& q,
                                      const BlockIndex& index) {
  std::vector<QrewRow> rows;
  CqEvaluator evaluator(&db, nullptr);
  evaluator.ForEachHomomorphism(q, [&](const Homomorphism& h) {
    QrewRow row;
    row.answer = h.AnswerTuple(q);
    row.atoms.reserve(h.image.size());
    for (const FactRef& f : h.image) {
      const BlockAnnotation& ann =
          index.relation(f.relation_id).annotation(f.row);
      row.atoms.push_back(QrewRow::AtomAnnotation{
          f.relation_id, ann.block_id, ann.tuple_id, ann.block_size});
    }
    rows.push_back(std::move(row));
    return true;
  });
  // ORDER BY ᾱ.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const QrewRow& a, const QrewRow& b) {
                     return a.answer < b.answer;
                   });
  return rows;
}

PreprocessResult BuildSynopsesViaRewriting(const Database& db,
                                           const ConjunctiveQuery& q) {
  Stopwatch watch;
  BlockIndex index = BlockIndex::Build(db);
  std::vector<QrewRow> rows = ExecuteRewriting(db, q, index);
  PreprocessStats stats;
  stats.num_homomorphisms = rows.size();

  // Linear pass over Q^rew(D), Appendix C: for each row, the fact set
  // {[[rid, bid, tid]]} is the homomorphic image; it satisfies Σ iff equal
  // (rid, bid) implies equal tid. Rows arrive grouped by answer.
  std::vector<AnswerSynopsis> answers;
  std::unordered_map<size_t, size_t> local_block;
  std::set<std::vector<std::tuple<size_t, size_t, size_t>>> distinct_images;
  std::vector<std::tuple<size_t, size_t, size_t, size_t>> image;

  for (size_t i = 0; i < rows.size(); ++i) {
    const QrewRow& row = rows[i];
    if (answers.empty() || answers.back().answer != row.answer) {
      answers.push_back(AnswerSynopsis{row.answer, Synopsis()});
      local_block.clear();
    }
    AnswerSynopsis& current = answers.back();

    image.clear();
    for (const QrewRow::AtomAnnotation& a : row.atoms) {
      image.emplace_back(a.rid, a.bid, a.tid, a.kcnt);
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    bool consistent = true;
    for (size_t j = 1; j < image.size(); ++j) {
      if (std::get<0>(image[j]) == std::get<0>(image[j - 1]) &&
          std::get<1>(image[j]) == std::get<1>(image[j - 1])) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;

    std::vector<Synopsis::ImageFact> facts;
    facts.reserve(image.size());
    std::vector<std::tuple<size_t, size_t, size_t>> canonical;
    for (const auto& [rid, bid, tid, kcnt] : image) {
      size_t key = (rid << 54) | bid;
      auto [it, inserted] =
          local_block.emplace(key, current.synopsis.NumBlocks());
      if (inserted) {
        current.synopsis.AddBlock(Synopsis::Block{kcnt, rid, bid});
      }
      facts.push_back(Synopsis::ImageFact{static_cast<uint32_t>(it->second),
                                          static_cast<uint32_t>(tid)});
      canonical.emplace_back(rid, bid, tid);
    }
    if (current.synopsis.AddImage(std::move(facts))) {
      ++stats.num_images;
      distinct_images.insert(canonical);
    }
  }

  // Answers whose every homomorphism was inconsistent contribute no
  // image; Lemma 4.1(4) excludes them from syn.
  std::vector<AnswerSynopsis> kept;
  for (AnswerSynopsis& as : answers) {
    if (!as.synopsis.Empty()) kept.push_back(std::move(as));
  }
  stats.num_distinct_images = distinct_images.size();
  stats.seconds = watch.ElapsedSeconds();
  return PreprocessResult(std::move(kept), std::move(index), stats);
}

void ForEachSynopsis(const Database& db, const ConjunctiveQuery& q,
                     const SynopsisCallback& fn) {
  BlockIndex index = BlockIndex::Build(db);
  std::vector<QrewRow> rows = ExecuteRewriting(db, q, index);

  // One answer's synopsis lives at a time; flushed at answer boundaries.
  bool open = false;
  Tuple current_answer;
  Synopsis current;
  std::unordered_map<size_t, size_t> local_block;
  std::vector<std::tuple<size_t, size_t, size_t, size_t>> image;

  auto flush = [&]() -> bool {
    if (!open || current.Empty()) return true;
    return fn(current_answer, current);
  };

  for (const QrewRow& row : rows) {
    if (!open || current_answer != row.answer) {
      if (!flush()) return;
      open = true;
      current_answer = row.answer;
      current = Synopsis();
      local_block.clear();
    }
    image.clear();
    for (const QrewRow::AtomAnnotation& a : row.atoms) {
      image.emplace_back(a.rid, a.bid, a.tid, a.kcnt);
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    bool consistent = true;
    for (size_t j = 1; j < image.size(); ++j) {
      if (std::get<0>(image[j]) == std::get<0>(image[j - 1]) &&
          std::get<1>(image[j]) == std::get<1>(image[j - 1])) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    std::vector<Synopsis::ImageFact> facts;
    facts.reserve(image.size());
    for (const auto& [rid, bid, tid, kcnt] : image) {
      size_t key = (rid << 54) | bid;
      auto [it, inserted] = local_block.emplace(key, current.NumBlocks());
      if (inserted) {
        current.AddBlock(Synopsis::Block{kcnt, rid, bid});
      }
      facts.push_back(Synopsis::ImageFact{static_cast<uint32_t>(it->second),
                                          static_cast<uint32_t>(tid)});
    }
    current.AddImage(std::move(facts));
  }
  flush();
}

}  // namespace cqa
