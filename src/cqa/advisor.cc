#include "cqa/advisor.h"

namespace cqa {

namespace {

/// A Boolean query's syn has (at most) the single empty answer tuple.
bool IsBooleanLike(const PreprocessResult& preprocessed, double threshold) {
  if (preprocessed.NumAnswers() == 0) return true;
  if (preprocessed.NumAnswers() == 1 &&
      preprocessed.answers()[0].answer.empty()) {
    return true;
  }
  return preprocessed.Balance() < threshold;
}

}  // namespace

SchemeKind RecommendScheme(const PreprocessResult& preprocessed,
                           double boolean_balance_threshold) {
  if (IsBooleanLike(preprocessed, boolean_balance_threshold)) {
    return SchemeKind::kNatural;
  }
  return SchemeKind::kKlm;
}

const char* RecommendationRationale(const PreprocessResult& preprocessed,
                                    double boolean_balance_threshold) {
  if (IsBooleanLike(preprocessed, boolean_balance_threshold)) {
    return "Boolean-like (balance ~ 0): images concentrate in few "
           "synopses, R(H,B) is near 1, the natural sampling space wins "
           "(take-home message 1)";
  }
  return "non-Boolean (balance > 0): many small synopses drive R(H,B) "
         "towards 0, the symbolic space with the KLM sampler wins "
         "(take-home message 2)";
}

}  // namespace cqa
