#include "cqa/kl_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

KlSampler::KlSampler(const SymbolicSpace* space) : space_(space) {
  CQA_CHECK(space != nullptr);
}

double KlSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.kl.draws");
  const Synopsis& synopsis = space_->synopsis();
  size_t i = space_->SampleElement(rng, &scratch_);
  for (size_t j = 0; j < i; ++j) {
    if (synopsis.ImageContainedIn(j, scratch_)) return 0.0;
  }
  // Acceptance implies block-membership: the drawn database I must
  // actually contain H_i, otherwise the 1/Σw normalization is wrong.
  CQA_AUDIT(audit::CheckSampledElement, *space_, i, scratch_);
  CQA_OBS_COUNT("sampler.kl.accepts");
  return 1.0;
}

}  // namespace cqa
