#include "cqa/kl_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

KlSampler::KlSampler(const SymbolicSpace* space)
    : space_(space), index_(&space->synopsis()) {
  CQA_CHECK(space != nullptr);
}

double KlSampler::DrawImpl(Rng& rng) {
  size_t i = space_->SampleElement(rng, &scratch_);
  // Reject iff some j < i is contained in I: then i is not I's first
  // witness. The index visits only images sharing a drawn fact and stops
  // at the first completed prefix image.
  bool rejected = index_.ForEachContainedImage(
      scratch_, [i](uint32_t j) { return j < i; });
  if (rejected) return 0.0;
  // Acceptance implies block-membership: the drawn database I must
  // actually contain H_i, otherwise the 1/Σw normalization is wrong.
  CQA_AUDIT(audit::CheckSampledElement, *space_, i, scratch_);
  return 1.0;
}

double KlSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.kl.draws");
  double v = DrawImpl(rng);
  if (v == 1.0) CQA_OBS_COUNT("sampler.kl.accepts");
  return v;
}

void KlSampler::DrawBatch(Rng& rng, size_t n, double* out) {
  size_t accepts = 0;
  for (size_t k = 0; k < n; ++k) {
    out[k] = DrawImpl(rng);
    accepts += out[k] == 1.0 ? 1 : 0;
  }
  CQA_OBS_COUNT_N("sampler.kl.draws", n);
  CQA_OBS_COUNT_N("sampler.kl.accepts", accepts);
}

}  // namespace cqa
