// Scheme advisor: turns the preprocessing statistics into the paper's
// take-home decision of which approximation scheme to run (Natural for
// Boolean-like inputs, KLM otherwise).
#ifndef CQABENCH_CQA_ADVISOR_H_
#define CQABENCH_CQA_ADVISOR_H_

#include "cqa/preprocess.h"
#include "cqa/schemes.h"

namespace cqa {

/// The paper's take-home messages (§7.2) as a decision procedure.
///
/// After the preprocessing step one already knows the input
/// characteristics that decide the indicated approximation scheme:
///  * Boolean queries — and non-Boolean queries whose balance is close to
///    zero, which "behave like Boolean" (Appendix F) — belong to the
///    Natural regime: the single/average synopsis collects many images,
///    R(H, B) sits near 1, and sampling the natural space is cheapest;
///  * everything else belongs to the KLM regime: many synopses with few
///    images each drive R(H, B) towards 0, where the symbolic space wins.
///
/// `boolean_balance_threshold` is the balance below which a non-Boolean
/// query is treated as Boolean-like (the paper's validation queries with
/// "average balance 0.00" fall here).
SchemeKind RecommendScheme(const PreprocessResult& preprocessed,
                           double boolean_balance_threshold = 0.05);

/// One-line justification of the recommendation, for logs and tools.
const char* RecommendationRationale(const PreprocessResult& preprocessed,
                                    double boolean_balance_threshold = 0.05);

}  // namespace cqa

#endif  // CQABENCH_CQA_ADVISOR_H_
