// SampleKL (Karp-Luby): symbolic-space sampler returning 1 iff the drawn
// pair is the first witness of its database.
#ifndef CQABENCH_CQA_KL_SAMPLER_H_
#define CQABENCH_CQA_KL_SAMPLER_H_

#include "cqa/image_index.h"
#include "cqa/sampler.h"
#include "cqa/symbolic_space.h"

namespace cqa {

/// Sampler 2 (SampleKL), after Karp and Luby: draws (i, I) uniformly from
/// the symbolic space S• and returns 1 iff no j < i has I ∈ I_j, i.e. i is
/// the first witness of I. (|db(B)|/|S•|)-good (Lemma 4.5):
///   E[Draw] = R(H, B) · |db(B)| / |S•|.
///
/// The prefix-rejection test runs over the shared ImageIndex: instead of
/// re-testing containment of every image j < i against the drawn database
/// (Θ(Σ_{j<i} |H_j|) per draw), it walks only the images that share a
/// drawn fact and stops at the first completed j < i.
class KlSampler : public Sampler {
 public:
  /// The space (and its synopsis) must outlive the sampler.
  explicit KlSampler(const SymbolicSpace* space);

  double Draw(Rng& rng) override;
  void DrawBatch(Rng& rng, size_t n, double* out) override;
  double GoodnessFactor() const override {
    return 1.0 / space_->total_weight();
  }
  const char* name() const override { return "SampleKL"; }

 private:
  /// One draw without obs accounting (shared by Draw and DrawBatch).
  double DrawImpl(Rng& rng);

  const SymbolicSpace* space_;
  ImageIndex index_;
  Synopsis::Choice scratch_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_KL_SAMPLER_H_
