#include "cqa/opt_estimate.h"

#include <cmath>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {

constexpr double kLambda = 0.71828182845904523536;  // e - 2.
constexpr size_t kDeadlineStride = 64;

/// Υ(ε, δ) = 4λ ln(2/δ) / ε².
double Upsilon(double epsilon, double delta) {
  return 4.0 * kLambda * std::log(2.0 / delta) / (epsilon * epsilon);
}

}  // namespace

OptEstimateResult OptEstimate(Sampler& sampler, double epsilon, double delta,
                              Rng& rng, const Deadline& deadline,
                              obs::ConvergenceRecorder* recorder) {
  CQA_CHECK(epsilon > 0.0 && epsilon < 1.0);
  CQA_CHECK(delta > 0.0 && delta < 1.0);
  CQA_AUDIT(audit::CheckOptEstimateParams, epsilon, delta);
  OptEstimateResult result;
  obs::TraceSpan span("opt_estimate");
  CQA_OBS_COUNT("opt_estimate.runs");

  // Phase 1: stopping-rule algorithm with (min(1/2, √ε), δ/3). Terminates
  // in expectation after Υ₁/μ samples, μ = E[Draw] > 0.
  double eps1 = std::min(0.5, std::sqrt(epsilon));
  double upsilon1 = 1.0 + (1.0 + eps1) * Upsilon(eps1, delta / 3.0);
  double sum = 0.0;
  size_t n1 = 0;
  while (sum < upsilon1) {
    double x = sampler.Draw(rng);
    sum += x;
    if (recorder != nullptr) recorder->Observe(x);
    ++n1;
    if (n1 % kDeadlineStride == 0 && deadline.Expired()) {
      result.samples_used = n1;
      result.timed_out = true;
      CQA_OBS_COUNT_N("opt_estimate.phase1_samples", n1);
      CQA_OBS_COUNT("opt_estimate.timeouts");
      return result;
    }
  }
  result.mu_hat = upsilon1 / static_cast<double>(n1);
  CQA_OBS_COUNT_N("opt_estimate.phase1_samples", n1);

  // Phase 2: variance estimation from paired samples.
  double upsilon2 = 2.0 * (1.0 + std::sqrt(epsilon)) *
                    (1.0 + 2.0 * std::sqrt(epsilon)) *
                    (1.0 + std::log(1.5) / std::log(2.0 / delta)) *
                    Upsilon(epsilon, delta);
  size_t n2 = static_cast<size_t>(
      std::ceil(upsilon2 * epsilon / result.mu_hat));
  CQA_CHECK(n2 >= 1);
  double s = 0.0;
  for (size_t i = 0; i < n2; ++i) {
    double x1 = sampler.Draw(rng);
    double x2 = sampler.Draw(rng);
    s += (x1 - x2) * (x1 - x2) / 2.0;
    if (recorder != nullptr) {
      recorder->Observe(x1);
      recorder->Observe(x2);
    }
    if (i % kDeadlineStride == 0 && deadline.Expired()) {
      result.samples_used = n1 + 2 * i;
      result.timed_out = true;
      CQA_OBS_COUNT_N("opt_estimate.phase2_pairs", i);
      CQA_OBS_COUNT("opt_estimate.timeouts");
      return result;
    }
  }
  CQA_OBS_COUNT_N("opt_estimate.phase2_pairs", n2);
  result.rho_hat =
      std::max(s / static_cast<double>(n2), epsilon * result.mu_hat);

  result.num_iterations = static_cast<size_t>(std::ceil(
      upsilon2 * result.rho_hat / (result.mu_hat * result.mu_hat)));
  CQA_CHECK(result.num_iterations >= 1);
  result.samples_used = n1 + 2 * n2;
  CQA_AUDIT(audit::CheckOptEstimateResult, result, epsilon);
  CQA_OBS_OBSERVE("opt_estimate.num_iterations", result.num_iterations);
  return result;
}

}  // namespace cqa
