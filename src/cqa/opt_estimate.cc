#include "cqa/opt_estimate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {

constexpr double kLambda = 0.71828182845904523536;  // e - 2.

/// Draws are requested in blocks so the sampler can amortize virtual
/// dispatch and obs accounting; the deadline is checked once per block.
constexpr size_t kMaxBatch = 256;

/// Υ(ε, δ) = 4λ ln(2/δ) / ε².
double Upsilon(double epsilon, double delta) {
  return 4.0 * kLambda * std::log(2.0 / delta) / (epsilon * epsilon);
}

}  // namespace

OptEstimateResult OptEstimate(Sampler& sampler, double epsilon, double delta,
                              Rng& rng, const Deadline& deadline,
                              obs::ConvergenceRecorder* recorder) {
  CQA_CHECK(epsilon > 0.0 && epsilon < 1.0);
  CQA_CHECK(delta > 0.0 && delta < 1.0);
  CQA_AUDIT(audit::CheckOptEstimateParams, epsilon, delta);
  OptEstimateResult result;
  obs::TraceSpan span("opt_estimate");
  CQA_OBS_COUNT("opt_estimate.runs");
  std::vector<double> buf(kMaxBatch);

  // Phase 1: stopping-rule algorithm with (min(1/2, √ε), δ/3). Terminates
  // in expectation after Υ₁/μ samples, μ = E[Draw] > 0. The stop index is
  // adaptive, so draws come in geometrically growing blocks (16 → 256)
  // and the exact crossing point is found by scanning the block: the
  // blocks stay small while a handful of draws may suffice (high-μ
  // samplers like KLM) and reach full size on the long tail. Surplus
  // draws past the crossing are discarded — they are outside the
  // stopping rule and must not bias μ̂.
  double eps1 = std::min(0.5, std::sqrt(epsilon));
  double upsilon1 = 1.0 + (1.0 + eps1) * Upsilon(eps1, delta / 3.0);
  double sum = 0.0;
  size_t n1 = 0;
  size_t batch = 16;
  while (sum < upsilon1) {
    sampler.DrawBatch(rng, batch, buf.data());
    CQA_AUDIT(audit::CheckBatchDraws, sampler, buf.data(), batch);
    for (size_t k = 0; k < batch && sum < upsilon1; ++k) {
      sum += buf[k];
      if (recorder != nullptr) recorder->Observe(buf[k]);
      ++n1;
    }
    batch = std::min(batch * 2, kMaxBatch);
    if (sum < upsilon1 && deadline.Expired()) {
      result.samples_used = n1;
      result.timed_out = true;
      CQA_OBS_COUNT_N("opt_estimate.phase1_samples", n1);
      CQA_OBS_COUNT("opt_estimate.timeouts");
      return result;
    }
  }
  result.mu_hat = upsilon1 / static_cast<double>(n1);
  CQA_OBS_COUNT_N("opt_estimate.phase1_samples", n1);

  // Phase 2: variance estimation from paired samples. n2 is known up
  // front, so the pair loop batches stream-identically: a block of 2m
  // draws consumes the RNG exactly as m consecutive pairs.
  double upsilon2 = 2.0 * (1.0 + std::sqrt(epsilon)) *
                    (1.0 + 2.0 * std::sqrt(epsilon)) *
                    (1.0 + std::log(1.5) / std::log(2.0 / delta)) *
                    Upsilon(epsilon, delta);
  size_t n2 = static_cast<size_t>(
      std::ceil(upsilon2 * epsilon / result.mu_hat));
  CQA_CHECK(n2 >= 1);
  double s = 0.0;
  size_t pairs_done = 0;
  while (pairs_done < n2) {
    size_t pairs = std::min(n2 - pairs_done, kMaxBatch / 2);
    sampler.DrawBatch(rng, 2 * pairs, buf.data());
    CQA_AUDIT(audit::CheckBatchDraws, sampler, buf.data(), 2 * pairs);
    for (size_t p = 0; p < pairs; ++p) {
      double x1 = buf[2 * p];
      double x2 = buf[2 * p + 1];
      s += (x1 - x2) * (x1 - x2) / 2.0;
      if (recorder != nullptr) {
        recorder->Observe(x1);
        recorder->Observe(x2);
      }
    }
    pairs_done += pairs;
    if (pairs_done < n2 && deadline.Expired()) {
      result.samples_used = n1 + 2 * pairs_done;
      result.timed_out = true;
      CQA_OBS_COUNT_N("opt_estimate.phase2_pairs", pairs_done);
      CQA_OBS_COUNT("opt_estimate.timeouts");
      return result;
    }
  }
  CQA_OBS_COUNT_N("opt_estimate.phase2_pairs", n2);
  result.rho_hat =
      std::max(s / static_cast<double>(n2), epsilon * result.mu_hat);

  result.num_iterations = static_cast<size_t>(std::ceil(
      upsilon2 * result.rho_hat / (result.mu_hat * result.mu_hat)));
  CQA_CHECK(result.num_iterations >= 1);
  result.samples_used = n1 + 2 * n2;
  CQA_AUDIT(audit::CheckOptEstimateResult, result, epsilon);
  CQA_OBS_OBSERVE("opt_estimate.num_iterations", result.num_iterations);
  return result;
}

}  // namespace cqa
