#include "cqa/schemes.h"

#include "common/macros.h"
#include "cqa/coverage.h"
#include "cqa/kl_sampler.h"
#include "cqa/klm_sampler.h"
#include "cqa/monte_carlo.h"
#include "cqa/natural_sampler.h"
#include "cqa/parallel.h"
#include "cqa/symbolic_space.h"

namespace cqa {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNatural:
      return "Natural";
    case SchemeKind::kKl:
      return "KL";
    case SchemeKind::kKlm:
      return "KLM";
    case SchemeKind::kCover:
      return "Cover";
  }
  return "?";
}

std::optional<SchemeKind> ParseSchemeKind(const std::string& name) {
  for (SchemeKind kind : AllSchemeKinds()) {
    if (name == SchemeKindName(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<SchemeKind>& AllSchemeKinds() {
  static const std::vector<SchemeKind>* kAll = new std::vector<SchemeKind>{
      SchemeKind::kNatural, SchemeKind::kKl, SchemeKind::kKlm,
      SchemeKind::kCover};
  return *kAll;
}

namespace {

/// Copies the phase breakdown of a Monte Carlo run into an ApxResult.
void FillFromMonteCarlo(ApxResult* result, MonteCarloResult&& mc) {
  result->samples = mc.estimator_samples + mc.main_samples;
  result->timed_out = mc.timed_out;
  result->estimator_samples = mc.estimator_samples;
  result->main_samples = mc.main_samples;
  result->estimator_seconds = mc.estimator_seconds;
  result->main_seconds = mc.main_seconds;
  result->per_thread_samples = std::move(mc.per_thread_samples);
}

/// Algorithm 3 (Natural): MonteCarlo over the natural space; 1-good.
class NaturalScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    MonteCarloResult mc;
    if (params.num_threads > 1) {
      mc = ParallelMonteCarloEstimate(
          [&] { return std::make_unique<NaturalSampler>(&synopsis); },
          params.num_threads, params.epsilon, params.delta, rng, deadline);
    } else {
      NaturalSampler sampler(&synopsis);
      mc = MonteCarloEstimate(sampler, params.epsilon, params.delta, rng,
                              deadline);
    }
    result.estimate = mc.estimate;  // GoodnessFactor() == 1.
    FillFromMonteCarlo(&result, std::move(mc));
    return result;
  }
  SchemeKind kind() const override { return SchemeKind::kNatural; }
};

/// Algorithm 4 (KL / KLM): MonteCarlo over the symbolic space, converted
/// back by the factor |S•|/|db(B)|.
template <typename SamplerT, SchemeKind kKind>
class SymbolicScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    SymbolicSpace space(&synopsis);
    MonteCarloResult mc;
    if (params.num_threads > 1) {
      mc = ParallelMonteCarloEstimate(
          [&] { return std::make_unique<SamplerT>(&space); },
          params.num_threads, params.epsilon, params.delta, rng, deadline);
    } else {
      SamplerT sampler(&space);
      mc = MonteCarloEstimate(sampler, params.epsilon, params.delta, rng,
                              deadline);
    }
    result.estimate = mc.estimate * space.total_weight();
    FillFromMonteCarlo(&result, std::move(mc));
    return result;
  }
  SchemeKind kind() const override { return kKind; }
};

using KlScheme = SymbolicScheme<KlSampler, SchemeKind::kKl>;
using KlmScheme = SymbolicScheme<KlmSampler, SchemeKind::kKlm>;

/// Algorithm 5 (Cover): self-adjusting coverage over the symbolic space.
class CoverScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    SymbolicSpace space(&synopsis);
    Stopwatch watch;
    CoverageResult cov = SelfAdjustingCoverage(space, params.epsilon,
                                               params.delta, rng, deadline);
    result.samples = cov.steps;
    result.timed_out = cov.timed_out;
    result.estimate = cov.normalized_estimate * space.total_weight();
    // Cover has no estimator phase: all steps are main-loop work, on one
    // thread (the algorithm is inherently sequential).
    result.main_samples = cov.steps;
    result.main_seconds = watch.ElapsedSeconds();
    result.per_thread_samples = {cov.steps};
    return result;
  }
  SchemeKind kind() const override { return SchemeKind::kCover; }
};

}  // namespace

std::unique_ptr<ApxRelativeFreqScheme> ApxRelativeFreqScheme::Create(
    SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNatural:
      return std::make_unique<NaturalScheme>();
    case SchemeKind::kKl:
      return std::make_unique<KlScheme>();
    case SchemeKind::kKlm:
      return std::make_unique<KlmScheme>();
    case SchemeKind::kCover:
      return std::make_unique<CoverScheme>();
  }
  CQA_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace cqa
