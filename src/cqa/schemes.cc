#include "cqa/schemes.h"

#include "common/macros.h"
#include "cqa/coverage.h"
#include "cqa/kl_sampler.h"
#include "cqa/klm_sampler.h"
#include "cqa/indexed_natural_sampler.h"
#include "cqa/monte_carlo.h"
#include "cqa/parallel.h"
#include "cqa/symbolic_space.h"

namespace cqa {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNatural:
      return "Natural";
    case SchemeKind::kKl:
      return "KL";
    case SchemeKind::kKlm:
      return "KLM";
    case SchemeKind::kCover:
      return "Cover";
  }
  return "?";
}

std::optional<SchemeKind> ParseSchemeKind(const std::string& name) {
  for (SchemeKind kind : AllSchemeKinds()) {
    if (name == SchemeKindName(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<SchemeKind>& AllSchemeKinds() {
  static const std::vector<SchemeKind>* kAll = new std::vector<SchemeKind>{
      SchemeKind::kNatural, SchemeKind::kKl, SchemeKind::kKlm,
      SchemeKind::kCover};
  return *kAll;
}

namespace {

/// Copies the phase breakdown of a Monte Carlo run into an ApxResult.
void FillFromMonteCarlo(ApxResult* result, MonteCarloResult&& mc) {
  result->samples = mc.estimator_samples + mc.main_samples;
  result->timed_out = mc.timed_out;
  result->estimator_samples = mc.estimator_samples;
  result->main_samples = mc.main_samples;
  result->estimator_seconds = mc.estimator_seconds;
  result->main_seconds = mc.main_seconds;
  result->per_thread_samples = std::move(mc.per_thread_samples);
}

/// Optional pair of per-phase convergence recorders for a scheme run,
/// constructed only when ApxParams::record_convergence asks for them.
struct SchemeRecorders {
  explicit SchemeRecorders(const ApxParams& params) {
    if (params.record_convergence) {
      estimator = std::make_unique<obs::ConvergenceRecorder>(
          "opt_estimate", params.epsilon, params.delta);
      main = std::make_unique<obs::ConvergenceRecorder>(
          "main_loop", params.epsilon, params.delta);
    }
  }

  /// Moves the non-empty recorded series into the result.
  void Collect(ApxResult* result) {
    for (obs::ConvergenceRecorder* rec : {estimator.get(), main.get()}) {
      if (rec == nullptr) continue;
      obs::ConvergenceSeries series = rec->TakeSeries();
      if (!series.checkpoints.empty()) {
        result->convergence.push_back(std::move(series));
      }
    }
  }

  std::unique_ptr<obs::ConvergenceRecorder> estimator;
  std::unique_ptr<obs::ConvergenceRecorder> main;
};

/// Algorithm 3 (Natural): MonteCarlo over the natural space; 1-good.
/// Runs on the inverted-index sampler — same distribution as the plain
/// scan, but per-draw cost proportional to the images actually touched.
class NaturalScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    SchemeRecorders recorders(params);
    MonteCarloResult mc;
    if (params.num_threads > 1) {
      mc = ParallelMonteCarloEstimate(
          [&] { return std::make_unique<IndexedNaturalSampler>(&synopsis); },
          params.num_threads, params.epsilon, params.delta, rng, deadline,
          recorders.estimator.get(), recorders.main.get());
    } else {
      IndexedNaturalSampler sampler(&synopsis);
      mc = MonteCarloEstimate(sampler, params.epsilon, params.delta, rng,
                              deadline, recorders.estimator.get(),
                              recorders.main.get());
    }
    result.estimate = mc.estimate;  // GoodnessFactor() == 1.
    FillFromMonteCarlo(&result, std::move(mc));
    recorders.Collect(&result);
    return result;
  }
  SchemeKind kind() const override { return SchemeKind::kNatural; }
};

/// Algorithm 4 (KL / KLM): MonteCarlo over the symbolic space, converted
/// back by the factor |S•|/|db(B)|.
template <typename SamplerT, SchemeKind kKind>
class SymbolicScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    SymbolicSpace space(&synopsis);
    SchemeRecorders recorders(params);
    MonteCarloResult mc;
    if (params.num_threads > 1) {
      mc = ParallelMonteCarloEstimate(
          [&] { return std::make_unique<SamplerT>(&space); },
          params.num_threads, params.epsilon, params.delta, rng, deadline,
          recorders.estimator.get(), recorders.main.get());
    } else {
      SamplerT sampler(&space);
      mc = MonteCarloEstimate(sampler, params.epsilon, params.delta, rng,
                              deadline, recorders.estimator.get(),
                              recorders.main.get());
    }
    result.estimate = mc.estimate * space.total_weight();
    FillFromMonteCarlo(&result, std::move(mc));
    recorders.Collect(&result);
    return result;
  }
  SchemeKind kind() const override { return kKind; }
};

using KlScheme = SymbolicScheme<KlSampler, SchemeKind::kKl>;
using KlmScheme = SymbolicScheme<KlmSampler, SchemeKind::kKlm>;

/// Algorithm 5 (Cover): self-adjusting coverage over the symbolic space.
class CoverScheme : public ApxRelativeFreqScheme {
 public:
  ApxResult Run(const Synopsis& synopsis, const ApxParams& params, Rng& rng,
                const Deadline& deadline) const override {
    ApxResult result;
    if (synopsis.Empty()) return result;
    SymbolicSpace space(&synopsis);
    std::unique_ptr<obs::ConvergenceRecorder> recorder;
    if (params.record_convergence) {
      recorder = std::make_unique<obs::ConvergenceRecorder>(
          "coverage.trials", params.epsilon, params.delta);
    }
    Stopwatch watch;
    CoverageResult cov = SelfAdjustingCoverage(
        space, params.epsilon, params.delta, rng, deadline, recorder.get());
    result.samples = cov.steps;
    result.timed_out = cov.timed_out;
    result.estimate = cov.normalized_estimate * space.total_weight();
    // Cover has no estimator phase: all steps are main-loop work, on one
    // thread (the algorithm is inherently sequential).
    result.main_samples = cov.steps;
    result.main_seconds = watch.ElapsedSeconds();
    result.per_thread_samples = {cov.steps};
    if (recorder != nullptr) {
      obs::ConvergenceSeries series = recorder->TakeSeries();
      if (!series.checkpoints.empty()) {
        result.convergence.push_back(std::move(series));
      }
    }
    return result;
  }
  SchemeKind kind() const override { return SchemeKind::kCover; }
};

}  // namespace

std::unique_ptr<ApxRelativeFreqScheme> ApxRelativeFreqScheme::Create(
    SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNatural:
      return std::make_unique<NaturalScheme>();
    case SchemeKind::kKl:
      return std::make_unique<KlScheme>();
    case SchemeKind::kKlm:
      return std::make_unique<KlmScheme>();
    case SchemeKind::kCover:
      return std::make_unique<CoverScheme>();
  }
  CQA_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace cqa
