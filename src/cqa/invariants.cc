#include "cqa/invariants.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>
#include <vector>

namespace cqa::audit {

namespace {

bool Fail(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
  return false;
}

std::string At(const char* what, size_t index) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %zu", what, index);
  return buf;
}

}  // namespace

bool CheckSynopsis(const Synopsis& synopsis, std::string* why) {
  const std::vector<Synopsis::Block>& blocks = synopsis.blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].size < 1) {
      return Fail(why, At("empty block", b));
    }
  }
  std::set<std::vector<Synopsis::ImageFact>> seen;
  const std::vector<Synopsis::Image>& images = synopsis.images();
  for (size_t i = 0; i < images.size(); ++i) {
    const std::vector<Synopsis::ImageFact>& facts = images[i].facts;
    if (facts.empty()) {
      return Fail(why, At("empty image", i));
    }
    for (size_t j = 0; j < facts.size(); ++j) {
      if (facts[j].block >= blocks.size()) {
        return Fail(why, At("image with out-of-range block, image", i));
      }
      if (facts[j].tid >= blocks[facts[j].block].size) {
        return Fail(why, At("image with out-of-range tid, image", i));
      }
      if (j > 0 && facts[j - 1].block >= facts[j].block) {
        // Equal blocks would make the image inconsistent; descending
        // blocks violate the sorted encoding.
        return Fail(why, At("image not strictly sorted by block, image", i));
      }
    }
    if (!seen.insert(facts).second) {
      return Fail(why, At("duplicate image", i));
    }
  }
  const std::vector<double> weights = synopsis.ImageWeights();
  if (weights.size() != images.size()) {
    return Fail(why, "weight count does not match image count");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] > 0.0) || weights[i] > 1.0) {
      return Fail(why, At("image weight outside (0, 1], image", i));
    }
  }
  return true;
}

bool CheckSymbolicSpace(const SymbolicSpace& space, std::string* why) {
  const Synopsis& synopsis = space.synopsis();
  if (!CheckSynopsis(synopsis, why)) return false;
  const std::vector<double> expected = synopsis.ImageWeights();
  const std::vector<double>& actual = space.weights();
  if (actual.size() != expected.size()) {
    return Fail(why, "space weights diverge from synopsis image count");
  }
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != expected[i]) {
      return Fail(why, At("space weight diverges from synopsis, image", i));
    }
    sum += actual[i];
  }
  if (space.total_weight() != sum) {
    return Fail(why, "total_weight is not the sum of the image weights");
  }
  if (!(space.total_weight() > 0.0)) {
    return Fail(why, "total_weight must be positive");
  }
  return CheckAliasTable(space, why);
}

bool CheckAliasTable(const SymbolicSpace& space, std::string* why) {
  const std::vector<double>& weights = space.weights();
  const std::vector<double>& prob = space.alias_prob();
  const std::vector<uint32_t>& alias = space.alias();
  const size_t n = weights.size();
  if (prob.size() != n || alias.size() != n) {
    return Fail(why, "alias table size does not match image count");
  }
  std::vector<double> mass(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    // Vose leaves alias_prob exactly 1 for self-aliased leftovers; a hair
    // above 1 can only come from a construction bug, not FP noise.
    if (!(prob[k] >= 0.0) || prob[k] > 1.0) {
      return Fail(why, At("alias probability outside [0, 1], column", k));
    }
    if (alias[k] >= n) {
      return Fail(why, At("alias target out of range, column", k));
    }
    mass[k] += prob[k];
    mass[alias[k]] += 1.0 - prob[k];
  }
  const double scale = static_cast<double>(n) / space.total_weight();
  for (size_t i = 0; i < n; ++i) {
    const double expected = weights[i] * scale;
    if (std::abs(mass[i] - expected) > 1e-9 * (1.0 + expected)) {
      return Fail(why, At("alias mass diverges from weight, image", i));
    }
  }
  // The integer coin thresholds the draw compares against must be the
  // exact rescaling of the float columns.
  const std::vector<uint64_t>& cut = space.alias_cut();
  if (cut.size() != n) {
    return Fail(why, "alias cutoff table size does not match image count");
  }
  for (size_t k = 0; k < n; ++k) {
    const uint64_t expected =
        prob[k] >= 1.0 ? ~0ull : static_cast<uint64_t>(prob[k] * 0x1p64);
    if (cut[k] != expected) {
      return Fail(why, At("alias cutoff diverges from probability, column",
                          k));
    }
  }
  return true;
}

bool CheckBatchDraws(const Sampler& sampler, const double* values, size_t n,
                     std::string* why) {
  for (size_t k = 0; k < n; ++k) {
    if (!(values[k] >= 0.0) || values[k] > 1.0) {
      return Fail(why, std::string(sampler.name()) + ": " +
                           At("batch draw outside [0, 1], index", k));
    }
  }
  return true;
}

bool CheckSampledElement(const SymbolicSpace& space, size_t image_index,
                         const Synopsis::Choice& choice, std::string* why) {
  const Synopsis& synopsis = space.synopsis();
  if (image_index >= synopsis.NumImages()) {
    return Fail(why, At("sampled image index out of range:", image_index));
  }
  const std::vector<Synopsis::Block>& blocks = synopsis.blocks();
  if (choice.size() != blocks.size()) {
    return Fail(why, "choice size does not match block count");
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (choice[b] >= blocks[b].size) {
      return Fail(why, At("choice tid out of range in block", b));
    }
  }
  if (!synopsis.ImageContainedIn(image_index, choice)) {
    // (i, I) ∈ S• requires H_i ⊆ I: SampleElement must pin the image's
    // facts after the uniform block draw.
    return Fail(why, At("sampled image not contained in the drawn "
                        "database, image",
                        image_index));
  }
  return true;
}

bool CheckImageInPrefix(const Synopsis& synopsis, size_t image_index,
                        const Synopsis::Choice& choice, size_t prefix_blocks,
                        std::string* why) {
  if (image_index >= synopsis.NumImages()) {
    return Fail(why, At("accepted image index out of range:", image_index));
  }
  if (prefix_blocks > choice.size()) {
    return Fail(why, "prefix extends past the drawn choice");
  }
  for (const Synopsis::ImageFact& f :
       synopsis.images()[image_index].facts) {
    if (f.block >= prefix_blocks) {
      return Fail(why, At("accepted image has an undrawn block, image",
                          image_index));
    }
    if (choice[f.block] != f.tid) {
      return Fail(why, At("accepted image mismatches the drawn choice, "
                          "image",
                          image_index));
    }
  }
  return true;
}

bool CheckNaturalDraw(const Synopsis& synopsis, const Synopsis::Choice& choice,
                      double value, std::string* why) {
  const std::vector<Synopsis::Block>& blocks = synopsis.blocks();
  if (choice.size() != blocks.size()) {
    return Fail(why, "choice size does not match block count");
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (choice[b] >= blocks[b].size) {
      return Fail(why, At("choice tid out of range in block", b));
    }
  }
  const double expected = synopsis.AnyImageContainedIn(choice) ? 1.0 : 0.0;
  if (value != expected) {
    return Fail(why, "natural draw disagrees with the naive containment "
                     "scan");
  }
  return true;
}

bool CheckOptEstimateParams(double epsilon, double delta, std::string* why) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Fail(why, "epsilon must lie in (0, 1)");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    return Fail(why, "delta must lie in (0, 1)");
  }
  return true;
}

bool CheckOptEstimateResult(const OptEstimateResult& result, double epsilon,
                            std::string* why) {
  if (result.timed_out) return true;  // Fields are unusable by contract.
  if (!(result.mu_hat > 0.0) || result.mu_hat > 1.0) {
    return Fail(why, "mu_hat must lie in (0, 1] for [0, 1]-valued samplers");
  }
  if (result.rho_hat < epsilon * result.mu_hat) {
    return Fail(why, "rho_hat fell below the epsilon * mu_hat clamp");
  }
  if (result.num_iterations < 1) {
    return Fail(why, "a completed estimate must request >= 1 iteration");
  }
  if (result.samples_used < 1) {
    return Fail(why, "a completed estimate must have drawn samples");
  }
  return true;
}

bool CheckMonteCarloResult(const MonteCarloResult& result, std::string* why) {
  if (!result.per_thread_samples.empty()) {
    size_t total = 0;
    for (size_t s : result.per_thread_samples) total += s;
    if (total != result.main_samples) {
      return Fail(why, "per-thread sample counts do not sum to "
                       "main_samples");
    }
  }
  if (result.estimator_seconds < 0.0 || result.main_seconds < 0.0) {
    return Fail(why, "negative phase time");
  }
  if (!result.timed_out) {
    if (result.main_samples < 1) {
      return Fail(why, "a completed run must have main-loop samples");
    }
    if (!(result.estimate >= 0.0) || result.estimate > 1.0) {
      return Fail(why, "estimate outside [0, 1] for [0, 1]-valued "
                       "samplers");
    }
  }
  return true;
}

bool CheckCoverageResult(const CoverageResult& result, size_t budget,
                         std::string* why) {
  if (result.steps > budget + 1) {
    return Fail(why, "coverage overran its deterministic step budget");
  }
  if (result.trials > result.steps) {
    return Fail(why, "more completed trials than steps");
  }
  if (!result.timed_out && result.normalized_estimate < 0.0) {
    return Fail(why, "negative coverage estimate");
  }
  return true;
}

}  // namespace cqa::audit
