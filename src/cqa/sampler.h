// The Sampler interface: an r-good randomized procedure Sample((H, B))
// in [0, 1]. Draw state is per-instance scratch -- samplers are not
// thread-safe; every worker owns its own instance over the shared
// immutable Synopsis.
#ifndef CQABENCH_CQA_SAMPLER_H_
#define CQABENCH_CQA_SAMPLER_H_

#include <cstddef>

#include "common/rng.h"

namespace cqa {

/// A randomized procedure Sample((H, B)) producing numbers in [0, 1]
/// (§4.2). Implementations are constructed over a fixed Synopsis and are
/// `r`-good: E[Draw] = R(H, B) · GoodnessFactor(), with GoodnessFactor
/// computable in polynomial time. A scheme recovers the relative frequency
/// as (Monte Carlo mean) / GoodnessFactor().
///
/// Draw() may use internal scratch buffers and is not thread-safe; each
/// worker should own its sampler.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draws one sample in [0, 1].
  virtual double Draw(Rng& rng) = 0;

  /// Draws n samples into out[0, n). Semantically identical to calling
  /// Draw(rng) n times — overrides MUST consume the RNG stream exactly
  /// as n successive Draw calls would, so batch and serial runs are
  /// seed-for-seed reproducible. The hot samplers override this to pay
  /// virtual dispatch and obs accounting once per batch instead of once
  /// per draw; the estimator loops call it with blocks of ~256.
  virtual void DrawBatch(Rng& rng, size_t n, double* out) {
    for (size_t k = 0; k < n; ++k) out[k] = Draw(rng);
  }

  /// The factor r such that E[Draw] = R(H, B) · r.
  virtual double GoodnessFactor() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_SAMPLER_H_
