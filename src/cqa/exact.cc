#include "cqa/exact.h"

#include <cmath>
#include <functional>
#include <unordered_map>

#include "common/macros.h"
#include "query/evaluator.h"
#include "storage/block_index.h"
#include "storage/repairs.h"

namespace cqa {

std::optional<double> ExactRatioByEnumeration(const Synopsis& synopsis,
                                              size_t max_choices) {
  if (synopsis.Empty()) return 0.0;
  double log_choices = synopsis.LogDbSize();
  if (log_choices > std::log10(static_cast<double>(max_choices))) {
    return std::nullopt;
  }
  Synopsis::Choice choice(synopsis.NumBlocks(), 0);
  size_t hits = 0;
  size_t total = 0;
  while (true) {
    ++total;
    if (synopsis.AnyImageContainedIn(choice)) ++hits;
    // Odometer over block choices.
    size_t b = 0;
    for (; b < choice.size(); ++b) {
      if (++choice[b] < synopsis.blocks()[b].size) break;
      choice[b] = 0;
    }
    if (b == choice.size()) break;
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

std::optional<double> ExactRatioInclusionExclusion(const Synopsis& synopsis,
                                                   size_t max_images) {
  if (synopsis.Empty()) return 0.0;
  size_t n = synopsis.NumImages();
  if (n > max_images || n >= 63) return std::nullopt;

  // union_tid[b]: tid forced on block b by the current subset union, or
  // kUnset. Rebuilt per subset; subsets are small in oracle use.
  constexpr uint32_t kUnset = ~0u;
  std::vector<uint32_t> union_tid(synopsis.NumBlocks(), kUnset);
  std::vector<size_t> touched;

  double total = 0.0;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    touched.clear();
    bool consistent = true;
    int members = 0;
    for (size_t i = 0; i < n && consistent; ++i) {
      if (!(mask & (uint64_t{1} << i))) continue;
      ++members;
      for (const Synopsis::ImageFact& f : synopsis.images()[i].facts) {
        if (union_tid[f.block] == kUnset) {
          union_tid[f.block] = f.tid;
          touched.push_back(f.block);
        } else if (union_tid[f.block] != f.tid) {
          consistent = false;
          break;
        }
      }
    }
    if (consistent) {
      double term = 1.0;
      for (size_t b : touched) {
        term /= static_cast<double>(synopsis.blocks()[b].size);
      }
      total += (members % 2 == 1) ? term : -term;
    }
    for (size_t b : touched) union_tid[b] = kUnset;
  }
  return total;
}

std::optional<double> ExactRatioDecomposed(const Synopsis& synopsis,
                                           size_t max_component_images) {
  if (synopsis.Empty()) return 0.0;
  const size_t n = synopsis.NumImages();

  // Union-find over images; two images join when they touch a common
  // block.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<size_t> block_owner(synopsis.NumBlocks(), n);
  for (size_t i = 0; i < n; ++i) {
    for (const Synopsis::ImageFact& f : synopsis.images()[i].facts) {
      if (block_owner[f.block] == n) {
        block_owner[f.block] = i;
      } else {
        parent[find(block_owner[f.block])] = find(i);
      }
    }
  }

  // Build one sub-synopsis per component and combine independently.
  std::unordered_map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  double prob_none = 1.0;
  for (const auto& [root, members] : components) {
    if (members.size() > max_component_images) return std::nullopt;
    Synopsis sub;
    std::unordered_map<size_t, size_t> local;
    for (size_t i : members) {
      std::vector<Synopsis::ImageFact> facts;
      for (const Synopsis::ImageFact& f : synopsis.images()[i].facts) {
        auto [it, inserted] = local.emplace(f.block, sub.NumBlocks());
        if (inserted) sub.AddBlock(synopsis.blocks()[f.block]);
        facts.push_back(Synopsis::ImageFact{
            static_cast<uint32_t>(it->second), f.tid});
      }
      sub.AddImage(std::move(facts));
    }
    std::optional<double> r_c =
        ExactRatioInclusionExclusion(sub, max_component_images);
    if (!r_c.has_value()) return std::nullopt;
    prob_none *= 1.0 - *r_c;
  }
  return 1.0 - prob_none;
}

std::optional<double> ExactRelativeFrequencyByRepairs(
    const Database& db, const ConjunctiveQuery& q, const Tuple& answer,
    size_t max_repairs) {
  CQA_CHECK(answer.size() == q.answer_vars().size());
  BlockIndex index = BlockIndex::Build(db);
  if (CountRepairsLog10(db, index) >
      std::log10(static_cast<double>(max_repairs))) {
    return std::nullopt;
  }
  ConjunctiveQuery bound = q.BindAnswer(answer);
  size_t hits = 0;
  size_t total = 0;
  ForEachRepair(db, index, [&](const std::vector<FactRef>& selection) {
    Database repair = MaterializeRepair(db, selection);
    CqEvaluator evaluator(&repair);
    ++total;
    if (evaluator.HasAnswer(bound)) ++hits;
    return true;
  });
  return static_cast<double>(hits) / static_cast<double>(total);
}

std::optional<bool> IsCertainAnswerByRepairs(const Database& db,
                                             const ConjunctiveQuery& q,
                                             const Tuple& answer,
                                             size_t max_repairs) {
  CQA_CHECK(answer.size() == q.answer_vars().size());
  BlockIndex index = BlockIndex::Build(db);
  if (CountRepairsLog10(db, index) >
      std::log10(static_cast<double>(max_repairs))) {
    return std::nullopt;
  }
  ConjunctiveQuery bound = q.BindAnswer(answer);
  bool certain = true;
  ForEachRepair(db, index, [&](const std::vector<FactRef>& selection) {
    Database repair = MaterializeRepair(db, selection);
    CqEvaluator evaluator(&repair);
    if (!evaluator.HasAnswer(bound)) {
      certain = false;
      return false;
    }
    return true;
  });
  return certain;
}

}  // namespace cqa
