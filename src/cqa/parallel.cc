#include "cqa/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "cqa/opt_estimate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

MonteCarloResult ParallelMonteCarloEstimate(
    const SamplerFactory& factory, size_t num_threads, double epsilon,
    double delta, Rng& rng, const Deadline& deadline,
    obs::ConvergenceRecorder* estimator_convergence,
    obs::ConvergenceRecorder* main_convergence) {
  CQA_CHECK(num_threads >= 1);
  MonteCarloResult result;

  // Serial estimation phase.
  std::unique_ptr<Sampler> estimator_sampler = factory();
  Stopwatch phase_watch;
  OptEstimateResult opt;
  {
    obs::TraceSpan span("parallel.estimator");
    opt = OptEstimate(*estimator_sampler, epsilon, delta, rng, deadline,
                      estimator_convergence);
  }
  result.estimator_samples = opt.samples_used;
  result.estimator_seconds = phase_watch.ElapsedSeconds();
  if (opt.timed_out) {
    result.timed_out = true;
    return result;
  }

  const size_t n = opt.num_iterations;
  phase_watch.Restart();
  if (num_threads == 1) {
    obs::TraceSpan span("parallel.main_loop");
    double sum = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i % 64 == 0 && deadline.Expired()) {
        result.timed_out = true;
        break;
      }
      double x = estimator_sampler->Draw(rng);
      sum += x;
      if (main_convergence != nullptr) main_convergence->Observe(x);
      ++count;
    }
    result.main_samples = count;
    result.main_seconds = phase_watch.ElapsedSeconds();
    result.per_thread_samples = {count};
    CQA_OBS_COUNT_N("monte_carlo.main_draws", count);
    if (!result.timed_out) {
      result.estimate = sum / static_cast<double>(count);
    }
    CQA_AUDIT(audit::CheckMonteCarloResult, result);
    return result;
  }

  // Parallel main loop: disjoint iteration shares, independent RNG
  // streams, one atomic flag for deadline propagation, sums combined at
  // join time only.
  obs::TraceSpan main_span("parallel.main_loop");
  std::vector<double> partial_sums(num_threads, 0.0);
  std::vector<size_t> partial_counts(num_threads, 0);
  std::atomic<bool> expired{false};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  CQA_OBS_COUNT_N("parallel.workers_launched", num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    uint64_t worker_seed = rng.engine()();
    size_t share = n / num_threads + (t < n % num_threads ? 1 : 0);
    // Only worker 0 feeds the (single-threaded) convergence recorder;
    // the join below sequences its writes before the caller's reads.
    obs::ConvergenceRecorder* worker_convergence =
        t == 0 ? main_convergence : nullptr;
    workers.emplace_back([&, t, worker_seed, share, worker_convergence] {
      obs::TraceSpan worker_span("parallel.worker", main_span.id());
      std::unique_ptr<Sampler> sampler = factory();
      Rng worker_rng(worker_seed);
      double sum = 0.0;
      size_t count = 0;
      for (size_t i = 0; i < share; ++i) {
        if (i % 64 == 0 &&
            (expired.load(std::memory_order_relaxed) || deadline.Expired())) {
          expired.store(true, std::memory_order_relaxed);
          break;
        }
        double x = sampler->Draw(worker_rng);
        sum += x;
        if (worker_convergence != nullptr) worker_convergence->Observe(x);
        ++count;
      }
      partial_sums[t] = sum;
      partial_counts[t] = count;
      CQA_OBS_COUNT_N("parallel.worker_draws", count);
    });
  }
  for (std::thread& worker : workers) worker.join();

  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < num_threads; ++t) {
    sum += partial_sums[t];
    count += partial_counts[t];
  }
  result.main_samples = count;
  result.main_seconds = phase_watch.ElapsedSeconds();
  result.per_thread_samples = std::move(partial_counts);
  CQA_OBS_COUNT_N("monte_carlo.main_draws", count);
  if (expired.load() || count < n) {
    result.timed_out = true;
    CQA_AUDIT(audit::CheckMonteCarloResult, result);
    return result;
  }
  result.estimate = sum / static_cast<double>(count);
  CQA_AUDIT(audit::CheckMonteCarloResult, result);
  return result;
}

}  // namespace cqa
