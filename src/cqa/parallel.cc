#include "cqa/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "cqa/invariants.h"
#include "cqa/opt_estimate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {

constexpr size_t kBatch = 256;

/// One worker's share of the main loop: draws in blocks of kBatch, so a
/// block pays one virtual call, one deadline/expiry check, and one audit.
void RunMainShare(Sampler& sampler, Rng& rng, size_t share,
                  const Deadline& deadline, std::atomic<bool>* expired,
                  obs::ConvergenceRecorder* convergence, double* sum_out,
                  size_t* count_out) {
  double sum = 0.0;
  size_t count = 0;
  std::vector<double> buf(std::min(share, kBatch));
  while (count < share) {
    if (expired->load(std::memory_order_relaxed) || deadline.Expired()) {
      expired->store(true, std::memory_order_relaxed);
      break;
    }
    size_t m = std::min(share - count, kBatch);
    sampler.DrawBatch(rng, m, buf.data());
    CQA_AUDIT(audit::CheckBatchDraws, sampler, buf.data(), m);
    for (size_t k = 0; k < m; ++k) {
      sum += buf[k];
      if (convergence != nullptr) convergence->Observe(buf[k]);
    }
    count += m;
  }
  *sum_out = sum;
  *count_out = count;
}

}  // namespace

MonteCarloResult ParallelMonteCarloEstimate(
    const SamplerFactory& factory, size_t num_threads, double epsilon,
    double delta, Rng& rng, const Deadline& deadline,
    obs::ConvergenceRecorder* estimator_convergence,
    obs::ConvergenceRecorder* main_convergence) {
  CQA_CHECK(num_threads >= 1);
  MonteCarloResult result;

  // Serial estimation phase.
  std::unique_ptr<Sampler> estimator_sampler = factory();
  Stopwatch phase_watch;
  OptEstimateResult opt;
  {
    obs::TraceSpan span("parallel.estimator");
    opt = OptEstimate(*estimator_sampler, epsilon, delta, rng, deadline,
                      estimator_convergence);
  }
  result.estimator_samples = opt.samples_used;
  result.estimator_seconds = phase_watch.ElapsedSeconds();
  if (opt.timed_out) {
    result.timed_out = true;
    return result;
  }

  const size_t n = opt.num_iterations;
  phase_watch.Restart();
  obs::TraceSpan main_span("parallel.main_loop");
  std::atomic<bool> expired{false};

  if (num_threads == 1) {
    double sum = 0.0;
    size_t count = 0;
    RunMainShare(*estimator_sampler, rng, n, deadline, &expired,
                 main_convergence, &sum, &count);
    result.main_samples = count;
    result.main_seconds = phase_watch.ElapsedSeconds();
    result.per_thread_samples = {count};
    result.timed_out = expired.load();
    CQA_OBS_COUNT_N("monte_carlo.main_draws", count);
    if (!result.timed_out) {
      result.estimate = sum / static_cast<double>(count);
    }
    CQA_AUDIT(audit::CheckMonteCarloResult, result);
    return result;
  }

  // Parallel main loop on the persistent pool: disjoint iteration shares,
  // independent RNG streams forked from `rng`, one atomic flag for
  // deadline propagation, sums combined only after the pool drains. The
  // pool is process-wide and reused across calls — steady state launches
  // zero threads (workers_launched stays flat while pool_reuses grows).
  ThreadPool& pool = ThreadPool::Shared();
  size_t spawned = pool.EnsureWorkers(num_threads - 1);
  CQA_OBS_COUNT_N("parallel.workers_launched", spawned);
  if (spawned == 0) CQA_OBS_COUNT("parallel.pool_reuses");
  std::vector<double> partial_sums(num_threads, 0.0);
  std::vector<size_t> partial_counts(num_threads, 0);
  // Fork all worker seeds up front so the seeding is deterministic in the
  // parent stream regardless of task scheduling.
  std::vector<uint64_t> worker_seeds(num_threads);
  for (size_t t = 0; t < num_threads; ++t) worker_seeds[t] = rng.ForkSeed();
  pool.Run(num_threads, [&](size_t t) {
    obs::TraceSpan worker_span("parallel.worker", main_span.id());
    std::unique_ptr<Sampler> sampler = factory();
    Rng worker_rng(worker_seeds[t]);
    size_t share = n / num_threads + (t < n % num_threads ? 1 : 0);
    // Only task 0 feeds the (single-threaded) convergence recorder; the
    // pool's completion handshake sequences its writes before the
    // caller's reads.
    obs::ConvergenceRecorder* worker_convergence =
        t == 0 ? main_convergence : nullptr;
    RunMainShare(*sampler, worker_rng, share, deadline, &expired,
                 worker_convergence, &partial_sums[t], &partial_counts[t]);
    CQA_OBS_COUNT_N("parallel.worker_draws", partial_counts[t]);
  });

  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < num_threads; ++t) {
    sum += partial_sums[t];
    count += partial_counts[t];
  }
  result.main_samples = count;
  result.main_seconds = phase_watch.ElapsedSeconds();
  result.per_thread_samples = std::move(partial_counts);
  CQA_OBS_COUNT_N("monte_carlo.main_draws", count);
  if (expired.load() || count < n) {
    result.timed_out = true;
    CQA_AUDIT(audit::CheckMonteCarloResult, result);
    return result;
  }
  result.estimate = sum / static_cast<double>(count);
  CQA_AUDIT(audit::CheckMonteCarloResult, result);
  return result;
}

}  // namespace cqa
