// The four approximation schemes for RelativeFreq (Natural, KL, KLM,
// Cover) behind one interface, plus the (eps, delta) accuracy parameters
// and scheme-name parsing shared by every binary.
#ifndef CQABENCH_CQA_SCHEMES_H_
#define CQABENCH_CQA_SCHEMES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/synopsis.h"
#include "obs/convergence.h"

namespace cqa {

/// The four approximation schemes for RelativeFreq compared by the paper.
enum class SchemeKind {
  kNatural,  // Algorithm 3: MonteCarlo[SampleNatural].
  kKl,       // Algorithm 4: MonteCarlo[SampleKL]   · |S•|/|db(B)|.
  kKlm,      // Algorithm 4: MonteCarlo[SampleKLM]  · |S•|/|db(B)|.
  kCover,    // Algorithm 5: SelfAdjustingCoverage  · 1/|db(B)|.
};

const char* SchemeKindName(SchemeKind kind);
std::optional<SchemeKind> ParseSchemeKind(const std::string& name);
const std::vector<SchemeKind>& AllSchemeKinds();

/// Accuracy parameters: relative error ε and failure probability δ. The
/// paper runs every experiment with ε = 0.1, δ = 0.25.
struct ApxParams {
  double epsilon = 0.1;
  double delta = 0.25;
  /// Worker threads for the Monte Carlo main loop (the "parallel sampling
  /// phase" the paper's appendix proposes as future work). 1 = the
  /// paper's serial algorithms; >1 splits the optimal N across threads
  /// with independent RNG streams. Cover is inherently sequential and
  /// ignores this.
  size_t num_threads = 1;
  /// When true the scheme attaches ConvergenceRecorders to its sampling
  /// phases and returns the recorded series in ApxResult::convergence.
  /// Checkpointing is O(log n) in the draw count; still, leave this off
  /// unless the telemetry is wanted. No-op under CQABENCH_NO_OBS.
  bool record_convergence = false;
};

/// Result of one ApxRelativeFreq invocation on a single synopsis.
struct ApxResult {
  /// The approximated relative frequency R(H, B); unusable if timed_out.
  double estimate = 0.0;
  /// Total samples drawn (estimator phases + main loop / coverage steps).
  size_t samples = 0;
  bool timed_out = false;
  /// Per-phase breakdown: OptEstimate samples/time vs main-loop
  /// samples/time (for Cover, everything is "main" — it has no estimator
  /// phase). samples == estimator_samples + main_samples.
  size_t estimator_samples = 0;
  size_t main_samples = 0;
  double estimator_seconds = 0.0;
  double main_seconds = 0.0;
  /// Main-loop samples per worker thread (size 1 for serial runs).
  std::vector<size_t> per_thread_samples;
  /// Convergence series recorded during the run (one per sampling phase;
  /// empty unless ApxParams::record_convergence was set).
  std::vector<obs::ConvergenceSeries> convergence;
};

/// A data-efficient randomized approximation scheme for RelativeFreq,
/// operating directly on synopses (§5: the synopsis is computed once by
/// the preprocessing step, not per scheme call).
class ApxRelativeFreqScheme {
 public:
  virtual ~ApxRelativeFreqScheme() = default;

  /// Approximates R(H, B) with relative error ε and confidence 1-δ.
  /// Returns 0 immediately for an empty synopsis (H = ∅ ⟺ R = 0,
  /// Lemma 4.1(4)). Respects the deadline best-effort: on expiry the
  /// result is flagged timed_out.
  virtual ApxResult Run(const Synopsis& synopsis, const ApxParams& params,
                        Rng& rng,
                        const Deadline& deadline = Deadline()) const = 0;

  virtual SchemeKind kind() const = 0;
  const char* name() const { return SchemeKindName(kind()); }

  static std::unique_ptr<ApxRelativeFreqScheme> Create(SchemeKind kind);
};

}  // namespace cqa

#endif  // CQABENCH_CQA_SCHEMES_H_
