// The SQL rewriting Q^rew (Appendix C): emits the literal SQL the paper
// runs on PostgreSQL and an in-memory row pipeline that independently
// derives the synopsis encoding, cross-checking BuildSynopses.
#ifndef CQABENCH_CQA_REWRITING_H_
#define CQABENCH_CQA_REWRITING_H_

#include <functional>
#include <string>
#include <vector>

#include "cqa/preprocess.h"
#include "query/cq.h"
#include "storage/block_index.h"
#include "storage/database.h"

namespace cqa {

/// The SQL rewriting Q^rew of Appendix C, in two forms:
///  * the literal SQL text the paper executes on PostgreSQL (emitted for
///    documentation, debugging, and for running the preprocessing on a
///    real RDBMS);
///  * an executable row pipeline over the in-memory engine that produces
///    exactly the relation Q^rew(D) and derives enc(syn_{Σ,Q}(D)) from it
///    in linear time — an independent implementation of the
///    preprocessing step, used to cross-check BuildSynopses.

/// Emits the `CREATE VIEW Q_R` statement for one relation: the base
/// columns plus rid, bid (dense_rank over the key), tid (row_number within
/// the key partition) and kcnt (partition cardinality).
std::string RelationViewSql(const RelationSchema& rel, size_t rid);

/// Emits the full Q^rew SELECT over the per-relation views: the answer
/// attributes followed by (rid, bid, tid, kcnt) per atom, the join/constant
/// conditions of the CQ as the WHERE clause, ordered by the answer.
std::string RewritingSql(const Schema& schema, const ConjunctiveQuery& q);

/// One tuple of Q^rew(D): the answer h(x̄) plus the block annotation of
/// every atom's image fact.
struct QrewRow {
  Tuple answer;
  struct AtomAnnotation {
    size_t rid = 0;
    size_t bid = 0;
    size_t tid = 0;
    size_t kcnt = 0;
  };
  std::vector<AtomAnnotation> atoms;
};

/// Evaluates Q^rew over the database: one row per homomorphism (not per
/// consistent one — consistency filtering happens in the linear pass, as
/// in Appendix C). Rows are sorted by answer tuple (the ORDER BY ᾱ).
std::vector<QrewRow> ExecuteRewriting(const Database& db,
                                      const ConjunctiveQuery& q,
                                      const BlockIndex& index);

/// The complete alternative preprocessing path: execute Q^rew, then build
/// enc(syn_{Σ,Q}(D)) from its rows in linear time. Produces a result
/// equivalent to BuildSynopses (same answers, images and blocks up to
/// identifier naming).
PreprocessResult BuildSynopsesViaRewriting(const Database& db,
                                           const ConjunctiveQuery& q);

/// Streaming preprocessing, after the Remark of Appendix C: because
/// Q^rew orders its output by the answer attributes, the synopsis of one
/// answer at a time suffices in memory. Invokes `fn` once per answer with
/// positive relative frequency, in answer order; return false to stop.
/// Answers whose homomorphisms are all inconsistent are skipped
/// (Lemma 4.1(4)).
using SynopsisCallback =
    std::function<bool(const Tuple& answer, const Synopsis& synopsis)>;
void ForEachSynopsis(const Database& db, const ConjunctiveQuery& q,
                     const SynopsisCallback& fn);

}  // namespace cqa

#endif  // CQABENCH_CQA_REWRITING_H_
