#include "cqa/klm_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

KlmSampler::KlmSampler(const SymbolicSpace* space) : space_(space) {
  CQA_CHECK(space != nullptr);
}

double KlmSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.klm.draws");
  const Synopsis& synopsis = space_->synopsis();
  size_t i = space_->SampleElement(rng, &scratch_);
  // Acceptance implies block-membership: H_i ⊆ I guarantees the
  // multiplicity scan below finds k >= 1 covering images.
  CQA_AUDIT(audit::CheckSampledElement, *space_, i, scratch_);
  size_t k = 0;
  for (size_t j = 0; j < synopsis.NumImages(); ++j) {
    if (synopsis.ImageContainedIn(j, scratch_)) ++k;
  }
  CQA_CHECK(k >= 1);  // (i, I) ∈ S• implies H_i ⊆ I.
  // k = images covering the drawn database: the accepted coverage checks
  // of the scan (KLM always pays all |H| checks; KL stops early).
  CQA_OBS_COUNT_N("sampler.klm.accepts", k);
  return 1.0 / static_cast<double>(k);
}

}  // namespace cqa
