#include "cqa/klm_sampler.h"

#include "common/macros.h"

namespace cqa {

KlmSampler::KlmSampler(const SymbolicSpace* space) : space_(space) {
  CQA_CHECK(space != nullptr);
}

double KlmSampler::Draw(Rng& rng) {
  const Synopsis& synopsis = space_->synopsis();
  space_->SampleElement(rng, &scratch_);
  size_t k = 0;
  for (size_t j = 0; j < synopsis.NumImages(); ++j) {
    if (synopsis.ImageContainedIn(j, scratch_)) ++k;
  }
  CQA_CHECK(k >= 1);  // (i, I) ∈ S• implies H_i ⊆ I.
  return 1.0 / static_cast<double>(k);
}

}  // namespace cqa
