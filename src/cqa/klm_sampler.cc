#include "cqa/klm_sampler.h"

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"

namespace cqa {

KlmSampler::KlmSampler(const SymbolicSpace* space)
    : space_(space), index_(&space->synopsis()) {
  CQA_CHECK(space != nullptr);
}

double KlmSampler::DrawImpl(Rng& rng, size_t* witnesses) {
  size_t i = space_->SampleElement(rng, &scratch_);
  // Acceptance implies block-membership: H_i ⊆ I guarantees the
  // multiplicity count below finds k >= 1 covering images.
  CQA_AUDIT(audit::CheckSampledElement, *space_, i, scratch_);
  size_t k = 0;
  index_.ForEachContainedImage(scratch_, [&k](uint32_t) {
    ++k;
    return false;  // Count every witness; never stop early.
  });
  CQA_CHECK(k >= 1);  // (i, I) ∈ S• implies H_i ⊆ I.
  *witnesses += k;
  return 1.0 / static_cast<double>(k);
}

double KlmSampler::Draw(Rng& rng) {
  CQA_OBS_COUNT("sampler.klm.draws");
  size_t witnesses = 0;
  double v = DrawImpl(rng, &witnesses);
  // k = images covering the drawn database (always >= 1 for KLM).
  CQA_OBS_COUNT_N("sampler.klm.accepts", witnesses);
  return v;
}

void KlmSampler::DrawBatch(Rng& rng, size_t n, double* out) {
  size_t witnesses = 0;
  for (size_t k = 0; k < n; ++k) {
    out[k] = DrawImpl(rng, &witnesses);
  }
  CQA_OBS_COUNT_N("sampler.klm.draws", n);
  CQA_OBS_COUNT_N("sampler.klm.accepts", witnesses);
}

}  // namespace cqa
