#include "cqa/synopsis_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cqa {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool AppendValue(const Value& v, std::string* line, std::string* error) {
  switch (v.type()) {
    case ValueType::kInt:
      line->append("i:");
      line->append(std::to_string(v.AsInt()));
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.AsDouble());
      line->append(buf);
      break;
    }
    case ValueType::kString:
      if (v.AsString().find('|') != std::string::npos ||
          v.AsString().find('\n') != std::string::npos) {
        return Fail(error, "string value contains '|' or newline");
      }
      line->append("s:");
      line->append(v.AsString());
      break;
  }
  line->push_back('|');
  return true;
}

bool ParseValue(const std::string& field, Value* out, std::string* error) {
  if (field.size() < 2 || field[1] != ':') {
    return Fail(error, "malformed value field: " + field);
  }
  std::string body = field.substr(2);
  switch (field[0]) {
    case 'i': {
      char* end = nullptr;
      long long v = std::strtoll(body.c_str(), &end, 10);
      if (end == body.c_str() || *end != '\0') {
        return Fail(error, "bad int: " + body);
      }
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case 'd': {
      char* end = nullptr;
      double v = std::strtod(body.c_str(), &end);
      if (end == body.c_str() || *end != '\0') {
        return Fail(error, "bad double: " + body);
      }
      *out = Value(v);
      return true;
    }
    case 's':
      *out = Value(body);
      return true;
    default:
      return Fail(error, "unknown value tag in: " + field);
  }
}

std::vector<std::string> SplitBar(const std::string& line, size_t start) {
  std::vector<std::string> fields;
  size_t pos = start;
  while (pos < line.size()) {
    size_t bar = line.find('|', pos);
    if (bar == std::string::npos) break;
    fields.push_back(line.substr(pos, bar - pos));
    pos = bar + 1;
  }
  return fields;
}

}  // namespace

bool WriteSynopses(const PreprocessResult& preprocessed,
                   const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  out << "CQA_SYNOPSES 1\n";
  std::string line;
  for (const AnswerSynopsis& as : preprocessed.answers()) {
    line = "A|";
    for (const Value& v : as.answer) {
      if (!AppendValue(v, &line, error)) return false;
    }
    out << line << '\n';
    line = "B|";
    for (const Synopsis::Block& b : as.synopsis.blocks()) {
      line += std::to_string(b.size) + ',' + std::to_string(b.relation_id) +
              ',' + std::to_string(b.block_id) + '|';
    }
    out << line << '\n';
    line = "I|";
    for (const Synopsis::Image& image : as.synopsis.images()) {
      std::string facts;
      for (const Synopsis::ImageFact& f : image.facts) {
        if (!facts.empty()) facts.push_back(' ');
        facts += std::to_string(f.block) + ':' + std::to_string(f.tid);
      }
      line += facts + '|';
    }
    out << line << '\n';
  }
  out.flush();
  if (!out) return Fail(error, "write error on " + path);
  return true;
}

bool ReadSynopses(const std::string& path, std::vector<AnswerSynopsis>* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != "CQA_SYNOPSES 1") {
    return Fail(error, path + ": bad header");
  }
  out->clear();
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_number);
    if (line.rfind("A|", 0) == 0) {
      AnswerSynopsis as;
      for (const std::string& field : SplitBar(line, 2)) {
        Value v;
        if (!ParseValue(field, &v, error)) return false;
        as.answer.push_back(std::move(v));
      }
      out->push_back(std::move(as));
    } else if (line.rfind("B|", 0) == 0) {
      if (out->empty()) return Fail(error, where + ": B before A");
      for (const std::string& field : SplitBar(line, 2)) {
        size_t size = 0, rid = 0, bid = 0;
        if (std::sscanf(field.c_str(), "%zu,%zu,%zu", &size, &rid, &bid) !=
            3) {
          return Fail(error, where + ": bad block: " + field);
        }
        out->back().synopsis.AddBlock(Synopsis::Block{size, rid, bid});
      }
    } else if (line.rfind("I|", 0) == 0) {
      if (out->empty()) return Fail(error, where + ": I before A");
      for (const std::string& field : SplitBar(line, 2)) {
        std::vector<Synopsis::ImageFact> facts;
        std::istringstream is(field);
        std::string token;
        while (is >> token) {
          unsigned block = 0, tid = 0;
          if (std::sscanf(token.c_str(), "%u:%u", &block, &tid) != 2) {
            return Fail(error, where + ": bad image fact: " + token);
          }
          facts.push_back(Synopsis::ImageFact{block, tid});
        }
        if (facts.empty()) return Fail(error, where + ": empty image");
        out->back().synopsis.AddImage(std::move(facts));
      }
    } else {
      return Fail(error, where + ": unknown record: " + line);
    }
  }
  return true;
}

}  // namespace cqa
