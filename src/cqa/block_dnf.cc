#include "cqa/block_dnf.h"

#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace cqa {

size_t BlockDnf::NumVariables() const {
  size_t total = 0;
  for (size_t s : block_sizes) total += s;
  return total;
}

std::string BlockDnf::ToString() const {
  std::ostringstream os;
  os << "blocks:";
  for (size_t b = 0; b < block_sizes.size(); ++b) {
    os << " X" << b << "{";
    for (size_t i = 0; i < block_sizes[b]; ++i) {
      if (i > 0) os << ' ';
      os << 'x' << b << '_' << i;
    }
    os << '}';
  }
  os << "\nformula: ";
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) os << " | ";
    os << '(';
    for (size_t l = 0; l < clauses[c].size(); ++l) {
      if (l > 0) os << " & ";
      os << 'x' << clauses[c][l].block << '_' << clauses[c][l].index;
    }
    os << ')';
  }
  return os.str();
}

BlockDnf SynopsisToBlockDnf(const Synopsis& synopsis) {
  BlockDnf formula;
  formula.block_sizes.reserve(synopsis.NumBlocks());
  for (const Synopsis::Block& b : synopsis.blocks()) {
    formula.block_sizes.push_back(b.size);
  }
  formula.clauses.reserve(synopsis.NumImages());
  for (const Synopsis::Image& image : synopsis.images()) {
    std::vector<BlockDnf::Literal> clause;
    clause.reserve(image.facts.size());
    for (const Synopsis::ImageFact& f : image.facts) {
      clause.push_back(BlockDnf::Literal{f.block, f.tid});
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

std::optional<double> SatisfyingFraction(const BlockDnf& formula,
                                         size_t max_assignments) {
  if (formula.NumBlocks() == 0) return formula.NumClauses() > 0 ? 1.0 : 0.0;
  double log_assignments = 0.0;
  for (size_t s : formula.block_sizes) {
    CQA_CHECK(s >= 1);
    log_assignments += std::log10(static_cast<double>(s));
  }
  if (log_assignments > std::log10(static_cast<double>(max_assignments))) {
    return std::nullopt;
  }

  std::vector<uint32_t> assignment(formula.NumBlocks(), 0);
  size_t satisfied = 0;
  size_t total = 0;
  while (true) {
    ++total;
    for (const std::vector<BlockDnf::Literal>& clause : formula.clauses) {
      bool all_true = true;
      for (const BlockDnf::Literal& lit : clause) {
        if (assignment[lit.block] != lit.index) {
          all_true = false;
          break;
        }
      }
      if (all_true) {
        ++satisfied;
        break;
      }
    }
    size_t b = 0;
    for (; b < assignment.size(); ++b) {
      if (++assignment[b] < formula.block_sizes[b]) break;
      assignment[b] = 0;
    }
    if (b == assignment.size()) break;
  }
  return static_cast<double>(satisfied) / static_cast<double>(total);
}

}  // namespace cqa
