// Self-adjusting coverage algorithm (the paper's Algorithm 5 / Cover
// scheme): estimates the normalized union size of the image sets over
// the symbolic space with a deterministic step budget.
#ifndef CQABENCH_CQA_COVERAGE_H_
#define CQABENCH_CQA_COVERAGE_H_

#include <cstddef>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/symbolic_space.h"
#include "obs/convergence.h"

namespace cqa {

struct CoverageResult {
  /// Estimate of |∪_i I_i| / |S•|, i.e. the union size normalized by the
  /// symbolic space. Multiply by |S•|/|db(B)| (= SymbolicSpace::
  /// total_weight()) to obtain R(H, B).
  double normalized_estimate = 0.0;
  /// Total inner-loop steps performed (the algorithm's deterministic
  /// budget N bounds this).
  size_t steps = 0;
  /// Completed trials (outer samples whose witness search finished).
  size_t trials = 0;
  bool timed_out = false;
};

/// The self-adjusting coverage algorithm of Karp, Luby and Madras [15]
/// (Algorithm 6 in the paper's appendix), solving UnionOfSets on the sets
/// I_1, ..., I_n described by an admissible pair (H, B).
///
/// Unlike the Monte Carlo schemes, the step budget
///   N = ⌈ 8(1+ε)|H| ln(3/δ) / ((1-ε²/8) ε²) ⌉
/// is fixed deterministically, which makes the running time predictable —
/// but linear in |H| with a large constant, the behaviour the paper's
/// experiments single out.
///
/// When `recorder` is non-null it receives, per completed trial, the
/// witness-search cost normalized by |H| — the per-trial draw whose mean
/// the coverage estimate is (null = off; compiled out under
/// CQABENCH_NO_OBS).
CoverageResult SelfAdjustingCoverage(
    const SymbolicSpace& space, double epsilon, double delta, Rng& rng,
    const Deadline& deadline = Deadline(),
    obs::ConvergenceRecorder* recorder = nullptr);

}  // namespace cqa

#endif  // CQABENCH_CQA_COVERAGE_H_
