// Text (de)serialization of synopsis sets, decoupling the preprocessing
// phase from scheme evaluation the way the paper materializes its
// intermediate logs.
#ifndef CQABENCH_CQA_SYNOPSIS_IO_H_
#define CQABENCH_CQA_SYNOPSIS_IO_H_

#include <string>
#include <vector>

#include "cqa/preprocess.h"

namespace cqa {

/// Text serialization of a synopsis set enc(syn_{Σ,Q}(D)).
///
/// The paper's pipeline materializes the preprocessing output before the
/// schemes run (its experiment logs amount to 130 GB); these routines
/// decouple the two phases the same way: preprocess once, persist, then
/// evaluate any scheme offline. Format (line-based, '|'-separated):
///
///   CQA_SYNOPSES 1
///   A|<typed answer values...>          one per answer, followed by
///   B|<size>,<rid>,<bid>|...            its blocks and
///   I|<block>:<tid> <block>:<tid>...|.. its images.
///
/// Typed values are `i:<int>`, `d:<%.17g double>`, `s:<string>`; strings
/// must not contain '|' or newlines (same restriction as tbl files).

bool WriteSynopses(const PreprocessResult& preprocessed,
                   const std::string& path, std::string* error);

/// Reads a synopsis set back. Only the answers and their (H, B) pairs are
/// persisted (the block index belongs to the database, not the encoding).
bool ReadSynopses(const std::string& path, std::vector<AnswerSynopsis>* out,
                  std::string* error);

}  // namespace cqa

#endif  // CQABENCH_CQA_SYNOPSIS_IO_H_
