#include "cqa/preprocess.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/audit.h"

namespace cqa {

namespace {

/// A fact in global (relation, block, tid) coordinates.
struct GlobalFact {
  size_t relation_id;
  size_t block_id;
  size_t tid;

  friend bool operator<(const GlobalFact& a, const GlobalFact& b) {
    if (a.relation_id != b.relation_id) return a.relation_id < b.relation_id;
    if (a.block_id != b.block_id) return a.block_id < b.block_id;
    return a.tid < b.tid;
  }
  friend bool operator==(const GlobalFact& a, const GlobalFact& b) {
    return a.relation_id == b.relation_id && a.block_id == b.block_id &&
           a.tid == b.tid;
  }
};

/// Order-insensitive only up to the sort BuildSynopses applies to every
/// image before insertion, so equal images hash equal. SplitMix64 mixes
/// each coordinate; a plain XOR would collide permuted fact sets.
struct GlobalImageHash {
  size_t operator()(const std::vector<GlobalFact>& image) const {
    uint64_t h = SplitMix64(image.size());
    for (const GlobalFact& g : image) {
      h = SplitMix64(h ^ g.relation_id);
      h = SplitMix64(h ^ g.block_id);
      h = SplitMix64(h ^ g.tid);
    }
    return static_cast<size_t>(h);
  }
};

/// Per-answer builder mapping global blocks to local synopsis blocks.
struct SynopsisBuilder {
  Synopsis synopsis;
  std::unordered_map<size_t, size_t> local_block;  // packed key -> local id

  static size_t PackKey(size_t relation_id, size_t block_id) {
    // Relations are few (< 2^10); block ids fit comfortably in 54 bits.
    return (relation_id << 54) | block_id;
  }
};

}  // namespace

double PreprocessResult::Balance() const {
  if (answers_.empty() || stats_.num_distinct_images == 0) return 0.0;
  return static_cast<double>(answers_.size()) /
         static_cast<double>(stats_.num_distinct_images);
}

std::vector<FactRef> PreprocessResult::ImageFactRefs() const {
  // Dedup through a hash set (O(1) inserts vs the O(log n) of a tree),
  // then sort once: callers rely on the deterministic order.
  std::unordered_set<FactRef, FactRefHash> facts;
  for (const AnswerSynopsis& as : answers_) {
    const std::vector<Synopsis::Block>& blocks = as.synopsis.blocks();
    for (const Synopsis::Image& image : as.synopsis.images()) {
      for (const Synopsis::ImageFact& f : image.facts) {
        const Synopsis::Block& b = blocks[f.block];
        size_t row =
            block_index_.relation(b.relation_id).block(b.block_id)[f.tid];
        facts.insert(FactRef{b.relation_id, row});
      }
    }
  }
  std::vector<FactRef> sorted(facts.begin(), facts.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

PreprocessResult BuildSynopses(const Database& db, const ConjunctiveQuery& q,
                               DatabaseIndexCache* cache) {
  Stopwatch watch;
  obs::TraceSpan span("preprocess.build_synopses");
  CQA_OBS_COUNT("preprocess.builds");
  // The columnar plane (chunk tiling, dictionaries, pruning statistics)
  // must be structurally sound before block construction trusts it.
  CQA_AUDIT(audit::CheckColumnarStorage, db);
  BlockIndex block_index = BlockIndex::Build(db);
  // Synopses encode blocks by (relation, block, tid) coordinates; a block
  // structure that fails to partition the relations corrupts every
  // estimate downstream.
  CQA_AUDIT(audit::CheckBlockPartition, db, block_index);
  PreprocessStats stats;

  std::unordered_map<Tuple, size_t, TupleHash> answer_index;
  std::vector<AnswerSynopsis> answers;
  std::vector<SynopsisBuilder> builders;
  std::unordered_set<std::vector<GlobalFact>, GlobalImageHash>
      distinct_images;

  CqEvaluator evaluator(&db, cache);
  std::vector<GlobalFact> image;
  evaluator.ForEachHomomorphism(q, [&](const Homomorphism& h) {
    ++stats.num_homomorphisms;
    // Translate the image to (rid, bid, tid) coordinates and check
    // consistency: h(Q) |= Σ iff no block receives two distinct tuples.
    image.clear();
    for (const FactRef& f : h.image) {
      const BlockAnnotation& ann =
          block_index.relation(f.relation_id).annotation(f.row);
      image.push_back(GlobalFact{f.relation_id, ann.block_id, ann.tuple_id});
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    for (size_t i = 1; i < image.size(); ++i) {
      if (image[i].relation_id == image[i - 1].relation_id &&
          image[i].block_id == image[i - 1].block_id) {
        return true;  // Inconsistent image; skip.
      }
    }

    Tuple answer = h.AnswerTuple(q);
    auto [it, inserted] = answer_index.emplace(answer, builders.size());
    if (inserted) {
      answers.push_back(AnswerSynopsis{std::move(answer), Synopsis()});
      builders.emplace_back();
    }
    SynopsisBuilder& builder = builders[it->second];

    std::vector<Synopsis::ImageFact> local_facts;
    local_facts.reserve(image.size());
    for (const GlobalFact& g : image) {
      size_t key = SynopsisBuilder::PackKey(g.relation_id, g.block_id);
      auto [bit, block_inserted] =
          builder.local_block.emplace(key, builder.synopsis.NumBlocks());
      if (block_inserted) {
        size_t size =
            block_index.relation(g.relation_id).block(g.block_id).size();
        builder.synopsis.AddBlock(
            Synopsis::Block{size, g.relation_id, g.block_id});
      }
      local_facts.push_back(
          Synopsis::ImageFact{static_cast<uint32_t>(bit->second),
                              static_cast<uint32_t>(g.tid)});
    }
    if (builder.synopsis.AddImage(std::move(local_facts))) {
      ++stats.num_images;
      distinct_images.insert(image);
    }
    return true;
  });

  for (size_t i = 0; i < answers.size(); ++i) {
    answers[i].synopsis = std::move(builders[i].synopsis);
    CQA_OBS_OBSERVE("preprocess.synopsis_images",
                    answers[i].synopsis.NumImages());
    CQA_OBS_OBSERVE("preprocess.synopsis_blocks",
                    answers[i].synopsis.NumBlocks());
  }
  stats.num_distinct_images = distinct_images.size();
  stats.seconds = watch.ElapsedSeconds();
  CQA_OBS_COUNT_N("preprocess.homomorphisms", stats.num_homomorphisms);
  CQA_OBS_COUNT_N("preprocess.consistent_images", stats.num_images);
  CQA_OBS_COUNT_N("preprocess.answers", answers.size());
  return PreprocessResult(std::move(answers), std::move(block_index), stats);
}

}  // namespace cqa
