// Parallel Monte Carlo main loop: splits the N draws across workers with
// independent forked RNG streams and no hot-path synchronization.
#ifndef CQABENCH_CQA_PARALLEL_H_
#define CQABENCH_CQA_PARALLEL_H_

#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/monte_carlo.h"
#include "cqa/sampler.h"

namespace cqa {

/// Factory producing independent sampler instances over the same
/// admissible pair. Samplers keep per-draw scratch state, so each worker
/// thread needs its own instance.
using SamplerFactory = std::function<std::unique_ptr<Sampler>()>;

/// Parallel variant of MonteCarlo[Sample] — the optimization the paper's
/// appendix singles out as future work ("the performance ... can greatly
/// benefit from a parallel implementation of the sampling phase without
/// additional synchronization overhead").
///
/// OptEstimate runs serially (its sample count is tiny relative to the
/// main loop); the N main-loop draws are then split across `num_threads`
/// workers with independent RNG streams forked from `rng` (Rng::ForkSeed),
/// and the partial sums are combined once at the end — no synchronization
/// on the hot path. With num_threads == 1 this is exactly
/// MonteCarloEstimate.
///
/// Workers run on the process-wide persistent ThreadPool: threads are
/// spawned the first time a width is requested and reused by every later
/// call (and by the batch evaluator), so steady-state calls launch zero
/// threads. The `parallel.workers_launched` counter only moves when the
/// pool actually grows; `parallel.pool_reuses` counts calls served
/// entirely by existing workers.
///
/// The estimator keeps its (ε, δ) guarantee: the N draws are i.i.d. from
/// the same distribution regardless of which thread produced them.
///
/// Convergence telemetry: `estimator_convergence` sees every OptEstimate
/// draw (that phase is serial). `main_convergence` sees every main-loop
/// draw when num_threads == 1; with more threads it sees worker 0's draws
/// only — the recorder is not thread-safe, and one worker's i.i.d. stream
/// is a faithful sample of the convergence behaviour (the thread join
/// orders the recorder's buffer before the caller reads it).
MonteCarloResult ParallelMonteCarloEstimate(
    const SamplerFactory& factory, size_t num_threads, double epsilon,
    double delta, Rng& rng, const Deadline& deadline = Deadline(),
    obs::ConvergenceRecorder* estimator_convergence = nullptr,
    obs::ConvergenceRecorder* main_convergence = nullptr);

}  // namespace cqa

#endif  // CQABENCH_CQA_PARALLEL_H_
