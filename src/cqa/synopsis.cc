#include "cqa/synopsis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace cqa {

size_t Synopsis::AddBlock(Block block) {
  CQA_CHECK(block.size >= 1);
  blocks_.push_back(block);
  return blocks_.size() - 1;
}

bool Synopsis::AddImage(std::vector<ImageFact> facts) {
  CQA_CHECK_MSG(!facts.empty(), "an image must contain at least one fact");
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  for (size_t i = 0; i < facts.size(); ++i) {
    CQA_CHECK(facts[i].block < blocks_.size());
    CQA_CHECK(facts[i].tid < blocks_[facts[i].block].size);
    if (i > 0) {
      CQA_CHECK_MSG(facts[i].block != facts[i - 1].block,
                    "inconsistent image: two facts in one block");
    }
  }
  if (!image_keys_.insert(facts).second) return false;
  images_.push_back(Image{std::move(facts)});
  return true;
}

double Synopsis::LogDbSize() const {
  double log_size = 0.0;
  for (const Block& b : blocks_) {
    log_size += std::log10(static_cast<double>(b.size));
  }
  return log_size;
}

std::vector<double> Synopsis::ImageWeights() const {
  std::vector<double> weights;
  weights.reserve(images_.size());
  for (const Image& image : images_) {
    double w = 1.0;
    for (const ImageFact& f : image.facts) {
      w /= static_cast<double>(blocks_[f.block].size);
    }
    weights.push_back(w);
  }
  return weights;
}

double Synopsis::SymbolicToNaturalFactor() const {
  double total = 0.0;
  for (double w : ImageWeights()) total += w;
  return total;
}

bool Synopsis::ImageContainedIn(size_t i, const Choice& choice) const {
  CQA_CHECK(i < images_.size());
  for (const ImageFact& f : images_[i].facts) {
    if (choice[f.block] != f.tid) return false;
  }
  return true;
}

bool Synopsis::AnyImageContainedIn(const Choice& choice) const {
  for (size_t i = 0; i < images_.size(); ++i) {
    if (ImageContainedIn(i, choice)) return true;
  }
  return false;
}

std::string Synopsis::DebugString() const {
  std::ostringstream os;
  os << "Synopsis{blocks=[";
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (b > 0) os << ", ";
    os << blocks_[b].size;
  }
  os << "], images=[";
  for (size_t i = 0; i < images_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '{';
    for (size_t j = 0; j < images_[i].facts.size(); ++j) {
      if (j > 0) os << ' ';
      os << images_[i].facts[j].block << ':' << images_[i].facts[j].tid;
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace cqa
