#include "cqa/coverage.h"

#include <cmath>

#include "common/macros.h"
#include "cqa/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqa {

namespace {
constexpr size_t kDeadlineStride = 64;
}  // namespace

CoverageResult SelfAdjustingCoverage(const SymbolicSpace& space,
                                     double epsilon, double delta, Rng& rng,
                                     const Deadline& deadline,
                                     obs::ConvergenceRecorder* recorder) {
  CQA_CHECK(epsilon > 0.0 && epsilon < 1.0);
  CQA_CHECK(delta > 0.0 && delta < 1.0);
  const Synopsis& synopsis = space.synopsis();
  const size_t h = synopsis.NumImages();
  CQA_CHECK(h >= 1);

  const double n_exact = 8.0 * (1.0 + epsilon) * static_cast<double>(h) *
                         std::log(3.0 / delta) /
                         ((1.0 - epsilon * epsilon / 8.0) * epsilon * epsilon);
  const size_t budget = static_cast<size_t>(std::ceil(n_exact));

  CoverageResult result;
  obs::TraceSpan span("coverage.run");
  CQA_OBS_COUNT("coverage.runs");
  Synopsis::Choice choice;
  size_t steps = 0;
  size_t total = 0;
  size_t trials = 0;
  while (true) {
    // Outer sample: (i, I) uniform in S•. The index i is unused; the
    // algorithm only needs I (the choice), exactly as in Algorithm 6.
    space.SampleElement(rng, &choice);
    size_t trial_start = steps;
    while (true) {
      ++steps;
      if (steps > budget) goto finish;
      if (steps % kDeadlineStride == 0 && deadline.Expired()) {
        result.timed_out = true;
        goto finish;
      }
      // Inner sample: j uniform in [|H|]; stop when H_j witnesses I.
      size_t j = rng.UniformIndex(h);
      if (synopsis.ImageContainedIn(j, choice)) break;
    }
    total = steps;
    ++trials;
    if (recorder != nullptr) {
      // The per-trial observation is (search steps)/|H|, whose running
      // mean is exactly the normalized coverage estimate below.
      recorder->Observe(static_cast<double>(steps - trial_start) /
                        static_cast<double>(h));
    }
  }
finish:
  result.steps = steps;
  result.trials = trials;
  // Bulk adds at exit: the inner loop itself stays instrumentation-free.
  CQA_OBS_COUNT_N("coverage.steps", steps);
  CQA_OBS_COUNT_N("coverage.self_adjust_trials", trials);
  if (result.timed_out) CQA_OBS_COUNT("coverage.timeouts");
  // total/trials estimates |H| · |∪I_i| / |S•| (the expected number of
  // j-draws until a hit). trials == 0 can only occur if the very first
  // witness search exhausts the budget — vanishingly unlikely since the
  // budget is Ω(|H| log(1/δ)/ε²) while a search needs |H| draws in
  // expectation; report 0 coverage in that case.
  if (trials > 0) {
    result.normalized_estimate = static_cast<double>(total) /
                                 (static_cast<double>(h) *
                                  static_cast<double>(trials));
  }
  CQA_AUDIT(audit::CheckCoverageResult, result, budget);
  return result;
}

}  // namespace cqa
