// Inverted fact-to-image index shared by the indexed natural sampler and
// the KL/KLM samplers. Carries mutable per-draw hit counters: an
// ImageIndex is single-threaded scratch, so every worker builds its own
// over the (shared, immutable) Synopsis rather than sharing one.
#ifndef CQABENCH_CQA_IMAGE_INDEX_H_
#define CQABENCH_CQA_IMAGE_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "cqa/synopsis.h"

namespace cqa {

/// Inverted index from drawn facts to the images containing them, with
/// generation-stamped hit counters — the shared engine behind the indexed
/// natural sampler and the KL/KLM symbolic samplers.
///
/// The question every sampler answers per draw is "which images are fully
/// contained in the drawn database I?". The naive scan pays
/// Θ(Σ_i |H_i|) per draw; this index only touches the images that share
/// at least one fact with I: per drawn fact (block, tid) it bumps a hit
/// counter for each image containing that fact, and an image is contained
/// in I exactly when its counter reaches its fact count. Per-draw cost is
/// Θ(#facts drawn + Σ_{drawn facts} |images containing that fact|).
///
/// The hit counters carry a generation stamp so starting a new draw is
/// O(1): a counter whose stamp is stale is treated as zero instead of
/// being cleared. All (block, tid) cells share one flat CSR array —
/// cell_offsets_[block_base_[b] + tid] — so the per-fact lookup is two
/// contiguous reads with no per-block pointer chase.
///
/// Not thread-safe: each worker owns its sampler, which owns its index.
class ImageIndex {
 public:
  /// The synopsis must outlive the index.
  explicit ImageIndex(const Synopsis* synopsis);

  /// Starts a new draw, invalidating all hit counters in O(1).
  void BeginDraw() {
    if (++generation_ == 0) {
      // Generation counter wrapped: clear stamps to avoid false matches.
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      generation_ = 1;
    }
  }

  /// Registers that tuple `tid` of block `block` was drawn. For every
  /// image this fact completes (all its facts now drawn this generation)
  /// `on_complete(image_id)` is invoked; when it returns true the scan
  /// stops and AddFact returns true. Returns false once the fact's list
  /// is exhausted without an early stop.
  template <typename Fn>
  bool AddFact(uint32_t block, uint32_t tid, Fn&& on_complete) {
    const size_t cell = block_base_[block] + tid;
    const uint32_t begin = cell_offsets_[cell];
    const uint32_t end = cell_offsets_[cell + 1];
    for (uint32_t p = begin; p < end; ++p) {
      const uint32_t image = images_[p];
      if (stamp_[image] != generation_) {
        stamp_[image] = generation_;
        hits_[image] = 0;
      }
      if (++hits_[image] == image_sizes_[image] && on_complete(image)) {
        return true;
      }
    }
    return false;
  }

  /// BeginDraw + AddFact over a fully drawn database. `on_complete` as in
  /// AddFact; returns true iff an on_complete call stopped the scan.
  template <typename Fn>
  bool ForEachContainedImage(const Synopsis::Choice& choice,
                             Fn&& on_complete) {
    BeginDraw();
    for (uint32_t b = 0; b < choice.size(); ++b) {
      if (AddFact(b, choice[b], on_complete)) return true;
    }
    return false;
  }

 private:
  // Flat CSR: the images containing (block b, tuple t) live at
  // images_[cell_offsets_[c] .. cell_offsets_[c + 1]) for
  // c = block_base_[b] + t.
  std::vector<size_t> block_base_;
  std::vector<uint32_t> cell_offsets_;
  std::vector<uint32_t> images_;
  std::vector<uint32_t> image_sizes_;
  // Per-draw scratch: hit counters valid only for the current generation.
  std::vector<uint32_t> hits_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
};

/// Packs the per-block uniform tid draws of one sample into as few engine
/// words as possible. A draw needs one tid per block, uniform in
/// [0, |block|); the blocks of a synopsis are typically tiny (a handful of
/// candidate tuples), so burning a full 64-bit engine word per block — the
/// dominant cost of the old sampler loops — wastes almost all of its
/// entropy. Instead the plan treats one engine word as a fixed-point
/// fraction f ∈ [0, 1) and peels digits off it: tid = ⌊f·s⌋ and
/// f ← frac(f·s) consumes log2(s) bits, so one word covers ~Σ log2(s_b)
/// bits of blocks.
///
/// The precomputed refill schedule pulls a fresh word whenever fewer than
/// 32 bits of granularity would remain, bounding the relative bias of
/// every tid below 2^-32 — invisible next to the O(ε) Monte-Carlo error,
/// and orders of magnitude below what the distribution tests could
/// detect. Blocks of size 1 consume no entropy at all.
class TidDigitPlan {
 public:
  TidDigitPlan() = default;
  explicit TidDigitPlan(const Synopsis* synopsis);

  /// Per-sample extraction state; value-initialize one per draw.
  struct Stream {
    uint64_t f = 0;
  };

  /// The tid for block `b`, uniform in [0, sizes[b]). Blocks must be
  /// visited in index order from a fresh Stream (the refill schedule is
  /// positional), but stopping early is fine.
  uint32_t Next(Rng& rng, size_t b, Stream* s) const {
    if (refill_[b]) s->f = rng.engine()();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(s->f) * sizes_[b];
    s->f = static_cast<uint64_t>(m);
    return static_cast<uint32_t>(m >> 64);
  }

 private:
  std::vector<uint32_t> sizes_;
  std::vector<uint8_t> refill_;
};

}  // namespace cqa

#endif  // CQABENCH_CQA_IMAGE_INDEX_H_
