#include "query/cq.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/macros.h"

namespace cqa {

size_t ConjunctiveQuery::NumConstantOccurrences() const {
  size_t count = 0;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms) {
      if (t.is_constant()) ++count;
    }
  }
  return count;
}

size_t ConjunctiveQuery::NumJoins() const {
  std::unordered_map<size_t, size_t> occurrences;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms) {
      if (t.is_variable()) ++occurrences[t.var()];
    }
  }
  size_t joins = 0;
  for (const auto& [var, count] : occurrences) {
    if (count >= 2) joins += count - 1;
  }
  return joins;
}

std::string ConjunctiveQuery::VarName(size_t var_id) const {
  if (var_id < var_names_.size() && !var_names_[var_id].empty()) {
    return var_names_[var_id];
  }
  std::ostringstream os;
  os << 'V' << var_id;
  return os.str();
}

void ConjunctiveQuery::AddAtom(Atom atom) {
  for (const Term& t : atom.terms) {
    if (t.is_variable() && t.var() >= num_vars_) num_vars_ = t.var() + 1;
  }
  atoms_.push_back(std::move(atom));
}

void ConjunctiveQuery::SetAnswerVars(std::vector<size_t> vars) {
  answer_vars_ = std::move(vars);
  for (size_t v : answer_vars_) {
    if (v >= num_vars_) num_vars_ = v + 1;
  }
}

void ConjunctiveQuery::SetVarNames(std::vector<std::string> names) {
  var_names_ = std::move(names);
}

void ConjunctiveQuery::Validate(const Schema& schema) const {
  std::vector<bool> seen(num_vars_, false);
  for (const Atom& a : atoms_) {
    CQA_CHECK(a.relation_id < schema.NumRelations());
    const RelationSchema& rel = schema.relation(a.relation_id);
    CQA_CHECK_MSG(a.terms.size() == rel.arity(), rel.name().c_str());
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        CQA_CHECK(t.var() < num_vars_);
        seen[t.var()] = true;
      }
    }
  }
  for (size_t v : answer_vars_) {
    CQA_CHECK_MSG(seen[v], "answer variable must occur in an atom");
  }
  for (size_t v = 0; v < num_vars_; ++v) {
    CQA_CHECK_MSG(seen[v], "variable ids must be dense");
  }
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "Q(";
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    if (i > 0) os << ", ";
    os << VarName(answer_vars_[i]);
  }
  os << ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) os << ", ";
    const Atom& a = atoms_[i];
    os << schema.relation(a.relation_id).name() << '(';
    for (size_t j = 0; j < a.terms.size(); ++j) {
      if (j > 0) os << ", ";
      if (a.terms[j].is_variable()) {
        os << VarName(a.terms[j].var());
      } else {
        os << a.terms[j].constant();
      }
    }
    os << ')';
  }
  os << '.';
  return os.str();
}

ConjunctiveQuery ConjunctiveQuery::BooleanVersion() const {
  return WithAnswerVars({});
}

ConjunctiveQuery ConjunctiveQuery::WithAnswerVars(
    std::vector<size_t> vars) const {
  ConjunctiveQuery q = *this;
  q.answer_vars_ = std::move(vars);
  for (size_t v : q.answer_vars_) CQA_CHECK(v < q.num_vars_);
  return q;
}

ConjunctiveQuery ConjunctiveQuery::BindAnswer(const Tuple& values) const {
  CQA_CHECK(values.size() == answer_vars_.size());
  // Substitution for answer variables; remaining variables get dense ids.
  std::vector<const Value*> substitution(num_vars_, nullptr);
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    substitution[answer_vars_[i]] = &values[i];
  }
  std::unordered_map<size_t, size_t> remap;
  std::vector<std::string> names;
  ConjunctiveQuery bound;
  for (const Atom& a : atoms_) {
    Atom out;
    out.relation_id = a.relation_id;
    for (const Term& t : a.terms) {
      if (t.is_constant()) {
        out.terms.push_back(t);
      } else if (substitution[t.var()] != nullptr) {
        out.terms.push_back(Term::Const(*substitution[t.var()]));
      } else {
        auto [it, inserted] = remap.emplace(t.var(), remap.size());
        if (inserted) names.push_back(VarName(t.var()));
        out.terms.push_back(Term::Var(it->second));
      }
    }
    bound.AddAtom(std::move(out));
  }
  bound.SetAnswerVars({});
  bound.SetVarNames(std::move(names));
  return bound;
}

}  // namespace cqa
