#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "common/macros.h"

namespace cqa {
namespace {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kDouble,
  kString,
  kLParen,
  kRParen,
  kComma,
  kTurnstile,  // ":-"
  kDot,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Scans the next token; returns false (with *error set) on a bad char.
  bool Next(Token* token, std::string* error) {
    while (pos_ < text_.size() && std::isspace(Byte(pos_))) ++pos_;
    token->position = pos_;
    token->text.clear();
    if (pos_ >= text_.size()) {
      token->kind = TokenKind::kEnd;
      return true;
    }
    char c = text_[pos_];
    if (c == '(') return Punct(token, TokenKind::kLParen);
    if (c == ')') return Punct(token, TokenKind::kRParen);
    if (c == ',') return Punct(token, TokenKind::kComma);
    if (c == '.') return Punct(token, TokenKind::kDot);
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        token->kind = TokenKind::kTurnstile;
        pos_ += 2;
        return true;
      }
      return Fail(error, "expected ':-'");
    }
    if (c == '\'') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        token->text.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Fail(error, "unterminated string");
      ++pos_;  // Closing quote.
      token->kind = TokenKind::kString;
      return true;
    }
    if (std::isdigit(Byte(pos_)) || c == '-' || c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool saw_digit = false;
      bool saw_dot = false;
      while (pos_ < text_.size() &&
             (std::isdigit(Byte(pos_)) || text_[pos_] == '.')) {
        if (text_[pos_] == '.') {
          // A '.' not followed by a digit terminates the query instead.
          if (saw_dot || pos_ + 1 >= text_.size() ||
              !std::isdigit(Byte(pos_ + 1))) {
            break;
          }
          saw_dot = true;
        } else {
          saw_digit = true;
        }
        ++pos_;
      }
      if (!saw_digit) return Fail(error, "malformed number");
      token->text = text_.substr(start, pos_ - start);
      token->kind = saw_dot ? TokenKind::kDouble : TokenKind::kInteger;
      return true;
    }
    if (std::isalpha(Byte(pos_)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(Byte(pos_)) || text_[pos_] == '_')) {
        ++pos_;
      }
      token->text = text_.substr(start, pos_ - start);
      token->kind = TokenKind::kIdentifier;
      return true;
    }
    return Fail(error, "unexpected character");
  }

 private:
  unsigned char Byte(size_t i) const {
    return static_cast<unsigned char>(text_[i]);
  }

  bool Punct(Token* token, TokenKind kind) {
    token->kind = kind;
    ++pos_;
    return true;
  }

  bool Fail(std::string* error, const char* message) {
    std::ostringstream os;
    os << message << " at offset " << pos_;
    *error = os.str();
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) ||
          name[0] == '_');
}

class Parser {
 public:
  Parser(const Schema& schema, const std::string& text)
      : schema_(schema), lexer_(text) {}

  bool Parse(ConjunctiveQuery* out, std::string* error) {
    if (!Advance(error)) return false;
    // Head: Name ( vars ) :-
    if (!Expect(TokenKind::kIdentifier, "query head", error)) return false;
    if (!Expect(TokenKind::kLParen, "'('", error)) return false;
    std::vector<std::string> head_vars;
    if (current_.kind != TokenKind::kRParen) {
      while (true) {
        if (current_.kind != TokenKind::kIdentifier ||
            !IsVariableName(current_.text)) {
          return Fail("answer positions must be variables", error);
        }
        head_vars.push_back(current_.text);
        if (!Advance(error)) return false;
        if (current_.kind == TokenKind::kComma) {
          if (!Advance(error)) return false;
          continue;
        }
        break;
      }
    }
    if (!Expect(TokenKind::kRParen, "')'", error)) return false;
    if (!Expect(TokenKind::kTurnstile, "':-'", error)) return false;

    // Body atoms.
    while (true) {
      if (!ParseAtom(error)) return false;
      if (current_.kind == TokenKind::kComma) {
        if (!Advance(error)) return false;
        continue;
      }
      break;
    }
    if (current_.kind == TokenKind::kDot) {
      if (!Advance(error)) return false;
    }
    if (current_.kind != TokenKind::kEnd) {
      return Fail("trailing input after query", error);
    }

    std::vector<size_t> answer_vars;
    for (const std::string& name : head_vars) {
      auto it = var_ids_.find(name);
      if (it == var_ids_.end()) {
        return Fail(("answer variable " + name + " not used in body").c_str(),
                    error);
      }
      answer_vars.push_back(it->second);
    }
    query_.SetAnswerVars(std::move(answer_vars));
    query_.SetVarNames(std::move(var_names_));
    query_.Validate(schema_);
    *out = std::move(query_);
    return true;
  }

 private:
  bool ParseAtom(std::string* error) {
    if (current_.kind != TokenKind::kIdentifier) {
      return Fail("expected relation name", error);
    }
    auto relation_id = schema_.FindRelation(current_.text);
    if (!relation_id.has_value()) {
      return Fail(("unknown relation " + current_.text).c_str(), error);
    }
    const RelationSchema& rel = schema_.relation(*relation_id);
    if (!Advance(error)) return false;
    if (!Expect(TokenKind::kLParen, "'('", error)) return false;
    Atom atom;
    atom.relation_id = *relation_id;
    while (current_.kind != TokenKind::kRParen) {
      if (atom.terms.size() >= rel.arity()) {
        return Fail(("too many arguments for " + rel.name()).c_str(), error);
      }
      ValueType expected = rel.attribute(atom.terms.size()).type;
      if (!ParseTerm(expected, &atom, error)) return false;
      if (current_.kind == TokenKind::kComma) {
        if (!Advance(error)) return false;
      } else if (current_.kind != TokenKind::kRParen) {
        return Fail("expected ',' or ')'", error);
      }
    }
    if (!Advance(error)) return false;  // Consume ')'.
    if (atom.terms.size() != rel.arity()) {
      return Fail(("wrong arity for " + rel.name()).c_str(), error);
    }
    query_.AddAtom(std::move(atom));
    return true;
  }

  bool ParseTerm(ValueType expected, Atom* atom, std::string* error) {
    switch (current_.kind) {
      case TokenKind::kIdentifier:
        if (IsVariableName(current_.text)) {
          atom->terms.push_back(Term::Var(InternVar(current_.text)));
        } else {
          if (expected != ValueType::kString) {
            return Fail("string constant where non-string expected", error);
          }
          atom->terms.push_back(Term::Const(Value(current_.text)));
        }
        break;
      case TokenKind::kString:
        if (expected != ValueType::kString) {
          return Fail("string constant where non-string expected", error);
        }
        atom->terms.push_back(Term::Const(Value(current_.text)));
        break;
      case TokenKind::kInteger: {
        int64_t v = std::strtoll(current_.text.c_str(), nullptr, 10);
        if (expected == ValueType::kDouble) {
          atom->terms.push_back(Term::Const(Value(static_cast<double>(v))));
        } else if (expected == ValueType::kInt) {
          atom->terms.push_back(Term::Const(Value(v)));
        } else {
          return Fail("numeric constant where string expected", error);
        }
        break;
      }
      case TokenKind::kDouble: {
        if (expected != ValueType::kDouble) {
          return Fail("double constant where non-double expected", error);
        }
        double v = std::strtod(current_.text.c_str(), nullptr);
        atom->terms.push_back(Term::Const(Value(v)));
        break;
      }
      default:
        return Fail("expected term", error);
    }
    return Advance(error);
  }

  size_t InternVar(const std::string& name) {
    auto [it, inserted] = var_ids_.emplace(name, var_ids_.size());
    if (inserted) var_names_.push_back(name);
    return it->second;
  }

  bool Advance(std::string* error) { return lexer_.Next(&current_, error); }

  bool Expect(TokenKind kind, const char* what, std::string* error) {
    if (current_.kind != kind) return Fail(what, error);
    return Advance(error);
  }

  bool Fail(const char* message, std::string* error) {
    std::ostringstream os;
    os << "parse error near offset " << current_.position << ": " << message;
    *error = os.str();
    return false;
  }

  const Schema& schema_;
  Lexer lexer_;
  Token current_;
  ConjunctiveQuery query_;
  std::unordered_map<std::string, size_t> var_ids_;
  std::vector<std::string> var_names_;
};

}  // namespace

bool ParseCq(const Schema& schema, const std::string& text,
             ConjunctiveQuery* out, std::string* error) {
  Parser parser(schema, text);
  return parser.Parse(out, error);
}

ConjunctiveQuery MustParseCq(const Schema& schema, const std::string& text) {
  ConjunctiveQuery query;
  std::string error;
  if (!ParseCq(schema, text, &query, &error)) {
    std::fprintf(stderr, "MustParseCq(\"%s\"): %s\n", text.c_str(),
                 error.c_str());
    std::abort();
  }
  return query;
}

}  // namespace cqa
