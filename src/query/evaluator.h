#ifndef CQABENCH_QUERY_EVALUATOR_H_
#define CQABENCH_QUERY_EVALUATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "query/cq.h"
#include "storage/database.h"

namespace cqa {

/// Hash index of one relation keyed by the projection onto a fixed set of
/// positions. Built on demand by DatabaseIndexCache.
class RelationIndex {
 public:
  static RelationIndex Build(const Relation& rel,
                             std::vector<size_t> positions);

  /// Rows whose projection equals `key`; nullptr when none.
  const std::vector<size_t>* Lookup(const Tuple& key) const;

  const std::vector<size_t>& positions() const { return positions_; }

 private:
  std::vector<size_t> positions_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets_;
};

/// Lazily-built cache of RelationIndexes for one database. Reusing a cache
/// across many query evaluations on the same instance (the dynamic query
/// generator, the preprocessing step) amortizes index construction.
///
/// The database must outlive the cache and must not grow while cached
/// indexes are in use.
class DatabaseIndexCache {
 public:
  explicit DatabaseIndexCache(const Database* db) : db_(db) {}

  /// Index of `relation_id` on `positions` (must be sorted ascending).
  const RelationIndex& Get(size_t relation_id,
                           const std::vector<size_t>& positions);

 private:
  struct Key {
    size_t relation_id;
    std::vector<size_t> positions;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = k.relation_id;
      for (size_t p : k.positions) HashCombine(seed, p);
      return seed;
    }
  };

  const Database* db_;
  std::unordered_map<Key, std::unique_ptr<RelationIndex>, KeyHash> cache_;
};

/// A homomorphism from a CQ to a database: a total assignment of the query
/// variables plus, per atom, the fact the atom is mapped onto (its image).
struct Homomorphism {
  /// Value of each variable, indexed by variable id.
  std::vector<Value> assignment;
  /// Image fact of each atom, in atom order.
  std::vector<FactRef> image;

  /// h(x̄): the projection of the assignment onto the answer variables.
  Tuple AnswerTuple(const ConjunctiveQuery& q) const;
};

/// Callback invoked per homomorphism; return false to stop enumeration.
using HomomorphismCallback = std::function<bool(const Homomorphism&)>;

/// Enumerates homomorphisms from conjunctive queries to a database using
/// index-nested-loop joins with a greedy bound-terms-first atom order.
class CqEvaluator {
 public:
  /// `cache` may be shared across evaluators of the same database; when
  /// null the evaluator owns a private cache.
  explicit CqEvaluator(const Database* db, DatabaseIndexCache* cache = nullptr);

  const Database& db() const { return *db_; }

  /// Calls `fn` once per homomorphism from `q` to the database.
  void ForEachHomomorphism(const ConjunctiveQuery& q,
                           const HomomorphismCallback& fn);

  /// Distinct answers Q(D), in first-derivation order.
  std::vector<Tuple> Evaluate(const ConjunctiveQuery& q);

  /// True iff Q(D) is non-empty.
  bool HasAnswer(const ConjunctiveQuery& q);

  /// Number of homomorphisms, stopping at `limit` when non-zero.
  size_t CountHomomorphisms(const ConjunctiveQuery& q, size_t limit = 0);

 private:
  const Database* db_;
  DatabaseIndexCache* cache_;
  std::unique_ptr<DatabaseIndexCache> owned_cache_;
};

}  // namespace cqa

#endif  // CQABENCH_QUERY_EVALUATOR_H_
