#ifndef CQABENCH_QUERY_CQ_H_
#define CQABENCH_QUERY_CQ_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace cqa {

/// A term of an atom: either a variable (dense id) or a constant.
class Term {
 public:
  static Term Var(size_t var_id) { return Term(var_id); }
  static Term Const(Value v) { return Term(std::move(v)); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }
  size_t var() const { return var_id_; }
  const Value& constant() const { return constant_; }

  /// Rebinds a variable term to another variable id. Only valid on
  /// variable terms; cheaper than assigning a whole Term (no constant
  /// payload involved).
  void set_var(size_t var_id) { var_id_ = var_id; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.var_id_ == b.var_id_
                          : a.constant_ == b.constant_;
  }

 private:
  // Separate constructors keep Var() from materializing (and moving) a
  // Value it does not need.
  explicit Term(size_t var_id) : is_variable_(true), var_id_(var_id) {}
  explicit Term(Value constant)
      : is_variable_(false), var_id_(0), constant_(std::move(constant)) {}

  bool is_variable_;
  size_t var_id_;
  Value constant_;
};

/// A relational atom R(t1, ..., tn) over a schema relation.
struct Atom {
  size_t relation_id = 0;
  std::vector<Term> terms;
};

/// A conjunctive query Q(x̄) :- R1(z̄1), ..., Rn(z̄n).
///
/// Variables are dense ids [0, num_vars); `answer_vars` lists the ids of x̄
/// in output order (empty for a Boolean query). Every answer variable must
/// occur in some atom. Construct via the mutating setters, then `Validate`,
/// or use the text parser (query/parser.h).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(size_t i) const { return atoms_[i]; }
  size_t NumAtoms() const { return atoms_.size(); }

  const std::vector<size_t>& answer_vars() const { return answer_vars_; }
  size_t num_vars() const { return num_vars_; }
  bool IsBoolean() const { return answer_vars_.empty(); }

  /// Number of occurrences of constants across the atoms (the paper's
  /// static parameter `c`).
  size_t NumConstantOccurrences() const;

  /// Number of join conditions: for each variable with k >= 2 occurrences,
  /// k-1 joins (the standard count SQG controls).
  size_t NumJoins() const;

  /// Variable name for diagnostics ("V<i>" when unnamed).
  std::string VarName(size_t var_id) const;

  void AddAtom(Atom atom);
  void SetAnswerVars(std::vector<size_t> vars);
  void SetVarNames(std::vector<std::string> names);

  /// Checks well-formedness against `schema`: relation ids and arities
  /// valid, answer variables occur in atoms, variable ids dense. Aborts on
  /// violation (queries are produced by trusted generators or the parser,
  /// which reports errors gracefully before building).
  void Validate(const Schema& schema) const;

  /// Renders the query in the parser's syntax.
  std::string ToString(const Schema& schema) const;

  /// Returns a copy with all answer variables made existential (the
  /// Boolean version Q_p[0] used by the benchmark's step 4).
  ConjunctiveQuery BooleanVersion() const;

  /// Returns a copy whose answer variables are `vars` (used by the dynamic
  /// query generator to re-project a query).
  ConjunctiveQuery WithAnswerVars(std::vector<size_t> vars) const;

  /// Returns the Boolean query Q(t̄): every answer variable is replaced by
  /// the corresponding constant of `values` and the remaining variables are
  /// renumbered densely. Requires values.size() == answer_vars().size().
  ConjunctiveQuery BindAnswer(const Tuple& values) const;

 private:
  std::vector<Atom> atoms_;
  std::vector<size_t> answer_vars_;
  size_t num_vars_ = 0;
  std::vector<std::string> var_names_;
};

}  // namespace cqa

#endif  // CQABENCH_QUERY_CQ_H_
