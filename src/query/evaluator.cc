#include "query/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace cqa {

RelationIndex RelationIndex::Build(const Relation& rel,
                                   std::vector<size_t> positions) {
  RelationIndex index;
  index.positions_ = std::move(positions);
  index.buckets_.reserve(rel.size());
  for (size_t row = 0; row < rel.size(); ++row) {
    index.buckets_[rel.ProjectRow(row, index.positions_)].push_back(row);
  }
  return index;
}

const std::vector<size_t>* RelationIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

const RelationIndex& DatabaseIndexCache::Get(
    size_t relation_id, const std::vector<size_t>& positions) {
  CQA_CHECK(std::is_sorted(positions.begin(), positions.end()));
  Key key{relation_id, positions};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto index = std::make_unique<RelationIndex>(
        RelationIndex::Build(db_->relation(relation_id), positions));
    it = cache_.emplace(std::move(key), std::move(index)).first;
  }
  return *it->second;
}

Tuple Homomorphism::AnswerTuple(const ConjunctiveQuery& q) const {
  Tuple t;
  t.reserve(q.answer_vars().size());
  for (size_t v : q.answer_vars()) t.push_back(assignment[v]);
  return t;
}

CqEvaluator::CqEvaluator(const Database* db, DatabaseIndexCache* cache)
    : db_(db), cache_(cache) {
  CQA_CHECK(db != nullptr);
  if (cache_ == nullptr) {
    owned_cache_ = std::make_unique<DatabaseIndexCache>(db);
    cache_ = owned_cache_.get();
  }
}

namespace {

/// Greedy join order: repeatedly pick the atom with the most bound term
/// positions (constants + variables bound by earlier atoms), breaking ties
/// towards smaller relations.
std::vector<size_t> PlanAtomOrder(const Database& db,
                                  const ConjunctiveQuery& q) {
  size_t n = q.NumAtoms();
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.num_vars(), false);
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    size_t best_bound = 0;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Atom& a = q.atom(i);
      size_t bound_terms = 0;
      for (const Term& t : a.terms) {
        if (t.is_constant() || bound[t.var()]) ++bound_terms;
      }
      size_t rel_size = db.relation(a.relation_id).size();
      if (best == n || bound_terms > best_bound ||
          (bound_terms == best_bound && rel_size < best_size)) {
        best = i;
        best_bound = bound_terms;
        best_size = rel_size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Term& t : q.atom(best).terms) {
      if (t.is_variable()) bound[t.var()] = true;
    }
  }
  return order;
}

/// Backtracking state for one evaluation.
struct SearchState {
  const Database* db;
  const ConjunctiveQuery* q;
  DatabaseIndexCache* cache;
  std::vector<size_t> order;
  std::vector<bool> bound;
  Homomorphism h;
  const HomomorphismCallback* fn;
  bool stopped = false;

  bool MatchAtom(size_t depth) {
    if (depth == order.size()) {
      stopped = !(*fn)(h);
      return !stopped;
    }
    size_t atom_index = order[depth];
    const Atom& atom = q->atom(atom_index);
    const Relation& rel = db->relation(atom.relation_id);

    // Which positions are bound at this point?
    std::vector<size_t> bound_positions;
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      if (t.is_constant() || bound[t.var()]) bound_positions.push_back(pos);
    }

    auto try_row = [&](size_t row) -> bool {
      // Unify against the fact's columns in place (no tuple
      // materialization, no string copies); repeated fresh variables
      // within the atom (e.g. R(x, x)) bind on first occurrence.
      std::vector<size_t> newly_bound;
      bool ok = true;
      for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
        const Term& t = atom.terms[pos];
        if (t.is_constant()) {
          if (!rel.ValueEquals(row, pos, t.constant())) {
            ok = false;
            break;
          }
        } else if (bound[t.var()]) {
          if (!rel.ValueEquals(row, pos, h.assignment[t.var()])) {
            ok = false;
            break;
          }
        } else {
          bound[t.var()] = true;
          h.assignment[t.var()] = rel.ValueAt(row, pos);
          newly_bound.push_back(t.var());
        }
      }
      if (ok) {
        h.image[atom_index] = FactRef{atom.relation_id, row};
        if (!MatchAtom(depth + 1)) ok = false;
      }
      for (size_t v : newly_bound) bound[v] = false;
      return ok || !stopped;
    };

    if (bound_positions.empty()) {
      for (size_t row = 0; row < rel.size(); ++row) {
        if (!try_row(row)) {
          if (stopped) return false;
        }
        if (stopped) return false;
      }
      return true;
    }

    // The first atom is matched exactly once, so when its bound positions
    // are all constants a statistics-pruned column scan beats building a
    // hash index over the whole relation. Enumeration stays in ascending
    // row order — the same order the index bucket would yield.
    if (depth == 0) {
      bool all_constant = true;
      for (size_t pos : bound_positions) {
        if (!atom.terms[pos].is_constant()) {
          all_constant = false;
          break;
        }
      }
      if (all_constant) {
        Tuple key;
        key.reserve(bound_positions.size());
        for (size_t pos : bound_positions) {
          key.push_back(atom.terms[pos].constant());
        }
        rel.ScanMatching(bound_positions, key, [&](size_t row) {
          try_row(row);
          return !stopped;
        });
        return !stopped;
      }
    }

    // Index lookup on the bound positions.
    const RelationIndex& index =
        cache->Get(atom.relation_id, bound_positions);
    Tuple key;
    key.reserve(bound_positions.size());
    for (size_t pos : bound_positions) {
      const Term& t = atom.terms[pos];
      key.push_back(t.is_constant() ? t.constant() : h.assignment[t.var()]);
    }
    const std::vector<size_t>* rows = index.Lookup(key);
    if (rows == nullptr) return true;
    for (size_t row : *rows) {
      try_row(row);
      if (stopped) return false;
    }
    return true;
  }
};

}  // namespace

void CqEvaluator::ForEachHomomorphism(const ConjunctiveQuery& q,
                                      const HomomorphismCallback& fn) {
  if (q.NumAtoms() == 0) return;
  SearchState state;
  state.db = db_;
  state.q = &q;
  state.cache = cache_;
  state.order = PlanAtomOrder(*db_, q);
  state.bound.assign(q.num_vars(), false);
  state.h.assignment.assign(q.num_vars(), Value());
  state.h.image.assign(q.NumAtoms(), FactRef{});
  state.fn = &fn;
  state.MatchAtom(0);
}

std::vector<Tuple> CqEvaluator::Evaluate(const ConjunctiveQuery& q) {
  std::vector<Tuple> answers;
  std::unordered_set<Tuple, TupleHash> seen;
  ForEachHomomorphism(q, [&](const Homomorphism& h) {
    Tuple t = h.AnswerTuple(q);
    if (seen.insert(t).second) answers.push_back(std::move(t));
    return true;
  });
  return answers;
}

bool CqEvaluator::HasAnswer(const ConjunctiveQuery& q) {
  bool found = false;
  ForEachHomomorphism(q, [&](const Homomorphism&) {
    found = true;
    return false;
  });
  return found;
}

size_t CqEvaluator::CountHomomorphisms(const ConjunctiveQuery& q,
                                       size_t limit) {
  size_t count = 0;
  ForEachHomomorphism(q, [&](const Homomorphism&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return count;
}

}  // namespace cqa
