#ifndef CQABENCH_QUERY_PARSER_H_
#define CQABENCH_QUERY_PARSER_H_

#include <string>

#include "query/cq.h"
#include "storage/schema.h"

namespace cqa {

/// Parses a conjunctive query in Datalog-style syntax:
///
///   Q(X, D) :- employee(1, X, D), employee(2, Y, D).
///
/// * Variables are identifiers starting with an uppercase letter or '_'.
/// * Constants are integers (42), doubles (3.14), single-quoted strings
///   ('HR'), or bare lowercase identifiers (treated as strings).
/// * The head lists the answer variables; `Q() :- ...` is Boolean.
/// * Relation names and arities are resolved against `schema`; integer
///   constants are widened to double where the attribute requires it.
///
/// On success stores the query in *out and returns true. On failure stores
/// a human-readable message in *error and returns false.
bool ParseCq(const Schema& schema, const std::string& text,
             ConjunctiveQuery* out, std::string* error);

/// Convenience wrapper that aborts on a parse error. For tests and
/// examples where the query text is a trusted literal.
ConjunctiveQuery MustParseCq(const Schema& schema, const std::string& text);

}  // namespace cqa

#endif  // CQABENCH_QUERY_PARSER_H_
