#ifndef CQABENCH_OBS_BENCH_JSON_H_
#define CQABENCH_OBS_BENCH_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "common/math_util.h"
#include "common/thread_annotations.h"
#include "obs/report.h"

namespace cqa::obs {

/// Version of the BENCH_*.json schema. Bump on any breaking change to
/// the emitted field set; tools/bench_compare.py refuses files whose
/// version it does not understand.
inline constexpr int kBenchJsonVersion = 1;

/// Provenance and configuration stamped into a benchmark result file so
/// two BENCH_*.json files can be compared meaningfully (or the
/// comparison rejected as apples-to-oranges).
struct BenchMetadata {
  /// Benchmark binary / scenario family ("bench_noise", "bench_micro").
  std::string name;
  uint64_t seed = 0;
  double scale_factor = 0.0;
  double timeout_seconds = 0.0;
  size_t queries_per_level = 0;
  double epsilon = 0.1;
  double delta = 0.25;
};

/// Git revision the binary was built from: the CQABENCH_GIT_SHA
/// environment variable if set (CI stamps the exact commit), else the
/// configure-time sha baked in by CMake, else "unknown".
std::string BenchGitSha();

/// Collects per-run results keyed by (scenario, x, series) and writes one
/// versioned, machine-readable JSON file — the perf history format the
/// regression gate (tools/bench_compare.py) diffs. Aggregation matches
/// the printed SeriesTable: mean ± stddev of wall seconds and samples
/// over the repeated trials of a cell, plus timeout counts and the
/// convergence summaries of the runs that recorded them. Thread-safe.
class BenchJsonWriter {
 public:
  void SetMetadata(const BenchMetadata& metadata) CQA_EXCLUDES(mu_);

  /// Adds one scheme run, as flattened into a run record (the harness
  /// builds these anyway for the JSONL report).
  void AddRun(const RunRecord& record) CQA_EXCLUDES(mu_);

  /// Low-level variant for non-scheme timings (preprocessing, exact
  /// baseline): one observation of `seconds`/`samples` for the cell
  /// (scenario, x, series).
  void AddSample(const std::string& scenario, const std::string& x_label,
                 double x, const std::string& series, double seconds,
                 double samples, bool timed_out) CQA_EXCLUDES(mu_);

  size_t num_cells() const CQA_EXCLUDES(mu_);

  /// The whole result file as one JSON object.
  std::string ToJson() const CQA_EXCLUDES(mu_);

  /// Serializes to `path`; returns false and sets *error on I/O failure.
  bool WriteFile(const std::string& path, std::string* error) const;

 private:
  struct Cell {
    std::string x_label;
    MeanVarAccumulator wall_seconds;
    MeanVarAccumulator samples;
    MeanVarAccumulator estimate;
    size_t runs = 0;
    size_t timeouts = 0;
    /// Convergence aggregation over the runs that recorded checkpoints.
    size_t convergence_runs = 0;
    size_t convergence_converged = 0;
    MeanVarAccumulator samples_to_epsilon;  // converged runs only
    MeanVarAccumulator auec;
    MeanVarAccumulator final_half_width;
  };

  using Key = std::tuple<std::string, double, std::string>;

  mutable Mutex mu_;
  BenchMetadata metadata_ CQA_GUARDED_BY(mu_);
  std::map<Key, Cell> cells_ CQA_GUARDED_BY(mu_);
};

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_BENCH_JSON_H_
