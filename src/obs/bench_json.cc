#include "obs/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace cqa::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendEscapedString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendMeanStddev(std::string* out, const MeanVarAccumulator& acc) {
  *out += "{\"mean\":";
  AppendDouble(out, acc.count() > 0 ? acc.mean() : 0.0);
  *out += ",\"stddev\":";
  AppendDouble(out, acc.count() > 1 ? acc.stddev() : 0.0);
  *out += '}';
}

}  // namespace

std::string BenchGitSha() {
  const char* env = std::getenv("CQABENCH_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef CQABENCH_GIT_SHA
  return CQABENCH_GIT_SHA;
#else
  return "unknown";
#endif
}

void BenchJsonWriter::SetMetadata(const BenchMetadata& metadata) {
  MutexLock lock(mu_);
  metadata_ = metadata;
}

void BenchJsonWriter::AddRun(const RunRecord& record) {
  MutexLock lock(mu_);
  Cell& cell = cells_[{record.scenario, record.x, record.scheme}];
  cell.x_label = record.x_label;
  cell.wall_seconds.Add(record.total_seconds);
  cell.samples.Add(static_cast<double>(record.total_samples));
  cell.estimate.Add(record.estimate);
  ++cell.runs;
  if (record.timed_out) ++cell.timeouts;
  const ConvergenceSummary& conv = record.convergence;
  if (conv.num_series > 0) {
    ++cell.convergence_runs;
    if (conv.samples_to_epsilon > 0) {
      ++cell.convergence_converged;
      cell.samples_to_epsilon.Add(
          static_cast<double>(conv.samples_to_epsilon));
    }
    cell.auec.Add(conv.auec);
    cell.final_half_width.Add(conv.final_half_width);
  }
}

void BenchJsonWriter::AddSample(const std::string& scenario,
                                const std::string& x_label, double x,
                                const std::string& series, double seconds,
                                double samples, bool timed_out) {
  MutexLock lock(mu_);
  Cell& cell = cells_[{scenario, x, series}];
  cell.x_label = x_label;
  cell.wall_seconds.Add(seconds);
  cell.samples.Add(samples);
  ++cell.runs;
  if (timed_out) ++cell.timeouts;
}

size_t BenchJsonWriter::num_cells() const {
  MutexLock lock(mu_);
  return cells_.size();
}

std::string BenchJsonWriter::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"bench_json_version\":";
  out += std::to_string(kBenchJsonVersion);
  out += ",\"name\":";
  AppendEscapedString(&out, metadata_.name);
  out += ",\"git_sha\":";
  AppendEscapedString(&out, BenchGitSha());
  out += ",\"build\":";
#ifdef CQABENCH_BUILD_TYPE
  AppendEscapedString(&out, CQABENCH_BUILD_TYPE);
#else
  AppendEscapedString(&out, "unknown");
#endif
#ifdef CQABENCH_NO_OBS
  out += ",\"no_obs\":true";
#else
  out += ",\"no_obs\":false";
#endif
  out += ",\"unix_time\":" +
         std::to_string(static_cast<long long>(std::time(nullptr)));
  out += ",\"host\":{";
#if defined(__unix__) || defined(__APPLE__)
  struct utsname uts {};
  if (uname(&uts) == 0) {
    out += "\"os\":";
    AppendEscapedString(&out, uts.sysname);
    out += ",\"machine\":";
    AppendEscapedString(&out, uts.machine);
    out += ",";
  }
#endif
  out += "\"hardware_concurrency\":" +
         std::to_string(std::thread::hardware_concurrency());
  out += "},\"config\":{\"seed\":" + std::to_string(metadata_.seed);
  out += ",\"scale_factor\":";
  AppendDouble(&out, metadata_.scale_factor);
  out += ",\"timeout_seconds\":";
  AppendDouble(&out, metadata_.timeout_seconds);
  out += ",\"queries_per_level\":" +
         std::to_string(metadata_.queries_per_level);
  out += ",\"epsilon\":";
  AppendDouble(&out, metadata_.epsilon);
  out += ",\"delta\":";
  AppendDouble(&out, metadata_.delta);
  out += "},\"results\":[";
  bool first = true;
  for (const auto& [key, cell] : cells_) {
    if (!first) out += ',';
    first = false;
    out += "{\"scenario\":";
    AppendEscapedString(&out, std::get<0>(key));
    out += ",\"x_label\":";
    AppendEscapedString(&out, cell.x_label);
    out += ",\"x\":";
    AppendDouble(&out, std::get<1>(key));
    out += ",\"series\":";
    AppendEscapedString(&out, std::get<2>(key));
    out += ",\"runs\":" + std::to_string(cell.runs);
    out += ",\"timeouts\":" + std::to_string(cell.timeouts);
    out += ",\"wall_seconds\":";
    AppendMeanStddev(&out, cell.wall_seconds);
    out += ",\"samples\":";
    AppendMeanStddev(&out, cell.samples);
    out += ",\"estimate\":";
    AppendMeanStddev(&out, cell.estimate);
    out += ",\"convergence\":{\"runs\":" +
           std::to_string(cell.convergence_runs);
    out += ",\"converged\":" + std::to_string(cell.convergence_converged);
    out += ",\"samples_to_epsilon\":";
    AppendMeanStddev(&out, cell.samples_to_epsilon);
    out += ",\"auec\":";
    AppendMeanStddev(&out, cell.auec);
    out += ",\"final_half_width\":";
    AppendMeanStddev(&out, cell.final_half_width);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool BenchJsonWriter::WriteFile(const std::string& path,
                                std::string* error) const {
  std::string json = ToJson();
  json += '\n';
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace cqa::obs
