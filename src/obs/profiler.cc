// obs/profiler implementation. Layout of the machinery:
//
//   SIGPROF handler ──writes──▶ per-thread SPSC ring (lock-free)
//        ▲ per-thread CPU timer (timer_create, SIGEV_THREAD_ID)
//   aggregator thread ──drains rings every ~50ms──▶ stack trie
//        └─ rescans /proc/self/task to discover/retire threads
//   exports (folded text, pprof proto + gzip) walk the trie.
//
// Locking (see the architecture.md lock table):
//   control_mu_  Start/Stop/CollectFor serialization — the only non-leaf
//                lock here: Stop holds it while taking the leaves below.
//   threads_mu_  thread table + states + timers (writers only; the
//                signal handler reads the table lock-free)
//   agg_mu_      trie, region interning, symbol cache, stats
//   wake_mu_     aggregator parking (CondVar timeout ticks)
// threads_mu_, agg_mu_ and wake_mu_ are never held together.
#ifndef CQABENCH_NO_OBS

#include "obs/profiler.h"

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profile_region.h"

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace cqa::obs {

namespace {

constexpr int kMaxStackDepth = 64;
constexpr int kMaxSampleRegions = ProfileRegionStack::kMaxDepth;
constexpr size_t kThreadTableSize = 1024;  // Power of two, open-addressed.
constexpr uint64_t kRegionKeyBit = 1ull << 63;  // Trie key tag: region frame.

// ---------------------------------------------------------------------------
// Per-thread sampling state. The signal handler is the only producer of
// a ring; the aggregator is the only consumer. `head`/`tail` are free-
// running counters; slot = counter % ring size.
// ---------------------------------------------------------------------------

struct SampleSlot {
  int32_t depth = 0;
  int32_t region_depth = 0;
  /// The interrupted instruction pointer from the signal ucontext —
  /// the ground truth for where handler frames end in `pcs` (libc's
  /// trampoline often has no dynamic symbol to match by name).
  void* signal_pc = nullptr;
  const char* regions[kMaxSampleRegions];
  void* pcs[kMaxStackDepth];
};

void* InterruptedPc(void* ucontext) {
  if (ucontext == nullptr) return nullptr;
  auto* uc = static_cast<ucontext_t*>(ucontext);
#if defined(__x86_64__)
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  (void)uc;
  return nullptr;
#endif
}

struct ThreadState {
  pid_t tid = 0;
  timer_t timer{};
  bool timer_armed = false;
  bool dead = false;           // Thread exited; ring fully drained.
  std::string name;            // /proc comm, captured at discovery.
  clockid_t cpu_clock = 0;
  double cpu_seconds_at_death = 0.0;
  std::vector<SampleSlot> slots;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> captured{0};
};

// Lock-free tid -> ThreadState* table the handler probes. Insert-only
// while a collection runs (writers hold threads_mu_); zeroed between
// collections when no handler can fire.
std::atomic<ThreadState*> g_thread_table[kThreadTableSize];
std::atomic<bool> g_collecting{false};
std::atomic<uint64_t> g_untracked_signals{0};

size_t TidSlot(pid_t tid) {
  return (static_cast<uint64_t>(tid) * 0x9E3779B97F4A7C15ull) >> 32 &
         (kThreadTableSize - 1);
}

ThreadState* LookupThread(pid_t tid) {
  size_t i = TidSlot(tid);
  for (size_t probes = 0; probes < kThreadTableSize; ++probes) {
    ThreadState* st = g_thread_table[i].load(std::memory_order_acquire);
    if (st == nullptr) return nullptr;
    if (st->tid == tid) return st;
    i = (i + 1) & (kThreadTableSize - 1);
  }
  return nullptr;
}

// Linux encodes a thread's CPU clock as (~tid << 3) | 6 — the same id
// pthread_getcpuclockid derives, usable from any thread given the tid.
clockid_t ThreadCpuClock(pid_t tid) {
  return static_cast<clockid_t>((~static_cast<unsigned int>(tid)) << 3) | 6;
}

// The SIGPROF handler. Async-signal-safe by construction: one syscall
// (gettid), a lock-free table probe, ::backtrace into preallocated ring
// memory (libgcc warmed up at Start), relaxed/release atomics. errno is
// preserved because backtrace and syscall may clobber it.
void SampleHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  const int saved_errno = errno;
  if (g_collecting.load(std::memory_order_relaxed)) {
    const pid_t tid = static_cast<pid_t>(::syscall(SYS_gettid));
    ThreadState* st = LookupThread(tid);
    if (st == nullptr) {
      g_untracked_signals.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint64_t head = st->head.load(std::memory_order_relaxed);
      const uint64_t tail = st->tail.load(std::memory_order_acquire);
      if (head - tail >= st->slots.size()) {
        st->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        SampleSlot& slot = st->slots[head % st->slots.size()];
        slot.depth = ::backtrace(slot.pcs, kMaxStackDepth);
        slot.signal_pc = InterruptedPc(ucontext);
        const ProfileRegionStack& regions = g_profile_region_stack;
        int depth = regions.depth.load(std::memory_order_relaxed);
        if (depth > kMaxSampleRegions) depth = kMaxSampleRegions;
        if (depth < 0) depth = 0;
        slot.region_depth = depth;
        for (int i = 0; i < depth; ++i) {
          slot.regions[i] = regions.names[i].load(std::memory_order_relaxed);
        }
        st->head.store(head + 1, std::memory_order_release);
        st->captured.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  errno = saved_errno;
}

// ---------------------------------------------------------------------------
// Symbolization (aggregator/export context only, never in a handler).
// ---------------------------------------------------------------------------

struct SymbolInfo {
  std::string name;         // Demangled, or "0x..." when unresolved.
  std::string system_name;  // Mangled, empty when unresolved.
  std::string module;       // dli_fname, empty when unresolved.
  bool signal_trampoline = false;
};

SymbolInfo Symbolize(uintptr_t pc) {
  SymbolInfo info;
  Dl_info dli;
  if (::dladdr(reinterpret_cast<void*>(pc), &dli) != 0 &&
      dli.dli_sname != nullptr) {
    info.system_name = dli.dli_sname;
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(dli.dli_sname, nullptr, nullptr, &status);
    info.name = (status == 0 && demangled != nullptr) ? demangled
                                                      : info.system_name;
    std::free(demangled);
    if (dli.dli_fname != nullptr) info.module = dli.dli_fname;
    info.signal_trampoline =
        info.system_name.find("restore_rt") != std::string::npos ||
        info.system_name.find("sigreturn") != std::string::npos;
  } else {
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, pc);
    info.name = buf;
  }
  return info;
}

// ---------------------------------------------------------------------------
// pprof profile.proto encoding: hand-rolled protobuf wire format.
// Field numbers follow github.com/google/pprof/proto/profile.proto.
// ---------------------------------------------------------------------------

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendTag(std::string* out, int field, int wire_type) {
  AppendVarint(out, static_cast<uint64_t>(field) << 3 | wire_type);
}

void AppendVarintField(std::string* out, int field, uint64_t v) {
  if (v == 0) return;  // proto3 default.
  AppendTag(out, field, 0);
  AppendVarint(out, v);
}

void AppendBytesField(std::string* out, int field, const std::string& bytes) {
  AppendTag(out, field, 2);
  AppendVarint(out, bytes.size());
  out->append(bytes);
}

void AppendPackedField(std::string* out, int field,
                       const std::vector<uint64_t>& values) {
  std::string packed;
  for (uint64_t v : values) AppendVarint(&packed, v);
  AppendBytesField(out, field, packed);
}

/// Interning string table (string_table[0] must be "").
class StringTable {
 public:
  StringTable() { Id(""); }
  uint64_t Id(const std::string& s) {
    auto [it, inserted] = ids_.try_emplace(s, strings_.size());
    if (inserted) strings_.push_back(s);
    return it->second;
  }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, uint64_t> ids_;
  std::vector<std::string> strings_;
};

// ---------------------------------------------------------------------------
// gzip container with stored (uncompressed) deflate blocks — a fully
// valid gzip stream without a zlib dependency. Readers gunzip it like
// any other; it just does not shrink (pprof payloads are small).
// ---------------------------------------------------------------------------

uint32_t Crc32(const std::string& data) {
  static uint32_t table[256];
  static bool init = false;
  if (!init) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    init = true;
  }
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendLe32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::string GzipStored(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + raw.size() / 65535 * 5 + 32);
  const char header[] = {'\x1f', '\x8b', '\x08', '\x00', '\x00',
                         '\x00', '\x00', '\x00', '\x00', '\x03'};
  out.append(header, sizeof(header));
  size_t off = 0;
  do {
    const size_t len = std::min<size_t>(raw.size() - off, 65535);
    const bool last = off + len == raw.size();
    out.push_back(last ? '\x01' : '\x00');  // BFINAL | BTYPE=00 (stored).
    out.push_back(static_cast<char>(len & 0xFF));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(~len & 0xFF));
    out.push_back(static_cast<char>((~len >> 8) & 0xFF));
    out.append(raw, off, len);
    off += len;
  } while (off < raw.size());
  AppendLe32(&out, Crc32(raw));
  AppendLe32(&out, static_cast<uint32_t>(raw.size()));
  return out;
}

// ---------------------------------------------------------------------------
// The stack trie and the rest of the profiler state.
// ---------------------------------------------------------------------------

struct TrieNode {
  uint64_t key = 0;     // pc, or kRegionKeyBit | region index.
  int32_t parent = -1;  // -1 = root.
  uint64_t count = 0;   // Samples whose innermost frame is this node.
};

struct EdgeKey {
  int32_t parent;
  uint64_t key;
  bool operator==(const EdgeKey& o) const {
    return parent == o.parent && key == o.key;
  }
};

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& e) const {
    uint64_t h = static_cast<uint64_t>(e.parent) * 0x9E3779B97F4A7C15ull;
    h ^= e.key + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct MainMapping {
  uint64_t start = 0;
  uint64_t limit = 0;
  uint64_t file_offset = 0;
  std::string filename;
};

class ProfilerImpl {
 public:
  static ProfilerImpl& Get() {
    static ProfilerImpl* impl = new ProfilerImpl;  // Leaked: threads may
    return *impl;  // outlive static destruction; Stop() joins ours.
  }

  bool Start(const ProfilerOptions& options, std::string* error)
      CQA_EXCLUDES(control_mu_);
  void Stop() CQA_EXCLUDES(control_mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }
  Profiler::CollectResult CollectFor(double seconds,
                                     const ProfilerOptions& options,
                                     const std::function<bool()>& keep_going,
                                     std::string* error);

  std::string FoldedText() const CQA_EXCLUDES(agg_mu_);
  std::string PprofProfile() const CQA_EXCLUDES(agg_mu_);
  std::string PprofGzipped() const { return GzipStored(PprofProfile()); }
  std::string ThreadsText() const CQA_EXCLUDES(threads_mu_, agg_mu_);
  ProfilerStats stats() const CQA_EXCLUDES(threads_mu_, agg_mu_);

 private:
  ProfilerImpl() = default;

  void AggregatorLoop();
  void ScanTasks() CQA_EXCLUDES(threads_mu_);
  void TrackThread(pid_t tid) CQA_REQUIRES(threads_mu_);
  void RetireDeadThreads() CQA_EXCLUDES(threads_mu_);
  void DrainRings() CQA_EXCLUDES(threads_mu_, agg_mu_);
  void FoldSample(const SampleSlot& slot) CQA_REQUIRES(agg_mu_);
  int32_t Child(int32_t parent, uint64_t key) CQA_REQUIRES(agg_mu_);
  uint32_t InternRegion(const char* name) CQA_REQUIRES(agg_mu_);
  const SymbolInfo& SymbolFor(uint64_t key) const CQA_REQUIRES(agg_mu_);
  std::string KeyName(uint64_t key) const CQA_REQUIRES(agg_mu_);
  // Leading handler/trampoline frames to drop from a captured stack.
  int TrimDepth(const SampleSlot& slot) CQA_REQUIRES(agg_mu_);

  // --- Control (Start/Stop serialization, one collection at a time).
  mutable Mutex control_mu_;
  bool session_open_ CQA_GUARDED_BY(control_mu_) = false;
  std::atomic<bool> running_{false};

  // --- Thread table (writers); the signal handler reads lock-free.
  mutable Mutex threads_mu_;
  std::vector<std::unique_ptr<ThreadState>> states_
      CQA_GUARDED_BY(threads_mu_);
  size_t table_used_ CQA_GUARDED_BY(threads_mu_) = 0;
  int hz_ CQA_GUARDED_BY(threads_mu_) = 99;
  size_t ring_slots_ CQA_GUARDED_BY(threads_mu_) = 1024;

  // --- Aggregation output.
  mutable Mutex agg_mu_;
  std::vector<TrieNode> nodes_ CQA_GUARDED_BY(agg_mu_);
  std::unordered_map<EdgeKey, int32_t, EdgeKeyHash> edges_
      CQA_GUARDED_BY(agg_mu_);
  std::vector<std::string> region_names_ CQA_GUARDED_BY(agg_mu_);
  std::unordered_map<const char*, uint32_t> region_ids_
      CQA_GUARDED_BY(agg_mu_);
  mutable std::unordered_map<uint64_t, SymbolInfo> symbols_
      CQA_GUARDED_BY(agg_mu_);
  uint64_t total_samples_ CQA_GUARDED_BY(agg_mu_) = 0;
  uint64_t period_nanos_ CQA_GUARDED_BY(agg_mu_) = 0;
  int64_t start_time_nanos_ CQA_GUARDED_BY(agg_mu_) = 0;
  int64_t duration_nanos_ CQA_GUARDED_BY(agg_mu_) = 0;
  int64_t start_monotonic_nanos_ CQA_GUARDED_BY(agg_mu_) = 0;
  MainMapping mapping_ CQA_GUARDED_BY(agg_mu_);

  // --- Aggregator thread parking.
  mutable Mutex wake_mu_;
  CondVar wake_cv_;
  bool stop_aggregator_ CQA_GUARDED_BY(wake_mu_) = false;
  std::thread aggregator_;

  struct sigaction old_sigaction_ {};
};

int64_t NowNanos(clockid_t clock) {
  struct timespec ts;
  ::clock_gettime(clock, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void ReadMainMapping(MainMapping* out) {
  char exe[4096];
  const ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (exe_len <= 0) return;
  exe[exe_len] = '\0';
  std::FILE* maps = std::fopen("/proc/self/maps", "r");
  if (maps == nullptr) return;
  char line[4608];
  while (std::fgets(line, sizeof(line), maps) != nullptr) {
    uint64_t start = 0;
    uint64_t limit = 0;
    uint64_t offset = 0;
    char perms[8] = {};
    char path[4096] = {};
    const int n = std::sscanf(line, "%" SCNx64 "-%" SCNx64 " %7s %" SCNx64
                              " %*s %*s %4095s",
                              &start, &limit, perms, &offset, path);
    if (n == 5 && std::strcmp(perms, "r-xp") == 0 &&
        std::strcmp(path, exe) == 0) {
      out->start = start;
      out->limit = limit;
      out->file_offset = offset;
      out->filename = path;
      break;
    }
  }
  std::fclose(maps);
}

std::string ReadComm(pid_t tid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/self/task/%d/comm",
                static_cast<int>(tid));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return "?";
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string comm(buf, n);
  while (!comm.empty() && (comm.back() == '\n' || comm.back() == '\0')) {
    comm.pop_back();
  }
  return comm.empty() ? "?" : comm;
}

bool ProfilerImpl::Start(const ProfilerOptions& options, std::string* error) {
  if (!Profiler::kAvailable) {
    *error =
        "sampling profiler unavailable: sanitizer builds intercept "
        "signals and make in-handler unwinding unsafe";
    return false;
  }
  if (options.hz <= 0 || options.hz > 1000) {
    *error = "profiler hz must be in (0, 1000]";
    return false;
  }
  MutexLock control(control_mu_);
  if (running_.load(std::memory_order_acquire)) {
    *error = "profiler already running";
    return false;
  }

  // Reset all collection state. No timers are armed and g_collecting is
  // false, so no handler can be touching the table.
  {
    MutexLock lock(threads_mu_);
    for (auto& entry : g_thread_table) {
      entry.store(nullptr, std::memory_order_relaxed);
    }
    states_.clear();
    table_used_ = 0;
    hz_ = options.hz;
    ring_slots_ = options.ring_slots < 64 ? 64 : options.ring_slots;
  }
  {
    MutexLock lock(agg_mu_);
    nodes_.clear();
    edges_.clear();
    region_names_.clear();
    region_ids_.clear();
    symbols_.clear();
    total_samples_ = 0;
    period_nanos_ = 1000000000ull / static_cast<uint64_t>(options.hz);
    start_time_nanos_ = NowNanos(CLOCK_REALTIME);
    start_monotonic_nanos_ = NowNanos(CLOCK_MONOTONIC);
    duration_nanos_ = 0;
    ReadMainMapping(&mapping_);
  }
  g_untracked_signals.store(0, std::memory_order_relaxed);

  // Warm up the unwinder: glibc's backtrace lazily loads libgcc (with
  // malloc) on first call — do that here, never in a handler.
  void* warmup[4];
  ::backtrace(warmup, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SampleHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  ::sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, &old_sigaction_) != 0) {
    *error = std::string("sigaction(SIGPROF): ") + std::strerror(errno);
    return false;
  }

  g_collecting.store(true, std::memory_order_release);
  ScanTasks();  // Arms a timer per live thread.
  {
    MutexLock lock(wake_mu_);
    stop_aggregator_ = false;
  }
  aggregator_ = std::thread([this] { AggregatorLoop(); });
  running_.store(true, std::memory_order_release);
  CQA_OBS_COUNT("obs.profile_collections");
  Registry::Instance().GetGauge("obs.profile_running")->Set(1);
  return true;
}

void ProfilerImpl::Stop() {
  MutexLock control(control_mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  // Stop producing: gate the handler first, then disarm every timer (a
  // queued signal may still deliver afterwards; the gate makes it a
  // no-op). Then stop the aggregator and run one final drain.
  g_collecting.store(false, std::memory_order_release);
  {
    MutexLock lock(threads_mu_);
    for (auto& state : states_) {
      if (state->timer_armed) {
        ::timer_delete(state->timer);
        state->timer_armed = false;
      }
    }
  }
  {
    MutexLock lock(wake_mu_);
    stop_aggregator_ = true;
  }
  wake_cv_.NotifyAll();
  if (aggregator_.joinable()) aggregator_.join();
  DrainRings();
  ::sigaction(SIGPROF, &old_sigaction_, nullptr);
  {
    MutexLock lock(agg_mu_);
    duration_nanos_ = NowNanos(CLOCK_MONOTONIC) - start_monotonic_nanos_;
  }
  uint64_t dropped = g_untracked_signals.load(std::memory_order_relaxed);
  {
    // Free the ring memory now; the states stay for ThreadsText.
    MutexLock lock(threads_mu_);
    for (auto& state : states_) {
      if (!state->dead) {
        state->cpu_seconds_at_death =
            static_cast<double>(NowNanos(state->cpu_clock)) / 1e9;
      }
      dropped += state->dropped.load(std::memory_order_relaxed);
      state->slots.clear();
      state->slots.shrink_to_fit();
    }
  }
  if (dropped > 0) {
    CQA_OBS_COUNT_N("obs.profile_dropped", dropped);
  }
  Registry::Instance().GetGauge("obs.profile_running")->Set(0);
  running_.store(false, std::memory_order_release);
}

Profiler::CollectResult ProfilerImpl::CollectFor(
    double seconds, const ProfilerOptions& options,
    const std::function<bool()>& keep_going, std::string* error) {
  {
    MutexLock control(control_mu_);
    if (session_open_) {
      *error = "profile collection already in progress";
      return Profiler::CollectResult::kBusy;
    }
    session_open_ = true;
  }
  Profiler::CollectResult result = Profiler::CollectResult::kOk;
  if (!Start(options, error)) {
    result = Profiler::CollectResult::kError;
  } else {
    const int64_t deadline =
        NowNanos(CLOCK_MONOTONIC) +
        static_cast<int64_t>(seconds * 1e9);
    while (NowNanos(CLOCK_MONOTONIC) < deadline) {
      if (keep_going && !keep_going()) break;  // Drain/stop: cut short.
      struct timespec ts = {0, 100 * 1000 * 1000};  // 100ms tick.
      ::nanosleep(&ts, nullptr);
    }
    Stop();
  }
  MutexLock control(control_mu_);
  session_open_ = false;
  return result;
}

void ProfilerImpl::AggregatorLoop() {
  int tick = 0;
  for (;;) {
    {
      MutexLock lock(wake_mu_);
      if (!stop_aggregator_) wake_cv_.WaitForSeconds(wake_mu_, 0.05);
      if (stop_aggregator_) return;  // Final drain happens in Stop().
    }
    DrainRings();
    if (++tick % 4 == 0) {  // ~200ms: discover new / retire dead threads.
      ScanTasks();
      RetireDeadThreads();
    }
  }
}

void ProfilerImpl::ScanTasks() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return;
  MutexLock lock(threads_mu_);
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const pid_t tid = static_cast<pid_t>(std::atoi(entry->d_name));
    if (tid <= 0) continue;
    if (LookupThread(tid) != nullptr) continue;
    TrackThread(tid);
  }
  ::closedir(dir);
  Registry::Instance()
      .GetGauge("obs.profile_threads")
      ->Set(static_cast<int64_t>(states_.size()));
}

void ProfilerImpl::TrackThread(pid_t tid) {
  if (table_used_ >= kThreadTableSize / 2) return;  // Keep probes short.
  auto state = std::make_unique<ThreadState>();
  state->tid = tid;
  state->name = ReadComm(tid);
  state->cpu_clock = ThreadCpuClock(tid);
  state->slots.resize(ring_slots_);

  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tid;
  if (::timer_create(state->cpu_clock, &sev, &state->timer) != 0) {
    return;  // Thread raced to exit between readdir and here.
  }
  const int64_t interval_ns =
      1000000000 / static_cast<int64_t>(hz_ > 0 ? hz_ : 99);
  struct itimerspec its;
  its.it_interval.tv_sec = interval_ns / 1000000000;
  its.it_interval.tv_nsec = interval_ns % 1000000000;
  its.it_value = its.it_interval;
  if (::timer_settime(state->timer, 0, &its, nullptr) != 0) {
    ::timer_delete(state->timer);
    return;
  }
  state->timer_armed = true;

  // Publish to the handler-visible table: fields first, pointer last.
  ThreadState* raw = state.get();
  size_t i = TidSlot(tid);
  while (g_thread_table[i].load(std::memory_order_relaxed) != nullptr) {
    i = (i + 1) & (kThreadTableSize - 1);
  }
  states_.push_back(std::move(state));
  ++table_used_;
  g_thread_table[i].store(raw, std::memory_order_release);
}

void ProfilerImpl::RetireDeadThreads() {
  MutexLock lock(threads_mu_);
  for (auto& state : states_) {
    if (state->dead || !state->timer_armed) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/self/task/%d",
                  static_cast<int>(state->tid));
    struct stat st;
    if (::stat(path, &st) == 0) continue;  // Still alive.
    // The thread is gone: no more signals can touch its ring, so the
    // next DrainRings pass empties it; just disarm and mark.
    ::timer_delete(state->timer);
    state->timer_armed = false;
    state->dead = true;
  }
}

void ProfilerImpl::DrainRings() {
  // Snapshot the state pointers under threads_mu_, then fold under
  // agg_mu_ with threads_mu_ released — the two locks never nest.
  std::vector<ThreadState*> snapshot;
  {
    MutexLock lock(threads_mu_);
    snapshot.reserve(states_.size());
    for (auto& state : states_) snapshot.push_back(state.get());
  }
  uint64_t folded = 0;
  {
    MutexLock lock(agg_mu_);
    for (ThreadState* state : snapshot) {
      const uint64_t head = state->head.load(std::memory_order_acquire);
      uint64_t tail = state->tail.load(std::memory_order_relaxed);
      while (tail < head) {
        FoldSample(state->slots[tail % state->slots.size()]);
        ++tail;
        ++folded;
      }
      state->tail.store(tail, std::memory_order_release);
    }
    total_samples_ += folded;
  }
  if (folded > 0) {
    CQA_OBS_COUNT_N("obs.profile_samples", folded);
  }
}

int32_t ProfilerImpl::Child(int32_t parent, uint64_t key) {
  const EdgeKey edge{parent, key};
  auto [it, inserted] =
      edges_.try_emplace(edge, static_cast<int32_t>(nodes_.size()));
  if (inserted) {
    TrieNode node;
    node.key = key;
    node.parent = parent;
    nodes_.push_back(node);
  }
  return it->second;
}

uint32_t ProfilerImpl::InternRegion(const char* name) {
  auto [it, inserted] =
      region_ids_.try_emplace(name, static_cast<uint32_t>(0));
  if (inserted) {
    // Distinct literal pointers may share content; dedupe by value.
    const std::string value(name);
    for (uint32_t i = 0; i < region_names_.size(); ++i) {
      if (region_names_[i] == value) {
        it->second = i;
        return i;
      }
    }
    it->second = static_cast<uint32_t>(region_names_.size());
    region_names_.push_back(value);
  }
  return it->second;
}

const SymbolInfo& ProfilerImpl::SymbolFor(uint64_t key) const {
  auto [it, inserted] = symbols_.try_emplace(key);
  if (inserted) it->second = Symbolize(static_cast<uintptr_t>(key));
  return it->second;
}

int ProfilerImpl::TrimDepth(const SampleSlot& slot) {
  // backtrace() from inside the handler sees [handler, trampoline,
  // interrupted frame, ...]. The ucontext's instruction pointer is the
  // exact pc of the interrupted frame, so matching it in the first few
  // frames locates the cut precisely even when the trampoline has no
  // dynamic symbol (stripped libc).
  const int limit = slot.depth < 6 ? slot.depth : 6;
  if (slot.signal_pc != nullptr) {
    for (int i = 1; i < limit; ++i) {
      if (slot.pcs[i] == slot.signal_pc) return i;
    }
  }
  // Fallbacks: cut through a symbolized trampoline, else drop just the
  // handler frame.
  for (int i = 0; i < limit; ++i) {
    if (SymbolFor(reinterpret_cast<uint64_t>(slot.pcs[i])).signal_trampoline) {
      return i + 1;
    }
  }
  return slot.depth > 1 ? 1 : 0;
}

void ProfilerImpl::FoldSample(const SampleSlot& slot) {
  int32_t node = -1;
  for (int i = 0; i < slot.region_depth; ++i) {  // Outermost region first.
    if (slot.regions[i] == nullptr) continue;
    node = Child(node, kRegionKeyBit | InternRegion(slot.regions[i]));
  }
  const int start = TrimDepth(slot);
  for (int i = slot.depth - 1; i >= start; --i) {  // Root frame first.
    uint64_t pc = reinterpret_cast<uint64_t>(slot.pcs[i]);
    // Non-leaf frames hold return addresses, one past the call; step
    // back one byte so symbolization lands in the calling function.
    if (i != start && pc != 0) pc -= 1;
    node = Child(node, pc);
  }
  if (node >= 0) nodes_[node].count += 1;
}

std::string ProfilerImpl::KeyName(uint64_t key) const {
  if (key & kRegionKeyBit) {
    const uint64_t idx = key & ~kRegionKeyBit;
    if (idx < region_names_.size()) return "[" + region_names_[idx] + "]";
    return "[region?]";
  }
  return SymbolFor(key).name;
}

std::string ProfilerImpl::FoldedText() const {
  MutexLock lock(agg_mu_);
  std::string out;
  std::vector<std::string> chain;
  for (const TrieNode& leaf : nodes_) {
    if (leaf.count == 0) continue;
    chain.clear();
    for (int32_t n = static_cast<int32_t>(&leaf - nodes_.data()); n >= 0;
         n = nodes_[n].parent) {
      chain.push_back(KeyName(nodes_[n].key));
    }
    for (size_t i = chain.size(); i-- > 0;) {
      out += chain[i];
      out += i == 0 ? ' ' : ';';
    }
    char count[32];
    std::snprintf(count, sizeof(count), "%llu\n",
                  static_cast<unsigned long long>(leaf.count));
    out += count;
  }
  return out;
}

std::string ProfilerImpl::PprofProfile() const {
  MutexLock lock(agg_mu_);
  StringTable strings;
  std::string out;

  // sample_type: [samples/count, cpu/nanoseconds]; period_type matches.
  {
    std::string vt;
    AppendVarintField(&vt, 1, strings.Id("samples"));
    AppendVarintField(&vt, 2, strings.Id("count"));
    AppendBytesField(&out, 1, vt);
    vt.clear();
    AppendVarintField(&vt, 1, strings.Id("cpu"));
    AppendVarintField(&vt, 2, strings.Id("nanoseconds"));
    AppendBytesField(&out, 1, vt);
  }

  // Locations and functions, one per distinct trie key. Function ids are
  // keyed by symbol name (many pcs share one function).
  std::unordered_map<uint64_t, uint64_t> location_ids;
  std::unordered_map<std::string, uint64_t> function_ids;
  std::string functions_out;
  std::string locations_out;
  auto location_id = [&](uint64_t key) -> uint64_t {
    auto it = location_ids.find(key);
    if (it != location_ids.end()) return it->second;
    const uint64_t loc_id = location_ids.size() + 1;
    location_ids.emplace(key, loc_id);

    std::string name;
    std::string system_name;
    std::string filename;
    uint64_t address = 0;
    if (key & kRegionKeyBit) {
      const uint64_t idx = key & ~kRegionKeyBit;
      name = idx < region_names_.size() ? "[" + region_names_[idx] + "]"
                                        : "[region?]";
    } else {
      const SymbolInfo& sym = SymbolFor(key);
      name = sym.name;
      system_name = sym.system_name;
      filename = sym.module;
      address = key;
    }
    auto fit = function_ids.find(name);
    uint64_t fn_id;
    if (fit == function_ids.end()) {
      fn_id = function_ids.size() + 1;
      function_ids.emplace(name, fn_id);
      std::string fn;
      AppendVarintField(&fn, 1, fn_id);
      AppendVarintField(&fn, 2, strings.Id(name));
      AppendVarintField(&fn, 3,
                        strings.Id(system_name.empty() ? name : system_name));
      AppendVarintField(&fn, 4, strings.Id(filename));
      AppendBytesField(&functions_out, 5, fn);
    } else {
      fn_id = fit->second;
    }
    std::string line;
    AppendVarintField(&line, 1, fn_id);
    std::string loc;
    AppendVarintField(&loc, 1, loc_id);
    if (address != 0 && mapping_.start != 0 && address >= mapping_.start &&
        address < mapping_.limit) {
      AppendVarintField(&loc, 2, 1);  // mapping_id.
    }
    AppendVarintField(&loc, 3, address);
    AppendBytesField(&loc, 4, line);
    AppendBytesField(&locations_out, 4, loc);
    return loc_id;
  };

  // Samples: one per counted trie node, locations leaf-first. The
  // innermost region tag also rides along as a "region" label.
  std::string samples_out;
  std::vector<uint64_t> chain_keys;
  for (const TrieNode& leaf : nodes_) {
    if (leaf.count == 0) continue;
    chain_keys.clear();
    for (int32_t n = static_cast<int32_t>(&leaf - nodes_.data()); n >= 0;
         n = nodes_[n].parent) {
      chain_keys.push_back(nodes_[n].key);  // Leaf first.
    }
    std::vector<uint64_t> loc_ids;
    loc_ids.reserve(chain_keys.size());
    const char* region = nullptr;
    for (uint64_t key : chain_keys) {
      if (key & kRegionKeyBit) {
        const uint64_t idx = key & ~kRegionKeyBit;
        if (region == nullptr && idx < region_names_.size()) {
          region = region_names_[idx].c_str();  // Innermost wins.
        }
      }
      loc_ids.push_back(location_id(key));
    }
    std::string sample;
    AppendPackedField(&sample, 1, loc_ids);
    AppendPackedField(
        &sample, 2,
        {leaf.count, leaf.count * period_nanos_});
    if (region != nullptr) {
      std::string label;
      AppendVarintField(&label, 1, strings.Id("region"));
      AppendVarintField(&label, 2, strings.Id(region));
      AppendBytesField(&sample, 3, label);
    }
    AppendBytesField(&samples_out, 2, sample);
  }
  out += samples_out;

  if (mapping_.start != 0) {
    std::string mapping;
    AppendVarintField(&mapping, 1, 1);  // id.
    AppendVarintField(&mapping, 2, mapping_.start);
    AppendVarintField(&mapping, 3, mapping_.limit);
    AppendVarintField(&mapping, 4, mapping_.file_offset);
    AppendVarintField(&mapping, 5, strings.Id(mapping_.filename));
    AppendVarintField(&mapping, 7, 1);  // has_functions.
    AppendBytesField(&out, 3, mapping);
  }
  out += locations_out;
  out += functions_out;

  AppendVarintField(&out, 9, static_cast<uint64_t>(start_time_nanos_));
  AppendVarintField(&out, 10, static_cast<uint64_t>(duration_nanos_));
  {
    std::string vt;
    AppendVarintField(&vt, 1, strings.Id("cpu"));
    AppendVarintField(&vt, 2, strings.Id("nanoseconds"));
    AppendBytesField(&out, 11, vt);
  }
  AppendVarintField(&out, 12, period_nanos_);

  // string_table last: every Id() call above must already have run. An
  // empty first entry is mandatory, so emit even index 0 explicitly.
  std::string table_out;
  for (const std::string& s : strings.strings()) {
    AppendBytesField(&table_out, 6, s);
  }
  return table_out + out;
}

std::string ProfilerImpl::ThreadsText() const {
  std::string out = "tid        cpu_s      samples    dropped    name\n";
  MutexLock lock(threads_mu_);
  for (const auto& state : states_) {
    double cpu_s = state->cpu_seconds_at_death;
    if (!state->dead && running()) {
      cpu_s = static_cast<double>(NowNanos(state->cpu_clock)) / 1e9;
    }
    char line[256];
    std::snprintf(line, sizeof(line), "%-10d %-10.3f %-10llu %-10llu %s%s\n",
                  static_cast<int>(state->tid), cpu_s,
                  static_cast<unsigned long long>(
                      state->captured.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(
                      state->dropped.load(std::memory_order_relaxed)),
                  state->name.c_str(), state->dead ? " (exited)" : "");
    out += line;
  }
  return out;
}

ProfilerStats ProfilerImpl::stats() const {
  ProfilerStats s;
  {
    MutexLock lock(threads_mu_);
    for (const auto& state : states_) {
      s.dropped_ring += state->dropped.load(std::memory_order_relaxed);
      // states_ is cleared on Start, so every entry belongs to the
      // current (or just-finished) collection — count them all, or a
      // finished collection would report zero threads.
      ++s.threads;
    }
  }
  {
    MutexLock lock(agg_mu_);
    s.samples = total_samples_;
    for (const TrieNode& node : nodes_) {
      if (node.count > 0) ++s.distinct_stacks;
    }
  }
  s.dropped_untracked = g_untracked_signals.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public facade.
// ---------------------------------------------------------------------------

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler;  // Leaked like the impl.
  return *instance;
}

bool Profiler::Start(const ProfilerOptions& options, std::string* error) {
  return ProfilerImpl::Get().Start(options, error);
}

void Profiler::Stop() { ProfilerImpl::Get().Stop(); }

bool Profiler::running() const { return ProfilerImpl::Get().running(); }

Profiler::CollectResult Profiler::CollectFor(
    double seconds, const ProfilerOptions& options,
    const std::function<bool()>& keep_going, std::string* error) {
  return ProfilerImpl::Get().CollectFor(seconds, options, keep_going, error);
}

std::string Profiler::FoldedText() const {
  return ProfilerImpl::Get().FoldedText();
}

std::string Profiler::PprofProfile() const {
  return ProfilerImpl::Get().PprofProfile();
}

std::string Profiler::PprofGzipped() const {
  return ProfilerImpl::Get().PprofGzipped();
}

std::string Profiler::ThreadsText() const {
  return ProfilerImpl::Get().ThreadsText();
}

ProfilerStats Profiler::stats() const { return ProfilerImpl::Get().stats(); }

}  // namespace cqa::obs

#endif  // CQABENCH_NO_OBS
