#include "obs/report.h"

namespace cqa::obs {

namespace {

void AppendEscapedString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

std::string RunRecordToJson(const RunRecord& r) {
  std::string out = "{\"scenario\":";
  AppendEscapedString(&out, r.scenario);
  out += ",\"x_label\":";
  AppendEscapedString(&out, r.x_label);
  out += ",\"x\":";
  AppendDouble(&out, r.x);
  out += ",\"scheme\":";
  AppendEscapedString(&out, r.scheme);
  out += ",\"estimate\":";
  AppendDouble(&out, r.estimate);
  out += ",\"num_answers\":" + std::to_string(r.num_answers);
  out += ",\"estimator_samples\":" + std::to_string(r.estimator_samples);
  out += ",\"main_samples\":" + std::to_string(r.main_samples);
  out += ",\"total_samples\":" + std::to_string(r.total_samples);
  out += ",\"estimator_seconds\":";
  AppendDouble(&out, r.estimator_seconds);
  out += ",\"main_seconds\":";
  AppendDouble(&out, r.main_seconds);
  out += ",\"total_seconds\":";
  AppendDouble(&out, r.total_seconds);
  out += ",\"preprocess_seconds\":";
  AppendDouble(&out, r.preprocess_seconds);
  out += ",\"timed_out\":";
  out += r.timed_out ? "true" : "false";
  out += ",\"per_thread_samples\":[";
  for (size_t i = 0; i < r.per_thread_samples.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(r.per_thread_samples[i]);
  }
  out += "]";
  // Convergence summary: flat fields so the record stays one level deep
  // (consumers parse scalars + flat arrays). All zeros when recording
  // was off.
  out += ",\"convergence_series\":" + std::to_string(r.convergence.num_series);
  out += ",\"convergence_checkpoints\":" +
         std::to_string(r.convergence.num_checkpoints);
  out += ",\"samples_to_epsilon\":" +
         std::to_string(r.convergence.samples_to_epsilon);
  out += ",\"auec\":";
  AppendDouble(&out, r.convergence.auec);
  out += ",\"final_half_width\":";
  AppendDouble(&out, r.convergence.final_half_width);
  out += '}';
  return out;
}

RunReporter::~RunReporter() { Close(); }

bool RunReporter::Open(const std::string& path, std::string* error) {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "w");
  num_records_ = 0;
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return true;
}

size_t RunReporter::num_records() const {
  MutexLock lock(mu_);
  return num_records_;
}

void RunReporter::Add(const RunRecord& record) {
  std::string line = RunRecordToJson(record);
  line += '\n';
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++num_records_;
}

void RunReporter::Close() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace cqa::obs
