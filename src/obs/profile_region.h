// obs/profile_region — the thread-local region stack that joins CPU
// profiles to the span taxonomy. ScopedProfileRegion pushes a string
// literal ("serve.sample") for its scope; the sampling profiler's signal
// handler copies the stack into each sample, so folded stacks and pprof
// profiles carry "[serve.sample]"-style synthetic frames that line up
// with the serve.phase_* metrics and trace spans. TraceSpan pushes its
// own name automatically, so every instrumented phase is a region for
// free.
//
// Header-only on purpose: src/common (the thread pool) tags worker tasks
// with the submitting caller's region without linking cqa_obs. All state
// is one thread_local of lock-free atomics — async-signal-safe to read
// from this thread's SIGPROF handler, two relaxed stores to update, and
// the whole thing compiles out under CQABENCH_NO_OBS.
#ifndef CQABENCH_OBS_PROFILE_REGION_H_
#define CQABENCH_OBS_PROFILE_REGION_H_

#ifndef CQABENCH_NO_OBS
#include <atomic>
#endif

namespace cqa::obs {

#ifdef CQABENCH_NO_OBS

/// Compiled-out stub: construction and destruction are empty inline
/// functions the optimizer erases entirely.
class ScopedProfileRegion {
 public:
  explicit ScopedProfileRegion(const char* /*name*/) {}
  ScopedProfileRegion(const ScopedProfileRegion&) = delete;
  ScopedProfileRegion& operator=(const ScopedProfileRegion&) = delete;
};

inline const char* CurrentProfileRegion() { return nullptr; }

#else  // !CQABENCH_NO_OBS

/// Per-thread stack of active region names. `names[i]` must be string
/// literals (never freed), so the signal handler may copy the pointers
/// and the aggregator may read them later without lifetime concerns.
///
/// Signal-safety contract: the owning thread pushes by storing the name
/// *before* incrementing depth and pops by decrementing depth only, so a
/// SIGPROF handler interrupting at any point sees a consistent prefix.
/// Slots are lock-free atomics (guaranteed tear-free in a handler);
/// pushes beyond kMaxDepth keep counting depth but drop the name, and
/// the matching pops just decrement, so over-deep nesting degrades to a
/// truncated tag instead of corruption.
struct ProfileRegionStack {
  static constexpr int kMaxDepth = 8;
  std::atomic<const char*> names[kMaxDepth] = {};
  std::atomic<int> depth{0};
};

inline thread_local ProfileRegionStack g_profile_region_stack;

/// RAII region tag: CPU samples taken on this thread while the object is
/// in scope carry `name` (a string literal). Nest freely; the innermost
/// region is the sample's primary attribution.
class ScopedProfileRegion {
 public:
  explicit ScopedProfileRegion(const char* name) {
    ProfileRegionStack& s = g_profile_region_stack;
    const int d = s.depth.load(std::memory_order_relaxed);
    if (d < ProfileRegionStack::kMaxDepth) {
      s.names[d].store(name, std::memory_order_relaxed);
    }
    s.depth.store(d + 1, std::memory_order_release);
  }
  ~ScopedProfileRegion() {
    ProfileRegionStack& s = g_profile_region_stack;
    s.depth.store(s.depth.load(std::memory_order_relaxed) - 1,
                  std::memory_order_release);
  }
  ScopedProfileRegion(const ScopedProfileRegion&) = delete;
  ScopedProfileRegion& operator=(const ScopedProfileRegion&) = delete;
};

/// The innermost active region on this thread (nullptr when none) — what
/// the thread pool captures at Run() to tag tasks it hands to workers.
inline const char* CurrentProfileRegion() {
  ProfileRegionStack& s = g_profile_region_stack;
  int d = s.depth.load(std::memory_order_relaxed);
  if (d <= 0) return nullptr;
  if (d > ProfileRegionStack::kMaxDepth) d = ProfileRegionStack::kMaxDepth;
  return s.names[d - 1].load(std::memory_order_relaxed);
}

#endif  // CQABENCH_NO_OBS

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_PROFILE_REGION_H_
