#ifndef CQABENCH_OBS_METRICS_H_
#define CQABENCH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace cqa::obs {

/// A named monotonic counter. Increments are lock-free relaxed atomics —
/// safe and cheap from sampler draw sites on any thread. Registration
/// (GetCounter) takes a mutex but happens once per call site.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A fixed-bucket power-of-two histogram for sizes and latencies:
/// bucket b counts observations v with 2^(b-1) <= v < 2^b (bucket 0
/// counts v == 0), the last bucket absorbing the overflow. All updates
/// are relaxed atomics; totals are monotonic so a concurrent Snapshot is
/// approximate but never torn per-field.
struct HistogramSnapshot;

class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  void Observe(uint64_t value);

  /// Point-in-time copy of the totals and buckets (name left empty);
  /// the value-typed form Quantile() needs.
  HistogramSnapshot snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A named instantaneous value (queue depths, open connections). Unlike
/// Counter it moves both ways: Set overwrites, Add applies a signed
/// delta. Updates are relaxed atomics, cheap enough for per-request
/// state transitions; unlike the CQA_OBS_* counter sites, gauge call
/// sites update via cached pointers *unconditionally* (no NO_OBS
/// compile-out) because serving state must stay accurate for the
/// `stats` op in every build mode.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // kNumBuckets entries.

  /// Approximate q-quantile (q in [0, 1]) of the observed values,
  /// interpolating log-linearly inside the power-of-two bucket the rank
  /// falls into and clamping to the exact observed max. 0 when empty.
  double Quantile(double q) const;
};

/// Process-wide registry of named counters and histograms. Metric objects
/// are never destroyed or moved once registered, so call sites may cache
/// the returned pointers (the CQA_OBS_* macros do exactly that).
///
/// `enabled` gates the hot-path increments at runtime; compiling with
/// CQABENCH_NO_OBS removes them entirely.
class Registry {
 public:
  static Registry& Instance();

  /// Returns the counter/gauge/histogram with this name, creating it on
  /// first use. The pointer is stable for the process lifetime.
  Counter* GetCounter(const std::string& name) CQA_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) CQA_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) CQA_EXCLUDES(mu_);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Current value of a counter; 0 when it was never registered.
  uint64_t CounterValue(const std::string& name) const CQA_EXCLUDES(mu_);

  /// Current value of a gauge; 0 when it was never registered.
  int64_t GaugeValue(const std::string& name) const CQA_EXCLUDES(mu_);

  std::vector<CounterSnapshot> Counters() const CQA_EXCLUDES(mu_);
  std::vector<GaugeSnapshot> Gauges() const CQA_EXCLUDES(mu_);
  std::vector<HistogramSnapshot> Histograms() const CQA_EXCLUDES(mu_);

  /// Zeroes every registered metric in place (pointers stay valid).
  void Reset() CQA_EXCLUDES(mu_);

  /// One JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} — the profile dump of the CLI, the harness
  /// binaries, and the cqad `stats` op.
  std::string ToJson() const;

 private:
  Registry() = default;

  std::atomic<bool> enabled_{true};
  // mu_ guards the maps (registration and iteration); the metric objects
  // themselves are lock-free atomics updated through stable pointers.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CQA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CQA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CQA_GUARDED_BY(mu_);
};

}  // namespace cqa::obs

// Hot-path instrumentation macros. Each call site resolves its metric
// once (function-local static) and then pays one predictable branch plus
// one relaxed atomic add. Under -DCQABENCH_NO_OBS they expand to nothing;
// the argument expressions are never evaluated.
#ifdef CQABENCH_NO_OBS

#define CQA_OBS_COUNT(name) \
  do {                      \
  } while (0)
#define CQA_OBS_COUNT_N(name, n)  \
  do {                            \
    (void)sizeof((uint64_t)(n));  \
  } while (0)
#define CQA_OBS_OBSERVE(name, value)  \
  do {                                \
    (void)sizeof((uint64_t)(value));  \
  } while (0)

#else  // !CQABENCH_NO_OBS

#define CQA_OBS_COUNT(name) CQA_OBS_COUNT_N(name, 1)

#define CQA_OBS_COUNT_N(name, n)                              \
  do {                                                        \
    static ::cqa::obs::Counter* cqa_obs_counter__ =           \
        ::cqa::obs::Registry::Instance().GetCounter(name);    \
    if (::cqa::obs::Registry::Instance().enabled()) {         \
      cqa_obs_counter__->Increment(n);                        \
    }                                                         \
  } while (0)

#define CQA_OBS_OBSERVE(name, value)                          \
  do {                                                        \
    static ::cqa::obs::Histogram* cqa_obs_histogram__ =       \
        ::cqa::obs::Registry::Instance().GetHistogram(name);  \
    if (::cqa::obs::Registry::Instance().enabled()) {         \
      cqa_obs_histogram__->Observe(value);                    \
    }                                                         \
  } while (0)

#endif  // CQABENCH_NO_OBS

#endif  // CQABENCH_OBS_METRICS_H_
