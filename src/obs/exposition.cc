#include "obs/exposition.h"

#include <cstdio>

namespace cqa::obs {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

void AppendHistogram(std::string* out, const HistogramSnapshot& h) {
  const std::string name = PrometheusMetricName(h.name);
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    cumulative += h.buckets[b];
    *out += name + "_bucket{le=\"";
    if (b + 1 == h.buckets.size()) {
      *out += "+Inf";
    } else if (b == 0) {
      *out += '0';  // Bucket 0 holds exactly the zero observations.
    } else {
      // Bucket b holds integer values in [2^(b-1), 2^b), whose inclusive
      // upper bound is 2^b - 1.
      AppendUint(out, (uint64_t{1} << b) - 1);
    }
    *out += "\"} ";
    AppendUint(out, cumulative);
    *out += '\n';
  }
  *out += name + "_sum ";
  AppendUint(out, h.sum);
  *out += '\n';
  *out += name + "_count ";
  AppendUint(out, h.count);
  *out += '\n';
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "cqa_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusText(const std::vector<CounterSnapshot>& counters,
                           const std::vector<GaugeSnapshot>& gauges,
                           const std::vector<HistogramSnapshot>& histograms) {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    const std::string name = PrometheusMetricName(c.name) + "_total";
    out += "# TYPE " + name + " counter\n" + name + ' ';
    AppendUint(&out, c.value);
    out += '\n';
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string name = PrometheusMetricName(g.name);
    out += "# TYPE " + name + " gauge\n" + name + ' ';
    AppendInt(&out, g.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    AppendHistogram(&out, h);
  }
  return out;
}

std::string RegistryPrometheusText() {
  const Registry& reg = Registry::Instance();
  return PrometheusText(reg.Counters(), reg.Gauges(), reg.Histograms());
}

}  // namespace cqa::obs
