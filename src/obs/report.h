#ifndef CQABENCH_OBS_REPORT_H_
#define CQABENCH_OBS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/convergence.h"

namespace cqa::obs {

/// Identifies where in a benchmark grid a scheme run happened: the
/// figure/cell name and the x coordinate of the series the harness is
/// sweeping (noise level, balance, ε, ...).
struct RunContext {
  std::string scenario;
  std::string x_label;
  double x = 0.0;
};

/// One structured record per (scenario, x, scheme) run — the
/// machine-readable counterpart of a SeriesTable row, with the per-phase
/// breakdown the printed table drops. Field-by-field schema in
/// README.md's "Observability" section.
struct RunRecord {
  std::string scenario;
  std::string x_label;
  double x = 0.0;
  std::string scheme;
  /// Mean approximated relative frequency across the emitted answers
  /// (0 when the run produced none).
  double estimate = 0.0;
  size_t num_answers = 0;
  /// Samples consumed by the OptEstimate phases, summed over synopses.
  size_t estimator_samples = 0;
  /// Main-loop samples (Monte Carlo draws or coverage steps).
  size_t main_samples = 0;
  size_t total_samples = 0;
  /// Wall-clock split of the scheme phase.
  double estimator_seconds = 0.0;
  double main_seconds = 0.0;
  double total_seconds = 0.0;
  double preprocess_seconds = 0.0;
  bool timed_out = false;
  /// Main-loop samples per worker thread (size 1 for serial runs) —
  /// worker imbalance is the spread of these.
  std::vector<size_t> per_thread_samples;
  /// Convergence telemetry summary of the run's recorded series; all
  /// zeros when convergence recording was off (or compiled out).
  ConvergenceSummary convergence;
};

/// Serializes a record as one JSON object (no trailing newline).
std::string RunRecordToJson(const RunRecord& record);

/// Appends JSONL run records to a file, one line per Add, flushed
/// immediately so partial reports survive a timeout kill. Thread-safe.
class RunReporter {
 public:
  RunReporter() = default;
  ~RunReporter();
  RunReporter(const RunReporter&) = delete;
  RunReporter& operator=(const RunReporter&) = delete;

  /// Opens (truncates) the report file. Returns false and sets *error on
  /// I/O failure.
  bool Open(const std::string& path, std::string* error) CQA_EXCLUDES(mu_);

  bool is_open() const CQA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return file_ != nullptr;
  }
  size_t num_records() const CQA_EXCLUDES(mu_);

  void Add(const RunRecord& record) CQA_EXCLUDES(mu_);

  void Close() CQA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::FILE* file_ CQA_GUARDED_BY(mu_) = nullptr;
  size_t num_records_ CQA_GUARDED_BY(mu_) = 0;
};

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_REPORT_H_
