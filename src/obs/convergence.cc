#include "obs/convergence.h"

#include <algorithm>
#include <cmath>

namespace cqa::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendEscapedString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

/// First sample count at which the series was relatively ε-tight
/// (half width <= ε · estimate with a positive estimate); 0 if never.
uint64_t SamplesToEpsilon(const ConvergenceSeries& s) {
  for (const ConvergenceCheckpoint& c : s.checkpoints) {
    if (c.estimate > 0.0 && c.ci_half_width <= s.epsilon * c.estimate) {
      return c.sample_index;
    }
  }
  return 0;
}

/// Trapezoid of the half width over the sample axis, normalized by the
/// sampled range — the mean CI half width along the run.
double NormalizedAuec(const ConvergenceSeries& s) {
  const auto& cps = s.checkpoints;
  if (cps.empty()) return 0.0;
  if (cps.size() == 1) return cps.front().ci_half_width;
  double area = 0.0;
  for (size_t i = 1; i < cps.size(); ++i) {
    double dn = static_cast<double>(cps[i].sample_index) -
                static_cast<double>(cps[i - 1].sample_index);
    area += 0.5 * (cps[i].ci_half_width + cps[i - 1].ci_half_width) * dn;
  }
  double range = static_cast<double>(cps.back().sample_index) -
                 static_cast<double>(cps.front().sample_index);
  return range > 0.0 ? area / range : cps.back().ci_half_width;
}

}  // namespace

ConvergenceSummary Summarize(const ConvergenceSeries& series) {
  ConvergenceSummary sum;
  if (series.checkpoints.empty()) return sum;
  sum.num_series = 1;
  sum.num_checkpoints = series.checkpoints.size();
  sum.samples_to_epsilon = SamplesToEpsilon(series);
  sum.auec = NormalizedAuec(series);
  sum.first_half_width = series.checkpoints.front().ci_half_width;
  sum.final_half_width = series.checkpoints.back().ci_half_width;
  sum.final_estimate = series.checkpoints.back().estimate;
  return sum;
}

ConvergenceSummary Summarize(const std::vector<ConvergenceSeries>& series) {
  ConvergenceSummary sum;
  bool all_converged = true;
  for (const ConvergenceSeries& s : series) {
    ConvergenceSummary one = Summarize(s);
    if (one.num_series == 0) continue;
    sum.num_series += 1;
    sum.num_checkpoints += one.num_checkpoints;
    if (one.samples_to_epsilon == 0) {
      all_converged = false;
    } else {
      sum.samples_to_epsilon =
          std::max(sum.samples_to_epsilon, one.samples_to_epsilon);
    }
    sum.auec += one.auec;
    sum.first_half_width += one.first_half_width;
    sum.final_half_width += one.final_half_width;
    sum.final_estimate += one.final_estimate;
  }
  if (sum.num_series == 0) return sum;
  if (!all_converged) sum.samples_to_epsilon = 0;
  double n = static_cast<double>(sum.num_series);
  sum.auec /= n;
  sum.first_half_width /= n;
  sum.final_half_width /= n;
  sum.final_estimate /= n;
  return sum;
}

std::string ConvergenceSeriesToJson(const ConvergenceSeries& series) {
  std::string out = "{\"phase\":";
  AppendEscapedString(&out, series.phase);
  out += ",\"epsilon\":";
  AppendDouble(&out, series.epsilon);
  out += ",\"delta\":";
  AppendDouble(&out, series.delta);
  out += ",\"checkpoints\":[";
  for (size_t i = 0; i < series.checkpoints.size(); ++i) {
    const ConvergenceCheckpoint& c = series.checkpoints[i];
    if (i > 0) out += ',';
    out += '[';
    out += std::to_string(c.sample_index);
    out += ',';
    out += std::to_string(c.wall_ns);
    out += ',';
    AppendDouble(&out, c.estimate);
    out += ',';
    AppendDouble(&out, c.ci_half_width);
    out += ',';
    AppendDouble(&out, c.variance);
    out += ']';
  }
  out += "]}";
  return out;
}

ConvergenceRecorder::ConvergenceRecorder(const char* phase, double epsilon,
                                         double delta) {
  series_.phase = phase;
  series_.epsilon = epsilon;
  series_.delta = delta;
  // Guard against out-of-contract δ (the estimators CQA_CHECK it, but
  // the recorder is also constructed directly by tests and tools).
  log3_delta_ = std::log(3.0 / (delta > 0.0 && delta < 1.0 ? delta : 0.25));
}

void ConvergenceRecorder::RecordCheckpoint() {
  double n = static_cast<double>(count_);
  ConvergenceCheckpoint c;
  c.sample_index = count_;
  c.wall_ns = static_cast<uint64_t>(watch_.ElapsedSeconds() * 1e9);
  c.estimate = sum_ / n;
  double variance = sum_sq_ / n - c.estimate * c.estimate;
  c.variance = variance > 0.0 ? variance : 0.0;
  // Empirical Bernstein (Audibert, Munos, Szepesvári 2009): with
  // probability >= 1 - δ the mean of n draws in [0, 1] is within
  //   sqrt(2 V ln(3/δ) / n) + 3 ln(3/δ) / n
  // of the expectation, V the empirical variance.
  c.ci_half_width =
      std::sqrt(2.0 * c.variance * log3_delta_ / n) + 3.0 * log3_delta_ / n;
  series_.checkpoints.push_back(c);
  // Geometric spacing, ratio 1.25 (exact +1 while below 4): ~62
  // checkpoints per million samples.
  uint64_t step = count_ / 4;
  next_checkpoint_ = count_ + (step > 0 ? step : 1);
}

ConvergenceSeries ConvergenceRecorder::TakeSeries() {
#ifndef CQABENCH_NO_OBS
  if (count_ > 0 && (series_.checkpoints.empty() ||
                     series_.checkpoints.back().sample_index != count_)) {
    RecordCheckpoint();
  }
#endif
  ConvergenceSeries out = std::move(series_);
  series_ = ConvergenceSeries{};
  series_.phase = out.phase;
  series_.epsilon = out.epsilon;
  series_.delta = out.delta;
  sum_ = sum_sq_ = 0.0;
  count_ = 0;
  next_checkpoint_ = 1;
  return out;
}

ConvergenceReporter::~ConvergenceReporter() { Close(); }

bool ConvergenceReporter::Open(const std::string& path, std::string* error) {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "w");
  num_series_ = 0;
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return true;
}

size_t ConvergenceReporter::num_series() const {
  MutexLock lock(mu_);
  return num_series_;
}

void ConvergenceReporter::Add(const std::string& scenario,
                              const std::string& x_label, double x,
                              const std::string& scheme,
                              const ConvergenceSeries& series) {
  if (series.checkpoints.empty()) return;
  std::string line = "{\"scenario\":";
  AppendEscapedString(&line, scenario);
  line += ",\"x_label\":";
  AppendEscapedString(&line, x_label);
  line += ",\"x\":";
  AppendDouble(&line, x);
  line += ",\"scheme\":";
  AppendEscapedString(&line, scheme);
  // Splice the series object's fields into this line's object.
  std::string series_json = ConvergenceSeriesToJson(series);
  line += ',';
  line.append(series_json, 1, series_json.size() - 1);
  line += '\n';
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++num_series_;
}

void ConvergenceReporter::Close() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace cqa::obs
