// obs/exposition — Prometheus text-format exposition (version 0.0.4) of
// the metrics registry, so a long-running cqad is scrapeable by stock
// tooling. Pure functions over metric snapshots: the golden-format test
// feeds hand-built snapshots, the serving layer's /metrics endpoint
// feeds a live Registry snapshot through RegistryPrometheusText().
//
// Name mapping: every registry name is prefixed with "cqa_" and every
// character outside [a-zA-Z0-9_] becomes '_', so "serve.request_micros"
// exports as "cqa_serve_request_micros". Counters additionally get the
// conventional "_total" suffix. The power-of-two histogram buckets map
// onto cumulative `le` boundaries exactly: observed values are integers,
// bucket b holds [2^(b-1), 2^b), so its inclusive upper bound is
// 2^b - 1 (bucket 0, which holds only zeros, gets le="0"); the final
// bucket is "+Inf".
#ifndef CQABENCH_OBS_EXPOSITION_H_
#define CQABENCH_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cqa::obs {

/// "serve.request_micros" -> "cqa_serve_request_micros".
std::string PrometheusMetricName(const std::string& name);

/// Renders full exposition text (# TYPE lines + samples) for the given
/// snapshots, in the order given. Deterministic: same snapshots, same
/// bytes — the golden-file test relies on it.
std::string PrometheusText(const std::vector<CounterSnapshot>& counters,
                           const std::vector<GaugeSnapshot>& gauges,
                           const std::vector<HistogramSnapshot>& histograms);

/// Exposition text for a point-in-time snapshot of the process-wide
/// Registry (what GET /metrics serves).
std::string RegistryPrometheusText();

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_EXPOSITION_H_
