// obs/profiler — in-process CPU sampling profiler. Each thread gets a
// POSIX per-thread CPU-time timer (timer_create on the thread's
// CLOCK_THREAD_CPUTIME_ID clock, SIGEV_THREAD_ID delivery of SIGPROF),
// so samples fire proportionally to CPU actually burned, per thread,
// and idle threads cost nothing. The signal handler captures a stack
// (::backtrace, warmed up at Start so it never allocates in a handler)
// plus the thread's profile-region stack (obs/profile_region.h) into a
// lock-free single-producer/single-consumer per-thread ring; a
// background aggregator thread drains the rings into a stack trie and
// discovers newly spawned threads by rescanning /proc/self/task — no
// registration hooks needed anywhere in the tree.
//
// Exports: collapsed/folded stacks (flamegraph.pl / speedscope ready,
// region tags as leading "[serve.sample]" synthetic frames) and the
// gzipped pprof profile.proto wire format (hand-rolled varint encoder
// and stored-block gzip container — no protobuf or zlib dependency),
// decodable by `go tool pprof` and tools/profile_view.py.
//
// Thread ownership: Start/Stop/CollectFor may be called from any thread
// but are serialized by an internal control mutex; one collection runs
// at a time (CollectFor returns kBusy to concurrent callers — the
// /debug/pprof/profile endpoint maps that to 409). Export accessors are
// safe during and after a collection. The whole module compiles out
// under CQABENCH_NO_OBS (zero profiler symbols in the archive), and
// Start refuses to run under ASan/TSan, whose signal interception is
// incompatible with unwinding from a SIGPROF handler (kAvailable).
#ifndef CQABENCH_OBS_PROFILER_H_
#define CQABENCH_OBS_PROFILER_H_

#ifndef CQABENCH_NO_OBS

#include <cstdint>
#include <functional>
#include <string>

namespace cqa::obs {

struct ProfilerOptions {
  /// Samples per second of *CPU time*, per thread. 99 (not 100) so the
  /// sampling grid never phase-locks with 10ms-periodic work.
  int hz = 99;
  /// Per-thread ring capacity in samples. The aggregator drains every
  /// ~50ms; 1024 slots absorb >10s of a 99 Hz burst per thread.
  size_t ring_slots = 1024;
};

/// Aggregate counters for one collection (and /debug/pprof/threads).
struct ProfilerStats {
  uint64_t samples = 0;          ///< Folded into the trie.
  uint64_t dropped_ring = 0;     ///< Lost to a full per-thread ring.
  uint64_t dropped_untracked = 0;///< Signals on threads not yet in the table.
  uint64_t threads = 0;          ///< Threads sampled this collection.
  uint64_t distinct_stacks = 0;  ///< Leaf nodes in the trie.
};

class Profiler {
 public:
  /// False when the build cannot profile (sanitizer instrumentation
  /// intercepts signals and makes in-handler unwinding unsafe); Start
  /// then fails with an explanatory error, and callers surface
  /// "profiler unavailable" instead of crashing.
  static constexpr bool kAvailable =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
      false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
      false;
#else
      true;
#endif
#else
      true;
#endif

  static Profiler& Instance();

  /// Arms per-thread timers for every live thread and starts the
  /// aggregator. Fails (false + *error) when already running, when
  /// kAvailable is false, or on timer/signal setup errors. Clears any
  /// previously collected profile.
  bool Start(const ProfilerOptions& options, std::string* error);

  /// Disarms all timers, performs a final ring drain, and stops the
  /// aggregator. Collected data remains readable until the next Start.
  void Stop();

  bool running() const;

  enum class CollectResult { kOk, kBusy, kError };

  /// One-shot collection: Start, wait ~seconds (polling keep_going every
  /// 100ms for early abort — the HTTP endpoint passes its drain/stop
  /// probe), Stop. kBusy when a collection is already in flight.
  CollectResult CollectFor(double seconds, const ProfilerOptions& options,
                           const std::function<bool()>& keep_going,
                           std::string* error);

  /// Collapsed-stack text: one "frame;frame;... count" line per distinct
  /// stack, root first, region tags as leading "[name]" frames.
  std::string FoldedText() const;

  /// pprof profile.proto bytes, uncompressed (tests decode this).
  std::string PprofProfile() const;

  /// The same, wrapped in a gzip container (what /debug/pprof/profile
  /// serves; `go tool pprof` and tools/profile_view.py accept it).
  std::string PprofGzipped() const;

  /// Human-readable per-thread table for /debug/pprof/threads: tid,
  /// name (/proc comm), cumulative CPU seconds, samples, drops.
  std::string ThreadsText() const;

  ProfilerStats stats() const;

 private:
  Profiler() = default;
};

}  // namespace cqa::obs

#endif  // CQABENCH_NO_OBS

#endif  // CQABENCH_OBS_PROFILER_H_
