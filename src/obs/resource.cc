#include "obs/resource.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cqa::obs {

namespace {

// Pulls "Key:   <number>" out of a /proc/self/status line; returns
// false when the line is a different key.
bool StatusField(const char* line, const char* key, int64_t* out) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
    return false;
  }
  *out = std::strtoll(line + key_len + 1, nullptr, 10);
  return true;
}

}  // namespace

ResourceSample SampleResources() {
  ResourceSample s;

  // /proc/self/status: sizes are in kB, switch counts are raw.
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return s;
  char line[256];
  int64_t v = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (StatusField(line, "VmRSS", &v)) s.rss_bytes = v * 1024;
    else if (StatusField(line, "VmSize", &v)) s.vm_bytes = v * 1024;
    else if (StatusField(line, "Threads", &v)) s.threads = v;
    else if (StatusField(line, "voluntary_ctxt_switches", &v)) {
      s.voluntary_ctxt_switches = v;
    } else if (StatusField(line, "nonvoluntary_ctxt_switches", &v)) {
      s.involuntary_ctxt_switches = v;
    }
  }
  std::fclose(status);

  // /proc/self/stat: fields 10/12 are minflt/majflt, 14/15 utime/stime
  // in clock ticks — but field 2 (comm) may embed spaces, so parse from
  // the closing ')'.
  std::FILE* stat = std::fopen("/proc/self/stat", "r");
  if (stat != nullptr) {
    char buf[1024] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, stat);
    std::fclose(stat);
    (void)n;
    const char* after_comm = std::strrchr(buf, ')');
    if (after_comm != nullptr) {
      long long minflt = 0;
      long long majflt = 0;
      long long utime = 0;
      long long stime = 0;
      // after ')' comes " state ppid pgrp session tty tpgid flags
      // minflt cminflt majflt cmajflt utime stime ..."
      const int matched = std::sscanf(
          after_comm + 1, " %*c %*d %*d %*d %*d %*d %*u %lld %*u %lld %*u"
          " %lld %lld",
          &minflt, &majflt, &utime, &stime);
      if (matched == 4) {
        const long ticks_per_sec = ::sysconf(_SC_CLK_TCK);
        const long long us_per_tick =
            ticks_per_sec > 0 ? 1000000 / ticks_per_sec : 10000;
        s.minor_faults = minflt;
        s.major_faults = majflt;
        s.cpu_user_micros = utime * us_per_tick;
        s.cpu_system_micros = stime * us_per_tick;
      }
    }
  }

  // /proc/self/schedstat: "<run_ns> <wait_ns> <timeslices>" for the
  // thread-group leader — a run-queue pressure signal, not a per-thread
  // total (documented in docs/metrics.md).
  std::FILE* sched = std::fopen("/proc/self/schedstat", "r");
  if (sched != nullptr) {
    long long run_ns = 0;
    long long wait_ns = 0;
    if (std::fscanf(sched, "%lld %lld", &run_ns, &wait_ns) == 2) {
      s.sched_wait_micros = wait_ns / 1000;
    }
    std::fclose(sched);
  }

  s.ok = true;
  return s;
}

// ---------------------------------------------------------------------------
// ResourceSampler
// ---------------------------------------------------------------------------

struct ResourceSampler::Impl {
  mutable Mutex mu;
  CondVar cv;
  bool stop CQA_GUARDED_BY(mu) = false;
  bool running CQA_GUARDED_BY(mu) = false;
  double interval_seconds CQA_GUARDED_BY(mu) = 1.0;
  std::thread thread;  // Touched only under mu from Start/Stop.

  // Utilization derivation state: previous tick's cumulative CPU and
  // wall clock. Guarded by mu; SampleNow is cheap enough to serialize.
  int64_t prev_cpu_micros CQA_GUARDED_BY(mu) = -1;
  std::chrono::steady_clock::time_point prev_wall CQA_GUARDED_BY(mu);

  void Tick() CQA_EXCLUDES(mu) {
    const ResourceSample s = SampleResources();
    if (!s.ok) return;
    Registry& reg = Registry::Instance();
    reg.GetGauge("proc.rss_bytes")->Set(s.rss_bytes);
    reg.GetGauge("proc.vm_bytes")->Set(s.vm_bytes);
    reg.GetGauge("proc.threads")->Set(s.threads);
    reg.GetGauge("proc.minor_faults")->Set(s.minor_faults);
    reg.GetGauge("proc.major_faults")->Set(s.major_faults);
    reg.GetGauge("proc.voluntary_ctxt_switches")
        ->Set(s.voluntary_ctxt_switches);
    reg.GetGauge("proc.involuntary_ctxt_switches")
        ->Set(s.involuntary_ctxt_switches);
    reg.GetGauge("proc.cpu_user_micros")->Set(s.cpu_user_micros);
    reg.GetGauge("proc.cpu_system_micros")->Set(s.cpu_system_micros);
    reg.GetGauge("proc.sched_wait_micros")->Set(s.sched_wait_micros);

    const int64_t cpu_micros = s.cpu_user_micros + s.cpu_system_micros;
    const auto now = std::chrono::steady_clock::now();
    int64_t permille = -1;
    {
      MutexLock lock(mu);
      if (prev_cpu_micros >= 0) {
        const double wall_s =
            std::chrono::duration<double>(now - prev_wall).count();
        if (wall_s > 1e-3) {
          const double cpu_s =
              static_cast<double>(cpu_micros - prev_cpu_micros) / 1e6;
          permille = static_cast<int64_t>(cpu_s / wall_s * 1000.0 + 0.5);
          if (permille < 0) permille = 0;
        }
      }
      prev_cpu_micros = cpu_micros;
      prev_wall = now;
    }
    if (permille >= 0) {
      reg.GetGauge("proc.cpu_utilization_permille")->Set(permille);
    }
  }

  void Loop() CQA_EXCLUDES(mu) {
    for (;;) {
      Tick();
      MutexLock lock(mu);
      if (stop) return;
      cv.WaitForSeconds(mu, interval_seconds);
      if (stop) return;
    }
  }
};

ResourceSampler& ResourceSampler::Instance() {
  static ResourceSampler* instance = new ResourceSampler;
  return *instance;
}

ResourceSampler::Impl* ResourceSampler::impl() {
  static Impl* impl = new Impl;  // Leaked: see header.
  return impl;
}

bool ResourceSampler::Start(double interval_seconds, std::string* error) {
  if (!(interval_seconds > 0.0) || interval_seconds > 3600.0) {
    if (error != nullptr) {
      *error = "resource sampler interval must be in (0, 3600] seconds";
    }
    return false;
  }
  Impl* i = impl();
  MutexLock lock(i->mu);
  if (i->running) {
    if (error != nullptr) *error = "resource sampler already running";
    return false;
  }
  i->stop = false;
  i->interval_seconds = interval_seconds;
  i->running = true;
  i->thread = std::thread([i] { i->Loop(); });
  return true;
}

void ResourceSampler::Stop() {
  Impl* i = impl();
  std::thread to_join;
  {
    MutexLock lock(i->mu);
    if (!i->running) return;
    i->stop = true;
    i->running = false;
    to_join = std::move(i->thread);
  }
  i->cv.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

bool ResourceSampler::running() const {
  Impl* i = const_cast<ResourceSampler*>(this)->impl();
  MutexLock lock(i->mu);
  return i->running;
}

void ResourceSampler::SampleNow() { impl()->Tick(); }

// ---------------------------------------------------------------------------
// ThreadListText / HeapProfileText
// ---------------------------------------------------------------------------

std::string ThreadListText() {
  std::string out = "tid        cpu_s      name\n";
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return out + "(/proc/self/task unavailable)\n";
  const long ticks_per_sec = ::sysconf(_SC_CLK_TCK);
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const int tid = std::atoi(entry->d_name);
    if (tid <= 0) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/self/task/%d/stat", tid);
    std::FILE* stat = std::fopen(path, "r");
    if (stat == nullptr) continue;
    char buf[1024] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, stat);
    std::fclose(stat);
    (void)n;
    // "<tid> (comm) state ... utime stime ..." — comm may hold spaces,
    // so find its bounds from the parens and parse onward from there.
    const char* comm_start = std::strchr(buf, '(');
    const char* comm_end = std::strrchr(buf, ')');
    if (comm_start == nullptr || comm_end == nullptr ||
        comm_end < comm_start) {
      continue;
    }
    const std::string comm(comm_start + 1,
                           static_cast<size_t>(comm_end - comm_start - 1));
    long long utime = 0;
    long long stime = 0;
    const int matched = std::sscanf(
        comm_end + 1, " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u"
        " %lld %lld",
        &utime, &stime);
    double cpu_s = 0.0;
    if (matched == 2 && ticks_per_sec > 0) {
      cpu_s = static_cast<double>(utime + stime) /
              static_cast<double>(ticks_per_sec);
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-10d %-10.3f %s\n", tid, cpu_s,
                  comm.c_str());
    out += line;
  }
  ::closedir(dir);
  return out;
}

std::string HeapProfileText() {
  std::string out =
      "heap: allocator counter snapshot (no per-site allocation "
      "tracking)\n";
  char line[128];
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
  const struct mallinfo2 mi = ::mallinfo2();
  std::snprintf(line, sizeof(line), "malloc_arena_bytes: %zu\n",
                static_cast<size_t>(mi.arena));
  out += line;
  std::snprintf(line, sizeof(line), "malloc_in_use_bytes: %zu\n",
                static_cast<size_t>(mi.uordblks));
  out += line;
  std::snprintf(line, sizeof(line), "malloc_free_bytes: %zu\n",
                static_cast<size_t>(mi.fordblks));
  out += line;
  std::snprintf(line, sizeof(line), "malloc_mmap_bytes: %zu\n",
                static_cast<size_t>(mi.hblkhd));
  out += line;
#else
  out += "mallinfo2: unavailable (glibc < 2.33)\n";
#endif
#else
  out += "mallinfo2: unavailable (not glibc)\n";
#endif
  // /proc/self/statm: "<total> <resident> ..." in pages.
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm != nullptr) {
    long long vm_pages = 0;
    long long rss_pages = 0;
    if (std::fscanf(statm, "%lld %lld", &vm_pages, &rss_pages) == 2) {
      const long page = ::sysconf(_SC_PAGESIZE);
      std::snprintf(line, sizeof(line), "vm_bytes: %lld\n",
                    vm_pages * page);
      out += line;
      std::snprintf(line, sizeof(line), "rss_bytes: %lld\n",
                    rss_pages * page);
      out += line;
    }
    std::fclose(statm);
  }
  return out;
}

}  // namespace cqa::obs
