#ifndef CQABENCH_OBS_TRACE_H_
#define CQABENCH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/profile_region.h"

namespace cqa::obs {

/// One completed span. `name` must point at a string literal (the RAII
/// span takes `const char*` precisely so no allocation happens on the
/// instrumented path). `trace_id` is the wire-propagated request trace
/// context (empty for the hot-path sampler/estimator spans, so the
/// common case still allocates nothing).
struct SpanRecord {
  const char* name = "";
  /// Start offset from the process trace epoch, seconds (monotonic).
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span.
  uint32_t thread_id = 0;  // Hashed std::thread::id.
  /// Client-chosen request trace id, propagated over the wire by the
  /// serving layer; empty for spans outside a traced request.
  std::string trace_id;
};

/// Process-wide bounded ring buffer of completed spans. Recording takes a
/// mutex — spans mark phases (an OptEstimate run, a Monte Carlo main
/// loop), not per-draw events, so contention is negligible.
class TraceBuffer {
 public:
  static TraceBuffer& Instance();

  bool enabled() const CQA_EXCLUDES(mu_);
  void set_enabled(bool enabled) CQA_EXCLUDES(mu_);

  /// Resizes the ring (discarding buffered spans). Default 4096.
  void set_capacity(size_t capacity) CQA_EXCLUDES(mu_);

  void Record(const SpanRecord& record) CQA_EXCLUDES(mu_);

  /// Buffered spans, oldest first.
  std::vector<SpanRecord> Snapshot() const CQA_EXCLUDES(mu_);

  /// Spans evicted by the ring since the last Clear().
  uint64_t dropped() const CQA_EXCLUDES(mu_);

  void Clear() CQA_EXCLUDES(mu_);

  /// Writes a meta line {"trace_meta":true,"dropped_spans":...,
  /// "buffered_spans":...} followed by one JSON object per buffered span:
  ///   {"name":...,"start_s":...,"dur_s":...,"id":...,"parent_id":...,
  ///    "thread":...}
  /// Spans carrying a request trace context add "trace_id":"...".
  bool ExportJsonl(const std::string& path, std::string* error) const;
  void AppendJsonl(std::string* out) const;

  /// Writes the buffered spans as one Chrome trace_event JSON document
  /// ("X" complete events, timestamps in microseconds) that loads in
  /// Perfetto / chrome://tracing; the ring's dropped-span count rides
  /// along in "otherData".
  bool ExportChromeTrace(const std::string& path, std::string* error) const;
  void AppendChromeTrace(std::string* out) const;

 private:
  TraceBuffer() = default;

  /// One consistent (spans, dropped count) pair under a single lock.
  void CopyState(std::vector<SpanRecord>* spans,
                 uint64_t* dropped_spans) const CQA_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<SpanRecord> ring_ CQA_GUARDED_BY(mu_);
  size_t capacity_ CQA_GUARDED_BY(mu_) = 4096;
  size_t next_ CQA_GUARDED_BY(mu_) = 0;
  uint64_t total_ CQA_GUARDED_BY(mu_) = 0;
  bool enabled_ CQA_GUARDED_BY(mu_) = true;
};

#ifdef CQABENCH_NO_OBS

/// Compiled-out span: construction and destruction are empty inline
/// functions the optimizer erases entirely.
class TraceSpan {
 public:
  explicit TraceSpan(const char* /*name*/, uint64_t /*parent_id*/ = 0) {}
  TraceSpan(const char* /*name*/, uint64_t /*parent_id*/,
            const std::string& /*trace_id*/) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return 0; }
  double ElapsedSeconds() const { return 0.0; }
};

/// Compiled-out cross-thread span.
class CrossThreadSpan {
 public:
  CrossThreadSpan(const char* /*name*/, uint64_t /*parent_id*/,
                  const std::string& /*trace_id*/) {}
  CrossThreadSpan(const CrossThreadSpan&) = delete;
  CrossThreadSpan& operator=(const CrossThreadSpan&) = delete;

  uint64_t id() const { return 0; }
  void Finish() {}
};

#else  // !CQABENCH_NO_OBS

/// RAII phase marker: records a SpanRecord into the TraceBuffer at
/// destruction. `name` must be a string literal. Pass a parent span's
/// id() to nest (across threads too — the parallel workers hang their
/// per-worker spans off the main-loop span). The three-argument form
/// additionally stamps the span with a request trace id (the serving
/// layer's wire-propagated TraceContext); pay the string copy only on
/// request spans, never on the sampling hot path.
///
/// Every span also pushes its name onto the thread's profile-region
/// stack for its lifetime (obs/profile_region.h), so CPU samples taken
/// while a span is open carry "[span name]" tags — traces, phase
/// metrics, and profiles share one taxonomy with no extra call sites.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t parent_id = 0);
  TraceSpan(const char* name, uint64_t parent_id, const std::string& trace_id);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }
  double ElapsedSeconds() const;

 private:
  const char* name_;
  uint64_t id_;
  uint64_t parent_id_;
  std::string trace_id_;
  std::chrono::steady_clock::time_point start_;
  ScopedProfileRegion region_;
};

/// A span whose lifetime crosses threads: a request handed from an
/// event loop to an executor starts its span where it is received and
/// ends it where it finishes. TraceSpan is strictly same-thread RAII —
/// its profile-region push/pop mutates *thread-local* state, so
/// destroying one on another thread corrupts that thread's region
/// stack. CrossThreadSpan allocates its id at construction and records
/// at Finish() (idempotent; the destructor calls it as a backstop),
/// never touching the profile-region stack; the recorded thread_id is
/// the finishing thread's. Callers serialize construction, Finish(),
/// and destruction themselves (the serving layer orders them through
/// its dispatcher handoff).
class CrossThreadSpan {
 public:
  CrossThreadSpan(const char* name, uint64_t parent_id,
                  const std::string& trace_id);
  ~CrossThreadSpan();
  CrossThreadSpan(const CrossThreadSpan&) = delete;
  CrossThreadSpan& operator=(const CrossThreadSpan&) = delete;

  uint64_t id() const { return id_; }

  /// Records the span now; later calls (and the destructor) no-op.
  void Finish();

 private:
  const char* name_;
  uint64_t id_;
  uint64_t parent_id_;
  std::string trace_id_;
  std::chrono::steady_clock::time_point start_;
  bool finished_ = false;
};

#endif  // CQABENCH_NO_OBS

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_TRACE_H_
