#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <functional>
#include <thread>

namespace cqa::obs {

namespace {

#ifndef CQABENCH_NO_OBS

using SteadyClock = std::chrono::steady_clock;

/// Trace epoch: all span start offsets are relative to the first time the
/// trace machinery is touched, keeping the JSONL numbers small.
SteadyClock::time_point Epoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

uint32_t ThisThreadId() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

#endif  // !CQABENCH_NO_OBS

/// Escapes a client-supplied trace id for embedding in a JSON string.
/// Span *names* are string literals (a lint rule enforces it), but the
/// trace id arrives over the wire and must not be trusted.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendSpanJson(std::string* out, const SpanRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"start_s\":%.9f,\"dur_s\":%.9f,"
                "\"id\":%llu,\"parent_id\":%llu,\"thread\":%u",
                r.name, r.start_seconds, r.duration_seconds,
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.parent_id), r.thread_id);
  *out += buf;
  if (!r.trace_id.empty()) {
    *out += ",\"trace_id\":\"";
    AppendEscaped(out, r.trace_id);
    *out += '"';
  }
  *out += "}\n";
}

}  // namespace

TraceBuffer& TraceBuffer::Instance() {
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

bool TraceBuffer::enabled() const {
  MutexLock lock(mu_);
  return enabled_;
}

void TraceBuffer::set_enabled(bool enabled) {
  MutexLock lock(mu_);
  enabled_ = enabled;
}

void TraceBuffer::set_capacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceBuffer::Record(const SpanRecord& record) {
  MutexLock lock(mu_);
  if (!enabled_) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

void TraceBuffer::CopyState(std::vector<SpanRecord>* spans,
                            uint64_t* dropped_spans) const {
  MutexLock lock(mu_);
  spans->clear();
  spans->reserve(ring_.size());
  // next_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    spans->push_back(ring_[(next_ + i) % ring_.size()]);
  }
  *dropped_spans = total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::vector<SpanRecord> out;
  uint64_t dropped_spans = 0;
  CopyState(&out, &dropped_spans);
  return out;
}

uint64_t TraceBuffer::dropped() const {
  MutexLock lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void TraceBuffer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

namespace {

bool WriteWholeFile(const std::string& path, const std::string& out,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace

void TraceBuffer::AppendJsonl(std::string* out) const {
  std::vector<SpanRecord> spans;
  uint64_t dropped_spans = 0;
  CopyState(&spans, &dropped_spans);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"trace_meta\":true,\"dropped_spans\":%llu,"
                "\"buffered_spans\":%zu}\n",
                static_cast<unsigned long long>(dropped_spans), spans.size());
  *out += buf;
  for (const SpanRecord& r : spans) {
    AppendSpanJson(out, r);
  }
}

bool TraceBuffer::ExportJsonl(const std::string& path,
                              std::string* error) const {
  std::string out;
  AppendJsonl(&out);
  return WriteWholeFile(path, out, error);
}

void TraceBuffer::AppendChromeTrace(std::string* out) const {
  std::vector<SpanRecord> spans;
  uint64_t dropped_spans = 0;
  CopyState(&spans, &dropped_spans);
  *out += "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& r = spans[i];
    if (i > 0) *out += ',';
    // Span names are string literals from our own call sites (a lint
    // rule enforces it), so no escaping is needed.
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"cqa\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"id\":%llu,\"parent_id\":%llu",
                  r.name, r.start_seconds * 1e6, r.duration_seconds * 1e6,
                  r.thread_id, static_cast<unsigned long long>(r.id),
                  static_cast<unsigned long long>(r.parent_id));
    *out += buf;
    if (!r.trace_id.empty()) {
      *out += ",\"trace_id\":\"";
      AppendEscaped(out, r.trace_id);
      *out += '"';
    }
    *out += "}}";
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "],\"otherData\":{\"dropped_spans\":%llu,"
                "\"buffered_spans\":%zu}}\n",
                static_cast<unsigned long long>(dropped_spans), spans.size());
  *out += tail;
}

bool TraceBuffer::ExportChromeTrace(const std::string& path,
                                    std::string* error) const {
  std::string out;
  AppendChromeTrace(&out);
  return WriteWholeFile(path, out, error);
}

#ifndef CQABENCH_NO_OBS

namespace {
std::atomic<uint64_t> g_next_span_id{1};
}  // namespace

TraceSpan::TraceSpan(const char* name, uint64_t parent_id)
    : name_(name),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_id_(parent_id),
      region_(name) {
  Epoch();  // Pin the epoch no later than the first span's start.
  start_ = SteadyClock::now();
}

TraceSpan::TraceSpan(const char* name, uint64_t parent_id,
                     const std::string& trace_id)
    : name_(name),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_id_(parent_id),
      trace_id_(trace_id),
      region_(name) {
  Epoch();
  start_ = SteadyClock::now();
}

double TraceSpan::ElapsedSeconds() const {
  return std::chrono::duration<double>(SteadyClock::now() - start_).count();
}

TraceSpan::~TraceSpan() {
  SpanRecord record;
  record.name = name_;
  record.start_seconds =
      std::chrono::duration<double>(start_ - Epoch()).count();
  record.duration_seconds = ElapsedSeconds();
  record.id = id_;
  record.parent_id = parent_id_;
  record.thread_id = ThisThreadId();
  record.trace_id = trace_id_;
  TraceBuffer::Instance().Record(record);
}

CrossThreadSpan::CrossThreadSpan(const char* name, uint64_t parent_id,
                                 const std::string& trace_id)
    : name_(name),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_id_(parent_id),
      trace_id_(trace_id) {
  Epoch();
  start_ = SteadyClock::now();
}

CrossThreadSpan::~CrossThreadSpan() { Finish(); }

void CrossThreadSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  SpanRecord record;
  record.name = name_;
  record.start_seconds =
      std::chrono::duration<double>(start_ - Epoch()).count();
  record.duration_seconds =
      std::chrono::duration<double>(SteadyClock::now() - start_).count();
  record.id = id_;
  record.parent_id = parent_id_;
  record.thread_id = ThisThreadId();
  record.trace_id = trace_id_;
  TraceBuffer::Instance().Record(record);
}

#endif  // !CQABENCH_NO_OBS

}  // namespace cqa::obs
