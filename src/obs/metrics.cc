#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace cqa::obs {

namespace {

/// Index of the power-of-two bucket for `value`: 0 for 0, otherwise
/// 1 + floor(log2(value)), clamped to the last bucket.
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t b = 64 - static_cast<size_t>(__builtin_clzll(value));
  return b < Histogram::kNumBuckets ? b : Histogram::kNumBuckets - 1;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    double n = static_cast<double>(buckets[b]);
    if (n == 0.0) continue;
    if (cum + n >= target) {
      if (b == 0) return 0.0;  // Bucket 0 holds exactly the zeros.
      // Bucket b spans [2^(b-1), 2^b); the last bucket absorbs overflow,
      // so cap it (and every interpolated value) at the recorded max.
      double lo = static_cast<double>(uint64_t{1} << (b - 1));
      double hi = lo * 2.0;
      double observed_max = static_cast<double>(max);
      if (b + 1 == buckets.size() && observed_max > lo) hi = observed_max;
      double f = (target - cum) / n;
      double v = lo * std::pow(hi / lo, f);
      return v < observed_max ? v : observed_max;
    }
    cum += n;
  }
  return static_cast<double>(max);
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto [it, inserted] = counters_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto [it, inserted] = histograms_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t Registry::GaugeValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.max = max();
  snap.buckets.reserve(kNumBuckets);
  for (size_t b = 0; b < kNumBuckets; ++b) snap.buckets.push_back(bucket(b));
  return snap;
}

std::vector<CounterSnapshot> Registry::Counters() const {
  MutexLock lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSnapshot{name, counter->value()});
  }
  return out;
}

std::vector<GaugeSnapshot> Registry::Gauges() const {
  MutexLock lock(mu_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSnapshot{name, gauge->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> Registry::Histograms() const {
  MutexLock lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap = h->snapshot();
    snap.name = name;
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string Registry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : Counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, c.name);
    out += "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : Gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, g.name);
    out += "\":" + std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : Histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, h.name);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":";
    AppendDouble(&out, h.Quantile(0.50));
    out += ",\"p95\":";
    AppendDouble(&out, h.Quantile(0.95));
    out += ",\"p99\":";
    AppendDouble(&out, h.Quantile(0.99));
    out += ",\"p999\":";
    AppendDouble(&out, h.Quantile(0.999));
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace cqa::obs
