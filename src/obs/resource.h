// obs/resource — runtime resource telemetry. A background sampler reads
// /proc/self/{status,stat,schedstat} on a fixed tick and publishes the
// process's physical footprint as registry Gauges (`proc.*`): RSS,
// virtual size, thread count, minor/major faults, voluntary/involuntary
// context switches, cumulative user/system CPU, a CPU-utilization rate
// derived from consecutive ticks, and scheduler wait time. These ride
// the existing /metrics exposition and `stats` op for free, giving every
// latency regression a memory/CPU/scheduling context to correlate with.
//
// Unlike the sampling profiler this module is NOT compiled out under
// CQABENCH_NO_OBS: gauges follow the registry's standing policy that
// serving state must stay accurate in every build mode (see
// src/obs/metrics.h), and reading five /proc files per second is free.
#ifndef CQABENCH_OBS_RESOURCE_H_
#define CQABENCH_OBS_RESOURCE_H_

#include <cstdint>
#include <string>

namespace cqa::obs {

/// One point-in-time reading of the /proc counters, unconverted side
/// effects excluded (no registry writes). `ok` is false when /proc was
/// unreadable (non-Linux); numeric fields are then zero.
struct ResourceSample {
  bool ok = false;
  int64_t rss_bytes = 0;
  int64_t vm_bytes = 0;
  int64_t threads = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t voluntary_ctxt_switches = 0;
  int64_t involuntary_ctxt_switches = 0;
  int64_t cpu_user_micros = 0;
  int64_t cpu_system_micros = 0;
  int64_t sched_wait_micros = 0;  // Run-queue wait (thread-group leader).
};

/// Reads /proc/self/{status,stat,schedstat} once. Pure read, no gauges.
ResourceSample SampleResources();

/// Background publisher: every `interval_seconds` it takes a
/// ResourceSample and Set()s the `proc.*` gauges, plus
/// `proc.cpu_utilization_permille` (CPU seconds burned per wall second
/// over the last tick, in thousandths — 1000 = one saturated core).
/// Start/Stop are idempotent and may be called from any thread.
class ResourceSampler {
 public:
  static ResourceSampler& Instance();

  /// Starts the tick thread. False (+ *error) when already running or
  /// when `interval_seconds` is out of (0, 3600].
  bool Start(double interval_seconds, std::string* error);

  /// Stops and joins the tick thread. The last published gauge values
  /// remain visible in the registry.
  void Stop();

  bool running() const;

  /// One synchronous sample-and-publish tick (also what the background
  /// thread calls). Safe without Start — bench binaries use this to
  /// stamp final gauge values before export.
  void SampleNow();

 private:
  ResourceSampler() = default;
  struct Impl;
  Impl* impl();  // Lazily built, leaked (tick thread may outlive statics).
};

/// One line per live thread — tid, cumulative CPU seconds
/// (utime+stime from /proc/self/task/<tid>/stat), comm — for
/// /debug/pprof/threads. Works in every build mode; the profiler's
/// ThreadsText() adds sample/drop counts when a collection ran.
std::string ThreadListText();

/// Human-readable allocator + footprint report for /debug/pprof/heap:
/// glibc mallinfo2 arena/in-use/free/mmap byte counts (when available)
/// plus /proc/self/statm RSS and virtual size. This is a counters
/// snapshot, not an allocation-site profile — honest about its limits.
std::string HeapProfileText();

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_RESOURCE_H_
