#ifndef CQABENCH_OBS_CONVERGENCE_H_
#define CQABENCH_OBS_CONVERGENCE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace cqa::obs {

/// One convergence checkpoint of a running estimator: where the estimate
/// stood after `sample_index` draws and how tight it was.
struct ConvergenceCheckpoint {
  uint64_t sample_index = 0;
  /// Wall-clock nanoseconds since the recorder was constructed (i.e.
  /// since the phase started).
  uint64_t wall_ns = 0;
  /// Running mean of the observed draws.
  double estimate = 0.0;
  /// Empirical-Bernstein confidence-interval half width at confidence
  /// 1 - δ (exact for [0, 1]-valued draws; a comparable tightness proxy
  /// for the coverage trial costs, which are unbounded).
  double ci_half_width = 0.0;
  /// Running (biased) sample variance — the variance proxy behind the
  /// half width.
  double variance = 0.0;
};

/// The trajectory one estimator phase traced: checkpoints at geometrically
/// spaced sample counts, so a run of N draws stores O(log N) points.
struct ConvergenceSeries {
  /// Phase label; must be a string literal ("monte_carlo.main", ...).
  const char* phase = "";
  /// The (ε, δ) the run targeted; the CI half widths use this δ.
  double epsilon = 0.0;
  double delta = 0.0;
  std::vector<ConvergenceCheckpoint> checkpoints;
};

/// Aggregated convergence figures for a run (possibly spanning several
/// series — one per synopsis and phase). All means are over the series
/// that recorded at least one checkpoint.
struct ConvergenceSummary {
  /// Series with at least one checkpoint.
  size_t num_series = 0;
  /// Checkpoints across all series.
  size_t num_checkpoints = 0;
  /// Samples until the CI half width first dropped to ε·estimate,
  /// maximised over series (the slowest phase gates the run); 0 when any
  /// non-empty series never got there (or nothing was recorded).
  uint64_t samples_to_epsilon = 0;
  /// Mean over series of the normalized area under the error curve:
  /// trapezoid of the CI half width over the sample axis divided by the
  /// sampled range — "average half width along the run".
  double auec = 0.0;
  double first_half_width = 0.0;
  double final_half_width = 0.0;
  double final_estimate = 0.0;
};

ConvergenceSummary Summarize(const ConvergenceSeries& series);
ConvergenceSummary Summarize(const std::vector<ConvergenceSeries>& series);

/// Serializes one series as a JSON object (no trailing newline):
///   {"phase":...,"epsilon":...,"delta":...,
///    "checkpoints":[[sample_index,wall_ns,estimate,ci_half_width,
///                    variance],...]}
std::string ConvergenceSeriesToJson(const ConvergenceSeries& series);

/// Records the convergence trajectory of one estimator phase. Feed every
/// draw through Observe(); checkpoints are taken at geometrically spaced
/// sample counts (ratio 1.25), so the hot-path cost is two adds, one
/// multiply and one predictable compare per draw — and O(log N)
/// checkpoint records total. Not thread-safe: one recorder per phase per
/// thread (the parallel estimator feeds it from one worker only).
///
/// Under -DCQABENCH_NO_OBS, Observe() compiles to nothing and the series
/// stays empty, so every call site is erased by the optimizer.
class ConvergenceRecorder {
 public:
  /// `phase` must be a string literal; ε and δ parameterize the CI half
  /// width and the samples-to-ε summary.
  ConvergenceRecorder(const char* phase, double epsilon, double delta);

  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  void Observe(double x) {
#ifndef CQABENCH_NO_OBS
    sum_ += x;
    sum_sq_ += x * x;
    if (++count_ >= next_checkpoint_) RecordCheckpoint();
#else
    (void)x;
#endif
  }

  uint64_t count() const { return count_; }
  const ConvergenceSeries& series() const { return series_; }

  /// Finalizes (records a last checkpoint at the current sample count if
  /// one is not already there) and moves the series out; the recorder is
  /// empty afterwards.
  ConvergenceSeries TakeSeries();

 private:
  void RecordCheckpoint();

  ConvergenceSeries series_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  uint64_t count_ = 0;
  uint64_t next_checkpoint_ = 1;
  /// ln(3/δ), precomputed for the empirical-Bernstein half width.
  double log3_delta_ = 0.0;
  Stopwatch watch_;
};

/// Appends JSONL convergence series to a file, one line per series,
/// tagged with the run's (scenario, x, scheme) so trajectories can be
/// joined against run reports. Flushed per line; thread-safe.
class ConvergenceReporter {
 public:
  ConvergenceReporter() = default;
  ~ConvergenceReporter();
  ConvergenceReporter(const ConvergenceReporter&) = delete;
  ConvergenceReporter& operator=(const ConvergenceReporter&) = delete;

  /// Opens (truncates) the file. Returns false and sets *error on I/O
  /// failure.
  bool Open(const std::string& path, std::string* error) CQA_EXCLUDES(mu_);

  bool is_open() const CQA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return file_ != nullptr;
  }
  size_t num_series() const CQA_EXCLUDES(mu_);

  /// Writes one line: the series JSON extended with
  /// "scenario"/"x_label"/"x"/"scheme" fields. Series with no
  /// checkpoints are skipped.
  void Add(const std::string& scenario, const std::string& x_label, double x,
           const std::string& scheme, const ConvergenceSeries& series)
      CQA_EXCLUDES(mu_);

  void Close() CQA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::FILE* file_ CQA_GUARDED_BY(mu_) = nullptr;
  size_t num_series_ CQA_GUARDED_BY(mu_) = 0;
};

}  // namespace cqa::obs

#endif  // CQABENCH_OBS_CONVERGENCE_H_
