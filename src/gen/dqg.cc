#include "gen/dqg.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/macros.h"
#include "storage/block_index.h"

namespace cqa {

namespace {

/// A consistent homomorphism's data needed to score projections: the
/// values of every variable.
struct HomRecord {
  Tuple assignment;
};

}  // namespace

std::vector<DqgResult> GenerateBalancedQueries(
    const Database& db, const ConjunctiveQuery& q,
    const std::vector<double>& targets, const DqgOptions& options, Rng& rng,
    DatabaseIndexCache* cache) {
  // Enumerate homomorphisms once; record consistent ones and count the
  // globally distinct images (the balance denominator, independent of the
  // projection).
  BlockIndex block_index = BlockIndex::Build(db);
  std::set<std::vector<std::tuple<size_t, size_t, size_t>>> distinct_images;
  std::vector<HomRecord> homs;
  std::unordered_set<Tuple, TupleHash> distinct_assignments;
  CqEvaluator evaluator(&db, cache);
  evaluator.ForEachHomomorphism(q, [&](const Homomorphism& h) {
    std::vector<std::tuple<size_t, size_t, size_t>> image;
    for (const FactRef& f : h.image) {
      const BlockAnnotation& ann =
          block_index.relation(f.relation_id).annotation(f.row);
      image.emplace_back(f.relation_id, ann.block_id, ann.tuple_id);
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    for (size_t i = 1; i < image.size(); ++i) {
      if (std::get<0>(image[i]) == std::get<0>(image[i - 1]) &&
          std::get<1>(image[i]) == std::get<1>(image[i - 1])) {
        return true;  // Inconsistent image.
      }
    }
    distinct_images.insert(std::move(image));
    if (distinct_assignments.insert(h.assignment).second) {
      homs.push_back(HomRecord{h.assignment});
    }
    return true;
  });

  std::vector<DqgResult> results;
  if (distinct_images.empty()) return results;
  const double denominator = static_cast<double>(distinct_images.size());

  // Candidate projections: random non-empty subsets of the variables.
  // (Projecting an attribute set of the participating relations is
  // equivalent to selecting the variables at those positions.)
  auto balance_of = [&](const std::vector<size_t>& vars) {
    std::unordered_set<Tuple, TupleHash> answers;
    for (const HomRecord& hom : homs) {
      Tuple t;
      t.reserve(vars.size());
      for (size_t v : vars) t.push_back(hom.assignment[v]);
      answers.insert(std::move(t));
    }
    return static_cast<double>(answers.size()) / denominator;
  };

  struct Candidate {
    std::vector<size_t> vars;
    double balance;
  };
  std::vector<Candidate> pool;
  std::set<std::vector<size_t>> seen;
  const size_t num_vars = q.num_vars();
  CQA_CHECK(num_vars >= 1);
  for (size_t i = 0; i < options.pool_size; ++i) {
    size_t k = 1 + rng.UniformIndex(num_vars);
    std::vector<size_t> vars = rng.SampleWithoutReplacement(num_vars, k);
    std::sort(vars.begin(), vars.end());
    if (!seen.insert(vars).second) continue;
    double b = balance_of(vars);
    pool.push_back(Candidate{std::move(vars), b});
  }
  if (pool.empty()) return results;

  for (double target : targets) {
    const Candidate* best = &pool[0];
    for (const Candidate& c : pool) {
      if (std::abs(c.balance - target) <
          std::abs(best->balance - target)) {
        best = &c;
      }
    }
    DqgResult r;
    r.query = q.WithAnswerVars(best->vars);
    r.balance = best->balance;
    r.target = target;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace cqa
