#ifndef CQABENCH_GEN_TPCDS_H_
#define CQABENCH_GEN_TPCDS_H_

#include "common/rng.h"
#include "gen/dataset.h"

namespace cqa {

/// Options for the TPC-DS-subset data generator.
///
/// The paper's validation scenarios (§F) use 8 TPC-DS query templates; this
/// generator produces the snowflake core those templates touch: the
/// dimensions date_dim, item, customer, customer_address, store, warehouse,
/// promotion and the facts store_sales, catalog_sales, web_sales,
/// inventory — with the official (composite) primary keys of each.
struct TpcdsOptions {
  double scale_factor = 0.001;
  uint64_t seed = 20210621;
};

/// Builds the TPC-DS-subset schema Σ_DS.
Schema MakeTpcdsSchema();

/// Generates a consistent TPC-DS-subset instance with valid foreign keys.
Dataset GenerateTpcds(const TpcdsOptions& options);

}  // namespace cqa

#endif  // CQABENCH_GEN_TPCDS_H_
