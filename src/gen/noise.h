#ifndef CQABENCH_GEN_NOISE_H_
#define CQABENCH_GEN_NOISE_H_

#include "common/rng.h"
#include "query/cq.h"
#include "storage/database.h"

namespace cqa {

/// Parameters of the query-aware noise generator (§6.1): `p` is the
/// fraction of query-relevant facts whose block is inflated, and block
/// sizes are drawn uniformly from [min_block_size, max_block_size].
struct NoiseOptions {
  double p = 0.5;
  size_t min_block_size = 2;
  size_t max_block_size = 5;
};

struct NoiseStats {
  /// Query-relevant facts found by the preprocessing pass (|H| restricted
  /// to relations with keys).
  size_t relevant_facts = 0;
  /// Facts whose block was selected for inflation (Σ_R ⌈p·|H_R|⌉).
  size_t selected_facts = 0;
  /// New conflicting facts inserted.
  size_t facts_added = 0;
};

/// The query-aware noise generator for primary keys (§6.1).
///
/// Given a consistent database D, a query Q with Q(D) ≠ ∅ and the options
/// above, mutates *db in place following the paper's three steps:
///  1. compute syn_{Σ,Q}(D); the facts in its homomorphic images are the
///     portion of D that can affect the query result;
///  2. per relation R among those facts, select ⌈p·|H_R|⌉ of them;
///  3. for each selected fact with key ā, draw a target block size
///     s ∈ [ℓ, u] and add s-1 fresh facts R(ā, ū_j) whose non-key values
///     are copied from a random R-fact with a different key — preserving
///     the join patterns present in the data (crucial for multi-attribute
///     foreign-key joins).
///
/// Never inserts a duplicate of an existing fact (databases are sets).
/// The result is inconsistent w.r.t. Σ exactly on the inflated blocks.
NoiseStats AddQueryAwareNoise(Database* db, const ConjunctiveQuery& q,
                              const NoiseOptions& options, Rng& rng);

/// The query-*oblivious* baseline the paper argues against (§6.1): the
/// same block-inflating procedure, but the ⌈p·n⌉ facts are drawn from the
/// whole database instead of the query-relevant portion. Because "we
/// typically deal with very large databases, while only a small portion
/// of them is needed to answer a query", most of this noise never reaches
/// the query's synopses — the effect `bench_noise_ablation` quantifies.
NoiseStats AddObliviousNoise(Database* db, const NoiseOptions& options,
                             Rng& rng);

}  // namespace cqa

#endif  // CQABENCH_GEN_NOISE_H_
