#include "gen/noise.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "cqa/preprocess.h"

namespace cqa {

namespace {

/// Step 2 + Step 3 of §6.1 for one relation: select ⌈p·|rows|⌉ of the
/// given facts and inflate each one's block to a random size in [ℓ, u],
/// copying non-key values from donors with different keys.
void InflateBlocks(Database* db, size_t rid, const std::vector<size_t>& rows,
                   const NoiseOptions& options, Rng& rng,
                   NoiseStats* stats) {
  if (rows.empty()) return;
  const Relation& rel = db->relation(rid);
  const RelationSchema& rs = rel.schema();
  const size_t original_size = rel.size();

  size_t num_selected = std::min(
      rows.size(),
      static_cast<size_t>(
          std::ceil(options.p * static_cast<double>(rows.size()))));
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(rows.size(), num_selected);
  stats->selected_facts += num_selected;

  for (size_t pick : picks) {
    size_t row = rows[pick];
    Tuple key = rel.KeyOf(row);

    size_t s = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_block_size),
                       static_cast<int64_t>(options.max_block_size)));
    std::unordered_set<Tuple, TupleHash> block_members;
    block_members.insert(rel.row(row));
    for (size_t j = 0; j + 1 < s; ++j) {
      // Donor: a random original fact of R with a different key value,
      // so the copied non-key values keep joining like real data.
      Tuple candidate;
      bool found = false;
      for (int attempt = 0; attempt < 32 && !found; ++attempt) {
        size_t donor = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(original_size) - 1));
        if (rel.KeyOf(donor) == key) continue;
        candidate = rel.row(donor);
        for (size_t i = 0; i < rs.key_positions().size(); ++i) {
          candidate[rs.key_positions()[i]] = key[i];
        }
        // Databases are sets: skip duplicates within the block.
        if (block_members.count(candidate) > 0) continue;
        found = true;
      }
      if (!found) break;  // Not enough distinct donors; leave block short.
      block_members.insert(candidate);
      db->Insert(rid, std::move(candidate));
      ++stats->facts_added;
    }
  }
}

}  // namespace

NoiseStats AddQueryAwareNoise(Database* db, const ConjunctiveQuery& q,
                              const NoiseOptions& options, Rng& rng) {
  CQA_CHECK(db != nullptr);
  CQA_CHECK(options.p > 0.0 && options.p <= 1.0);
  CQA_CHECK(options.min_block_size >= 2);
  CQA_CHECK(options.min_block_size <= options.max_block_size);
  NoiseStats stats;

  // Step 1: the query-relevant facts, grouped per relation. Relations
  // without a key cannot host conflicts and are skipped.
  PreprocessResult syn = BuildSynopses(*db, q);
  std::vector<std::vector<size_t>> relevant(db->NumRelations());
  for (const FactRef& f : syn.ImageFactRefs()) {
    if (!db->relation(f.relation_id).schema().has_key()) continue;
    relevant[f.relation_id].push_back(f.row);
    ++stats.relevant_facts;
  }

  for (size_t rid = 0; rid < relevant.size(); ++rid) {
    InflateBlocks(db, rid, relevant[rid], options, rng, &stats);
  }
  // The injected facts sat in the relations' tails; seal them into chunks
  // so the noisy instance is as columnar as the base it extends.
  db->SealStorage();
  return stats;
}

NoiseStats AddObliviousNoise(Database* db, const NoiseOptions& options,
                             Rng& rng) {
  CQA_CHECK(db != nullptr);
  CQA_CHECK(options.p > 0.0 && options.p <= 1.0);
  CQA_CHECK(options.min_block_size >= 2);
  CQA_CHECK(options.min_block_size <= options.max_block_size);
  NoiseStats stats;
  for (size_t rid = 0; rid < db->NumRelations(); ++rid) {
    const Relation& rel = db->relation(rid);
    if (!rel.schema().has_key()) continue;
    std::vector<size_t> rows(rel.size());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    stats.relevant_facts += rows.size();
    InflateBlocks(db, rid, rows, options, rng, &stats);
  }
  db->SealStorage();
  return stats;
}

}  // namespace cqa
