#ifndef CQABENCH_GEN_DATASET_H_
#define CQABENCH_GEN_DATASET_H_

#include <memory>
#include <vector>

#include "storage/database.h"
#include "storage/schema.h"

namespace cqa {

/// A declared foreign-key dependency: attribute `attr` of relation `rel`
/// references attribute `target_attr` of `target_rel`. The static query
/// generator derives joinable attribute pairs from these (Appendix D).
struct ForeignKey {
  size_t rel = 0;
  size_t attr = 0;
  size_t target_rel = 0;
  size_t target_attr = 0;
};

/// A generated benchmark instance: schema (with primary keys Σ), data, and
/// the foreign-key graph. The schema is heap-allocated so the Database's
/// back-pointer stays valid as the Dataset moves.
struct Dataset {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> db;
  std::vector<ForeignKey> foreign_keys;
};

}  // namespace cqa

#endif  // CQABENCH_GEN_DATASET_H_
