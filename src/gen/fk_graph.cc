#include "gen/fk_graph.h"

#include <algorithm>
#include <map>

namespace cqa {

namespace {

/// Minimal union-find over dense indexes.
class UnionFind {
 public:
  size_t Find(size_t x) {
    if (x >= parent_.size()) {
      size_t old = parent_.size();
      parent_.resize(x + 1);
      for (size_t i = old; i <= x; ++i) parent_[i] = i;
    }
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

FkGraph FkGraph::Build(const std::vector<ForeignKey>& foreign_keys) {
  // Intern AttrRefs and union endpoints of every dependency.
  std::map<AttrRef, size_t> ids;
  std::vector<AttrRef> refs;
  auto intern = [&](AttrRef r) {
    auto [it, inserted] = ids.emplace(r, refs.size());
    if (inserted) refs.push_back(r);
    return it->second;
  };
  UnionFind uf;
  for (const ForeignKey& fk : foreign_keys) {
    size_t a = intern(AttrRef{fk.rel, fk.attr});
    size_t b = intern(AttrRef{fk.target_rel, fk.target_attr});
    uf.Find(a);
    uf.Find(b);
    uf.Union(a, b);
  }

  std::map<size_t, std::vector<AttrRef>> grouped;
  for (size_t i = 0; i < refs.size(); ++i) {
    grouped[uf.Find(i)].push_back(refs[i]);
  }
  FkGraph graph;
  for (auto& [root, members] : grouped) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    graph.classes_.push_back(std::move(members));
  }
  return graph;
}

}  // namespace cqa
