#include "gen/text_pools.h"

#include <sstream>

#include "common/macros.h"

namespace cqa {
namespace text_pools {

namespace {

const std::vector<std::string>& Pool(
    const std::vector<std::string>*& cached,
    std::vector<std::string> (*make)()) {
  if (cached == nullptr) cached = new std::vector<std::string>(make());
  return *cached;
}

std::string Pick(const std::vector<std::string>& pool, Rng& rng) {
  return pool[rng.UniformIndex(pool.size())];
}

}  // namespace

const std::vector<std::string>& Regions() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};
  });
}

const std::vector<std::string>& Nations() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{
        "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
        "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
        "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
        "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
        "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
        "UNITED STATES"};
  });
}

size_t NationRegion(size_t nation_index) {
  // Region assignment from the TPC-H specification's nation table.
  static constexpr size_t kRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                         4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
  CQA_CHECK(nation_index < 25);
  return kRegion[nation_index];
}

const std::vector<std::string>& MarketSegments() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "MACHINERY", "HOUSEHOLD"};
  });
}

const std::vector<std::string>& OrderPriorities() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECIFIED", "5-LOW"};
  });
}

const std::vector<std::string>& ShipModes() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"REG AIR", "AIR",   "RAIL", "SHIP",
                                    "TRUCK",   "MAIL",  "FOB"};
  });
}

const std::vector<std::string>& ShipInstructions() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"DELIVER IN PERSON", "COLLECT COD",
                                    "NONE", "TAKE BACK RETURN"};
  });
}

std::string RandomPartType(Rng& rng) {
  static const char* kSyl1[] = {"STANDARD", "SMALL", "MEDIUM",
                                "LARGE",    "ECONOMY", "PROMO"};
  static const char* kSyl2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                "POLISHED", "BRUSHED"};
  static const char* kSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
  std::ostringstream os;
  os << kSyl1[rng.UniformIndex(6)] << ' ' << kSyl2[rng.UniformIndex(5)] << ' '
     << kSyl3[rng.UniformIndex(5)];
  return os.str();
}

std::string RandomContainer(Rng& rng) {
  static const char* kSize[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
  static const char* kKind[] = {"CASE", "BOX", "BAG", "JAR",
                                "PKG",  "PACK", "CAN", "DRUM"};
  std::ostringstream os;
  os << kSize[rng.UniformIndex(5)] << ' ' << kKind[rng.UniformIndex(8)];
  return os.str();
}

std::string RandomBrand(Rng& rng) {
  std::ostringstream os;
  os << "Brand#" << rng.UniformInt(1, 5) << rng.UniformInt(1, 5);
  return os.str();
}

std::string RandomManufacturer(Rng& rng) {
  std::ostringstream os;
  os << "Manufacturer#" << rng.UniformInt(1, 5);
  return os.str();
}

namespace {
const std::vector<std::string>& ColorWords() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{
        "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
        "black",  "blanched", "blue",      "blush",  "brown",  "burlywood",
        "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
        "cream",  "cyan",   "dark",       "drab",   "firebrick", "floral",
        "forest", "frosted", "gainsboro", "ghost",  "goldenrod", "green",
        "grey",   "honeydew", "hot",      "indian", "ivory",  "khaki"};
  });
}

const std::vector<std::string>& CommentWords() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{
        "carefully", "quickly",  "furiously", "slyly",   "blithely",
        "deposits",  "requests", "packages",  "accounts", "instructions",
        "foxes",     "pinto",    "beans",     "theodolites", "dependencies",
        "platelets", "ideas",    "sleep",     "haggle",  "nag",
        "boost",     "wake",     "cajole",    "detect",  "integrate"};
  });
}
}  // namespace

std::string RandomPartName(Rng& rng) {
  const std::vector<std::string>& words = ColorWords();
  std::ostringstream os;
  os << Pick(words, rng) << ' ' << Pick(words, rng) << ' ' << Pick(words, rng);
  return os.str();
}

std::string RandomComment(Rng& rng, size_t words) {
  const std::vector<std::string>& pool = CommentWords();
  std::ostringstream os;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) os << ' ';
    os << Pick(pool, rng);
  }
  return os.str();
}

std::string RandomPhone(Rng& rng, int64_t country_code) {
  std::ostringstream os;
  os << (10 + country_code) << '-' << rng.UniformInt(100, 999) << '-'
     << rng.UniformInt(100, 999) << '-' << rng.UniformInt(1000, 9999);
  return os.str();
}

std::string RandomAddress(Rng& rng) {
  static const char* kAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789 ,";
  size_t len = static_cast<size_t>(rng.UniformInt(10, 24));
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s.push_back(kAlphabet[rng.UniformIndex(38)]);
  return s;
}

std::string Padded(const char* prefix, int64_t number, int width) {
  std::ostringstream os;
  os << prefix;
  std::string digits = std::to_string(number);
  for (int i = static_cast<int>(digits.size()); i < width; ++i) os << '0';
  os << digits;
  return os.str();
}

const std::vector<std::string>& States() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"AL", "CA", "FL", "GA", "IL", "MI",
                                    "NY", "OH", "TN", "TX", "VA", "WA"};
  });
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"James",  "Mary",  "Robert", "Patricia",
                                    "John",   "Linda", "Michael", "Barbara",
                                    "David",  "Susan", "Richard", "Jessica",
                                    "Joseph", "Sarah", "Thomas", "Karen"};
  });
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"Smith",  "Johnson", "Williams", "Brown",
                                    "Jones",  "Garcia",  "Miller",   "Davis",
                                    "Lopez",  "Wilson",  "Anderson", "Taylor",
                                    "Moore",  "Jackson", "Martin",   "Lee"};
  });
}

const std::vector<std::string>& ItemCategories() {
  static const std::vector<std::string>* cached = nullptr;
  return Pool(cached, [] {
    return std::vector<std::string>{"Books", "Children", "Electronics",
                                    "Home",  "Jewelry",  "Men",
                                    "Music", "Shoes",    "Sports", "Women"};
  });
}

}  // namespace text_pools

namespace dates {

int64_t DayOffsetToYmd(int64_t offset) {
  CQA_CHECK(offset >= 0);
  static constexpr int kMonthDays[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  int64_t year = kTpchStartYear;
  while (true) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    int64_t days_in_year = leap ? 366 : 365;
    if (offset < days_in_year) {
      for (int month = 0; month < 12; ++month) {
        int64_t dim = kMonthDays[month] + (month == 1 && leap ? 1 : 0);
        if (offset < dim) {
          return year * 10000 + (month + 1) * 100 + (offset + 1);
        }
        offset -= dim;
      }
    }
    offset -= days_in_year;
    ++year;
  }
}

int64_t RandomTpchDate(Rng& rng) {
  return DayOffsetToYmd(rng.UniformInt(0, kTpchNumDays - 1));
}

}  // namespace dates
}  // namespace cqa
