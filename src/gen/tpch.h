#ifndef CQABENCH_GEN_TPCH_H_
#define CQABENCH_GEN_TPCH_H_

#include "common/rng.h"
#include "gen/dataset.h"

namespace cqa {

/// Options for the TPC-H data generator.
///
/// Cardinalities follow the TPC-H 2.18 specification scaled by
/// `scale_factor` (1.0 = the paper's "1GB" instance, ~8.7M tuples):
///   supplier 10,000·SF   part 200,000·SF   partsupp 4/part
///   customer 150,000·SF  orders 10/customer  lineitem 1..7/order
/// region (5) and nation (25) are fixed. Every table has at least one row.
struct TpchOptions {
  double scale_factor = 0.001;
  uint64_t seed = 20210620;  // PODS'21, for reproducibility.
};

/// Builds the TPC-H schema: the eight relations in third normal form with
/// the official primary keys (Σ_H) — region(r_regionkey), nation
/// (n_nationkey), supplier(s_suppkey), customer(c_custkey), part
/// (p_partkey), partsupp(ps_partkey, ps_suppkey), orders(o_orderkey),
/// lineitem(l_orderkey, l_linenumber). Dates are int64 YYYYMMDD.
Schema MakeTpchSchema();

/// Generates a consistent (w.r.t. Σ_H), NULL-free TPC-H instance with
/// valid foreign keys, the role dbgen plays in the paper's §6.1.
Dataset GenerateTpch(const TpchOptions& options);

}  // namespace cqa

#endif  // CQABENCH_GEN_TPCH_H_
