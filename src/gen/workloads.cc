#include "gen/workloads.h"

#include "query/parser.h"

namespace cqa {

namespace {

NamedQuery Make(const Schema& schema, const char* name, const char* text) {
  return NamedQuery{name, MustParseCq(schema, text)};
}

}  // namespace

std::vector<NamedQuery> TpchValidationQueries(const Schema& schema) {
  std::vector<NamedQuery> queries;
  // Q1: pricing summary report — group keys returnflag/linestatus.
  queries.push_back(Make(schema, "Q1_H",
      "Q(RF, LS) :- lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD,"
      " RD, SI, SM, CM)."));
  // Q4: order priority checking — orders with at least one lineitem.
  queries.push_back(Make(schema, "Q4_H",
      "Q(OP) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD, SI, SM,"
      " CM)."));
  // Q5: local supplier volume — customer and supplier in the same nation,
  // nation in ASIA.
  queries.push_back(Make(schema, "Q5_H",
      "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD, SI, SM,"
      " CM),"
      " supplier(SK, SN, SA, NK, SP2, SB, SC2),"
      " nation(NK, NN, RK, NC),"
      " region(RK, 'ASIA', RC)."));
  // Q6: forecasting revenue change — Boolean, fixed discount.
  queries.push_back(Make(schema, "Q6_H",
      "Q() :- lineitem(OK, PK, SK, LN, QT, EP, 0.06, TX, RF, LS, SD, CD, RD,"
      " SI, SM, CM)."));
  // Q8: national market share — fixed part type, customer region AMERICA;
  // projects order date and the supplier's nation.
  queries.push_back(Make(schema, "Q8_H",
      "Q(OD, N2) :- part(PK, PN, PM, PB, 'ECONOMY ANODIZED STEEL', PS, PC2,"
      " PR, PCM),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD, SI, SM,"
      " CM),"
      " supplier(SK, SN, SA, NK2, SP2, SB, SC2),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " customer(CK, CN, CA, NK1, CP, CB, CS, CC),"
      " nation(NK1, N1, RK, NC1),"
      " nation(NK2, N2, RK2, NC2),"
      " region(RK, 'AMERICA', RC)."));
  // Q10: returned item reporting — customers with returned lineitems.
  queries.push_back(Make(schema, "Q10_H",
      "Q(CK, CN, NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, 'R', LS, SD, CD, RD, SI, SM,"
      " CM),"
      " nation(NK, NN, RK, NC)."));
  // Q12: shipping modes and order priority — MAIL lineitems, projecting
  // the order priority (the shipmode itself is pinned by the constant).
  queries.push_back(Make(schema, "Q12_H",
      "Q(OP) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD, SI,"
      " 'MAIL', CM)."));
  // Q14: promotion effect — lineitems joined with their part's type.
  queries.push_back(Make(schema, "Q14_H",
      "Q(PT) :- lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD,"
      " SI, SM, CM),"
      " part(PK, PN, PM, PB, PT, PS, PC2, PR, PCM)."));
  // Q19: discounted revenue — one branch of the original disjunction.
  queries.push_back(Make(schema, "Q19_H",
      "Q() :- lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD,"
      " 'DELIVER IN PERSON', 'AIR', CM),"
      " part(PK, PN, PM, PB, PT, PS, 'SM CASE', PR, PCM)."));
  return queries;
}

std::vector<NamedQuery> TpcdsValidationQueries(const Schema& schema) {
  std::vector<NamedQuery> queries;
  // Q1: customers of year-2000 store sales (store_returns reduced to
  // store_sales; the subset schema carries no returns table).
  queries.push_back(Make(schema, "Q1_DS",
      "Q(CID) :- store_sales(D, I, TN, C, S, P, QT, PR),"
      " customer(C, CID, 'James', LN, AD),"
      " store(S, SID, SN, ST),"
      " date_dim(D, DT, 2000, MO, DM)."));
  // Q33: manufacturers of Books sold in 1998.
  queries.push_back(Make(schema, "Q33_DS",
      "Q(MID) :- store_sales(D, I, TN, C, S, P, QT, PR),"
      " item(I, IID, BR, 'Books', MID, IP),"
      " date_dim(D, DT, 1998, MO, DM)."));
  // Q60: Music items sold over the web in 1999 to known customers.
  queries.push_back(Make(schema, "Q60_DS",
      "Q(IID) :- web_sales(D, I, ON, C, W, P, QT, PR),"
      " item(I, IID, BR, 'Music', MID, IP),"
      " date_dim(D, DT, 1999, MO, DM),"
      " customer(C, CID, FN, LN, AD)."));
  // Q62: warehouses shipping web sales in 2001.
  queries.push_back(Make(schema, "Q62_DS",
      "Q(WN) :- web_sales(D, I, ON, C, W, P, QT, PR),"
      " warehouse(W, WN, SQ),"
      " date_dim(D, DT, 2001, MO, DM)."));
  // Q65: (store, item) pairs with year-2000 sales.
  queries.push_back(Make(schema, "Q65_DS",
      "Q(SN, IID) :- store_sales(D, I, TN, C, S, P, QT, PR),"
      " store(S, SID, SN, ST),"
      " item(I, IID, BR, CA, MID, IP),"
      " date_dim(D, DT, 2000, MO, DM)."));
  // Q66: warehouse shipping report by month, catalog channel, 2002.
  queries.push_back(Make(schema, "Q66_DS",
      "Q(WN, MO) :- catalog_sales(D, I, ON, C, W, P, QT, PR),"
      " warehouse(W, WN, SQ),"
      " date_dim(D, DT, 2002, MO, DM)."));
  // Q68: customer names with 1998 store purchases.
  queries.push_back(Make(schema, "Q68_DS",
      "Q(FN, LN) :- store_sales(D, I, TN, C, S, P, QT, PR),"
      " customer(C, CID, FN, LN, AD),"
      " customer_address(AD, ST, CO, GO),"
      " date_dim(D, DT, 1998, MO, DM),"
      " store(S, SID, SNAME, ST2)."));
  // Q82: items in year-2000 inventory snapshots that also sold in store.
  queries.push_back(Make(schema, "Q82_DS",
      "Q(IID, IP) :- item(I, IID, BR, CA, MID, IP),"
      " inventory(D, I, W, QOH),"
      " store_sales(D2, I, TN, C, S, P, QT, PR),"
      " date_dim(D, DT, 2000, MO, DM)."));
  return queries;
}

}  // namespace cqa
