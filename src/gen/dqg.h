#ifndef CQABENCH_GEN_DQG_H_
#define CQABENCH_GEN_DQG_H_

#include <vector>

#include "common/rng.h"
#include "query/cq.h"
#include "query/evaluator.h"
#include "storage/database.h"

namespace cqa {

struct DqgOptions {
  /// Number of random projections explored (the paper runs its pool search
  /// for t hours; we bound by candidates instead).
  size_t pool_size = 256;
};

/// One output of the dynamic query generator.
struct DqgResult {
  ConjunctiveQuery query;
  /// Achieved balance of `query` w.r.t. the database.
  double balance = 0.0;
  /// The target balance this query was selected for.
  double target = 0.0;
};

/// The dynamic query generator (DQG) of §6.1: starting from `q`, explores
/// a pool of re-projections (random subsets of the attributes of the
/// relations occurring in q) and, for each target balance b_i, returns the
/// pool query whose balance w.r.t. `db` is closest to b_i.
///
/// The balance of a projection is |Q(D)| / |∪H_i| where the homomorphic
/// images do not depend on the projection, so the homomorphisms are
/// enumerated once and every candidate is scored by counting the distinct
/// projections of their answer assignments — equivalent to running the
/// preprocessing per candidate, only much faster.
std::vector<DqgResult> GenerateBalancedQueries(
    const Database& db, const ConjunctiveQuery& q,
    const std::vector<double>& targets, const DqgOptions& options, Rng& rng,
    DatabaseIndexCache* cache = nullptr);

}  // namespace cqa

#endif  // CQABENCH_GEN_DQG_H_
