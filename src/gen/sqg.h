#ifndef CQABENCH_GEN_SQG_H_
#define CQABENCH_GEN_SQG_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "gen/fk_graph.h"
#include "query/cq.h"
#include "storage/database.h"

namespace cqa {

/// The function f of Appendix D: candidate constant values per attribute,
/// harvested from the database's active domain (the paper instantiates f
/// with "the set of constants occurring in D_H at attribute R[i]").
class ConstantPool {
 public:
  /// Collects up to `max_per_attr` distinct values per attribute.
  static ConstantPool FromDatabase(const Database& db,
                                   size_t max_per_attr = 512);

  /// Candidate constants for attribute `attr` of relation `rel`; nullptr
  /// when none were harvested.
  const std::vector<Value>* Get(size_t rel, size_t attr) const;

 private:
  std::unordered_map<uint64_t, std::vector<Value>> pool_;
};

/// Static query parameters (Appendix D): j join conditions, c occurrences
/// of constants, and the fraction of attributes to project.
struct SqgOptions {
  size_t num_joins = 2;
  size_t num_constants = 2;
  double projection = 1.0;
  /// Retry budget for drawing non-redundant join/constant conditions.
  size_t max_attempts = 64;
};

/// The static query generator (SQG) of Appendix D.
///
/// Draws `num_joins` join conditions from the joinable attribute pairs of
/// the FK graph (at most one atom per relation, reused across conditions),
/// then `num_constants` constant conditions R[k] = a with a drawn from the
/// constant pool, then projects ⌈projection·|T|⌉ of the attributes of the
/// participating relations. Returns nullopt when the requested number of
/// fresh conditions cannot be drawn within the attempt budget.
std::optional<ConjunctiveQuery> GenerateStaticQuery(
    const Schema& schema, const FkGraph& fk_graph, const ConstantPool& pool,
    const SqgOptions& options, Rng& rng);

}  // namespace cqa

#endif  // CQABENCH_GEN_SQG_H_
