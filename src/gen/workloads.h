#ifndef CQABENCH_GEN_WORKLOADS_H_
#define CQABENCH_GEN_WORKLOADS_H_

#include <string>
#include <vector>

#include "query/cq.h"
#include "storage/schema.h"

namespace cqa {

struct NamedQuery {
  std::string name;
  ConjunctiveQuery query;
};

/// The validation workload of Appendix F: conjunctive-query instantiations
/// of positive TPC-H templates {1, 4, 5, 6, 8, 10, 12, 14, 19}, with
/// aggregates removed and inequality predicates dropped (CQs cannot
/// express them); constants are drawn from the vocabulary of this repo's
/// TPC-H generator so the queries are non-empty on generated instances.
/// `schema` must be the schema returned by MakeTpchSchema().
std::vector<NamedQuery> TpchValidationQueries(const Schema& schema);

/// CQ instantiations of positive TPC-DS templates
/// {1, 33, 60, 62, 65, 66, 68, 82} over the TPC-DS-subset schema, reduced
/// the same way. `schema` must be the schema returned by MakeTpcdsSchema().
std::vector<NamedQuery> TpcdsValidationQueries(const Schema& schema);

}  // namespace cqa

#endif  // CQABENCH_GEN_WORKLOADS_H_
