#ifndef CQABENCH_GEN_FK_GRAPH_H_
#define CQABENCH_GEN_FK_GRAPH_H_

#include <vector>

#include "gen/dataset.h"

namespace cqa {

/// An attribute position of a schema relation.
struct AttrRef {
  size_t rel = 0;
  size_t attr = 0;

  friend bool operator==(const AttrRef& a, const AttrRef& b) {
    return a.rel == b.rel && a.attr == b.attr;
  }
  friend bool operator<(const AttrRef& a, const AttrRef& b) {
    if (a.rel != b.rel) return a.rel < b.rel;
    return a.attr < b.attr;
  }
};

/// Joinable-attribute analysis used by the static query generator
/// (Appendix D): attributes connected through foreign-key dependencies
/// form an equivalence class, and any two attributes of a class are
/// joinable (e.g. c_nationkey ~ s_nationkey via nation.n_nationkey).
class FkGraph {
 public:
  /// Builds the classes by union-find over the declared dependencies.
  /// Classes with fewer than two members are dropped (nothing to join).
  static FkGraph Build(const std::vector<ForeignKey>& foreign_keys);

  const std::vector<std::vector<AttrRef>>& classes() const {
    return classes_;
  }
  bool empty() const { return classes_.empty(); }

 private:
  std::vector<std::vector<AttrRef>> classes_;
};

}  // namespace cqa

#endif  // CQABENCH_GEN_FK_GRAPH_H_
