#include "gen/tpcds.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"
#include "gen/text_pools.h"

namespace cqa {

namespace {

using text_pools::Padded;

constexpr ValueType kInt = ValueType::kInt;
constexpr ValueType kDouble = ValueType::kDouble;
constexpr ValueType kString = ValueType::kString;

size_t Scaled(double base, double scale_factor) {
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(base * scale_factor)));
}

constexpr int64_t kStartYear = 1998;
constexpr int64_t kNumYears = 5;
constexpr int64_t kDaysPerYear = 365;  // Calendar detail is irrelevant here.
constexpr int64_t kNumDays = kNumYears * kDaysPerYear;

}  // namespace

Schema MakeTpcdsSchema() {
  Schema schema;
  schema.AddRelation(RelationSchema("date_dim",
                                    {{"d_date_sk", kInt},
                                     {"d_date", kInt},
                                     {"d_year", kInt},
                                     {"d_moy", kInt},
                                     {"d_dom", kInt}},
                                    {0}));
  schema.AddRelation(RelationSchema("item",
                                    {{"i_item_sk", kInt},
                                     {"i_item_id", kString},
                                     {"i_brand_id", kInt},
                                     {"i_category", kString},
                                     {"i_manufact_id", kInt},
                                     {"i_current_price", kDouble}},
                                    {0}));
  schema.AddRelation(RelationSchema("customer",
                                    {{"c_customer_sk", kInt},
                                     {"c_customer_id", kString},
                                     {"c_first_name", kString},
                                     {"c_last_name", kString},
                                     {"c_current_addr_sk", kInt}},
                                    {0}));
  schema.AddRelation(RelationSchema("customer_address",
                                    {{"ca_address_sk", kInt},
                                     {"ca_state", kString},
                                     {"ca_county", kString},
                                     {"ca_gmt_offset", kInt}},
                                    {0}));
  schema.AddRelation(RelationSchema("store",
                                    {{"s_store_sk", kInt},
                                     {"s_store_id", kString},
                                     {"s_store_name", kString},
                                     {"s_state", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("warehouse",
                                    {{"w_warehouse_sk", kInt},
                                     {"w_warehouse_name", kString},
                                     {"w_warehouse_sq_ft", kInt}},
                                    {0}));
  schema.AddRelation(RelationSchema("promotion",
                                    {{"p_promo_sk", kInt},
                                     {"p_promo_id", kString},
                                     {"p_channel_email", kString},
                                     {"p_channel_event", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("store_sales",
                                    {{"ss_sold_date_sk", kInt},
                                     {"ss_item_sk", kInt},
                                     {"ss_ticket_number", kInt},
                                     {"ss_customer_sk", kInt},
                                     {"ss_store_sk", kInt},
                                     {"ss_promo_sk", kInt},
                                     {"ss_quantity", kInt},
                                     {"ss_ext_sales_price", kDouble}},
                                    {1, 2}));
  schema.AddRelation(RelationSchema("catalog_sales",
                                    {{"cs_sold_date_sk", kInt},
                                     {"cs_item_sk", kInt},
                                     {"cs_order_number", kInt},
                                     {"cs_bill_customer_sk", kInt},
                                     {"cs_warehouse_sk", kInt},
                                     {"cs_promo_sk", kInt},
                                     {"cs_quantity", kInt},
                                     {"cs_ext_sales_price", kDouble}},
                                    {1, 2}));
  schema.AddRelation(RelationSchema("web_sales",
                                    {{"ws_sold_date_sk", kInt},
                                     {"ws_item_sk", kInt},
                                     {"ws_order_number", kInt},
                                     {"ws_bill_customer_sk", kInt},
                                     {"ws_warehouse_sk", kInt},
                                     {"ws_promo_sk", kInt},
                                     {"ws_quantity", kInt},
                                     {"ws_ext_sales_price", kDouble}},
                                    {1, 2}));
  schema.AddRelation(RelationSchema("inventory",
                                    {{"inv_date_sk", kInt},
                                     {"inv_item_sk", kInt},
                                     {"inv_warehouse_sk", kInt},
                                     {"inv_quantity_on_hand", kInt}},
                                    {0, 1, 2}));
  return schema;
}

Dataset GenerateTpcds(const TpcdsOptions& options) {
  Dataset dataset;
  dataset.schema = std::make_unique<Schema>(MakeTpcdsSchema());
  dataset.db = std::make_unique<Database>(dataset.schema.get());
  Schema& schema = *dataset.schema;
  Database& db = *dataset.db;
  Rng rng(options.seed);

  const size_t num_items = Scaled(18000, options.scale_factor);
  const size_t num_customers = Scaled(100000, options.scale_factor);
  const size_t num_addresses = Scaled(50000, options.scale_factor);
  const size_t num_stores = std::max<size_t>(2, Scaled(12, options.scale_factor));
  const size_t num_warehouses = 5;
  const size_t num_promos = Scaled(300, options.scale_factor);
  const size_t num_store_sales = Scaled(2880000, options.scale_factor);
  const size_t num_catalog_sales = Scaled(1440000, options.scale_factor);
  const size_t num_web_sales = Scaled(720000, options.scale_factor);

  // date_dim: kNumYears years of kDaysPerYear days each.
  for (int64_t day = 0; day < kNumDays; ++day) {
    int64_t year = kStartYear + day / kDaysPerYear;
    int64_t doy = day % kDaysPerYear;
    int64_t moy = doy / 31 + 1;  // Uniform 31-day "months"; 12th absorbs rest.
    if (moy > 12) moy = 12;
    int64_t dom = doy - (moy - 1) * 31 + 1;
    db.Insert("date_dim", {Value(day + 1),
                           Value(year * 10000 + moy * 100 + dom), Value(year),
                           Value(moy), Value(dom)});
  }

  const auto& categories = text_pools::ItemCategories();
  for (size_t i = 1; i <= num_items; ++i) {
    db.Insert("item",
              {Value(static_cast<int64_t>(i)),
               Value(Padded("ITEM", static_cast<int64_t>(i), 8)),
               Value(rng.UniformInt(1001001, 1010010)),
               Value(categories[rng.UniformIndex(categories.size())]),
               Value(rng.UniformInt(1, 1000)),
               Value(rng.UniformInt(100, 30000) / 100.0)});
  }

  const auto& states = text_pools::States();
  for (size_t a = 1; a <= num_addresses; ++a) {
    db.Insert("customer_address",
              {Value(static_cast<int64_t>(a)),
               Value(states[rng.UniformIndex(states.size())]),
               Value(Padded("County", rng.UniformInt(1, 50), 3)),
               Value(rng.UniformInt(-10, 0))});
  }

  const auto& first_names = text_pools::FirstNames();
  const auto& last_names = text_pools::LastNames();
  for (size_t c = 1; c <= num_customers; ++c) {
    db.Insert("customer",
              {Value(static_cast<int64_t>(c)),
               Value(Padded("CUST", static_cast<int64_t>(c), 10)),
               Value(first_names[rng.UniformIndex(first_names.size())]),
               Value(last_names[rng.UniformIndex(last_names.size())]),
               Value(rng.UniformInt(1, static_cast<int64_t>(num_addresses)))});
  }

  for (size_t s = 1; s <= num_stores; ++s) {
    db.Insert("store",
              {Value(static_cast<int64_t>(s)),
               Value(Padded("STORE", static_cast<int64_t>(s), 4)),
               Value("Store " + std::to_string(s)),
               Value(states[rng.UniformIndex(states.size())])});
  }

  for (size_t w = 1; w <= num_warehouses; ++w) {
    db.Insert("warehouse", {Value(static_cast<int64_t>(w)),
                            Value("Warehouse " + std::to_string(w)),
                            Value(rng.UniformInt(50000, 1000000))});
  }

  static const char* kYesNo[2] = {"Y", "N"};
  for (size_t p = 1; p <= num_promos; ++p) {
    db.Insert("promotion",
              {Value(static_cast<int64_t>(p)),
               Value(Padded("PROMO", static_cast<int64_t>(p), 6)),
               Value(std::string(kYesNo[rng.UniformIndex(2)])),
               Value(std::string(kYesNo[rng.UniformIndex(2)]))});
  }

  // Fact tables. Composite keys (item, ticket/order number) never collide
  // because each row draws a fresh ticket number.
  // Values are constructed in place: moving freshly built Value
  // temporaries through push_back trips a GCC 12 -Wmaybe-uninitialized
  // false positive in the variant's string member.
  auto sales_row = [&](int64_t ticket, int64_t location_count) {
    Tuple t;
    t.reserve(8);
    t.emplace_back(rng.UniformInt(1, kNumDays));                     // date
    t.emplace_back(rng.UniformInt(1, static_cast<int64_t>(num_items)));
    t.emplace_back(ticket);
    t.emplace_back(rng.UniformInt(1, static_cast<int64_t>(num_customers)));
    t.emplace_back(rng.UniformInt(1, location_count));               // store/wh
    t.emplace_back(rng.UniformInt(1, static_cast<int64_t>(num_promos)));
    t.emplace_back(rng.UniformInt(1, 100));                          // quantity
    t.emplace_back(rng.UniformInt(100, 1000000) / 100.0);            // price
    return t;
  };
  for (size_t i = 1; i <= num_store_sales; ++i) {
    db.Insert("store_sales", sales_row(static_cast<int64_t>(i),
                                       static_cast<int64_t>(num_stores)));
  }
  for (size_t i = 1; i <= num_catalog_sales; ++i) {
    db.Insert("catalog_sales", sales_row(static_cast<int64_t>(i),
                                         static_cast<int64_t>(num_warehouses)));
  }
  for (size_t i = 1; i <= num_web_sales; ++i) {
    db.Insert("web_sales", sales_row(static_cast<int64_t>(i),
                                     static_cast<int64_t>(num_warehouses)));
  }

  // inventory: a few sampled (date, item, warehouse) snapshots per item.
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  for (size_t i = 1; i <= num_items; ++i) {
    for (size_t k = 0; k < 3; ++k) {
      int64_t date = rng.UniformInt(1, kNumDays);
      int64_t wh = rng.UniformInt(1, static_cast<int64_t>(num_warehouses));
      if (!seen.emplace(date, static_cast<int64_t>(i), wh).second) continue;
      db.Insert("inventory", {Value(date), Value(static_cast<int64_t>(i)),
                              Value(wh), Value(rng.UniformInt(0, 1000))});
    }
  }

  auto fk = [&](const char* rel, const char* attr, const char* target_rel,
                const char* target_attr) {
    size_t r = schema.RelationId(rel);
    size_t t = schema.RelationId(target_rel);
    dataset.foreign_keys.push_back(
        ForeignKey{r, *schema.relation(r).FindAttribute(attr), t,
                   *schema.relation(t).FindAttribute(target_attr)});
  };
  fk("customer", "c_current_addr_sk", "customer_address", "ca_address_sk");
  fk("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk");
  fk("store_sales", "ss_item_sk", "item", "i_item_sk");
  fk("store_sales", "ss_customer_sk", "customer", "c_customer_sk");
  fk("store_sales", "ss_store_sk", "store", "s_store_sk");
  fk("store_sales", "ss_promo_sk", "promotion", "p_promo_sk");
  fk("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk");
  fk("catalog_sales", "cs_item_sk", "item", "i_item_sk");
  fk("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk");
  fk("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk");
  fk("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk");
  fk("web_sales", "ws_item_sk", "item", "i_item_sk");
  fk("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk");
  fk("web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("web_sales", "ws_promo_sk", "promotion", "p_promo_sk");
  fk("inventory", "inv_date_sk", "date_dim", "d_date_sk");
  fk("inventory", "inv_item_sk", "item", "i_item_sk");
  fk("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk");

  // Seal so generated instances carry encodings and chunk statistics from
  // the start instead of living in the plain tail buffers.
  db.SealStorage();
  CQA_CHECK(db.SatisfiesKeys());
  return dataset;
}

}  // namespace cqa
