#include "gen/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "gen/text_pools.h"

namespace cqa {

namespace {

using text_pools::Padded;

constexpr ValueType kInt = ValueType::kInt;
constexpr ValueType kDouble = ValueType::kDouble;
constexpr ValueType kString = ValueType::kString;

size_t Scaled(double base, double scale_factor) {
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(base * scale_factor)));
}

}  // namespace

Schema MakeTpchSchema() {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "region",
      {{"r_regionkey", kInt}, {"r_name", kString}, {"r_comment", kString}},
      {0}));
  schema.AddRelation(RelationSchema("nation",
                                    {{"n_nationkey", kInt},
                                     {"n_name", kString},
                                     {"n_regionkey", kInt},
                                     {"n_comment", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("supplier",
                                    {{"s_suppkey", kInt},
                                     {"s_name", kString},
                                     {"s_address", kString},
                                     {"s_nationkey", kInt},
                                     {"s_phone", kString},
                                     {"s_acctbal", kDouble},
                                     {"s_comment", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("customer",
                                    {{"c_custkey", kInt},
                                     {"c_name", kString},
                                     {"c_address", kString},
                                     {"c_nationkey", kInt},
                                     {"c_phone", kString},
                                     {"c_acctbal", kDouble},
                                     {"c_mktsegment", kString},
                                     {"c_comment", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("part",
                                    {{"p_partkey", kInt},
                                     {"p_name", kString},
                                     {"p_mfgr", kString},
                                     {"p_brand", kString},
                                     {"p_type", kString},
                                     {"p_size", kInt},
                                     {"p_container", kString},
                                     {"p_retailprice", kDouble},
                                     {"p_comment", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("partsupp",
                                    {{"ps_partkey", kInt},
                                     {"ps_suppkey", kInt},
                                     {"ps_availqty", kInt},
                                     {"ps_supplycost", kDouble},
                                     {"ps_comment", kString}},
                                    {0, 1}));
  schema.AddRelation(RelationSchema("orders",
                                    {{"o_orderkey", kInt},
                                     {"o_custkey", kInt},
                                     {"o_orderstatus", kString},
                                     {"o_totalprice", kDouble},
                                     {"o_orderdate", kInt},
                                     {"o_orderpriority", kString},
                                     {"o_clerk", kString},
                                     {"o_shippriority", kInt},
                                     {"o_comment", kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("lineitem",
                                    {{"l_orderkey", kInt},
                                     {"l_partkey", kInt},
                                     {"l_suppkey", kInt},
                                     {"l_linenumber", kInt},
                                     {"l_quantity", kDouble},
                                     {"l_extendedprice", kDouble},
                                     {"l_discount", kDouble},
                                     {"l_tax", kDouble},
                                     {"l_returnflag", kString},
                                     {"l_linestatus", kString},
                                     {"l_shipdate", kInt},
                                     {"l_commitdate", kInt},
                                     {"l_receiptdate", kInt},
                                     {"l_shipinstruct", kString},
                                     {"l_shipmode", kString},
                                     {"l_comment", kString}},
                                    {0, 3}));
  return schema;
}

Dataset GenerateTpch(const TpchOptions& options) {
  Dataset dataset;
  dataset.schema = std::make_unique<Schema>(MakeTpchSchema());
  dataset.db = std::make_unique<Database>(dataset.schema.get());
  Schema& schema = *dataset.schema;
  Database& db = *dataset.db;
  Rng rng(options.seed);

  const size_t num_suppliers = Scaled(10000, options.scale_factor);
  const size_t num_parts = Scaled(200000, options.scale_factor);
  const size_t num_customers = Scaled(150000, options.scale_factor);
  const size_t orders_per_customer = 10;

  // region.
  const auto& regions = text_pools::Regions();
  for (size_t r = 0; r < regions.size(); ++r) {
    db.Insert("region",
              {Value(static_cast<int64_t>(r)), Value(regions[r]),
               Value(text_pools::RandomComment(rng))});
  }

  // nation.
  const auto& nations = text_pools::Nations();
  for (size_t n = 0; n < nations.size(); ++n) {
    db.Insert("nation",
              {Value(static_cast<int64_t>(n)), Value(nations[n]),
               Value(static_cast<int64_t>(text_pools::NationRegion(n))),
               Value(text_pools::RandomComment(rng))});
  }

  // supplier.
  for (size_t s = 1; s <= num_suppliers; ++s) {
    int64_t nation = rng.UniformInt(0, 24);
    db.Insert("supplier",
              {Value(static_cast<int64_t>(s)),
               Value(Padded("Supplier#", static_cast<int64_t>(s), 9)),
               Value(text_pools::RandomAddress(rng)), Value(nation),
               Value(text_pools::RandomPhone(rng, nation)),
               Value(rng.UniformInt(-99999, 999999) / 100.0),
               Value(text_pools::RandomComment(rng))});
  }

  // customer.
  const auto& segments = text_pools::MarketSegments();
  for (size_t c = 1; c <= num_customers; ++c) {
    int64_t nation = rng.UniformInt(0, 24);
    db.Insert("customer",
              {Value(static_cast<int64_t>(c)),
               Value(Padded("Customer#", static_cast<int64_t>(c), 9)),
               Value(text_pools::RandomAddress(rng)), Value(nation),
               Value(text_pools::RandomPhone(rng, nation)),
               Value(rng.UniformInt(-99999, 999999) / 100.0),
               Value(segments[rng.UniformIndex(segments.size())]),
               Value(text_pools::RandomComment(rng))});
  }

  // part.
  for (size_t p = 1; p <= num_parts; ++p) {
    db.Insert("part",
              {Value(static_cast<int64_t>(p)),
               Value(text_pools::RandomPartName(rng)),
               Value(text_pools::RandomManufacturer(rng)),
               Value(text_pools::RandomBrand(rng)),
               Value(text_pools::RandomPartType(rng)),
               Value(rng.UniformInt(1, 50)),
               Value(text_pools::RandomContainer(rng)),
               Value(900.0 + static_cast<double>(p % 1000)),
               Value(text_pools::RandomComment(rng))});
  }

  // partsupp: up to 4 distinct suppliers per part.
  const size_t suppliers_per_part = std::min<size_t>(4, num_suppliers);
  for (size_t p = 1; p <= num_parts; ++p) {
    std::vector<size_t> chosen =
        rng.SampleWithoutReplacement(num_suppliers, suppliers_per_part);
    for (size_t s : chosen) {
      db.Insert("partsupp",
                {Value(static_cast<int64_t>(p)),
                 Value(static_cast<int64_t>(s + 1)),
                 Value(rng.UniformInt(1, 9999)),
                 Value(rng.UniformInt(100, 100000) / 100.0),
                 Value(text_pools::RandomComment(rng))});
    }
  }

  // orders + lineitem.
  const auto& priorities = text_pools::OrderPriorities();
  const auto& modes = text_pools::ShipModes();
  const auto& instructs = text_pools::ShipInstructions();
  static const char* kOrderStatus[3] = {"F", "O", "P"};
  static const char* kReturnFlags[3] = {"R", "A", "N"};
  static const char* kLineStatus[2] = {"O", "F"};
  int64_t orderkey = 0;
  for (size_t c = 1; c <= num_customers; ++c) {
    for (size_t o = 0; o < orders_per_customer; ++o) {
      ++orderkey;
      int64_t order_day =
          rng.UniformInt(0, dates::kTpchNumDays - 1 - 122);
      int64_t orderdate = dates::DayOffsetToYmd(order_day);
      size_t num_lines = static_cast<size_t>(rng.UniformInt(1, 7));
      double total = 0.0;
      std::vector<Tuple> lines;
      for (size_t l = 1; l <= num_lines; ++l) {
        int64_t partkey = rng.UniformInt(1, static_cast<int64_t>(num_parts));
        int64_t suppkey =
            rng.UniformInt(1, static_cast<int64_t>(num_suppliers));
        double quantity = static_cast<double>(rng.UniformInt(1, 50));
        double price = quantity * (900.0 + static_cast<double>(partkey % 1000));
        total += price;
        int64_t ship_day = order_day + rng.UniformInt(1, 121);
        int64_t commit_day = order_day + rng.UniformInt(30, 90);
        int64_t receipt_day = ship_day + rng.UniformInt(1, 30);
        lines.push_back(
            {Value(orderkey), Value(partkey), Value(suppkey),
             Value(static_cast<int64_t>(l)), Value(quantity), Value(price),
             Value(rng.UniformInt(0, 10) / 100.0),
             Value(rng.UniformInt(0, 8) / 100.0),
             Value(std::string(kReturnFlags[rng.UniformIndex(3)])),
             Value(std::string(kLineStatus[rng.UniformIndex(2)])),
             Value(dates::DayOffsetToYmd(ship_day)),
             Value(dates::DayOffsetToYmd(commit_day)),
             Value(dates::DayOffsetToYmd(receipt_day)),
             Value(instructs[rng.UniformIndex(instructs.size())]),
             Value(modes[rng.UniformIndex(modes.size())]),
             Value(text_pools::RandomComment(rng))});
      }
      db.Insert("orders",
                {Value(orderkey), Value(static_cast<int64_t>(c)),
                 Value(std::string(kOrderStatus[rng.UniformIndex(3)])),
                 Value(total), Value(orderdate),
                 Value(priorities[rng.UniformIndex(priorities.size())]),
                 Value(Padded("Clerk#", rng.UniformInt(1, 1000), 9)),
                 Value(int64_t{0}), Value(text_pools::RandomComment(rng))});
      for (Tuple& line : lines) db.Insert("lineitem", std::move(line));
    }
  }

  // Foreign keys (both the schema's FK dependencies; used by SQG).
  auto fk = [&](const char* rel, const char* attr, const char* target_rel,
                const char* target_attr) {
    size_t r = schema.RelationId(rel);
    size_t t = schema.RelationId(target_rel);
    dataset.foreign_keys.push_back(
        ForeignKey{r, *schema.relation(r).FindAttribute(attr), t,
                   *schema.relation(t).FindAttribute(target_attr)});
  };
  fk("nation", "n_regionkey", "region", "r_regionkey");
  fk("supplier", "s_nationkey", "nation", "n_nationkey");
  fk("customer", "c_nationkey", "nation", "n_nationkey");
  fk("partsupp", "ps_partkey", "part", "p_partkey");
  fk("partsupp", "ps_suppkey", "supplier", "s_suppkey");
  fk("orders", "o_custkey", "customer", "c_custkey");
  fk("lineitem", "l_orderkey", "orders", "o_orderkey");
  fk("lineitem", "l_partkey", "part", "p_partkey");
  fk("lineitem", "l_suppkey", "supplier", "s_suppkey");

  // Seal so generated instances carry encodings and chunk statistics from
  // the start instead of living in the plain tail buffers.
  db.SealStorage();
  CQA_CHECK(db.SatisfiesKeys());
  return dataset;
}

}  // namespace cqa
