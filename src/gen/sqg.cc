#include "gen/sqg.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/macros.h"

namespace cqa {

ConstantPool ConstantPool::FromDatabase(const Database& db,
                                        size_t max_per_attr) {
  ConstantPool pool;
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    for (size_t attr = 0; attr < rel.schema().arity(); ++attr) {
      std::unordered_set<Value, ValueHash> seen;
      std::vector<Value> values;
      for (size_t row = 0; row < rel.size() && values.size() < max_per_attr;
           ++row) {
        Value v = rel.ValueAt(row, attr);
        if (seen.insert(v).second) values.push_back(std::move(v));
      }
      if (!values.empty()) {
        pool.pool_.emplace((static_cast<uint64_t>(rid) << 32) | attr,
                           std::move(values));
      }
    }
  }
  return pool;
}

const std::vector<Value>* ConstantPool::Get(size_t rel, size_t attr) const {
  auto it = pool_.find((static_cast<uint64_t>(rel) << 32) | attr);
  if (it == pool_.end()) return nullptr;
  return &it->second;
}

namespace {

/// Query under construction: one atom per relation, terms are either a
/// variable id (into a union-find of unified variables) or a constant.
struct DraftAtom {
  size_t relation_id;
  std::vector<Term> terms;  // Variable ids are draft-local (pre-renumber).
};

class Draft {
 public:
  explicit Draft(const Schema& schema) : schema_(&schema) {}

  /// Atom index for `rel`, creating it with fresh variables on first use.
  size_t AtomFor(size_t rel) {
    auto it = atom_of_rel_.find(rel);
    if (it != atom_of_rel_.end()) return it->second;
    DraftAtom atom;
    atom.relation_id = rel;
    const size_t arity = schema_->relation(rel).arity();
    atom.terms.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      atom.terms.push_back(Term::Var(next_var_++));
    }
    atoms_.push_back(std::move(atom));
    atom_of_rel_.emplace(rel, atoms_.size() - 1);
    return atoms_.size() - 1;
  }

  bool HasAtoms() const { return !atoms_.empty(); }
  const std::vector<DraftAtom>& atoms() const { return atoms_; }
  std::vector<DraftAtom>& atoms() { return atoms_; }

  /// Unifies the variables at two positions. Returns false when the
  /// condition is redundant (already joined) or either position holds a
  /// constant.
  bool Join(size_t atom_a, size_t pos_a, size_t atom_b, size_t pos_b) {
    Term& ta = atoms_[atom_a].terms[pos_a];
    Term& tb = atoms_[atom_b].terms[pos_b];
    if (ta.is_constant() || tb.is_constant()) return false;
    size_t va = ta.var();
    size_t vb = tb.var();
    if (va == vb) return false;
    for (DraftAtom& atom : atoms_) {
      for (Term& t : atom.terms) {
        if (t.is_variable() && t.var() == vb) t.set_var(va);
      }
    }
    return true;
  }

  /// Number of occurrences of the variable at (atom, pos) across atoms.
  size_t Occurrences(size_t atom, size_t pos) const {
    const Term& t = atoms_[atom].terms[pos];
    if (t.is_constant()) return 0;
    size_t count = 0;
    for (const DraftAtom& a : atoms_) {
      for (const Term& u : a.terms) {
        if (u.is_variable() && u.var() == t.var()) ++count;
      }
    }
    return count;
  }

 private:
  const Schema* schema_;
  std::vector<DraftAtom> atoms_;
  std::unordered_map<size_t, size_t> atom_of_rel_;
  size_t next_var_ = 0;
};

}  // namespace

std::optional<ConjunctiveQuery> GenerateStaticQuery(
    const Schema& schema, const FkGraph& fk_graph, const ConstantPool& pool,
    const SqgOptions& options, Rng& rng) {
  Draft draft(schema);

  // Join conditions R[k] = P[l] over joinable attribute pairs.
  size_t joins_made = 0;
  for (size_t attempt = 0;
       joins_made < options.num_joins && attempt < options.max_attempts;
       ++attempt) {
    if (fk_graph.empty()) return std::nullopt;
    const std::vector<AttrRef>& cls =
        fk_graph.classes()[rng.UniformIndex(fk_graph.classes().size())];
    AttrRef a = cls[rng.UniformIndex(cls.size())];
    AttrRef b = cls[rng.UniformIndex(cls.size())];
    if (a == b) continue;
    size_t atom_a = draft.AtomFor(a.rel);
    size_t atom_b = draft.AtomFor(b.rel);
    if (draft.Join(atom_a, a.attr, atom_b, b.attr)) ++joins_made;
  }
  if (joins_made < options.num_joins) return std::nullopt;

  // Constant conditions R[k] = a. To keep the query connected, constants
  // are placed on relations already participating (or on a random relation
  // when the query has no joins yet), at positions holding a non-join
  // variable.
  size_t constants_made = 0;
  for (size_t attempt = 0;
       constants_made < options.num_constants &&
       attempt < options.max_attempts;
       ++attempt) {
    if (!draft.HasAtoms()) {
      draft.AtomFor(rng.UniformIndex(schema.NumRelations()));
    }
    size_t atom = rng.UniformIndex(draft.atoms().size());
    size_t rel = draft.atoms()[atom].relation_id;
    size_t pos = rng.UniformIndex(schema.relation(rel).arity());
    const Term& t = draft.atoms()[atom].terms[pos];
    if (t.is_constant()) continue;
    if (draft.Occurrences(atom, pos) > 1) continue;  // Keep join vars free.
    const std::vector<Value>* values = pool.Get(rel, pos);
    if (values == nullptr) continue;
    draft.atoms()[atom].terms[pos] =
        Term::Const((*values)[rng.UniformIndex(values->size())]);
    ++constants_made;
  }
  if (constants_made < options.num_constants) return std::nullopt;

  // Projection: choose ⌈p·|T|⌉ of the attribute positions of the
  // participating relations; the answer variables are the (distinct)
  // variables found there.
  std::vector<std::pair<size_t, size_t>> var_positions;  // (atom, pos)
  for (size_t i = 0; i < draft.atoms().size(); ++i) {
    for (size_t pos = 0; pos < draft.atoms()[i].terms.size(); ++pos) {
      if (draft.atoms()[i].terms[pos].is_variable()) {
        var_positions.emplace_back(i, pos);
      }
    }
  }
  size_t num_projected = std::min(
      var_positions.size(),
      static_cast<size_t>(std::ceil(
          options.projection * static_cast<double>(var_positions.size()))));
  std::vector<size_t> chosen =
      rng.SampleWithoutReplacement(var_positions.size(), num_projected);

  // Renumber draft variables densely and assemble the query.
  std::unordered_map<size_t, size_t> remap;
  ConjunctiveQuery q;
  for (const DraftAtom& da : draft.atoms()) {
    Atom atom;
    atom.relation_id = da.relation_id;
    for (const Term& t : da.terms) {
      if (t.is_constant()) {
        atom.terms.push_back(t);
      } else {
        auto [it, inserted] = remap.emplace(t.var(), remap.size());
        (void)inserted;
        atom.terms.push_back(Term::Var(it->second));
      }
    }
    q.AddAtom(std::move(atom));
  }
  std::set<size_t> answer_set;
  std::vector<size_t> answer_vars;
  for (size_t idx : chosen) {
    auto [atom, pos] = var_positions[idx];
    size_t v = remap.at(draft.atoms()[atom].terms[pos].var());
    if (answer_set.insert(v).second) answer_vars.push_back(v);
  }
  std::sort(answer_vars.begin(), answer_vars.end());
  q.SetAnswerVars(std::move(answer_vars));
  q.Validate(schema);
  return q;
}

}  // namespace cqa
