#ifndef CQABENCH_GEN_TEXT_POOLS_H_
#define CQABENCH_GEN_TEXT_POOLS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace cqa {

/// Value pools mirroring the categorical vocabularies of the TPC dbgen /
/// dsdgen tools. The generators draw from these so constants in generated
/// queries select realistic slices of the data (TPC-H names, types,
/// segments, priorities, ...).
namespace text_pools {

/// The five TPC-H regions.
const std::vector<std::string>& Regions();

/// The 25 TPC-H nations; `NationRegion(i)` is the region index of nation i.
const std::vector<std::string>& Nations();
size_t NationRegion(size_t nation_index);

const std::vector<std::string>& MarketSegments();
const std::vector<std::string>& OrderPriorities();
const std::vector<std::string>& ShipModes();
const std::vector<std::string>& ShipInstructions();

/// Random part type: "<size> <finish> <metal>" (e.g. "PROMO PLATED TIN").
std::string RandomPartType(Rng& rng);
/// Random container: "<size> <kind>" (e.g. "SM BOX").
std::string RandomContainer(Rng& rng);
/// "Brand#MN" with M, N in [1, 5].
std::string RandomBrand(Rng& rng);
/// "Manufacturer#M" with M in [1, 5].
std::string RandomManufacturer(Rng& rng);
/// Part name: a few color-ish words (dbgen style).
std::string RandomPartName(Rng& rng);
/// Short pseudo-sentence used for comment columns.
std::string RandomComment(Rng& rng, size_t words = 4);
/// Phone number "CC-DDD-DDD-DDDD".
std::string RandomPhone(Rng& rng, int64_t country_code);
/// Address-like token.
std::string RandomAddress(Rng& rng);

/// Zero-padded entity name, e.g. Padded("Supplier#", 17, 9) ->
/// "Supplier#000000017".
std::string Padded(const char* prefix, int64_t number, int width);

/// US state abbreviations (TPC-DS dimension columns).
const std::vector<std::string>& States();
/// First/last names (TPC-DS customer).
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
/// Item categories (TPC-DS).
const std::vector<std::string>& ItemCategories();

}  // namespace text_pools

/// Date helpers: dates are stored as int64 YYYYMMDD. The TPC-H horizon is
/// 1992-01-01 .. 1998-12-31 (2557 days).
namespace dates {

constexpr int64_t kTpchStartYear = 1992;
constexpr int64_t kTpchNumDays = 2557;

/// Converts a day offset from 1992-01-01 into YYYYMMDD.
int64_t DayOffsetToYmd(int64_t offset);

/// Uniform random date in the TPC-H horizon.
int64_t RandomTpchDate(Rng& rng);

}  // namespace dates

}  // namespace cqa

#endif  // CQABENCH_GEN_TEXT_POOLS_H_
