#include "cqa/exact.h"

#include <gtest/gtest.h>

#include "cqa/preprocess.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;
using testing::MakeRandomSynopsis;

TEST(ExactTest, ExampleOneIsOneHalf) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  std::optional<double> r = ExactRelativeFrequencyByRepairs(*fx.db, q, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.5);
}

TEST(ExactTest, PerAnswerFrequencies) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  // Bob appears in every repair; Alice and Tim in half each.
  EXPECT_DOUBLE_EQ(
      *ExactRelativeFrequencyByRepairs(*fx.db, q, {Value("Bob")}), 1.0);
  EXPECT_DOUBLE_EQ(
      *ExactRelativeFrequencyByRepairs(*fx.db, q, {Value("Alice")}), 0.5);
  EXPECT_DOUBLE_EQ(
      *ExactRelativeFrequencyByRepairs(*fx.db, q, {Value("Tim")}), 0.5);
  EXPECT_DOUBLE_EQ(
      *ExactRelativeFrequencyByRepairs(*fx.db, q, {Value("Zoe")}), 0.0);
}

TEST(ExactTest, CertainAnswersSemantics) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  EXPECT_EQ(IsCertainAnswerByRepairs(*fx.db, q, {Value("Bob")}),
            std::optional<bool>(true));
  EXPECT_EQ(IsCertainAnswerByRepairs(*fx.db, q, {Value("Alice")}),
            std::optional<bool>(false));
}

TEST(ExactTest, EnumerationOnKnownSynopsis) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});          // Covers 3 of 6 databases.
  s.AddImage({{0, 1}, {1, 2}});  // Covers 1 more.
  std::optional<double> r = ExactRatioByEnumeration(s);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 4.0 / 6.0, 1e-12);
}

TEST(ExactTest, InclusionExclusionMatchesEnumeration) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Synopsis s = MakeRandomSynopsis(rng, 5, 4, 6, 3);
    std::optional<double> by_enum = ExactRatioByEnumeration(s);
    std::optional<double> by_ie = ExactRatioInclusionExclusion(s);
    ASSERT_TRUE(by_enum.has_value());
    ASSERT_TRUE(by_ie.has_value());
    EXPECT_NEAR(*by_enum, *by_ie, 1e-9) << s.DebugString();
  }
}

TEST(ExactTest, EmptySynopsisHasZeroRatio) {
  Synopsis s;
  EXPECT_EQ(ExactRatioByEnumeration(s), std::optional<double>(0.0));
  EXPECT_EQ(ExactRatioInclusionExclusion(s), std::optional<double>(0.0));
}

TEST(ExactTest, FullCoverageImageGivesRatioOne) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{3, 0, 0});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}});
  s.AddImage({{0, 2}});
  EXPECT_NEAR(*ExactRatioByEnumeration(s), 1.0, 1e-12);
  EXPECT_NEAR(*ExactRatioInclusionExclusion(s), 1.0, 1e-12);
}

TEST(ExactTest, BudgetsAreRespected) {
  Synopsis s;
  for (int b = 0; b < 30; ++b) s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddImage({{0, 0}});
  // 2^30 databases exceed the default enumeration budget.
  EXPECT_EQ(ExactRatioByEnumeration(s), std::nullopt);
  // But inclusion-exclusion handles it (1 image).
  EXPECT_NEAR(*ExactRatioInclusionExclusion(s), 0.5, 1e-12);
  // And a synopsis with too many images trips the IE budget.
  Synopsis many;
  many.AddBlock(Synopsis::Block{2, 0, 0});
  many.AddBlock(Synopsis::Block{30, 0, 1});
  for (uint32_t i = 0; i < 25; ++i) many.AddImage({{1, i}});
  EXPECT_EQ(ExactRatioInclusionExclusion(many, /*max_images=*/22),
            std::nullopt);
}

TEST(ExactTest, DecomposedMatchesEnumerationOnRandomSynopses) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    Synopsis s = testing::MakeRandomSynopsis(rng, 5, 4, 6, 3);
    std::optional<double> by_enum = ExactRatioByEnumeration(s);
    std::optional<double> by_dec = ExactRatioDecomposed(s);
    ASSERT_TRUE(by_enum.has_value());
    ASSERT_TRUE(by_dec.has_value());
    EXPECT_NEAR(*by_enum, *by_dec, 1e-9) << s.DebugString();
  }
}

TEST(ExactTest, DecompositionScalesToManyIndependentImages) {
  // 40 disjoint (block, image) pairs: far beyond the monolithic
  // inclusion-exclusion budget, trivial after decomposition.
  Synopsis s;
  double expected_none = 1.0;
  for (uint32_t b = 0; b < 40; ++b) {
    size_t size = 2 + b % 3;
    s.AddBlock(Synopsis::Block{size, 0, b});
    s.AddImage({{b, 0}});
    expected_none *= 1.0 - 1.0 / static_cast<double>(size);
  }
  EXPECT_EQ(ExactRatioInclusionExclusion(s), std::nullopt);
  std::optional<double> r = ExactRatioDecomposed(s);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0 - expected_none, 1e-12);
}

TEST(ExactTest, DecomposedRespectsComponentBudget) {
  // One component with 30 overlapping images exceeds the budget.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{31, 0, 1});
  for (uint32_t i = 0; i < 30; ++i) s.AddImage({{0, 0}, {1, i}});
  EXPECT_EQ(ExactRatioDecomposed(s, /*max_component_images=*/22),
            std::nullopt);
}

TEST(ExactTest, DecomposedEmptySynopsis) {
  EXPECT_EQ(ExactRatioDecomposed(Synopsis()), std::optional<double>(0.0));
}

TEST(ExactTest, RepairsOracleBudget) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  EXPECT_EQ(ExactRelativeFrequencyByRepairs(*fx.db, q, {Value("Bob")},
                                            /*max_repairs=*/2),
            std::nullopt);
}

TEST(ExactTest, SynopsisRatioMatchesRepairOracle) {
  // Lemma 4.1(3): R_{D,Σ,Q}(t̄) = R(H, B). Cross-check the synopsis path
  // against the repair-enumeration path on Example 1.1's queries.
  EmployeeFixture fx;
  for (const char* text : {
           "Q() :- employee(1, N1, D), employee(2, N2, D).",
           "Q() :- employee(I, N, 'IT').",
           "Q() :- employee(I, 'Bob', D).",
           "Q() :- employee(1, N1, D1), employee(2, N2, D2).",
       }) {
    ConjunctiveQuery q = MustParseCq(*fx.schema, text);
    PreprocessResult pre = BuildSynopses(*fx.db, q);
    double via_synopsis = 0.0;
    if (pre.NumAnswers() == 1) {
      via_synopsis = *ExactRatioByEnumeration(pre.answers()[0].synopsis);
    }
    double via_repairs = *ExactRelativeFrequencyByRepairs(*fx.db, q, {});
    EXPECT_NEAR(via_synopsis, via_repairs, 1e-12) << text;
  }
}

}  // namespace
}  // namespace cqa
