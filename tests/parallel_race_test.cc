// Concurrency stress tests aimed at ThreadSanitizer (the `tsan` preset).
// Under plain builds they are fast smoke tests; under -fsanitize=thread
// they prove the claims the obs layer and the parallel estimator make:
// relaxed-atomic metric updates never race with snapshots, scheme runs on
// distinct objects share no mutable state, and concurrent deadline expiry
// is benign.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cqa/apx_cqa.h"
#include "cqa/klm_sampler.h"
#include "cqa/parallel.h"
#include "cqa/schemes.h"
#include "cqa/symbolic_space.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

/// All four schemes running concurrently on per-thread synopses. The only
/// shared state is the process-wide obs registry, which every sampler
/// draw site increments.
TEST(ParallelRaceTest, ConcurrentSchemeRunsOnDistinctSynopses) {
  constexpr size_t kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &failures] {
      Rng gen(100 + t);
      for (int round = 0; round < kRounds; ++round) {
        Synopsis s = MakeRandomSynopsis(gen, 4, 3, 4, 2);
        ApxParams params;
        params.epsilon = 0.3;  // Coarse: keep the stress test fast.
        params.delta = 0.3;
        Rng rng(1000 + 10 * t + round);
        for (SchemeKind kind : AllSchemeKinds()) {
          auto scheme = ApxRelativeFreqScheme::Create(kind);
          ApxResult r = scheme->Run(s, params, rng);
          if (r.timed_out || !(r.estimate >= 0.0)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Writers hammer counters and histograms (both the registration slow
/// path, via round-robin names, and the relaxed increment fast path)
/// while a reader concurrently snapshots, serializes, resets, and toggles
/// the enabled flag. TSan verifies the documented claim that snapshots
/// are approximate but never racy.
TEST(ParallelRaceTest, RegistryUpdatesRaceSnapshotsSafely) {
  obs::Registry& registry = obs::Registry::Instance();
  constexpr size_t kWriters = 3;
  constexpr int kIterations = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([t, &registry] {
      const std::string counter_name =
          "race_test.counter_" + std::to_string(t % 2);
      const std::string histogram_name =
          "race_test.histogram_" + std::to_string(t % 2);
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter(counter_name)->Increment();
        registry.GetHistogram(histogram_name)
            ->Observe(static_cast<uint64_t>(i));
        CQA_OBS_COUNT("race_test.macro_hits");
        CQA_OBS_OBSERVE("race_test.macro_values", i);
      }
    });
  }
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.Counters();
      (void)registry.Histograms();
      (void)registry.ToJson();
      (void)registry.CounterValue("race_test.counter_0");
      registry.set_enabled(false);
      registry.set_enabled(true);
      registry.Reset();
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  registry.set_enabled(true);
  // Values are unpredictable after concurrent resets; reaching this point
  // without a sanitizer report is the assertion. Snapshots must still be
  // well-formed:
  for (const obs::HistogramSnapshot& h : registry.Histograms()) {
    EXPECT_EQ(h.buckets.size(), obs::Histogram::kNumBuckets);
  }
}

/// The parallel Monte Carlo main loop with an already-expired and a
/// nearly-expired deadline: workers must observe expiry independently and
/// join cleanly, with no torn result state.
TEST(ParallelRaceTest, ParallelEstimateUnderDeadlinePressure) {
  Rng gen(7);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  SymbolicSpace space(&s);
  const SamplerFactory factory = [&] {
    return std::make_unique<KlmSampler>(&space);
  };

  Rng rng_expired(21);
  MonteCarloResult expired = ParallelMonteCarloEstimate(
      factory, 4, 0.1, 0.25, rng_expired, Deadline(0.0));
  EXPECT_TRUE(expired.timed_out);

  // A deadline that expires mid-run on some executions and not on others;
  // either outcome must be internally consistent.
  Rng rng_tight(22);
  MonteCarloResult tight = ParallelMonteCarloEstimate(
      factory, 4, 0.05, 0.05, rng_tight, Deadline(0.005));
  if (!tight.timed_out) {
    EXPECT_GE(tight.estimate, 0.0);
    EXPECT_LE(tight.estimate, 1.0);
    EXPECT_GE(tight.main_samples, 1u);
  }

  Rng rng_free(23);
  MonteCarloResult free_run =
      ParallelMonteCarloEstimate(factory, 4, 0.2, 0.25, rng_free);
  EXPECT_FALSE(free_run.timed_out);
  size_t total = 0;
  for (size_t n : free_run.per_thread_samples) total += n;
  EXPECT_EQ(total, free_run.main_samples);
}

/// The serving-layer sharing pattern: ONE const PreprocessResult (as the
/// synopsis cache hands out) under 4 threads × 4 schemes concurrently.
/// Schemes build all per-run scratch (SymbolicSpace, samplers,
/// ImageIndex) privately, so a cached synopsis set needs no lock — this
/// is the TSan proof of the thread-ownership contract documented in
/// cqa/synopsis.h and serve/synopsis_cache.h.
TEST(ParallelRaceTest, ConcurrentSchemesShareOneCachedPreprocessResult) {
  testing::EmployeeFixture fixture;
  ConjunctiveQuery q =
      MustParseCq(*fixture.schema, "Q(N) :- employee(I, N, D).");
  const auto shared = std::make_shared<const PreprocessResult>(
      BuildSynopses(*fixture.db, q));

  constexpr size_t kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, shared, &failures] {
      ApxParams params;
      Rng rng(500 + t);
      for (SchemeKind kind : AllSchemeKinds()) {
        CqaRunResult run = ApxCqaOnSynopses(*shared, kind, params, rng);
        if (run.timed_out || run.answers.size() != shared->NumAnswers()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Determinism across the shared synopses: two serial runs with one
  // seed agree bit-for-bit (what lets the e2e test diff server answers
  // against local runs).
  ApxParams params;
  Rng rng_a(9);
  Rng rng_b(9);
  CqaRunResult a = ApxCqaOnSynopses(*shared, SchemeKind::kKlm, params, rng_a);
  CqaRunResult b = ApxCqaOnSynopses(*shared, SchemeKind::kKlm, params, rng_b);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].frequency, b.answers[i].frequency);
  }
}

/// Deadline objects shared across threads: Expired()/RemainingSeconds()
/// are const reads of immutable state plus clock queries, and must be
/// safely callable from every worker at once.
TEST(ParallelRaceTest, SharedDeadlineReadsAreRaceFree) {
  Deadline tight(0.002);
  Deadline infinite;
  std::atomic<int> expired_count{0};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (tight.Expired()) {
          expired_count.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        (void)tight.RemainingSeconds();
        (void)infinite.Expired();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(infinite.Expired());
}

}  // namespace
}  // namespace cqa
