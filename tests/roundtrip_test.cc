// Round-trip properties between the query printer, the parser and the
// generators: every SQG/DQG-produced query must print to text the parser
// accepts, yielding a structurally identical query.

#include <gtest/gtest.h>

#include "gen/sqg.h"
#include "gen/tpch.h"
#include "gen/workloads.h"
#include "query/evaluator.h"
#include "query/parser.h"

namespace cqa {
namespace {

bool StructurallyEqual(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  if (a.NumAtoms() != b.NumAtoms()) return false;
  if (a.answer_vars() != b.answer_vars()) return false;
  for (size_t i = 0; i < a.NumAtoms(); ++i) {
    if (a.atom(i).relation_id != b.atom(i).relation_id) return false;
    if (a.atom(i).terms.size() != b.atom(i).terms.size()) return false;
    for (size_t j = 0; j < a.atom(i).terms.size(); ++j) {
      if (!(a.atom(i).terms[j] == b.atom(i).terms[j])) return false;
    }
  }
  return true;
}

class SqgRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SqgRoundTripTest, GeneratedQueriesPrintAndReparse) {
  Dataset d = GenerateTpch(TpchOptions{.scale_factor = 0.0003});
  FkGraph fk_graph = FkGraph::Build(d.foreign_keys);
  ConstantPool pool = ConstantPool::FromDatabase(*d.db);
  Rng rng(4000 + GetParam());
  SqgOptions options;
  options.num_joins = 1 + GetParam() % 4;
  options.num_constants = 2;
  options.projection = (GetParam() % 2 == 0) ? 1.0 : 0.5;
  for (int attempt = 0; attempt < 10; ++attempt) {
    std::optional<ConjunctiveQuery> q =
        GenerateStaticQuery(*d.schema, fk_graph, pool, options, rng);
    if (!q.has_value()) continue;
    std::string text = q->ToString(*d.schema);
    ConjunctiveQuery reparsed;
    std::string error;
    ASSERT_TRUE(ParseCq(*d.schema, text, &reparsed, &error))
        << text << ": " << error;
    EXPECT_TRUE(StructurallyEqual(*q, reparsed)) << text;
    return;
  }
  GTEST_SKIP() << "SQG produced no query for this configuration";
}

INSTANTIATE_TEST_SUITE_P(Configs, SqgRoundTripTest, ::testing::Range(0, 10));

TEST(WorkloadRoundTripTest, ValidationQueriesReparse) {
  Schema tpch = MakeTpchSchema();
  for (const NamedQuery& named : TpchValidationQueries(tpch)) {
    std::string text = named.query.ToString(tpch);
    ConjunctiveQuery reparsed;
    std::string error;
    ASSERT_TRUE(ParseCq(tpch, text, &reparsed, &error))
        << named.name << ": " << error;
    EXPECT_TRUE(StructurallyEqual(named.query, reparsed)) << named.name;
  }
}

TEST(RoundTripTest, EvaluationAgreesAfterRoundTrip) {
  Dataset d = GenerateTpch(TpchOptions{.scale_factor = 0.0003});
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " nation(NK, NN, RK, NC).");
  ConjunctiveQuery reparsed = MustParseCq(*d.schema, q.ToString(*d.schema));
  CqEvaluator eval(d.db.get());
  EXPECT_EQ(eval.Evaluate(q), eval.Evaluate(reparsed));
}

}  // namespace
}  // namespace cqa
