// Robustness: the wire-protocol stack (frame reassembly + both payload
// codecs) must never crash on arbitrary bytes, never poison a stream
// silently, and never accept a request it cannot round-trip. The seeded
// tests below are the always-on regression tier; the same driver is
// built as a libFuzzer harness for open-ended exploration (see
// fuzz/frame_fuzzer.cc and the `fuzz` CMake preset).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "fuzz/frame_fuzz_driver.h"
#include "serve/protocol.h"

namespace cqa {
namespace {

using serve::EncodeFrame;
using serve::Request;

void RunDriver(const std::string& bytes) {
  fuzz::FrameOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                      bytes.size());
}

TEST(FrameFuzzTest, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.UniformIndex(120);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformIndex(256)));
    }
    RunDriver(bytes);
  }
}

TEST(FrameFuzzTest, MutatedValidFramesNeverCrash) {
  Request request;
  request.op = "query";
  request.id = "fz";
  request.data = "/data";
  request.query = "Q(N) :- nation(K, N, R, C).";
  Rng rng(77);
  for (serve::WireCodec codec :
       {serve::WireCodec::kJson, serve::WireCodec::kBinary}) {
    const std::string base = EncodeFrame(request.ToPayload(codec));
    for (int trial = 0; trial < 2000; ++trial) {
      std::string bytes = base;
      size_t mutations = 1 + rng.UniformIndex(4);
      for (size_t m = 0; m < mutations; ++m) {
        size_t pos = rng.UniformIndex(bytes.size());
        switch (rng.UniformIndex(3)) {
          case 0:
            bytes[pos] = static_cast<char>(rng.UniformIndex(256));
            break;
          case 1:
            bytes.erase(pos, 1);
            break;
          case 2:
            bytes.insert(pos, 1, static_cast<char>(rng.UniformIndex(256)));
            break;
        }
        if (bytes.empty()) bytes = "\x00";
      }
      RunDriver(bytes);
    }
  }
}

TEST(FrameFuzzTest, PipelinedFramesSurviveTruncationAtEveryByte) {
  Request ping;
  ping.op = "ping";
  ping.id = "p";
  Request stats;
  stats.op = "stats";
  stats.id = "s";
  const std::string stream =
      EncodeFrame(ping.ToPayload(serve::WireCodec::kBinary)) +
      EncodeFrame(stats.ToPayload(serve::WireCodec::kJson)) +
      EncodeFrame(ping.ToPayload(serve::WireCodec::kJson));
  for (size_t n = 0; n <= stream.size(); ++n) {
    RunDriver(stream.substr(0, n));
  }
}

// Replays every checked-in fuzz corpus entry (seeds plus minimized past
// crashers) through the exact driver the libFuzzer harness uses, so
// corpus regressions stay covered even in builds without clang.
TEST(FrameFuzzTest, CorpusEntriesNeverCrash) {
  const std::filesystem::path corpus(CQABENCH_FRAME_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  size_t entries = 0;
  for (const auto& item : std::filesystem::directory_iterator(corpus)) {
    if (!item.is_regular_file()) continue;
    std::ifstream in(item.path(), std::ios::binary);
    ASSERT_TRUE(in) << item.path();
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunDriver(bytes);
    ++entries;
  }
  EXPECT_GE(entries, 6u) << "corpus looks truncated: " << corpus;
}

// The driver itself honours the harness contract on edge inputs.
TEST(FrameFuzzTest, DriverHandlesEmptyAndPathologicalInput) {
  EXPECT_EQ(fuzz::FrameOneInput(nullptr, 0), 0);
  // Oversize length prefix: must poison, not allocate 4 GiB.
  RunDriver(std::string("\xff\xff\xff\xff", 4));
  // Zero-length frame: framing violation.
  RunDriver(std::string(4, '\0'));
  // Length prefix promising more than the stream carries.
  RunDriver(std::string("\x00\x00\x00\x64only-ten", 13));
}

}  // namespace
}  // namespace cqa
