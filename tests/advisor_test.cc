#include "cqa/advisor.h"

#include <gtest/gtest.h>

#include <cstring>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(AdvisorTest, BooleanQueryGetsNatural) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  EXPECT_EQ(RecommendScheme(pre), SchemeKind::kNatural);
  EXPECT_NE(std::strstr(RecommendationRationale(pre), "Boolean"), nullptr);
}

TEST(AdvisorTest, BalancedQueryGetsKlm) {
  EmployeeFixture fx;
  // Balance 3/4 — clearly non-Boolean.
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  EXPECT_EQ(RecommendScheme(pre), SchemeKind::kKlm);
  EXPECT_NE(std::strstr(RecommendationRationale(pre), "non-Boolean"),
            nullptr);
}

TEST(AdvisorTest, ThresholdIsConfigurable) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);  // Balance 0.75.
  EXPECT_EQ(RecommendScheme(pre, /*boolean_balance_threshold=*/0.9),
            SchemeKind::kNatural);
  EXPECT_EQ(RecommendScheme(pre, 0.1), SchemeKind::kKlm);
}

TEST(AdvisorTest, EmptyQueryIsNaturalRegime) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'LEGAL').");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  // Balance 0 (no answers); any scheme returns instantly — the advisor
  // defaults to Natural.
  EXPECT_EQ(RecommendScheme(pre), SchemeKind::kNatural);
}

}  // namespace
}  // namespace cqa
