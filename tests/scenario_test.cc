#include "bench/scenario.h"

#include <gtest/gtest.h>

#include "cqa/preprocess.h"

namespace cqa {
namespace {

ScenarioGridOptions TinyOptions() {
  ScenarioGridOptions options;
  options.scale_factor = 0.0003;
  options.seed = 3;
  options.join_levels = {1, 2};
  options.queries_per_join = 1;
  options.noise_levels = {0.3, 1.0};
  options.balance_targets = {0.0, 0.5};
  options.dqg_pool_size = 16;
  options.max_base_homomorphisms = 2000;
  return options;
}

TEST(ScenarioTest, GridHasExpectedShape) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  // 2 join levels × 1 query × 2 noise × 2 balance targets = 8 pairs.
  EXPECT_EQ(grid.pairs().size(), 8u);
}

TEST(ScenarioTest, DatabasesAreInconsistent) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  for (const ScenarioPair& pair : grid.pairs()) {
    EXPECT_FALSE(pair.db->SatisfiesKeys());
  }
}

TEST(ScenarioTest, BooleanTargetsAreBooleanQueries) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  for (const ScenarioPair& pair : grid.pairs()) {
    if (pair.balance_target == 0.0) {
      EXPECT_TRUE(pair.query.IsBoolean());
    } else {
      EXPECT_FALSE(pair.query.IsBoolean());
      EXPECT_GT(pair.balance_actual, 0.0);
    }
  }
}

TEST(ScenarioTest, DatabasesSharedWithinNoiseCell) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  // Pairs with the same (joins, base, noise) share the same Database.
  for (const ScenarioPair& a : grid.pairs()) {
    for (const ScenarioPair& b : grid.pairs()) {
      if (a.joins == b.joins && a.base_index == b.base_index &&
          a.noise == b.noise) {
        EXPECT_EQ(a.db.get(), b.db.get());
      }
    }
  }
}

TEST(ScenarioTest, SelectFiltersCoordinates) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  auto noise_scenario = grid.Select(1, std::nullopt, 0.0);
  EXPECT_EQ(noise_scenario.size(), 2u);  // 2 noise levels.
  for (const ScenarioPair* p : noise_scenario) {
    EXPECT_EQ(p->joins, 1u);
    EXPECT_EQ(p->balance_target, 0.0);
  }
  auto all = grid.Select(std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(all.size(), grid.pairs().size());
  EXPECT_TRUE(grid.Select(99, std::nullopt, std::nullopt).empty());
}

TEST(ScenarioTest, PairsPreprocessCleanly) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  for (const ScenarioPair& pair : grid.pairs()) {
    PreprocessResult pre = BuildSynopses(*pair.db, pair.query);
    EXPECT_GT(pre.NumAnswers(), 0u);
  }
}

TEST(ScenarioTest, QueriesHaveRequestedJoins) {
  ScenarioGrid grid = ScenarioGrid::Build(TinyOptions());
  for (const ScenarioPair& pair : grid.pairs()) {
    EXPECT_GE(pair.query.NumJoins(), pair.joins);
    EXPECT_EQ(pair.query.NumConstantOccurrences(), 2u);
  }
}

}  // namespace
}  // namespace cqa
