#include "storage/block_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

/// The Q_R view example of Appendix C: R(A, B) with key {A} and facts
/// R(a1,b1) R(a1,b2) R(a1,b3) R(a2,c1) R(a2,c2).
struct AppendixCFixture {
  AppendixCFixture() {
    schema.AddRelation(RelationSchema(
        "r", {{"a", ValueType::kString}, {"b", ValueType::kString}}, {0}));
    db = std::make_unique<Database>(&schema);
    db->Insert("r", {Value("a1"), Value("b1")});
    db->Insert("r", {Value("a1"), Value("b2")});
    db->Insert("r", {Value("a1"), Value("b3")});
    db->Insert("r", {Value("a2"), Value("c1")});
    db->Insert("r", {Value("a2"), Value("c2")});
  }
  Schema schema;
  std::unique_ptr<Database> db;
};

TEST(BlockIndexTest, AppendixCAnnotations) {
  AppendixCFixture fx;
  RelationBlockIndex index = RelationBlockIndex::Build(fx.db->relation("r"));
  ASSERT_EQ(index.NumBlocks(), 2u);
  // Rows 0-2 form block 0 (kcnt 3), rows 3-4 block 1 (kcnt 2).
  for (size_t row = 0; row < 3; ++row) {
    EXPECT_EQ(index.annotation(row).block_id, 0u);
    EXPECT_EQ(index.annotation(row).tuple_id, row);
    EXPECT_EQ(index.annotation(row).block_size, 3u);
  }
  for (size_t row = 3; row < 5; ++row) {
    EXPECT_EQ(index.annotation(row).block_id, 1u);
    EXPECT_EQ(index.annotation(row).tuple_id, row - 3);
    EXPECT_EQ(index.annotation(row).block_size, 2u);
  }
  EXPECT_EQ(index.block(0), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(index.block(1), (std::vector<size_t>{3, 4}));
}

TEST(BlockIndexTest, FindBlockByKey) {
  AppendixCFixture fx;
  RelationBlockIndex index = RelationBlockIndex::Build(fx.db->relation("r"));
  EXPECT_EQ(index.FindBlock({Value("a1")}), std::optional<size_t>(0));
  EXPECT_EQ(index.FindBlock({Value("a2")}), std::optional<size_t>(1));
  EXPECT_EQ(index.FindBlock({Value("zz")}), std::nullopt);
}

TEST(BlockIndexTest, ConflictingBlockCount) {
  AppendixCFixture fx;
  RelationBlockIndex index = RelationBlockIndex::Build(fx.db->relation("r"));
  EXPECT_EQ(index.NumConflictingBlocks(), 2u);
}

TEST(BlockIndexTest, ConsistentRelationHasSingletonBlocksOnly) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value(1)});
  db.Insert("r", {Value(2), Value(1)});
  RelationBlockIndex index = RelationBlockIndex::Build(db.relation("r"));
  EXPECT_EQ(index.NumBlocks(), 2u);
  EXPECT_EQ(index.NumConflictingBlocks(), 0u);
  EXPECT_EQ(index.annotation(0).block_size, 1u);
}

TEST(BlockIndexTest, KeylessRelationUsesWholeTupleAsKey) {
  Schema schema;
  schema.AddRelation(RelationSchema("log", {{"m", ValueType::kString}}));
  Database db(&schema);
  db.Insert("log", {Value("x")});
  db.Insert("log", {Value("y")});
  RelationBlockIndex index = RelationBlockIndex::Build(db.relation("log"));
  EXPECT_EQ(index.NumBlocks(), 2u);
  EXPECT_EQ(index.NumConflictingBlocks(), 0u);
}

TEST(BlockIndexTest, WholeDatabaseIndex) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  EXPECT_EQ(index.NumRelations(), 1u);
  EXPECT_EQ(index.TotalBlocks(), 2u);
  // All 4 facts live in non-singleton blocks.
  EXPECT_DOUBLE_EQ(index.InconsistencyRatio(*fx.db), 1.0);
}

TEST(BlockIndexTest, InconsistencyRatioPartial) {
  EmployeeFixture fx;
  fx.db->Insert("employee", {Value(3), Value("Sam"), Value("HR")});
  BlockIndex index = BlockIndex::Build(*fx.db);
  EXPECT_DOUBLE_EQ(index.InconsistencyRatio(*fx.db), 4.0 / 5.0);
}

TEST(BlockIndexTest, EmptyDatabase) {
  Schema schema;
  schema.AddRelation(RelationSchema("r", {{"k", ValueType::kInt}}, {0}));
  Database db(&schema);
  BlockIndex index = BlockIndex::Build(db);
  EXPECT_EQ(index.TotalBlocks(), 0u);
  EXPECT_DOUBLE_EQ(index.InconsistencyRatio(db), 0.0);
}

}  // namespace
}  // namespace cqa
