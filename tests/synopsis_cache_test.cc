// Synopsis-cache tests: LRU bookkeeping, single-flight builds, and —
// through the serving engine — the core amortization claim: a second
// identical request performs ZERO Preprocess work, asserted against the
// preprocess.builds metric, not just timings.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cqa/preprocess.h"
#include "gen/tpch.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "serve/engine.h"
#include "serve/synopsis_cache.h"
#include "storage/tbl_io.h"
#include "test_util.h"

namespace cqa::serve {
namespace {

// A real (tiny) PreprocessResult to cache: the paper's running example.
std::shared_ptr<const PreprocessResult> BuildEmployeeResult() {
  testing::EmployeeFixture fixture;
  ConjunctiveQuery q =
      MustParseCq(*fixture.schema, "Q(N) :- employee(I, N, D).");
  return std::make_shared<const PreprocessResult>(
      BuildSynopses(*fixture.db, q));
}

TEST(SynopsisCacheKeyTest, DistinguishesEveryComponent) {
  const std::string base = SynopsisCacheKey("/d", "tpch", "Q");
  EXPECT_NE(base, SynopsisCacheKey("/e", "tpch", "Q"));
  EXPECT_NE(base, SynopsisCacheKey("/d", "tpcds", "Q"));
  EXPECT_NE(base, SynopsisCacheKey("/d", "tpch", "R"));
  EXPECT_EQ(base, SynopsisCacheKey("/d", "tpch", "Q"));
}

TEST(SynopsisCacheTest, HitAfterBuild) {
  SynopsisCache cache(4);
  bool hit = true;
  std::string error;
  auto value = cache.GetOrBuild(
      "k1", [](std::string*) { return BuildEmployeeResult(); }, &hit,
      &error);
  ASSERT_NE(value, nullptr);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entries(), 1u);

  auto again = cache.GetOrBuild(
      "k1",
      [](std::string*) -> std::shared_ptr<const PreprocessResult> {
        ADD_FAILURE() << "builder ran on a cached key";
        return nullptr;
      },
      &hit, &error);
  EXPECT_EQ(again.get(), value.get());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SynopsisCacheTest, EvictsLeastRecentlyUsed) {
  SynopsisCache cache(2);
  bool hit = false;
  std::string error;
  auto build = [](std::string*) { return BuildEmployeeResult(); };
  cache.GetOrBuild("a", build, &hit, &error);
  cache.GetOrBuild("b", build, &hit, &error);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.GetOrBuild("c", build, &hit, &error);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(SynopsisCacheTest, EvictionKeepsInUseEntriesAlive) {
  SynopsisCache cache(1);
  bool hit = false;
  std::string error;
  auto build = [](std::string*) { return BuildEmployeeResult(); };
  auto held = cache.GetOrBuild("a", build, &hit, &error);
  cache.GetOrBuild("b", build, &hit, &error);  // Evicts "a".
  EXPECT_EQ(cache.Get("a"), nullptr);
  // The shared_ptr still owns the synopses; using them is safe.
  ASSERT_NE(held, nullptr);
  EXPECT_GT(held->NumAnswers(), 0u);
}

TEST(SynopsisCacheTest, FailedBuildIsNotCached) {
  SynopsisCache cache(4);
  bool hit = true;
  std::string error;
  auto failed = cache.GetOrBuild(
      "k",
      [](std::string* e) -> std::shared_ptr<const PreprocessResult> {
        *e = "directory unreadable";
        return nullptr;
      },
      &hit, &error);
  EXPECT_EQ(failed, nullptr);
  EXPECT_EQ(error, "directory unreadable");
  EXPECT_EQ(cache.entries(), 0u);
  // A retry gets a fresh build (failure was not tombstoned).
  auto value = cache.GetOrBuild(
      "k", [](std::string*) { return BuildEmployeeResult(); }, &hit,
      &error);
  EXPECT_NE(value, nullptr);
}

TEST(SynopsisCacheTest, SingleFlightUnderConcurrentMisses) {
  SynopsisCache cache(4);
  constexpr size_t kThreads = 8;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const PreprocessResult>> results(kThreads);
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool hit = false;
      std::string error;
      results[t] = cache.GetOrBuild(
          "shared",
          [&](std::string*) {
            ++builds;
            return BuildEmployeeResult();
          },
          &hit, &error);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1) << "single-flight must build exactly once";
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
}

// ------------------------------------------------- engine-level caching.

class EngineCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cqa_engine_cache_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Dataset d = GenerateTpch(TpchOptions{0.0003, 17});
    std::string error;
    ASSERT_TRUE(WriteTblDirectory(*d.db, dir_.string(), &error)) << error;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Request MakeRequest() const {
    Request request;
    request.op = "query";
    request.schema = "tpch";
    request.data = dir_.string();
    request.query =
        "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC), "
        "nation(NK, NN, RK, NC).";
    request.scheme = "KLM";
    request.seed = 5;
    return request;
  }

  std::filesystem::path dir_;
};

TEST_F(EngineCacheTest, SecondIdenticalRequestSkipsPreprocessEntirely) {
  CqaEngine engine(EngineOptions{});
  Request request = MakeRequest();

  Response first = engine.ExecuteQuery(request, Deadline::Infinite());
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.answers.size(), 0u);

#ifndef CQABENCH_NO_OBS
  const uint64_t builds_before =
      obs::Registry::Instance().CounterValue("preprocess.builds");
#endif
  Response second = engine.ExecuteQuery(request, Deadline::Infinite());
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.preprocess_seconds, 0.0);
#ifndef CQABENCH_NO_OBS
  // The metrics-asserted core claim: the repeat request performed zero
  // Preprocess work, not merely "was fast".
  EXPECT_EQ(obs::Registry::Instance().CounterValue("preprocess.builds"),
            builds_before);
#endif
  EXPECT_GE(engine.synopsis_cache().hits(), 1u);

  // Same seed + serial scheme phase → identical estimates.
  ASSERT_EQ(second.answers.size(), first.answers.size());
  for (size_t i = 0; i < first.answers.size(); ++i) {
    EXPECT_EQ(second.answers[i].tuple, first.answers[i].tuple);
    EXPECT_DOUBLE_EQ(second.answers[i].frequency,
                     first.answers[i].frequency);
  }
}

TEST_F(EngineCacheTest, DifferentQueriesMissSeparately) {
  CqaEngine engine(EngineOptions{});
  Request request = MakeRequest();
  ASSERT_TRUE(engine.ExecuteQuery(request, Deadline::Infinite()).ok());
  Request other = MakeRequest();
  other.query = "Q(CN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC).";
  Response response = engine.ExecuteQuery(other, Deadline::Infinite());
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(engine.synopsis_cache().entries(), 2u);
}

TEST_F(EngineCacheTest, MissingDataDirectoryIsNotFound) {
  CqaEngine engine(EngineOptions{});
  Request request = MakeRequest();
  request.data = (dir_ / "no_such_subdir").string();
  Response response = engine.ExecuteQuery(request, Deadline::Infinite());
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code, ErrorCode::kNotFound);
}

TEST_F(EngineCacheTest, BadSchemeIsBadRequest) {
  CqaEngine engine(EngineOptions{});
  Request request = MakeRequest();
  request.scheme = "Quantum";
  Response response = engine.ExecuteQuery(request, Deadline::Infinite());
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
}

}  // namespace
}  // namespace cqa::serve
