#include "cqa/apx_cqa.h"

#include <gtest/gtest.h>

#include <map>

#include "cqa/exact.h"
#include "query/parser.h"
#include "storage/audit.h"
#include "storage/block_index.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(ApxCqaTest, ExampleOneBooleanIsAboutOneHalf) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  ApxParams params;
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(42);
    CqaRunResult r = ApxCqa(*fx.db, q, kind, params, rng);
    ASSERT_EQ(r.answers.size(), 1u) << SchemeKindName(kind);
    EXPECT_TRUE(r.answers[0].tuple.empty());
    EXPECT_NEAR(r.answers[0].frequency, 0.5, 0.15) << SchemeKindName(kind);
    EXPECT_FALSE(r.timed_out);
  }
}

TEST(ApxCqaTest, NonBooleanMatchesExactPerAnswer) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  ApxParams params;
  params.delta = 0.05;
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(7);
    CqaRunResult r = ApxCqa(*fx.db, q, kind, params, rng);
    ASSERT_EQ(r.answers.size(), 3u) << SchemeKindName(kind);
    std::map<Tuple, double> freq;
    for (const CqaAnswer& a : r.answers) freq[a.tuple] = a.frequency;
    EXPECT_NEAR(freq[{Value("Bob")}], 1.0, 0.25);
    EXPECT_NEAR(freq[{Value("Alice")}], 0.5, 0.15);
    EXPECT_NEAR(freq[{Value("Tim")}], 0.5, 0.15);
  }
}

TEST(ApxCqaTest, OnlyPositiveFrequencyAnswersReturned) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'HR').");
  Rng rng(1);
  CqaRunResult r =
      ApxCqa(*fx.db, q, SchemeKind::kNatural, ApxParams{}, rng);
  // Only Bob has an HR fact.
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].tuple, (Tuple{Value("Bob")}));
  EXPECT_GT(r.answers[0].frequency, 0.0);
}

TEST(ApxCqaTest, PipelineStateSatisfiesAudits) {
  EmployeeFixture fx;
  // The same partition precondition the pipeline audits internally.
  BlockIndex index = BlockIndex::Build(*fx.db);
  std::string why;
  EXPECT_TRUE(audit::CheckBlockPartition(*fx.db, index, &why)) << why;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  ApxParams params;
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(5);
    CqaRunResult r = ApxCqa(*fx.db, q, kind, params, rng);
    ASSERT_FALSE(r.timed_out) << SchemeKindName(kind);
    for (const CqaAnswer& a : r.answers) {
      // The true relative frequency is a probability; the estimators are
      // unbiased but unclamped, so Cover (a scaled ratio of counts, not a
      // mean of [0,1] draws) may overshoot 1 by its relative error.
      EXPECT_GE(a.frequency, 0.0) << SchemeKindName(kind);
      EXPECT_LE(a.frequency, 1.0 + 3 * params.epsilon) << SchemeKindName(kind);
    }
  }
}

TEST(ApxCqaTest, EmptyQueryYieldsNoAnswers) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'LEGAL').");
  Rng rng(1);
  CqaRunResult r = ApxCqa(*fx.db, q, SchemeKind::kKl, ApxParams{}, rng);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_FALSE(r.timed_out);
}

TEST(ApxCqaTest, ConsistentDatabaseGivesFrequencyOne) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kString}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value("a")});
  db.Insert("r", {Value(2), Value("b")});
  ConjunctiveQuery q = MustParseCq(schema, "Q(V) :- r(K, V).");
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(3);
    CqaRunResult r = ApxCqa(db, q, kind, ApxParams{}, rng);
    ASSERT_EQ(r.answers.size(), 2u);
    for (const CqaAnswer& a : r.answers) {
      EXPECT_NEAR(a.frequency, 1.0, 1e-9) << SchemeKindName(kind);
    }
  }
}

TEST(ApxCqaTest, AgreesWithRepairOracleOnRandomizedInstances) {
  // Integration property: random small inconsistent databases, frequency
  // per answer must match the exponential repair oracle within 2ε.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  schema.AddRelation(RelationSchema(
      "s", {{"v", ValueType::kInt}, {"w", ValueType::kInt}}, {0, 1}));
  Rng data_rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    Database db(&schema);
    for (int k = 0; k < 4; ++k) {
      size_t block = 1 + data_rng.UniformIndex(3);
      for (size_t i = 0; i < block; ++i) {
        db.Insert("r", {Value(k), Value(data_rng.UniformInt(0, 2))});
      }
    }
    for (int v = 0; v <= 2; ++v) {
      db.Insert("s", {Value(v), Value(data_rng.UniformInt(0, 1))});
    }
    ConjunctiveQuery q = MustParseCq(schema, "Q(W) :- r(K, V), s(V, W).");
    ApxParams params;
    params.epsilon = 0.1;
    params.delta = 0.02;
    Rng rng(500 + trial);
    CqaRunResult run = ApxCqa(db, q, SchemeKind::kKlm, params, rng);
    for (const CqaAnswer& a : run.answers) {
      std::optional<double> exact =
          ExactRelativeFrequencyByRepairs(db, q, a.tuple);
      ASSERT_TRUE(exact.has_value());
      EXPECT_NEAR(a.frequency, *exact, 2 * params.epsilon * *exact + 1e-9)
          << "trial " << trial << " answer " << TupleToString(a.tuple);
    }
  }
}

TEST(ApxCqaTest, SharedPreprocessingMatchesDirectRun) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  Rng rng_a(9), rng_b(9);
  CqaRunResult direct =
      ApxCqa(*fx.db, q, SchemeKind::kNatural, ApxParams{}, rng_a);
  CqaRunResult shared =
      ApxCqaOnSynopses(pre, SchemeKind::kNatural, ApxParams{}, rng_b);
  ASSERT_EQ(direct.answers.size(), shared.answers.size());
  for (size_t i = 0; i < direct.answers.size(); ++i) {
    EXPECT_EQ(direct.answers[i].tuple, shared.answers[i].tuple);
    EXPECT_DOUBLE_EQ(direct.answers[i].frequency,
                     shared.answers[i].frequency);
  }
}

TEST(ApxCqaTest, DeadlineTruncatesAnswerList) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  Rng rng(10);
  CqaRunResult r = ApxCqa(*fx.db, q, SchemeKind::kNatural, ApxParams{}, rng,
                          Deadline(0.0));
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.answers.size(), 3u);
}

}  // namespace
}  // namespace cqa
