#include "storage/chunk_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/audit.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace cqa {
namespace {

TEST(ChunkStatsTest, BoundsAndHistogramOverInts) {
  std::vector<int64_t> values = {10, 4, 7, 4, 25};
  ChunkColumnStats stats =
      BuildChunkColumnStats(Segment::SealInts(std::move(values)));
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.min, Value(int64_t{4}));
  EXPECT_EQ(stats.max, Value(int64_t{25}));
  ASSERT_TRUE(stats.has_histogram);
  size_t total = 0;
  for (size_t b = 0; b < ChunkColumnStats::kHistogramBins; ++b) {
    total += stats.bins[b];
  }
  EXPECT_EQ(total, 5u);
  // Present values may be contained; out-of-range values are proven absent.
  EXPECT_TRUE(stats.MayContainEqual(Value(int64_t{4})));
  EXPECT_TRUE(stats.MayContainEqual(Value(int64_t{25})));
  EXPECT_FALSE(stats.MayContainEqual(Value(int64_t{3})));
  EXPECT_FALSE(stats.MayContainEqual(Value(int64_t{26})));
  EXPECT_FALSE(stats.MayContainEqual(Value("4")));  // Type mismatch.
}

TEST(ChunkStatsTest, EmptySegmentIsInvalid) {
  ChunkColumnStats stats = BuildChunkColumnStats(Segment::SealInts({}));
  EXPECT_FALSE(stats.valid);
  EXPECT_FALSE(stats.MayContainEqual(Value(int64_t{0})));
}

TEST(ChunkStatsTest, DictionarySegmentHasExactDistinct) {
  std::vector<std::string> values = {"b", "a", "b", "a", "c", "c"};
  ChunkColumnStats stats =
      BuildChunkColumnStats(Segment::SealStrings(std::move(values)));
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.distinct, 3u);
  EXPECT_EQ(stats.min, Value("a"));
  EXPECT_EQ(stats.max, Value("c"));
  // Strings keep bounds only — no histogram.
  EXPECT_FALSE(stats.has_histogram);
  EXPECT_TRUE(stats.MayContainEqual(Value("b")));
  EXPECT_FALSE(stats.MayContainEqual(Value("d")));
}

TEST(ChunkStatsTest, ExtremeIntRangeDoesNotOverflow) {
  // min + max overflow naive (max-min) width arithmetic; the histogram
  // must still bucket both ends within range.
  std::vector<int64_t> values = {INT64_MIN, 0, INT64_MAX};
  ChunkColumnStats stats =
      BuildChunkColumnStats(Segment::SealInts(std::move(values)));
  ASSERT_TRUE(stats.valid);
  ASSERT_TRUE(stats.has_histogram);
  EXPECT_TRUE(stats.MayContainEqual(Value(INT64_MIN)));
  EXPECT_TRUE(stats.MayContainEqual(Value(INT64_MAX)));
  EXPECT_TRUE(stats.MayContainEqual(Value(int64_t{0})));
}

TEST(ChunkStatsTest, DoubleHistogram) {
  std::vector<double> values = {0.0, 0.25, 0.5, 1.0};
  ChunkColumnStats stats =
      BuildChunkColumnStats(Segment::SealDoubles(std::move(values)));
  ASSERT_TRUE(stats.valid);
  ASSERT_TRUE(stats.has_histogram);
  for (double v : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_TRUE(stats.MayContainEqual(Value(v)));
  }
  EXPECT_FALSE(stats.MayContainEqual(Value(1.5)));
}

/// The load-bearing property: for any chunked relation and any probe
/// value (present or absent), the pruned ScanMatching returns exactly the
/// rows a full row-scan oracle finds. Statistics may waste a scan, never
/// drop a match.
TEST(ChunkStatsPropertyTest, PruningNeverDropsAMatchingChunk) {
  RelationSchema rs("r", {{"k", ValueType::kInt},
                          {"grp", ValueType::kInt},
                          {"tag", ValueType::kString},
                          {"w", ValueType::kDouble}},
                    {0});
  Rng rng(987654321);
  for (int trial = 0; trial < 20; ++trial) {
    // Small chunks so every relation spans several plus an unsealed tail.
    Relation rel(&rs, /*chunk_capacity=*/64);
    size_t n = static_cast<size_t>(rng.UniformInt(0, 400));
    for (size_t i = 0; i < n; ++i) {
      rel.Insert({Value(rng.UniformInt(0, 300)),
                  Value(rng.UniformInt(0, 7)),
                  Value("t" + std::to_string(rng.UniformInt(0, 15))),
                  Value(static_cast<double>(rng.UniformInt(0, 50)) / 4.0)});
    }
    if (rng.Bernoulli(0.5)) rel.SealTail();

    for (int probe = 0; probe < 40; ++probe) {
      // Random conjunct set over random columns, values biased into the
      // stored ranges so both hits and misses occur.
      std::vector<size_t> positions;
      Tuple key;
      if (rng.Bernoulli(0.7)) {
        positions.push_back(0);
        key.push_back(Value(rng.UniformInt(0, 320)));
      }
      if (rng.Bernoulli(0.5)) {
        positions.push_back(1);
        key.push_back(Value(rng.UniformInt(0, 8)));
      }
      if (rng.Bernoulli(0.5)) {
        positions.push_back(2);
        key.push_back(Value("t" + std::to_string(rng.UniformInt(0, 17))));
      }
      if (positions.empty()) {
        positions.push_back(3);
        key.push_back(Value(static_cast<double>(rng.UniformInt(0, 55)) / 4.0));
      }

      std::vector<size_t> expected;
      for (size_t row = 0; row < rel.size(); ++row) {
        bool match = true;
        for (size_t i = 0; i < positions.size() && match; ++i) {
          match = rel.ValueAt(row, positions[i]) == key[i];
        }
        if (match) expected.push_back(row);
      }

      std::vector<size_t> actual;
      bool completed = rel.ScanMatching(positions, key, [&](size_t row) {
        actual.push_back(row);
        return true;
      });
      EXPECT_TRUE(completed);
      EXPECT_EQ(actual, expected)
          << "trial " << trial << " probe " << probe << " n=" << n;
    }
  }
}

TEST(ChunkStatsPropertyTest, ScanStopsEarlyWhenAsked) {
  RelationSchema rs("r", {{"k", ValueType::kInt}}, {0});
  Relation rel(&rs, /*chunk_capacity=*/8);
  for (int64_t i = 0; i < 40; ++i) rel.Insert({Value(i % 4)});
  rel.SealTail();
  size_t seen = 0;
  bool completed = rel.ScanMatching({0}, {Value(int64_t{2})}, [&](size_t) {
    ++seen;
    return seen < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3u);
}

TEST(ChunkStatsPropertyTest, DisjointChunksAreCountedAsPruned) {
  RelationSchema rs("r", {{"k", ValueType::kInt}}, {0});
  Relation rel(&rs, /*chunk_capacity=*/16);
  // Two chunks with disjoint ranges: [0,15] and [1000,1015].
  for (int64_t i = 0; i < 16; ++i) rel.Insert({Value(i)});
  for (int64_t i = 1000; i < 1016; ++i) rel.Insert({Value(i)});
  size_t hits = 0;
  rel.ScanMatching({0}, {Value(int64_t{1005})}, [&](size_t) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1u);
  EXPECT_GE(rel.chunks_pruned(), 1u);
}

TEST(StorageAuditTest, ColumnarStorageInvariantsHoldOnMixedState) {
  Schema schema;
  schema.AddRelation(RelationSchema("r", {{"k", ValueType::kInt},
                                          {"tag", ValueType::kString}},
                                    {0}));
  Database db(&schema);
  Rng rng(42);
  for (int64_t i = 0; i < 10000; ++i) {
    db.Insert("r", {Value(i), Value("t" + std::to_string(i % 5))});
  }
  std::string why;
  // Valid with an open tail (10000 is not a multiple of the chunk size),
  // after sealing, and after appending into a reopened tail.
  EXPECT_TRUE(audit::CheckColumnarStorage(db, &why)) << why;
  db.SealStorage();
  EXPECT_TRUE(audit::CheckColumnarStorage(db, &why)) << why;
  db.Insert("r", {Value(int64_t{10000}), Value("t0")});
  EXPECT_TRUE(audit::CheckColumnarStorage(db, &why)) << why;
}

}  // namespace
}  // namespace cqa
