#include "cqa/synopsis_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "cqa/exact.h"
#include "cqa/schemes.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

class SynopsisIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cqa_syn_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".txt"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(SynopsisIoTest, RoundTripPreservesSynopses) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  std::string error;
  ASSERT_TRUE(WriteSynopses(pre, path_, &error)) << error;

  std::vector<AnswerSynopsis> loaded;
  ASSERT_TRUE(ReadSynopses(path_, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), pre.NumAnswers());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].answer, pre.answers()[i].answer);
    EXPECT_EQ(loaded[i].synopsis.NumImages(),
              pre.answers()[i].synopsis.NumImages());
    EXPECT_EQ(loaded[i].synopsis.NumBlocks(),
              pre.answers()[i].synopsis.NumBlocks());
    EXPECT_DOUBLE_EQ(*ExactRatioByEnumeration(loaded[i].synopsis),
                     *ExactRatioByEnumeration(pre.answers()[i].synopsis));
  }
}

TEST_F(SynopsisIoTest, SchemesRunOffLoadedSynopses) {
  // The decoupled workflow: preprocess + persist, then approximate
  // offline. Frequencies must match a direct run given the same seed.
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  std::string error;
  ASSERT_TRUE(WriteSynopses(pre, path_, &error)) << error;
  std::vector<AnswerSynopsis> loaded;
  ASSERT_TRUE(ReadSynopses(path_, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  auto scheme = ApxRelativeFreqScheme::Create(SchemeKind::kKl);
  Rng rng_a(3), rng_b(3);
  ApxResult direct = scheme->Run(pre.answers()[0].synopsis, ApxParams{},
                                 rng_a);
  ApxResult offline = scheme->Run(loaded[0].synopsis, ApxParams{}, rng_b);
  EXPECT_DOUBLE_EQ(direct.estimate, offline.estimate);
}

TEST_F(SynopsisIoTest, RoundTripOnNoisyTpch) {
  TpchOptions options;
  options.scale_factor = 0.0003;
  Dataset d = GenerateTpch(options);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " nation(NK, NN, RK, NC).");
  Rng rng(4);
  NoiseOptions noise;
  noise.p = 0.5;
  AddQueryAwareNoise(d.db.get(), q, noise, rng);
  PreprocessResult pre = BuildSynopses(*d.db, q);
  std::string error;
  ASSERT_TRUE(WriteSynopses(pre, path_, &error)) << error;
  std::vector<AnswerSynopsis> loaded;
  ASSERT_TRUE(ReadSynopses(path_, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), pre.NumAnswers());
  // Spot-check the weights (they determine every scheme's behaviour).
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].synopsis.SymbolicToNaturalFactor(),
                     pre.answers()[i].synopsis.SymbolicToNaturalFactor());
  }
}

TEST_F(SynopsisIoTest, RejectsBadHeader) {
  {
    std::ofstream out(path_);
    out << "NOT_A_SYNOPSIS\n";
  }
  std::vector<AnswerSynopsis> loaded;
  std::string error;
  EXPECT_FALSE(ReadSynopses(path_, &loaded, &error));
  EXPECT_NE(error.find("bad header"), std::string::npos);
}

TEST_F(SynopsisIoTest, RejectsRecordsBeforeAnswer) {
  {
    std::ofstream out(path_);
    out << "CQA_SYNOPSES 1\nB|2,0,0|\n";
  }
  std::vector<AnswerSynopsis> loaded;
  std::string error;
  EXPECT_FALSE(ReadSynopses(path_, &loaded, &error));
  EXPECT_NE(error.find("B before A"), std::string::npos);
}

TEST_F(SynopsisIoTest, RejectsMalformedImageFacts) {
  {
    std::ofstream out(path_);
    out << "CQA_SYNOPSES 1\nA|i:1|\nB|2,0,0|\nI|nonsense|\n";
  }
  std::vector<AnswerSynopsis> loaded;
  std::string error;
  EXPECT_FALSE(ReadSynopses(path_, &loaded, &error));
}

TEST_F(SynopsisIoTest, MissingFileFails) {
  std::vector<AnswerSynopsis> loaded;
  std::string error;
  EXPECT_FALSE(ReadSynopses("/nonexistent/syn.txt", &loaded, &error));
}

}  // namespace
}  // namespace cqa
