#include "query/cq.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

Schema TwoRelationSchema() {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}, {0}));
  schema.AddRelation(RelationSchema(
      "s", {{"b", ValueType::kInt}, {"c", ValueType::kString}}, {0}));
  return schema;
}

ConjunctiveQuery JoinQuery() {
  // Q(X, C) :- r(X, Y), s(Y, C).
  ConjunctiveQuery q;
  q.AddAtom(Atom{0, {Term::Var(0), Term::Var(1)}});
  q.AddAtom(Atom{1, {Term::Var(1), Term::Var(2)}});
  q.SetAnswerVars({0, 2});
  return q;
}

TEST(CqTest, BasicAccessors) {
  ConjunctiveQuery q = JoinQuery();
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_EQ(q.num_vars(), 3u);
  EXPECT_FALSE(q.IsBoolean());
  EXPECT_EQ(q.answer_vars(), (std::vector<size_t>{0, 2}));
}

TEST(CqTest, NumJoinsCountsSharedOccurrences) {
  EXPECT_EQ(JoinQuery().NumJoins(), 1u);
  // r(X, X) has a self-join on X: 2 occurrences -> 1 join.
  ConjunctiveQuery self;
  self.AddAtom(Atom{0, {Term::Var(0), Term::Var(0)}});
  EXPECT_EQ(self.NumJoins(), 1u);
  // A variable occurring three times counts as 2 joins.
  ConjunctiveQuery chain;
  chain.AddAtom(Atom{0, {Term::Var(0), Term::Var(1)}});
  chain.AddAtom(Atom{0, {Term::Var(1), Term::Var(2)}});
  chain.AddAtom(Atom{1, {Term::Var(1), Term::Var(3)}});
  EXPECT_EQ(chain.NumJoins(), 2u);
}

TEST(CqTest, NumConstantOccurrences) {
  ConjunctiveQuery q;
  q.AddAtom(Atom{0, {Term::Const(Value(1)), Term::Var(0)}});
  q.AddAtom(Atom{1, {Term::Var(0), Term::Const(Value("x"))}});
  EXPECT_EQ(q.NumConstantOccurrences(), 2u);
  EXPECT_EQ(JoinQuery().NumConstantOccurrences(), 0u);
}

TEST(CqTest, BooleanVersionDropsAnswerVars) {
  ConjunctiveQuery b = JoinQuery().BooleanVersion();
  EXPECT_TRUE(b.IsBoolean());
  EXPECT_EQ(b.NumAtoms(), 2u);
  EXPECT_EQ(b.num_vars(), 3u);
}

TEST(CqTest, WithAnswerVarsReprojects) {
  ConjunctiveQuery q = JoinQuery().WithAnswerVars({1});
  EXPECT_EQ(q.answer_vars(), (std::vector<size_t>{1}));
}

TEST(CqTest, ValidatePassesOnWellFormed) {
  Schema schema = TwoRelationSchema();
  JoinQuery().Validate(schema);  // Must not abort.
}

TEST(CqDeathTest, ValidateRejectsArityMismatch) {
  Schema schema = TwoRelationSchema();
  ConjunctiveQuery q;
  q.AddAtom(Atom{0, {Term::Var(0)}});  // r has arity 2.
  EXPECT_DEATH(q.Validate(schema), "r");
}

TEST(CqDeathTest, ValidateRejectsUnboundAnswerVar) {
  Schema schema = TwoRelationSchema();
  ConjunctiveQuery q;
  q.AddAtom(Atom{0, {Term::Var(0), Term::Var(1)}});
  q.SetAnswerVars({5});
  EXPECT_DEATH(q.Validate(schema), "answer variable");
}

TEST(CqTest, BindAnswerSubstitutesAndRenumbers) {
  ConjunctiveQuery q = JoinQuery();
  ConjunctiveQuery bound = q.BindAnswer({Value(7), Value("hi")});
  EXPECT_TRUE(bound.IsBoolean());
  EXPECT_EQ(bound.num_vars(), 1u);  // Only Y remains.
  const Atom& a0 = bound.atom(0);
  EXPECT_TRUE(a0.terms[0].is_constant());
  EXPECT_EQ(a0.terms[0].constant(), Value(7));
  EXPECT_TRUE(a0.terms[1].is_variable());
  const Atom& a1 = bound.atom(1);
  EXPECT_EQ(a1.terms[0].var(), a0.terms[1].var());  // Join preserved.
  EXPECT_EQ(a1.terms[1].constant(), Value("hi"));
}

TEST(CqTest, ToStringRoundTripsThroughParser) {
  Schema schema = TwoRelationSchema();
  ConjunctiveQuery q = JoinQuery();
  q.SetVarNames({"X", "Y", "C"});
  std::string text = q.ToString(schema);
  EXPECT_EQ(text, "Q(X, C) :- r(X, Y), s(Y, C).");
  ConjunctiveQuery reparsed = MustParseCq(schema, text);
  EXPECT_EQ(reparsed.ToString(schema), text);
}

TEST(CqTest, TermEquality) {
  EXPECT_EQ(Term::Var(1), Term::Var(1));
  EXPECT_FALSE(Term::Var(1) == Term::Var(2));
  EXPECT_EQ(Term::Const(Value(3)), Term::Const(Value(3)));
  EXPECT_FALSE(Term::Const(Value(3)) == Term::Var(3));
}

}  // namespace
}  // namespace cqa
