// Tests of the BENCH_*.json writer: the versioned schema, provenance
// fields, mean ± stddev aggregation over repeated trials, convergence
// summaries, and the file round-trip — the contract
// tools/bench_compare.py parses on the other side.

#include "obs/bench_json.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "json_test_util.h"

namespace cqa {
namespace {

using testing::MiniJson;
using testing::TempPath;

obs::RunRecord MakeRecord(const std::string& scheme, double seconds,
                          size_t samples, bool timed_out = false) {
  obs::RunRecord record;
  record.scenario = "Unit";
  record.x_label = "noise";
  record.x = 0.5;
  record.scheme = scheme;
  record.estimate = 0.25;
  record.total_samples = samples;
  record.total_seconds = seconds;
  record.timed_out = timed_out;
  return record;
}

TEST(BenchJsonTest, EmitsVersionedSchemaWithProvenance) {
  obs::BenchJsonWriter writer;
  obs::BenchMetadata meta;
  meta.name = "bench_unit";
  meta.seed = 99;
  meta.scale_factor = 0.001;
  meta.timeout_seconds = 5.0;
  meta.queries_per_level = 2;
  meta.epsilon = 0.2;
  meta.delta = 0.3;
  writer.SetMetadata(meta);
  writer.AddRun(MakeRecord("KLM", 1.0, 100));

  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &top))
      << writer.ToJson();
  EXPECT_EQ(top["bench_json_version"], "1");
  EXPECT_EQ(top["name"], "bench_unit");
  EXPECT_FALSE(top["git_sha"].empty());
  ASSERT_TRUE(top.count("build"));
  ASSERT_TRUE(top.count("no_obs"));
  ASSERT_TRUE(top.count("unix_time"));
  ASSERT_TRUE(top.count("host"));

  std::map<std::string, std::string> config;
  ASSERT_TRUE(MiniJson::ParseObject(top["config"], &config));
  EXPECT_EQ(config["seed"], "99");
  EXPECT_EQ(std::stod(config["scale_factor"]), 0.001);
  EXPECT_EQ(std::stod(config["timeout_seconds"]), 5.0);
  EXPECT_EQ(config["queries_per_level"], "2");
  EXPECT_EQ(std::stod(config["epsilon"]), 0.2);
  EXPECT_EQ(std::stod(config["delta"]), 0.3);

  std::map<std::string, std::string> host;
  ASSERT_TRUE(MiniJson::ParseObject(top["host"], &host));
  ASSERT_TRUE(host.count("hardware_concurrency"));
}

TEST(BenchJsonTest, GitShaEnvOverridesTheBakedInValue) {
  ASSERT_EQ(setenv("CQABENCH_GIT_SHA", "deadbeef1234", 1), 0);
  EXPECT_EQ(obs::BenchGitSha(), "deadbeef1234");
  ASSERT_EQ(unsetenv("CQABENCH_GIT_SHA"), 0);
  EXPECT_FALSE(obs::BenchGitSha().empty());
}

TEST(BenchJsonTest, RepeatedTrialsAggregateToMeanAndStddev) {
  obs::BenchJsonWriter writer;
  // Three trials of the same cell: 1s, 2s, 3s.
  writer.AddRun(MakeRecord("KLM", 1.0, 100));
  writer.AddRun(MakeRecord("KLM", 2.0, 200));
  writer.AddRun(MakeRecord("KLM", 3.0, 300, /*timed_out=*/true));
  // A second cell keyed by a different series name.
  writer.AddRun(MakeRecord("Natural", 5.0, 50));
  EXPECT_EQ(writer.num_cells(), 2u);

  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &top));
  const std::string& results = top["results"];
  // Cells are sorted by (scenario, x, series): KLM before Natural.
  size_t klm = results.find("\"series\":\"KLM\"");
  size_t natural = results.find("\"series\":\"Natural\"");
  ASSERT_NE(klm, std::string::npos);
  ASSERT_NE(natural, std::string::npos);
  EXPECT_LT(klm, natural);

  std::string klm_obj = results.substr(2, natural - 2);
  EXPECT_NE(klm_obj.find("\"runs\":3"), std::string::npos) << klm_obj;
  EXPECT_NE(klm_obj.find("\"timeouts\":1"), std::string::npos);
  EXPECT_NE(klm_obj.find("\"wall_seconds\":{\"mean\":2,\"stddev\":1}"),
            std::string::npos)
      << klm_obj;
  EXPECT_NE(klm_obj.find("\"samples\":{\"mean\":200,\"stddev\":100}"),
            std::string::npos);
}

TEST(BenchJsonTest, ConvergenceSummariesAggregatePerCell) {
  obs::BenchJsonWriter writer;
  obs::RunRecord converged = MakeRecord("KL", 1.0, 100);
  converged.convergence.num_series = 2;
  converged.convergence.samples_to_epsilon = 60;
  converged.convergence.auec = 0.1;
  converged.convergence.final_half_width = 0.02;
  writer.AddRun(converged);
  obs::RunRecord stuck = MakeRecord("KL", 1.0, 100);
  stuck.convergence.num_series = 2;
  stuck.convergence.samples_to_epsilon = 0;  // never reached ε
  stuck.convergence.auec = 0.3;
  stuck.convergence.final_half_width = 0.08;
  writer.AddRun(stuck);
  // A record with no recorded series (NO_OBS or recording off) does not
  // count toward the convergence aggregates.
  writer.AddRun(MakeRecord("KL", 1.0, 100));

  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &top));
  const std::string& results = top["results"];
  EXPECT_NE(results.find("\"convergence\":{\"runs\":2,\"converged\":1,"
                         "\"samples_to_epsilon\":{\"mean\":60,\"stddev\":0}"),
            std::string::npos)
      << results;
  EXPECT_NE(results.find("\"auec\":{\"mean\":0.2,"), std::string::npos);
}

TEST(BenchJsonTest, AddSampleFeedsNonSchemeCells) {
  obs::BenchJsonWriter writer;
  writer.AddSample("Preprocess", "grid", 0.0, "Preprocess", 0.5, 10.0,
                   false);
  writer.AddSample("Preprocess", "grid", 0.0, "Preprocess", 1.5, 30.0,
                   false);
  EXPECT_EQ(writer.num_cells(), 1u);
  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &top));
  EXPECT_NE(top["results"].find("\"wall_seconds\":{\"mean\":1,"),
            std::string::npos);
  EXPECT_NE(top["results"].find("\"convergence\":{\"runs\":0,"),
            std::string::npos);
}

TEST(BenchJsonTest, ResultsAreStableAcrossSerializations) {
  obs::BenchJsonWriter writer;
  obs::BenchMetadata meta;
  meta.name = "bench_stable";
  writer.SetMetadata(meta);
  writer.AddRun(MakeRecord("Cover", 0.25, 40));
  std::map<std::string, std::string> first, second;
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &first));
  ASSERT_TRUE(MiniJson::ParseObject(writer.ToJson(), &second));
  // Everything except the wall-clock stamp is deterministic.
  EXPECT_EQ(first["results"], second["results"]);
  EXPECT_EQ(first["config"], second["config"]);
  EXPECT_EQ(first["git_sha"], second["git_sha"]);
}

TEST(BenchJsonTest, WriteFileRoundTrips) {
  obs::BenchJsonWriter writer;
  obs::BenchMetadata meta;
  meta.name = "bench_file";
  writer.SetMetadata(meta);
  writer.AddRun(MakeRecord("Natural", 1.0, 10));
  std::string path = TempPath("cqa_bench_json_test.json");
  std::string error;
  ASSERT_TRUE(writer.WriteFile(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  std::string text = contents.str();
  // One JSON object with a trailing newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  text.pop_back();
  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(text, &top)) << text;
  EXPECT_EQ(top["name"], "bench_file");
  std::filesystem::remove(path);

  EXPECT_FALSE(writer.WriteFile("/nonexistent_dir_xyz/b.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cqa
