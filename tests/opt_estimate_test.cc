#include "cqa/opt_estimate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cqa/monte_carlo.h"
#include "test_util.h"

namespace cqa {
namespace {

/// A sampler with a known Bernoulli(p) distribution.
class BernoulliSampler : public Sampler {
 public:
  explicit BernoulliSampler(double p) : p_(p) {}
  double Draw(Rng& rng) override { return rng.Bernoulli(p_) ? 1.0 : 0.0; }
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "bernoulli"; }

 private:
  double p_;
};

/// A sampler with sub-Bernoulli variance: constant p.
class ConstantSampler : public Sampler {
 public:
  explicit ConstantSampler(double p) : p_(p) {}
  double Draw(Rng&) override { return p_; }
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "constant"; }

 private:
  double p_;
};

TEST(OptEstimateTest, MuHatApproximatesMean) {
  BernoulliSampler sampler(0.3);
  Rng rng(1);
  OptEstimateResult r = OptEstimate(sampler, 0.1, 0.25, rng);
  EXPECT_FALSE(r.timed_out);
  // The stopping-rule phase guarantees mu within (1+eps1) factors whp;
  // allow a loose band.
  EXPECT_NEAR(r.mu_hat, 0.3, 0.12);
  EXPECT_GE(r.num_iterations, 1u);
  EXPECT_GT(r.samples_used, 0u);
}

TEST(OptEstimateTest, IterationCountGrowsAsMeanShrinks) {
  Rng rng(2);
  BernoulliSampler big(0.5);
  BernoulliSampler small(0.01);
  OptEstimateResult r_big = OptEstimate(big, 0.1, 0.25, rng);
  OptEstimateResult r_small = OptEstimate(small, 0.1, 0.25, rng);
  EXPECT_GT(r_small.num_iterations, r_big.num_iterations);
  EXPECT_GT(r_small.samples_used, r_big.samples_used);
}

TEST(OptEstimateTest, LowVarianceSamplersNeedFewerIterations) {
  // Same mean, very different variance: the optimal estimator must give
  // the constant sampler far fewer main-loop iterations (this is the
  // variance-sensitivity that makes KLM beat KL at few joins).
  Rng rng(3);
  BernoulliSampler noisy(0.2);
  ConstantSampler quiet(0.2);
  OptEstimateResult r_noisy = OptEstimate(noisy, 0.1, 0.25, rng);
  OptEstimateResult r_quiet = OptEstimate(quiet, 0.1, 0.25, rng);
  EXPECT_LT(r_quiet.num_iterations, r_noisy.num_iterations / 2);
}

TEST(OptEstimateTest, DeadlineCausesTimeout) {
  BernoulliSampler sampler(1e-9);  // SRA would need ~1e11 samples.
  Rng rng(4);
  OptEstimateResult r =
      OptEstimate(sampler, 0.1, 0.25, rng, Deadline(0.05));
  EXPECT_TRUE(r.timed_out);
}

TEST(MonteCarloTest, EstimateWithinRelativeError) {
  // (ε, δ) guarantee check: with ε=0.2, δ=0.2 at least ~80% of runs must
  // land within 20% of the truth; require 18/20 to keep flake risk low
  // while still detecting a broken estimator.
  const double p = 0.25;
  size_t hits = 0;
  for (int run = 0; run < 20; ++run) {
    BernoulliSampler sampler(p);
    Rng rng(100 + run);
    MonteCarloResult r = MonteCarloEstimate(sampler, 0.2, 0.2, rng);
    ASSERT_FALSE(r.timed_out);
    if (std::abs(r.estimate - p) <= 0.2 * p) ++hits;
  }
  EXPECT_GE(hits, 18u);
}

TEST(MonteCarloTest, TightEpsilonIsMoreAccurate) {
  BernoulliSampler sampler(0.4);
  Rng rng(5);
  MonteCarloResult loose = MonteCarloEstimate(sampler, 0.3, 0.25, rng);
  MonteCarloResult tight = MonteCarloEstimate(sampler, 0.05, 0.25, rng);
  EXPECT_GT(tight.main_samples, loose.main_samples);
  EXPECT_NEAR(tight.estimate, 0.4, 0.4 * 0.05 * 2);
}

TEST(MonteCarloTest, PropagatesTimeout) {
  BernoulliSampler sampler(1e-9);
  Rng rng(6);
  MonteCarloResult r =
      MonteCarloEstimate(sampler, 0.1, 0.25, rng, Deadline(0.05));
  EXPECT_TRUE(r.timed_out);
}

/// Sweep across the (ε, δ) grid: the guarantee must hold at every
/// configuration, and N must be monotone in the required precision.
class EpsilonDeltaSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EpsilonDeltaSweepTest, GuaranteeHoldsAcrossGrid) {
  auto [epsilon, delta] = GetParam();
  const double p = 0.3;
  size_t hits = 0;
  const int runs = 12;
  for (int run = 0; run < runs; ++run) {
    BernoulliSampler sampler(p);
    Rng rng(7000 + run * 13 +
            static_cast<uint64_t>(epsilon * 1000 + delta * 100));
    MonteCarloResult r = MonteCarloEstimate(sampler, epsilon, delta, rng);
    ASSERT_FALSE(r.timed_out);
    if (std::abs(r.estimate - p) <= epsilon * p) ++hits;
  }
  // Expect >= (1-δ) of runs inside the band; allow one extra failure of
  // slack to keep the suite deterministic across library updates.
  double expected_hits = (1.0 - delta) * runs;
  EXPECT_GE(hits + 1, static_cast<size_t>(expected_hits));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EpsilonDeltaSweepTest,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.3),
                       ::testing::Values(0.1, 0.25)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
      return "eps" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_delta" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(OptEstimateTest, IterationCountShrinksWithLooserEpsilon) {
  BernoulliSampler sampler(0.3);
  Rng rng(8);
  OptEstimateResult tight = OptEstimate(sampler, 0.05, 0.25, rng);
  OptEstimateResult loose = OptEstimate(sampler, 0.3, 0.25, rng);
  EXPECT_GT(tight.num_iterations, loose.num_iterations);
}

TEST(OptEstimateTest, IterationCountGrowsWithConfidence) {
  BernoulliSampler sampler(0.3);
  Rng rng(9);
  OptEstimateResult confident = OptEstimate(sampler, 0.1, 0.01, rng);
  OptEstimateResult loose = OptEstimate(sampler, 0.1, 0.5, rng);
  EXPECT_GT(confident.num_iterations, loose.num_iterations);
}

TEST(OptEstimateDeathTest, RejectsBadParameters) {
  BernoulliSampler sampler(0.5);
  Rng rng(7);
  EXPECT_DEATH(OptEstimate(sampler, 0.0, 0.25, rng), "epsilon");
  EXPECT_DEATH(OptEstimate(sampler, 1.5, 0.25, rng), "epsilon");
  EXPECT_DEATH(OptEstimate(sampler, 0.1, 0.0, rng), "delta");
}

}  // namespace
}  // namespace cqa
