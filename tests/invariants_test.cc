#include "cqa/invariants.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "cqa/symbolic_space.h"
#include "cqa/synopsis.h"
#include "storage/audit.h"
#include "storage/block_index.h"
#include "storage/repairs.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

/// Two blocks (sizes 2 and 3), two images: H_0 = {(0,0)}, H_1 = {(0,1),
/// (1,2)}. Weights: w_0 = 1/2, w_1 = 1/6.
Synopsis SmallSynopsis() {
  Synopsis synopsis;
  synopsis.AddBlock(Synopsis::Block{2, 0, 0});
  synopsis.AddBlock(Synopsis::Block{3, 0, 1});
  synopsis.AddImage({{0, 0}});
  synopsis.AddImage({{0, 1}, {1, 2}});
  return synopsis;
}

// ---------------------------------------------------------------------------
// Synopsis / symbolic-space structure.
// ---------------------------------------------------------------------------

TEST(InvariantsTest, WellFormedSynopsisPasses) {
  Synopsis synopsis = SmallSynopsis();
  std::string why;
  EXPECT_TRUE(audit::CheckSynopsis(synopsis, &why)) << why;

  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Synopsis random = testing::MakeRandomSynopsis(rng, 4, 3, 5, 3);
    EXPECT_TRUE(audit::CheckSynopsis(random, &why)) << why;
  }
}

// Synopsis's own constructor checks (CQA_CHECK, active in every build)
// already refuse empty blocks, so CheckSynopsis's "empty block" branch is
// pure defense-in-depth against in-memory corruption. Verify the layering:
// the API aborts before an invalid synopsis can ever reach the audit.
TEST(InvariantsTest, ApiRejectsEmptyBlockBeforeAuditRuns) {
  EXPECT_DEATH(
      {
        Synopsis synopsis;
        synopsis.AddBlock(Synopsis::Block{0, 0, 0});
      },
      "block.size >= 1");
}

TEST(InvariantsTest, FreshSymbolicSpacePasses) {
  Synopsis synopsis = SmallSynopsis();
  SymbolicSpace space(&synopsis);
  std::string why;
  EXPECT_TRUE(audit::CheckSymbolicSpace(space, &why)) << why;
  EXPECT_DOUBLE_EQ(space.total_weight(), 0.5 + 1.0 / 6.0);
}

// ---------------------------------------------------------------------------
// Sampled elements: (i, I) ∈ S• requires H_i ⊆ I.
// ---------------------------------------------------------------------------

TEST(InvariantsTest, SampledElementsAreInTheSpace) {
  Synopsis synopsis = SmallSynopsis();
  SymbolicSpace space(&synopsis);
  Rng rng(11);
  Synopsis::Choice choice;
  std::string why;
  for (int draw = 0; draw < 200; ++draw) {
    size_t i = space.SampleElement(rng, &choice);
    EXPECT_TRUE(audit::CheckSampledElement(space, i, choice, &why)) << why;
  }
}

TEST(InvariantsTest, SampledElementRejectsCorruption) {
  Synopsis synopsis = SmallSynopsis();
  SymbolicSpace space(&synopsis);
  std::string why;

  // Image index past the image list.
  Synopsis::Choice choice = {0, 0};
  EXPECT_FALSE(audit::CheckSampledElement(space, 99, choice, &why));
  EXPECT_NE(why.find("out of range"), std::string::npos) << why;

  // Choice with the wrong number of blocks.
  Synopsis::Choice truncated = {0};
  EXPECT_FALSE(audit::CheckSampledElement(space, 0, truncated, &why));

  // Choice tid past its block's cardinality.
  Synopsis::Choice oob = {0, 7};
  EXPECT_FALSE(audit::CheckSampledElement(space, 0, oob, &why));

  // H_0 = {(0,0)} is not contained in a choice picking tid 1 of block 0.
  Synopsis::Choice not_containing = {1, 0};
  EXPECT_FALSE(audit::CheckSampledElement(space, 0, not_containing, &why));
  EXPECT_NE(why.find("not contained"), std::string::npos) << why;
}

TEST(InvariantsTest, ImageInPrefixChecksEarlyAccept) {
  Synopsis synopsis = SmallSynopsis();
  std::string why;
  // H_0 = {(0,0)} completes after drawing block 0 only.
  Synopsis::Choice choice = {0, 0};
  EXPECT_TRUE(audit::CheckImageInPrefix(synopsis, 0, choice, 1, &why)) << why;
  // Claiming completion before block 0 was drawn is a violation.
  EXPECT_FALSE(audit::CheckImageInPrefix(synopsis, 0, choice, 0, &why));
  // As is a drawn prefix that does not actually pin the image's fact.
  Synopsis::Choice mismatched = {1, 0};
  EXPECT_FALSE(audit::CheckImageInPrefix(synopsis, 0, mismatched, 1, &why));
  // Or a prefix longer than the choice itself.
  EXPECT_FALSE(audit::CheckImageInPrefix(synopsis, 0, choice, 3, &why));
}

TEST(InvariantsTest, NaturalDrawMustMatchNaiveContainment) {
  Synopsis synopsis = SmallSynopsis();
  std::string why;
  Synopsis::Choice containing = {0, 0};  // Contains H_0.
  EXPECT_TRUE(audit::CheckNaturalDraw(synopsis, containing, 1.0, &why)) << why;
  EXPECT_FALSE(audit::CheckNaturalDraw(synopsis, containing, 0.0, &why));

  Synopsis::Choice missing = {1, 0};  // Contains neither image.
  EXPECT_TRUE(audit::CheckNaturalDraw(synopsis, missing, 0.0, &why)) << why;
  EXPECT_FALSE(audit::CheckNaturalDraw(synopsis, missing, 1.0, &why));
}

// ---------------------------------------------------------------------------
// Estimator pre/postconditions.
// ---------------------------------------------------------------------------

TEST(InvariantsTest, OptEstimateParamsMustBeInOpenUnitInterval) {
  std::string why;
  EXPECT_TRUE(audit::CheckOptEstimateParams(0.1, 0.05, &why)) << why;
  EXPECT_FALSE(audit::CheckOptEstimateParams(0.0, 0.05, &why));
  EXPECT_FALSE(audit::CheckOptEstimateParams(1.0, 0.05, &why));
  EXPECT_FALSE(audit::CheckOptEstimateParams(0.1, 0.0, &why));
  EXPECT_FALSE(audit::CheckOptEstimateParams(0.1, 1.0, &why));
}

TEST(InvariantsTest, OptEstimateResultPostconditions) {
  OptEstimateResult good;
  good.num_iterations = 10;
  good.samples_used = 42;
  good.mu_hat = 0.5;
  good.rho_hat = 0.25;
  std::string why;
  EXPECT_TRUE(audit::CheckOptEstimateResult(good, 0.1, &why)) << why;

  OptEstimateResult zero_mu = good;
  zero_mu.mu_hat = 0.0;
  EXPECT_FALSE(audit::CheckOptEstimateResult(zero_mu, 0.1, &why));

  OptEstimateResult clamped = good;
  clamped.rho_hat = 0.01;  // Below epsilon * mu_hat = 0.05.
  EXPECT_FALSE(audit::CheckOptEstimateResult(clamped, 0.1, &why));
  EXPECT_NE(why.find("clamp"), std::string::npos) << why;

  OptEstimateResult no_iterations = good;
  no_iterations.num_iterations = 0;
  EXPECT_FALSE(audit::CheckOptEstimateResult(no_iterations, 0.1, &why));

  // A timed-out result carries no usable fields: always accepted.
  OptEstimateResult timed_out;
  timed_out.timed_out = true;
  EXPECT_TRUE(audit::CheckOptEstimateResult(timed_out, 0.1, &why)) << why;
}

TEST(InvariantsTest, MonteCarloResultConsistency) {
  MonteCarloResult good;
  good.estimate = 0.25;
  good.main_samples = 100;
  good.per_thread_samples = {60, 40};
  std::string why;
  EXPECT_TRUE(audit::CheckMonteCarloResult(good, &why)) << why;

  MonteCarloResult mismatch = good;
  mismatch.per_thread_samples = {60, 41};
  EXPECT_FALSE(audit::CheckMonteCarloResult(mismatch, &why));
  EXPECT_NE(why.find("per-thread"), std::string::npos) << why;

  MonteCarloResult negative_time = good;
  negative_time.main_seconds = -1.0;
  EXPECT_FALSE(audit::CheckMonteCarloResult(negative_time, &why));

  MonteCarloResult out_of_range = good;
  out_of_range.estimate = 1.5;
  EXPECT_FALSE(audit::CheckMonteCarloResult(out_of_range, &why));
}

TEST(InvariantsTest, CoverageResultRespectsBudget) {
  CoverageResult good;
  good.normalized_estimate = 0.5;
  good.steps = 101;  // The loop may overshoot the budget by one step.
  good.trials = 30;
  std::string why;
  EXPECT_TRUE(audit::CheckCoverageResult(good, 100, &why)) << why;

  CoverageResult overran = good;
  overran.steps = 102;
  EXPECT_FALSE(audit::CheckCoverageResult(overran, 100, &why));
  EXPECT_NE(why.find("budget"), std::string::npos) << why;

  CoverageResult excess_trials = good;
  excess_trials.trials = good.steps + 1;
  EXPECT_FALSE(audit::CheckCoverageResult(excess_trials, 100, &why));

  CoverageResult negative = good;
  negative.normalized_estimate = -0.1;
  EXPECT_FALSE(audit::CheckCoverageResult(negative, 100, &why));
}

// ---------------------------------------------------------------------------
// Storage-layer audits.
// ---------------------------------------------------------------------------

TEST(InvariantsTest, FreshBlockIndexPartitionsTheDatabase) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  std::string why;
  EXPECT_TRUE(audit::CheckBlockPartition(*fx.db, index, &why)) << why;
}

TEST(InvariantsTest, StaleBlockIndexIsRejected) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  // Inserting after Build leaves the index covering 4 of 5 rows.
  fx.db->Insert("employee", {Value(3), Value("Eve"), Value("HR")});
  std::string why;
  EXPECT_FALSE(audit::CheckBlockPartition(*fx.db, index, &why));
  EXPECT_NE(why.find("cover"), std::string::npos) << why;
}

TEST(InvariantsTest, RepairSelectionsPassAndCorruptionsFail) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  std::vector<FactRef> first;
  ForEachRepair(*fx.db, index, [&](const std::vector<FactRef>& selection) {
    first = selection;
    return false;  // Keep only the first one.
  });
  ASSERT_EQ(first.size(), 2u);
  std::string why;
  EXPECT_TRUE(audit::CheckRepairSelection(*fx.db, index, first, &why)) << why;

  // Two facts from the same block cannot be a repair selection.
  std::vector<FactRef> duplicated = {first[0], first[0]};
  EXPECT_FALSE(audit::CheckRepairSelection(*fx.db, index, duplicated, &why));

  // A selection must name one fact per block.
  std::vector<FactRef> truncated = {first[0]};
  EXPECT_FALSE(audit::CheckRepairSelection(*fx.db, index, truncated, &why));
  std::vector<FactRef> padded = {first[0], first[1], first[1]};
  EXPECT_FALSE(audit::CheckRepairSelection(*fx.db, index, padded, &why));
}

// ---------------------------------------------------------------------------
// The CQA_AUDIT / CQA_DCHECK macros themselves: in audit-enabled builds a
// violated invariant aborts with a diagnostic; in plain Release builds the
// macros compile out and these scenarios would proceed silently.
// ---------------------------------------------------------------------------

#if CQA_AUDIT_ENABLED

using InvariantsDeathTest = ::testing::Test;

TEST(InvariantsDeathTest, AuditMacroAbortsWithDiagnostic) {
  EXPECT_DEATH(CQA_AUDIT(audit::CheckOptEstimateParams, 2.0, 0.5),
               "CQA_AUDIT failed.*CheckOptEstimateParams.*epsilon");
}

TEST(InvariantsDeathTest, DcheckAborts) {
  EXPECT_DEATH(CQA_DCHECK(1 == 2), "CQA_CHECK failed");
}

TEST(InvariantsDeathTest, CorruptSamplerStateIsCaughtOnTheDrawPath) {
  // A well-formed space, but a draw result tampered with after the fact —
  // the audit wired into the samplers' accept paths must catch exactly
  // this class of corruption.
  Synopsis synopsis = SmallSynopsis();
  SymbolicSpace space(&synopsis);
  Rng rng(3);
  Synopsis::Choice choice;
  size_t i = space.SampleElement(rng, &choice);
  choice[synopsis.images()[i].facts[0].block] ^= 1u;  // Unpin one fact.
  EXPECT_DEATH(CQA_AUDIT(audit::CheckSampledElement, space, i, choice),
               "CQA_AUDIT failed");
}

TEST(InvariantsDeathTest, StaleIndexKillsRepairEnumeration) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  fx.db->Insert("employee", {Value(3), Value("Eve"), Value("HR")});
  EXPECT_DEATH(ForEachRepair(*fx.db, index,
                             [](const std::vector<FactRef>&) { return true; }),
               "CheckBlockPartition");
}

#else

// In Release-without-CQABENCH_AUDIT builds the audit macros compile to
// unevaluated-sizeof forms; instead of skipping (which read as 561/562
// in every Release run), prove the compiled-out contract directly: the
// argument expressions must never run and a failing predicate must not
// abort. This is what Release benchmark numbers rely on — the audits
// cost literally zero evaluations.

namespace {
int g_audit_side_effects = 0;
bool AlwaysFalseAudit(int /*arg*/, std::string* /*why*/) { return false; }
int CountingArg() {
  ++g_audit_side_effects;
  return 1;
}
}  // namespace

TEST(InvariantsDeathTest, DisabledAuditMacrosAreInert) {
  g_audit_side_effects = 0;
  // A failing predicate with a side-effecting argument: the disabled
  // CQA_AUDIT must neither evaluate the argument nor abort.
  CQA_AUDIT(AlwaysFalseAudit, CountingArg());
  EXPECT_EQ(g_audit_side_effects, 0);
  // Same for CQA_DCHECK: a false condition must not abort and its
  // operand must not run.
  CQA_DCHECK(CountingArg() == 2);
  CQA_DCHECK_MSG(CountingArg() == 2, "never evaluated");
  EXPECT_EQ(g_audit_side_effects, 0);
}

#endif  // CQA_AUDIT_ENABLED

}  // namespace
}  // namespace cqa
