#include "query/parser.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.AddRelation(RelationSchema("employee",
                                    {{"id", ValueType::kInt},
                                     {"name", ValueType::kString},
                                     {"dept", ValueType::kString}},
                                    {0}));
  schema.AddRelation(RelationSchema(
      "score", {{"id", ValueType::kInt}, {"v", ValueType::kDouble}}, {0}));
  return schema;
}

TEST(ParserTest, ParsesSimpleQuery) {
  Schema schema = TestSchema();
  ConjunctiveQuery q;
  std::string error;
  ASSERT_TRUE(ParseCq(schema, "Q(X) :- employee(1, X, D).", &q, &error))
      << error;
  EXPECT_EQ(q.NumAtoms(), 1u);
  EXPECT_EQ(q.answer_vars().size(), 1u);
  EXPECT_EQ(q.atom(0).terms[0].constant(), Value(1));
  EXPECT_TRUE(q.atom(0).terms[1].is_variable());
}

TEST(ParserTest, ParsesBooleanQuery) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- employee(ID, N, 'HR').");
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_EQ(q.atom(0).terms[2].constant(), Value("HR"));
}

TEST(ParserTest, ParsesJoin) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(
      schema, "Q(N, V) :- employee(ID, N, D), score(ID, V).");
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_EQ(q.NumJoins(), 1u);
  EXPECT_EQ(q.atom(0).terms[0].var(), q.atom(1).terms[0].var());
}

TEST(ParserTest, SharedVariableAcrossSameNamesIsSameVar) {
  Schema schema = TestSchema();
  ConjunctiveQuery q =
      MustParseCq(schema, "Q() :- employee(I, N, D), employee(I, N2, D2).");
  EXPECT_EQ(q.atom(0).terms[0].var(), q.atom(1).terms[0].var());
  EXPECT_NE(q.atom(0).terms[1].var(), q.atom(1).terms[1].var());
}

TEST(ParserTest, LowercaseIdentifierIsStringConstant) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- employee(I, bob, D).");
  EXPECT_EQ(q.atom(0).terms[1].constant(), Value("bob"));
}

TEST(ParserTest, UnderscorePrefixedIsVariable) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- employee(_i, _n, _d).");
  EXPECT_EQ(q.num_vars(), 3u);
}

TEST(ParserTest, IntWidenedToDoubleAttribute) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- score(I, 3).");
  EXPECT_EQ(q.atom(0).terms[1].constant(), Value(3.0));
}

TEST(ParserTest, ParsesDoubleAndNegativeConstants) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- score(-2, 0.06).");
  EXPECT_EQ(q.atom(0).terms[0].constant(), Value(int64_t{-2}));
  EXPECT_EQ(q.atom(0).terms[1].constant(), Value(0.06));
}

TEST(ParserTest, TrailingDotOptional) {
  Schema schema = TestSchema();
  ConjunctiveQuery q = MustParseCq(schema, "Q(X) :- employee(1, X, D)");
  EXPECT_EQ(q.NumAtoms(), 1u);
}

TEST(ParserTest, QuotedStringsMayContainSpaces) {
  Schema schema = TestSchema();
  ConjunctiveQuery q =
      MustParseCq(schema, "Q() :- employee(I, 'Bob Jr', 'H R').");
  EXPECT_EQ(q.atom(0).terms[1].constant(), Value("Bob Jr"));
}

struct BadCase {
  const char* text;
  const char* reason;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  Schema schema = TestSchema();
  ConjunctiveQuery q;
  std::string error;
  EXPECT_FALSE(ParseCq(schema, GetParam().text, &q, &error))
      << GetParam().reason;
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        BadCase{"Q(X) :- ghost(X).", "unknown relation"},
        BadCase{"Q(X) :- employee(X).", "wrong arity"},
        BadCase{"Q(X) :- employee(X, Y, Z, W).", "too many arguments"},
        BadCase{"Q(Z) :- employee(X, Y, D).", "head var not in body"},
        BadCase{"Q(X) :- employee('a', Y, D).", "string where int expected"},
        BadCase{"Q(X) :- employee(1.5, Y, D).", "double where int expected"},
        BadCase{"Q(X) :- employee(1, 2, D).", "int where string expected"},
        BadCase{"Q(X) employee(1, X, D).", "missing turnstile"},
        BadCase{"Q(X) :- employee(1, X, D", "unterminated atom"},
        BadCase{"Q(X) :- employee(1, 'oops, D).", "unterminated string"},
        BadCase{"Q(1) :- employee(1, X, D).", "constant in head"},
        BadCase{"Q(X) :- employee(1, X, D). extra", "trailing input"}));

}  // namespace
}  // namespace cqa
