#include "storage/schema.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

RelationSchema Employee() {
  return RelationSchema("employee",
                        {{"id", ValueType::kInt},
                         {"name", ValueType::kString},
                         {"dept", ValueType::kString}},
                        {0});
}

TEST(RelationSchemaTest, BasicAccessors) {
  RelationSchema r = Employee();
  EXPECT_EQ(r.name(), "employee");
  EXPECT_EQ(r.arity(), 3u);
  EXPECT_EQ(r.attribute(1).name, "name");
  EXPECT_EQ(r.attribute(1).type, ValueType::kString);
}

TEST(RelationSchemaTest, KeyPositions) {
  RelationSchema r = Employee();
  EXPECT_TRUE(r.has_key());
  EXPECT_TRUE(r.IsKeyPosition(0));
  EXPECT_FALSE(r.IsKeyPosition(1));
  RelationSchema no_key("log", {{"msg", ValueType::kString}});
  EXPECT_FALSE(no_key.has_key());
}

TEST(RelationSchemaTest, CompositeKey) {
  RelationSchema r("lineitem",
                   {{"okey", ValueType::kInt},
                    {"pkey", ValueType::kInt},
                    {"lnum", ValueType::kInt}},
                   {0, 2});
  EXPECT_TRUE(r.IsKeyPosition(0));
  EXPECT_FALSE(r.IsKeyPosition(1));
  EXPECT_TRUE(r.IsKeyPosition(2));
}

TEST(RelationSchemaTest, FindAttribute) {
  RelationSchema r = Employee();
  EXPECT_EQ(r.FindAttribute("dept"), std::optional<size_t>(2));
  EXPECT_EQ(r.FindAttribute("missing"), std::nullopt);
}

TEST(RelationSchemaTest, ToStringMarksKeys) {
  EXPECT_EQ(Employee().ToString(),
            "employee(*id:int, name:string, dept:string)");
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  size_t e = schema.AddRelation(Employee());
  size_t d = schema.AddRelation(
      RelationSchema("dept", {{"name", ValueType::kString}}, {0}));
  EXPECT_EQ(schema.NumRelations(), 2u);
  EXPECT_EQ(schema.FindRelation("employee"), std::optional<size_t>(e));
  EXPECT_EQ(schema.FindRelation("dept"), std::optional<size_t>(d));
  EXPECT_EQ(schema.FindRelation("nope"), std::nullopt);
  EXPECT_EQ(schema.RelationId("dept"), d);
  EXPECT_EQ(schema.relation(e).name(), "employee");
}

TEST(SchemaTest, IdsAreDenseInsertionOrder) {
  Schema schema;
  EXPECT_EQ(schema.AddRelation(RelationSchema("a", {{"x", ValueType::kInt}})),
            0u);
  EXPECT_EQ(schema.AddRelation(RelationSchema("b", {{"x", ValueType::kInt}})),
            1u);
}

TEST(SchemaDeathTest, DuplicateNameAborts) {
  Schema schema;
  schema.AddRelation(Employee());
  EXPECT_DEATH(schema.AddRelation(Employee()), "employee");
}

TEST(SchemaDeathTest, KeyPositionOutOfRangeAborts) {
  EXPECT_DEATH(RelationSchema("r", {{"x", ValueType::kInt}}, {5}), "r");
}

TEST(SchemaDeathTest, UnknownRelationIdAborts) {
  Schema schema;
  EXPECT_DEATH(schema.RelationId("ghost"), "ghost");
}

}  // namespace
}  // namespace cqa
