#include "gen/sqg.h"

#include <gtest/gtest.h>

#include "gen/tpch.h"
#include "query/evaluator.h"

namespace cqa {
namespace {

struct SqgFixture {
  SqgFixture() : dataset(GenerateTpch(TpchOptions{.scale_factor = 0.0005})) {
    fk_graph = FkGraph::Build(dataset.foreign_keys);
    pool = ConstantPool::FromDatabase(*dataset.db);
  }
  Dataset dataset;
  FkGraph fk_graph;
  ConstantPool pool;
};

TEST(ConstantPoolTest, HarvestsActiveDomainPerAttribute) {
  SqgFixture fx;
  size_t region = fx.dataset.schema->RelationId("region");
  const std::vector<Value>* names = fx.pool.Get(region, 1);
  ASSERT_NE(names, nullptr);
  EXPECT_EQ(names->size(), 5u);  // Five region names.
  EXPECT_EQ(fx.pool.Get(region, 99), nullptr);
}

TEST(ConstantPoolTest, RespectsPerAttributeCap) {
  SqgFixture fx;
  ConstantPool capped = ConstantPool::FromDatabase(*fx.dataset.db, 3);
  size_t customer = fx.dataset.schema->RelationId("customer");
  const std::vector<Value>* keys = capped.Get(customer, 0);
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(keys->size(), 3u);
}

class SqgJoinLevelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SqgJoinLevelTest, ProducesRequestedShape) {
  SqgFixture fx;
  Rng rng(11 + GetParam());
  SqgOptions options;
  options.num_joins = GetParam();
  options.num_constants = 2;
  options.projection = 1.0;
  size_t produced = 0;
  for (int attempt = 0; attempt < 20 && produced < 3; ++attempt) {
    std::optional<ConjunctiveQuery> q = GenerateStaticQuery(
        *fx.dataset.schema, fx.fk_graph, fx.pool, options, rng);
    if (!q.has_value()) continue;
    ++produced;
    q->Validate(*fx.dataset.schema);
    EXPECT_EQ(q->NumConstantOccurrences(), 2u);
    EXPECT_GE(q->NumJoins(), GetParam());
    // Full projection: every variable is an answer variable.
    EXPECT_EQ(q->answer_vars().size(), q->num_vars());
  }
  EXPECT_GE(produced, 1u) << "SQG failed for " << GetParam() << " joins";
}

INSTANTIATE_TEST_SUITE_P(JoinLevels, SqgJoinLevelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SqgTest, PartialProjectionShrinksHead) {
  SqgFixture fx;
  Rng rng(13);
  SqgOptions options;
  options.num_joins = 3;
  options.num_constants = 2;
  options.projection = 0.3;
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::optional<ConjunctiveQuery> q = GenerateStaticQuery(
        *fx.dataset.schema, fx.fk_graph, fx.pool, options, rng);
    if (!q.has_value()) continue;
    EXPECT_LT(q->answer_vars().size(), q->num_vars());
    return;
  }
  FAIL() << "no query produced";
}

TEST(SqgTest, ZeroJoinsGivesSingleAtom) {
  SqgFixture fx;
  Rng rng(14);
  SqgOptions options;
  options.num_joins = 0;
  options.num_constants = 1;
  std::optional<ConjunctiveQuery> q = GenerateStaticQuery(
      *fx.dataset.schema, fx.fk_graph, fx.pool, options, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumAtoms(), 1u);
  EXPECT_EQ(q->NumConstantOccurrences(), 1u);
}

TEST(SqgTest, ConstantsComeFromActiveDomain) {
  // Constants drawn from the pool guarantee that single-atom queries are
  // satisfiable; spot-check by evaluating.
  SqgFixture fx;
  Rng rng(15);
  SqgOptions options;
  options.num_joins = 0;
  options.num_constants = 1;
  CqEvaluator eval(fx.dataset.db.get());
  for (int i = 0; i < 5; ++i) {
    std::optional<ConjunctiveQuery> q = GenerateStaticQuery(
        *fx.dataset.schema, fx.fk_graph, fx.pool, options, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_TRUE(eval.HasAnswer(*q)) << q->ToString(*fx.dataset.schema);
  }
}

TEST(SqgTest, EmptyFkGraphFailsGracefully) {
  SqgFixture fx;
  Rng rng(16);
  FkGraph empty = FkGraph::Build({});
  SqgOptions options;
  options.num_joins = 2;
  EXPECT_EQ(GenerateStaticQuery(*fx.dataset.schema, empty, fx.pool, options,
                                rng),
            std::nullopt);
}

}  // namespace
}  // namespace cqa
