// Reactor-layer unit tests: EventLoop (edge-triggered epoll + mailbox,
// deferred handler deletion) and QueryDispatcher (the two-stage hand-off
// between event loops and query executors). The e2e tier exercises both
// through a live cqad; these tests pin the contracts in isolation.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "serve/admission.h"
#include "serve/dispatch.h"
#include "serve/reactor.h"

namespace cqa::serve {
namespace {

// ---------------------------------------------------------------------------
// PollReadable
// ---------------------------------------------------------------------------

TEST(PollReadableTest, ReportsReadinessAndTimeout) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_EQ(PollReadable(fds[0], 0), 0);  // Nothing buffered: timeout.
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_GT(PollReadable(fds[0], 1000), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

class LoopFixture : public ::testing::Test {
 protected:
  LoopFixture() : loop_("test-loop") {
    EXPECT_TRUE(loop_.ok());
    thread_ = std::thread([this] { loop_.Run(); });
  }

  ~LoopFixture() override {
    loop_.Stop();
    thread_.join();
  }

  EventLoop loop_;
  std::thread thread_;
};

TEST_F(LoopFixture, PostRunsClosureOnLoopThread) {
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop_thread{false};
  loop_.Post([&] {
    on_loop_thread.store(loop_.InLoopThread());
    ran.store(true);
  });
  const Deadline deadline(5.0);
  while (!ran.load() && !deadline.Expired()) {
  }
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(on_loop_thread.load());
  EXPECT_FALSE(loop_.InLoopThread());  // The test thread is not the loop.
}

TEST_F(LoopFixture, PostPreservesFifoOrder) {
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    loop_.Post([&, i] {
      order.push_back(i);  // Loop-thread confined: no lock needed.
      done.fetch_add(1);
    });
  }
  const Deadline deadline(5.0);
  while (done.load() < 16 && !deadline.Expired()) {
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

/// Reads its pipe end and counts bytes; optionally destroys itself on
/// the first event (the self-deletion path every Conn close exercises).
class PipeReader : public EpollHandler {
 public:
  PipeReader(EventLoop* loop, int fd, bool self_destroy,
             std::atomic<int>* bytes, std::atomic<int>* deleted)
      : loop_(loop),
        fd_(fd),
        self_destroy_(self_destroy),
        bytes_(bytes),
        deleted_(deleted) {}

  ~PipeReader() override {
    deleted_->fetch_add(1);
    ::close(fd_);
  }

  void OnEvents(uint32_t events) override {
    if ((events & EPOLLIN) == 0) return;
    char buf[256];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof(buf))) > 0) {
      bytes_->fetch_add(static_cast<int>(n));
    }
    if (self_destroy_) {
      loop_->Destroy(fd_, this);
      // The loop defers deletion: members must still be readable here
      // (this is the invariant the deferred graveyard exists for).
      EXPECT_TRUE(self_destroy_);
    }
  }

 private:
  EventLoop* const loop_;
  const int fd_;
  const bool self_destroy_;
  std::atomic<int>* const bytes_;
  std::atomic<int>* const deleted_;
};

TEST_F(LoopFixture, EdgeTriggeredHandlerSeesAllBytes) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  std::atomic<int> bytes{0};
  std::atomic<int> deleted{0};
  auto* reader = new PipeReader(&loop_, fds[0], /*self_destroy=*/false,
                                &bytes, &deleted);
  loop_.Post([&, reader] {
    ASSERT_TRUE(loop_.Add(fds[0], EPOLLIN | EPOLLET, reader));
  });
  ASSERT_EQ(::write(fds[1], "hello", 5), 5);
  Deadline deadline(5.0);
  while (bytes.load() < 5 && !deadline.Expired()) {
  }
  EXPECT_EQ(bytes.load(), 5);
  loop_.Post([&, reader] { loop_.Destroy(fds[0], reader); });
  deadline = Deadline(5.0);
  while (deleted.load() == 0 && !deadline.Expired()) {
  }
  EXPECT_EQ(deleted.load(), 1);
  ::close(fds[1]);
}

TEST_F(LoopFixture, SelfDestroyingHandlerIsDeletedOnceAfterDispatch) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  std::atomic<int> bytes{0};
  std::atomic<int> deleted{0};
  auto* reader = new PipeReader(&loop_, fds[0], /*self_destroy=*/true,
                                &bytes, &deleted);
  loop_.Post([&, reader] {
    ASSERT_TRUE(loop_.Add(fds[0], EPOLLIN | EPOLLET, reader));
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  const Deadline deadline(5.0);
  while (deleted.load() == 0 && !deadline.Expired()) {
  }
  EXPECT_EQ(deleted.load(), 1);
  EXPECT_EQ(bytes.load(), 1);
  ::close(fds[1]);
}

TEST(EventLoopTest, StopWithPendingPostsStillRunsThem) {
  EventLoop loop("stop-loop");
  ASSERT_TRUE(loop.ok());
  std::thread t([&] { loop.Run(); });
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    loop.Post([&] { ran.fetch_add(1); });
  }
  loop.Stop();
  t.join();
  // Posts enqueued before Stop() are drained by the final mailbox runs
  // (in Run's stop path or the destructor).
  EXPECT_EQ(ran.load(), 8);
}

// ---------------------------------------------------------------------------
// QueryDispatcher
// ---------------------------------------------------------------------------

struct DispatchHarness {
  explicit DispatchHarness(size_t executors, size_t max_queue,
                           size_t workers, size_t wait_cap)
      : admission(AdmissionOptions{executors, max_queue}),
        dispatcher(executors, max_queue, workers, wait_cap, &admission) {}

  QueryJob Job(std::atomic<int>* ran, std::vector<ErrorCode>* rejects,
               cqa::Mutex* reject_mu,
               Deadline deadline = Deadline::Infinite()) {
    QueryJob job;
    job.deadline = deadline;
    job.run = [ran] { ran->fetch_add(1); };
    job.reject = [rejects, reject_mu](ErrorCode code) {
      cqa::MutexLock lock(*reject_mu);
      rejects->push_back(code);
    };
    return job;
  }

  AdmissionController admission;
  QueryDispatcher dispatcher;
};

TEST(QueryDispatcherTest, RunsSubmittedJobsFifo) {
  DispatchHarness h(/*executors=*/1, /*max_queue=*/64, /*workers=*/4,
                    /*wait_cap=*/256);
  std::vector<int> order;
  std::atomic<int> done{0};
  cqa::Mutex order_mu;
  for (int i = 0; i < 8; ++i) {
    QueryJob job;
    job.run = [&, i] {
      cqa::MutexLock lock(order_mu);
      order.push_back(i);
      done.fetch_add(1);
    };
    job.reject = [](ErrorCode) { FAIL() << "unexpected reject"; };
    h.dispatcher.Submit(std::move(job));
  }
  std::thread executor([&] { h.dispatcher.RunExecutor(); });
  const Deadline deadline(5.0);
  while (done.load() < 8 && !deadline.Expired()) {
  }
  h.dispatcher.Drain();
  executor.join();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(QueryDispatcherTest, ShedsWhenWorkersExceedInflightPlusQueue) {
  // The blocking server shed when a request thread found every inflight
  // slot taken and the admission queue full: workers=8 against
  // max_inflight=1, max_queue=0 sheds 7 of 8 concurrent submissions.
  DispatchHarness h(/*executors=*/1, /*max_queue=*/0, /*workers=*/8,
                    /*wait_cap=*/256);
  std::atomic<int> ran{0};
  std::vector<ErrorCode> rejects;
  cqa::Mutex reject_mu;
  for (int i = 0; i < 8; ++i) {
    h.dispatcher.Submit(h.Job(&ran, &rejects, &reject_mu));
  }
  {
    cqa::MutexLock lock(reject_mu);
    EXPECT_EQ(rejects.size(), 7u);
    for (ErrorCode code : rejects) EXPECT_EQ(code, ErrorCode::kOverloaded);
  }
  EXPECT_EQ(h.admission.shed_total(), 7u);
  std::thread executor([&] { h.dispatcher.RunExecutor(); });
  const Deadline deadline(5.0);
  while (ran.load() < 1 && !deadline.Expired()) {
  }
  EXPECT_EQ(ran.load(), 1);
  h.dispatcher.Drain();
  executor.join();
}

TEST(QueryDispatcherTest, NeverShedsWhenInflightMatchesWorkers) {
  // max_inflight == workers (the default wiring) never shed in the
  // blocking server regardless of load; the backlog waits instead.
  DispatchHarness h(/*executors=*/2, /*max_queue=*/0, /*workers=*/2,
                    /*wait_cap=*/1024);
  std::atomic<int> ran{0};
  std::vector<ErrorCode> rejects;
  cqa::Mutex reject_mu;
  for (int i = 0; i < 100; ++i) {
    h.dispatcher.Submit(h.Job(&ran, &rejects, &reject_mu));
  }
  std::vector<std::thread> executors;
  for (int i = 0; i < 2; ++i) {
    executors.emplace_back([&] { h.dispatcher.RunExecutor(); });
  }
  const Deadline deadline(10.0);
  while (ran.load() < 100 && !deadline.Expired()) {
  }
  EXPECT_EQ(ran.load(), 100);
  {
    cqa::MutexLock lock(reject_mu);
    EXPECT_TRUE(rejects.empty());
  }
  h.dispatcher.Drain();
  for (std::thread& t : executors) t.join();
}

TEST(QueryDispatcherTest, WaitQueueCapSheds) {
  // Nothing consumes jobs (no executor): the active window fills, then
  // the outer wait queue, then submissions shed.
  DispatchHarness h(/*executors=*/1, /*max_queue=*/1, /*workers=*/1,
                    /*wait_cap=*/2);
  std::atomic<int> ran{0};
  std::vector<ErrorCode> rejects;
  cqa::Mutex reject_mu;
  // Window = max(1, 1+1) = 2 committed + 2 waiting = 4 absorbed.
  for (int i = 0; i < 6; ++i) {
    h.dispatcher.Submit(h.Job(&ran, &rejects, &reject_mu));
  }
  cqa::MutexLock lock(reject_mu);
  EXPECT_EQ(rejects.size(), 2u);
  for (ErrorCode code : rejects) EXPECT_EQ(code, ErrorCode::kOverloaded);
}

TEST(QueryDispatcherTest, ExpiredDeadlineRejectsAtDequeue) {
  DispatchHarness h(/*executors=*/1, /*max_queue=*/8, /*workers=*/1,
                    /*wait_cap=*/256);
  std::atomic<int> ran{0};
  std::vector<ErrorCode> rejects;
  cqa::Mutex reject_mu;
  h.dispatcher.Submit(
      h.Job(&ran, &rejects, &reject_mu, Deadline(/*seconds=*/0.0)));
  Stopwatch settle;
  while (settle.ElapsedSeconds() < 0.01) {
  }
  std::thread executor([&] { h.dispatcher.RunExecutor(); });
  const Deadline deadline(5.0);
  for (;;) {
    {
      cqa::MutexLock lock(reject_mu);
      if (!rejects.empty()) break;
    }
    if (deadline.Expired()) break;
  }
  h.dispatcher.Drain();
  executor.join();
  cqa::MutexLock lock(reject_mu);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0], ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 0);
}

TEST(QueryDispatcherTest, DrainFlushesBothStagesAndRejectsLateSubmits) {
  DispatchHarness h(/*executors=*/1, /*max_queue=*/1, /*workers=*/1,
                    /*wait_cap=*/8);
  std::atomic<int> ran{0};
  std::vector<ErrorCode> rejects;
  cqa::Mutex reject_mu;
  for (int i = 0; i < 5; ++i) {  // 2 committed (window), 3 outer-waiting.
    h.dispatcher.Submit(h.Job(&ran, &rejects, &reject_mu));
  }
  h.dispatcher.Drain();
  {
    cqa::MutexLock lock(reject_mu);
    EXPECT_EQ(rejects.size(), 5u);
    for (ErrorCode code : rejects) EXPECT_EQ(code, ErrorCode::kDraining);
  }
  h.dispatcher.Submit(h.Job(&ran, &rejects, &reject_mu));
  {
    cqa::MutexLock lock(reject_mu);
    ASSERT_EQ(rejects.size(), 6u);
    EXPECT_EQ(rejects.back(), ErrorCode::kDraining);
  }
  // Executors started after Drain return immediately.
  std::thread executor([&] { h.dispatcher.RunExecutor(); });
  executor.join();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(h.dispatcher.queue_depth(), 0u);
}

}  // namespace
}  // namespace cqa::serve
