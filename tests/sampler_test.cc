#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "cqa/exact.h"
#include "cqa/indexed_natural_sampler.h"
#include "cqa/kl_sampler.h"
#include "cqa/klm_sampler.h"
#include "cqa/natural_sampler.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmpiricalMean;
using testing::MakeRandomSynopsis;

constexpr size_t kDraws = 60000;
// 3-sigma band for a [0,1]-valued mean over kDraws samples.
constexpr double kTol = 0.012;

Synopsis FixtureSynopsis() {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}, {1, 2}});
  return s;
}

TEST(NaturalSamplerTest, ExpectationIsRatio) {
  Synopsis s = FixtureSynopsis();
  NaturalSampler sampler(&s);
  EXPECT_DOUBLE_EQ(sampler.GoodnessFactor(), 1.0);
  Rng rng(1);
  double mean = EmpiricalMean([&] { return sampler.Draw(rng); }, kDraws);
  EXPECT_NEAR(mean, 4.0 / 6.0, kTol);
}

TEST(NaturalSamplerTest, OutputIsZeroOrOne) {
  Synopsis s = FixtureSynopsis();
  NaturalSampler sampler(&s);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    double v = sampler.Draw(rng);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(SymbolicSpaceTest, TotalWeight) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  EXPECT_NEAR(space.total_weight(), 0.5 + 1.0 / 6.0, 1e-12);
}

TEST(SymbolicSpaceTest, SampleElementRespectsWeights) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  Rng rng(3);
  Synopsis::Choice choice;
  size_t count0 = 0;
  const size_t n = 40000;
  for (size_t i = 0; i < n; ++i) {
    size_t idx = space.SampleElement(rng, &choice);
    // The drawn image must be contained in the drawn database.
    EXPECT_TRUE(s.ImageContainedIn(idx, choice));
    if (idx == 0) ++count0;
  }
  double expected = 0.5 / (0.5 + 1.0 / 6.0);
  EXPECT_NEAR(static_cast<double>(count0) / n, expected, kTol);
}

TEST(KlSamplerTest, ExpectationMatchesLemma) {
  // Lemma 4.5: E[SampleKL] = R(H,B) · |db(B)|/|S•|.
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  KlSampler sampler(&space);
  EXPECT_NEAR(sampler.GoodnessFactor(), 1.0 / space.total_weight(), 1e-12);
  Rng rng(4);
  double mean = EmpiricalMean([&] { return sampler.Draw(rng); }, kDraws);
  // R = 4/6 and |S•|/|db(B)| = total_weight, so E = R·|db(B)|/|S•|.
  double expected = (4.0 / 6.0) / space.total_weight();
  EXPECT_NEAR(mean, expected, kTol);
}

TEST(KlmSamplerTest, ExpectationMatchesLemma) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  KlmSampler sampler(&space);
  Rng rng(5);
  double mean = EmpiricalMean([&] { return sampler.Draw(rng); }, kDraws);
  EXPECT_NEAR(mean, (4.0 / 6.0) / space.total_weight(), kTol);
}

TEST(KlmSamplerTest, OutputsAreReciprocalsOfCounts) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  KlmSampler sampler(&space);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    double v = sampler.Draw(rng);
    EXPECT_TRUE(v == 1.0 || v == 0.5) << v;  // k ∈ {1, 2} here.
  }
}

/// Property check across random synopses: all three samplers must satisfy
/// E[Draw] = R(H, B) · GoodnessFactor() (Lemmas 4.3, 4.5, 4.7).
class SamplerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplerPropertyTest, AllSamplersAreRGood) {
  Rng gen_rng(1000 + GetParam());
  Synopsis s = MakeRandomSynopsis(gen_rng, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  ASSERT_GT(exact, 0.0);

  Rng rng(2000 + GetParam());
  const size_t draws = 40000;

  NaturalSampler natural(&s);
  double nat_mean = EmpiricalMean([&] { return natural.Draw(rng); }, draws);
  EXPECT_NEAR(nat_mean, exact * natural.GoodnessFactor(), 0.02)
      << s.DebugString();

  SymbolicSpace space(&s);
  KlSampler kl(&space);
  double kl_mean = EmpiricalMean([&] { return kl.Draw(rng); }, draws);
  EXPECT_NEAR(kl_mean, exact * kl.GoodnessFactor(), 0.02) << s.DebugString();

  KlmSampler klm(&space);
  double klm_mean = EmpiricalMean([&] { return klm.Draw(rng); }, draws);
  EXPECT_NEAR(klm_mean, exact * klm.GoodnessFactor(), 0.02)
      << s.DebugString();

  // KL and KLM share their expectation (Lemma 4.7).
  EXPECT_NEAR(kl_mean, klm_mean, 0.03);
}

INSTANTIATE_TEST_SUITE_P(RandomSynopses, SamplerPropertyTest,
                         ::testing::Range(0, 12));

/// Stream-identity contract of Sampler::DrawBatch: batching must consume
/// the RNG exactly as the same number of Draw calls, so serial and
/// batched estimator loops see identical sample streams for a seed.
/// Exercised with uneven chunk sizes to cross batch boundaries.
template <typename SamplerT, typename SpaceT>
void ExpectBatchMatchesRepeatedDraw(const SpaceT* space, uint64_t seed) {
  constexpr size_t kN = 257;  // Prime: never aligns with chunk sizes.
  SamplerT serial_sampler(space);
  Rng serial_rng(seed);
  std::vector<double> serial(kN);
  for (double& v : serial) v = serial_sampler.Draw(serial_rng);

  SamplerT batch_sampler(space);
  Rng batch_rng(seed);
  std::vector<double> batched(kN);
  size_t done = 0;
  for (size_t chunk : {1ul, 17ul, 64ul, kN}) {
    size_t m = std::min(chunk, kN - done);
    batch_sampler.DrawBatch(batch_rng, m, batched.data() + done);
    done += m;
  }
  ASSERT_EQ(done, kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(serial[i], batched[i]) << "draw " << i;
  }
}

TEST(DrawBatchStreamTest, AllSamplersMatchRepeatedDraw) {
  Rng gen_rng(4242);
  for (int t = 0; t < 4; ++t) {
    Synopsis s = MakeRandomSynopsis(gen_rng, 6, 4, 6, 3);
    ExpectBatchMatchesRepeatedDraw<NaturalSampler>(&s, 100 + t);
    ExpectBatchMatchesRepeatedDraw<IndexedNaturalSampler>(&s, 100 + t);
    SymbolicSpace space(&s);
    ExpectBatchMatchesRepeatedDraw<KlSampler>(&space, 200 + t);
    ExpectBatchMatchesRepeatedDraw<KlmSampler>(&space, 200 + t);
  }
}

TEST(SamplerVarianceTest, KlmHasNoLargerVarianceThanKl) {
  // §4.2: the variance of SampleKLM is generally smaller than SampleKL's.
  Rng gen_rng(77);
  size_t klm_wins = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Synopsis s = MakeRandomSynopsis(gen_rng, 6, 4, 6, 3);
    SymbolicSpace space(&s);
    KlSampler kl(&space);
    KlmSampler klm(&space);
    Rng rng(300 + t);
    MeanVarAccumulator kl_acc, klm_acc;
    for (int i = 0; i < 20000; ++i) kl_acc.Add(kl.Draw(rng));
    for (int i = 0; i < 20000; ++i) klm_acc.Add(klm.Draw(rng));
    if (klm_acc.variance() <= kl_acc.variance() + 1e-3) ++klm_wins;
  }
  EXPECT_GE(klm_wins, static_cast<size_t>(trials - 1));
}

}  // namespace
}  // namespace cqa
