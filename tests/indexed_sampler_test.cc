#include "cqa/indexed_natural_sampler.h"

#include <gtest/gtest.h>

#include "cqa/exact.h"
#include "cqa/natural_sampler.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmpiricalMean;
using testing::MakeRandomSynopsis;

TEST(IndexedNaturalSamplerTest, AgreesWithPlainSamplerDrawByDraw) {
  // Same RNG stream, same per-block draw order: the two samplers must
  // return identical values until an early exit diverges the streams —
  // so compare outcome-by-outcome with separate equal-seeded streams.
  Rng gen(1);
  for (int trial = 0; trial < 30; ++trial) {
    Synopsis s = MakeRandomSynopsis(gen, 6, 4, 5, 3);
    NaturalSampler plain(&s);
    IndexedNaturalSampler indexed(&s);
    // Statistical agreement: equal means within Monte Carlo error.
    Rng rng_a(100 + trial), rng_b(100 + trial);
    double mean_plain =
        EmpiricalMean([&] { return plain.Draw(rng_a); }, 20000);
    double mean_indexed =
        EmpiricalMean([&] { return indexed.Draw(rng_b); }, 20000);
    EXPECT_NEAR(mean_plain, mean_indexed, 0.02) << s.DebugString();
  }
}

TEST(IndexedNaturalSamplerTest, ExpectationIsRatio) {
  Rng gen(2);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  IndexedNaturalSampler sampler(&s);
  EXPECT_DOUBLE_EQ(sampler.GoodnessFactor(), 1.0);
  Rng rng(3);
  double mean = EmpiricalMean([&] { return sampler.Draw(rng); }, 60000);
  EXPECT_NEAR(mean, exact, 0.015) << s.DebugString();
}

TEST(IndexedNaturalSamplerTest, OutputIsZeroOrOne) {
  Rng gen(4);
  Synopsis s = MakeRandomSynopsis(gen, 4, 3, 4, 2);
  IndexedNaturalSampler sampler(&s);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    double v = sampler.Draw(rng);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(IndexedNaturalSamplerTest, SingleImageSingleBlock) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{4, 0, 0});
  s.AddImage({{0, 2}});
  IndexedNaturalSampler sampler(&s);
  Rng rng(6);
  double mean = EmpiricalMean([&] { return sampler.Draw(rng); }, 40000);
  EXPECT_NEAR(mean, 0.25, 0.01);
}

TEST(IndexedNaturalSamplerTest, FullCoverageAlwaysOne) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{3, 0, 0});
  for (uint32_t t = 0; t < 3; ++t) s.AddImage({{0, t}});
  IndexedNaturalSampler sampler(&s);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(sampler.Draw(rng), 1.0);
}

}  // namespace
}  // namespace cqa
