// Admission-control tests: slot accounting, bounded-queue shedding,
// FIFO ordering, deadline expiry while queued, and shutdown wakeups —
// the load-shedding behavior cqad's robustness rests on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "serve/admission.h"

namespace cqa::serve {
namespace {

TEST(AdmissionTest, AdmitsUpToMaxInflight) {
  AdmissionController admission(AdmissionOptions{2, 4});
  EXPECT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  EXPECT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  EXPECT_EQ(admission.inflight(), 2u);
  admission.Leave(0.01);
  admission.Leave(0.01);
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(AdmissionTest, ShedsWhenQueueFull) {
  // One slot, zero queue: the second concurrent request must shed
  // immediately rather than wait.
  AdmissionController admission(AdmissionOptions{1, 0});
  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  EXPECT_EQ(admission.Enter(Deadline(10.0)), Admission::kShed);
  EXPECT_EQ(admission.shed_total(), 1u);
  EXPECT_GT(admission.RetryAfterSeconds(), 0.0);
  admission.Leave(0.01);
}

TEST(AdmissionTest, QueuedRequestExpiresOnDeadline) {
  AdmissionController admission(AdmissionOptions{1, 4});
  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  Stopwatch watch;
  EXPECT_EQ(admission.Enter(Deadline(0.05)), Admission::kExpired);
  EXPECT_GE(watch.ElapsedSeconds(), 0.04);
  admission.Leave(0.01);
  // The expired waiter's abandoned ticket must not wedge the queue.
  EXPECT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  admission.Leave(0.01);
}

TEST(AdmissionTest, QueueDrainsFifo) {
  AdmissionController admission(AdmissionOptions{1, 8});
  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);

  constexpr size_t kWaiters = 4;
  std::atomic<size_t> started{0};
  std::atomic<size_t> order_counter{0};
  size_t admitted_order[kWaiters] = {};
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      ++started;
      // Stagger entries so tickets are issued in thread-index order.
      while (started.load() < i + 1) std::this_thread::yield();
      ASSERT_EQ(admission.Enter(Deadline::Infinite()),
                Admission::kAdmitted);
      admitted_order[i] = ++order_counter;
      admission.Leave(0.001);
    });
    // Wait until this waiter is queued before starting the next, making
    // the intended FIFO order unambiguous.
    while (admission.queued() < i + 1) std::this_thread::yield();
  }
  admission.Leave(0.001);  // Release the initial slot; queue drains.
  for (std::thread& t : waiters) t.join();
  for (size_t i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(admitted_order[i], i + 1) << "non-FIFO admission";
  }
}

TEST(AdmissionTest, ShutdownWakesWaiters) {
  AdmissionController admission(AdmissionOptions{1, 4});
  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_EQ(admission.Enter(Deadline::Infinite()), Admission::kShutdown);
    woke = true;
  });
  while (admission.queued() == 0) std::this_thread::yield();
  admission.Shutdown();
  waiter.join();
  EXPECT_TRUE(woke.load());
  // Post-shutdown entries are rejected immediately.
  EXPECT_EQ(admission.Enter(Deadline::Infinite()), Admission::kShutdown);
}

TEST(AdmissionTest, RetryAfterTracksServiceTime) {
  AdmissionController admission(AdmissionOptions{1, 4});
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
    admission.Leave(2.0);  // Slow service.
  }
  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);
  const double slow = admission.RetryAfterSeconds();
  admission.Leave(2.0);
  EXPECT_GT(slow, 0.5);
  EXPECT_LE(slow, 60.0);
}

}  // namespace
}  // namespace cqa::serve
