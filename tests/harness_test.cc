#include "bench/harness.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(HarnessTest, RunAllSchemesCoversAllFour) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  Rng rng(1);
  std::vector<SchemeTiming> timings = RunAllSchemes(pre, ApxParams{}, 10.0, rng);
  ASSERT_EQ(timings.size(), 4u);
  for (size_t i = 0; i < timings.size(); ++i) {
    EXPECT_EQ(timings[i].scheme, AllSchemeKinds()[i]);
    EXPECT_FALSE(timings[i].timed_out);
    EXPECT_EQ(timings[i].num_answers, 3u);
    EXPECT_GE(timings[i].seconds, 0.0);
  }
}

TEST(HarnessTest, SeriesTableAggregates) {
  SeriesTable table("noise");
  SchemeTiming fast{SchemeKind::kNatural, 1.0, false, 1};
  SchemeTiming slow{SchemeKind::kKl, 3.0, false, 1};
  SchemeTiming slower{SchemeKind::kKl, 5.0, true, 1};
  table.Add(0.1, SchemeKind::kNatural, fast);
  table.Add(0.1, SchemeKind::kKl, slow);
  table.Add(0.1, SchemeKind::kKl, slower);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kNatural), 1.0);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kKl), 4.0);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kKlm), -1.0);
  EXPECT_EQ(table.Winner(0.1), SchemeKind::kNatural);
}

TEST(HarnessTest, WinnerPrefersSmallestMean) {
  SeriesTable table("x");
  table.Add(1.0, SchemeKind::kCover, SchemeTiming{SchemeKind::kCover, 0.5,
                                                  false, 1});
  table.Add(1.0, SchemeKind::kKlm,
            SchemeTiming{SchemeKind::kKlm, 2.0, false, 1});
  EXPECT_EQ(table.Winner(1.0), SchemeKind::kCover);
}

TEST(HarnessTest, TimeoutBudgetIsHonored) {
  // A hard synopsis with a tiny budget: every scheme must return quickly
  // and be flagged.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  Rng data_rng(2);
  for (int k = 0; k < 40; ++k) {
    for (int j = 0; j < 5; ++j) {
      db.Insert("r", {Value(k), Value(data_rng.UniformInt(0, 1000000))});
    }
  }
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- r(K, V).");
  PreprocessResult pre = BuildSynopses(db, q);
  Rng rng(3);
  std::vector<SchemeTiming> timings =
      RunAllSchemes(pre, ApxParams{0.01, 0.01}, 0.0, rng);
  for (const SchemeTiming& t : timings) {
    EXPECT_TRUE(t.timed_out) << SchemeKindName(t.scheme);
    EXPECT_LT(t.seconds, 1.0);
  }
}

TEST(HarnessTest, RunAllSchemesReportsSampleSplit) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  Rng rng(1);
  for (const SchemeTiming& t : RunAllSchemes(pre, ApxParams{}, 10.0, rng)) {
    // Every scheme draws main-phase samples; the estimator phase only
    // exists for the Monte Carlo schemes (Cover has none).
    EXPECT_GT(t.main_samples, 0u) << SchemeKindName(t.scheme);
    if (t.scheme != SchemeKind::kCover) {
      EXPECT_GT(t.estimator_samples, 0u) << SchemeKindName(t.scheme);
    }
  }
}

TEST(HarnessTest, AllTimedOutRequiresEveryRunInTheCell) {
  SeriesTable table("noise");
  EXPECT_FALSE(table.AllTimedOut(0.1));  // no data: vacuously false
  table.Add(0.1, SchemeKind::kNatural,
            SchemeTiming{SchemeKind::kNatural, 1.0, true, 1});
  EXPECT_TRUE(table.AllTimedOut(0.1));
  // A single successful run in any cell flips the answer.
  table.Add(0.1, SchemeKind::kKl, SchemeTiming{SchemeKind::kKl, 1.0, true, 1});
  table.Add(0.1, SchemeKind::kKl,
            SchemeTiming{SchemeKind::kKl, 1.0, false, 1});
  EXPECT_FALSE(table.AllTimedOut(0.1));
}

TEST(HarnessTest, WinnerTieBreaksInEnumOrder) {
  SeriesTable table("x");
  table.Add(1.0, SchemeKind::kKlm,
            SchemeTiming{SchemeKind::kKlm, 2.0, false, 1});
  table.Add(1.0, SchemeKind::kKl, SchemeTiming{SchemeKind::kKl, 2.0, false, 1});
  // Equal means: the first scheme in AllSchemeKinds() order wins.
  EXPECT_EQ(table.Winner(1.0), SchemeKind::kKl);
}

TEST(HarnessTest, AbsentCellsAreSentinels) {
  SeriesTable table("noise");
  EXPECT_DOUBLE_EQ(table.Mean(0.9, SchemeKind::kCover), -1.0);
  EXPECT_DOUBLE_EQ(table.MeanSamples(0.9, SchemeKind::kCover), -1.0);
  EXPECT_EQ(table.Timeouts(0.9, SchemeKind::kCover), 0u);
}

TEST(HarnessTest, MeanSamplesAveragesBothPhases) {
  SeriesTable table("noise");
  SchemeTiming a{SchemeKind::kKl, 1.0, false, 1};
  a.estimator_samples = 100;
  a.main_samples = 300;
  SchemeTiming b{SchemeKind::kKl, 1.0, false, 1};
  b.estimator_samples = 200;
  b.main_samples = 600;
  table.Add(0.5, SchemeKind::kKl, a);
  table.Add(0.5, SchemeKind::kKl, b);
  EXPECT_DOUBLE_EQ(table.MeanSamples(0.5, SchemeKind::kKl), 600.0);
}

TEST(HarnessTest, PrintDoesNotCrash) {
  SeriesTable table("balance");
  table.Add(0.5, SchemeKind::kNatural,
            SchemeTiming{SchemeKind::kNatural, 1.0, false, 2});
  table.Print("Smoke");
}

}  // namespace
}  // namespace cqa
