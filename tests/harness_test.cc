#include "bench/harness.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(HarnessTest, RunAllSchemesCoversAllFour) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  Rng rng(1);
  std::vector<SchemeTiming> timings = RunAllSchemes(pre, ApxParams{}, 10.0, rng);
  ASSERT_EQ(timings.size(), 4u);
  for (size_t i = 0; i < timings.size(); ++i) {
    EXPECT_EQ(timings[i].scheme, AllSchemeKinds()[i]);
    EXPECT_FALSE(timings[i].timed_out);
    EXPECT_EQ(timings[i].num_answers, 3u);
    EXPECT_GE(timings[i].seconds, 0.0);
  }
}

TEST(HarnessTest, SeriesTableAggregates) {
  SeriesTable table("noise");
  SchemeTiming fast{SchemeKind::kNatural, 1.0, false, 1};
  SchemeTiming slow{SchemeKind::kKl, 3.0, false, 1};
  SchemeTiming slower{SchemeKind::kKl, 5.0, true, 1};
  table.Add(0.1, SchemeKind::kNatural, fast);
  table.Add(0.1, SchemeKind::kKl, slow);
  table.Add(0.1, SchemeKind::kKl, slower);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kNatural), 1.0);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kKl), 4.0);
  EXPECT_DOUBLE_EQ(table.Mean(0.1, SchemeKind::kKlm), -1.0);
  EXPECT_EQ(table.Winner(0.1), SchemeKind::kNatural);
}

TEST(HarnessTest, WinnerPrefersSmallestMean) {
  SeriesTable table("x");
  table.Add(1.0, SchemeKind::kCover, SchemeTiming{SchemeKind::kCover, 0.5,
                                                  false, 1});
  table.Add(1.0, SchemeKind::kKlm,
            SchemeTiming{SchemeKind::kKlm, 2.0, false, 1});
  EXPECT_EQ(table.Winner(1.0), SchemeKind::kCover);
}

TEST(HarnessTest, TimeoutBudgetIsHonored) {
  // A hard synopsis with a tiny budget: every scheme must return quickly
  // and be flagged.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  Rng data_rng(2);
  for (int k = 0; k < 40; ++k) {
    for (int j = 0; j < 5; ++j) {
      db.Insert("r", {Value(k), Value(data_rng.UniformInt(0, 1000000))});
    }
  }
  ConjunctiveQuery q = MustParseCq(schema, "Q() :- r(K, V).");
  PreprocessResult pre = BuildSynopses(db, q);
  Rng rng(3);
  std::vector<SchemeTiming> timings =
      RunAllSchemes(pre, ApxParams{0.01, 0.01}, 0.0, rng);
  for (const SchemeTiming& t : timings) {
    EXPECT_TRUE(t.timed_out) << SchemeKindName(t.scheme);
    EXPECT_LT(t.seconds, 1.0);
  }
}

TEST(HarnessTest, PrintDoesNotCrash) {
  SeriesTable table("balance");
  table.Add(0.5, SchemeKind::kNatural,
            SchemeTiming{SchemeKind::kNatural, 1.0, false, 2});
  table.Print("Smoke");
}

}  // namespace
}  // namespace cqa
