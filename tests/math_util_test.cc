#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cqa {
namespace {

TEST(MeanVarTest, EmptyAccumulator) {
  MeanVarAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(MeanVarTest, SingleObservation) {
  MeanVarAccumulator acc;
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(MeanVarTest, KnownMeanAndVariance) {
  MeanVarAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the classic example: 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanVarTest, NumericallyStableForLargeOffsets) {
  MeanVarAccumulator acc;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) acc.Add(offset + x);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  std::vector<double> terms{std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(terms), std::log(6.0), 1e-12);
}

TEST(LogSumExpTest, StableForLargeMagnitudes) {
  // exp(1000) overflows; log-sum-exp must not.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 3), 1u);
  EXPECT_EQ(CeilDiv(3, 3), 1u);
  EXPECT_EQ(CeilDiv(4, 3), 2u);
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace cqa
