// Tests for obs/resource — /proc-backed resource telemetry. These run
// in every build mode (the module is deliberately not compiled out
// under CQABENCH_NO_OBS; gauges follow the registry's always-on
// policy). They assert plausibility, not exact values: the numbers
// come from the live test process.

#include "obs/resource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cqa::obs {
namespace {

TEST(ResourceSampleTest, ReadsPlausibleValues) {
  const ResourceSample s = SampleResources();
  ASSERT_TRUE(s.ok) << "/proc/self should be readable on Linux";
  EXPECT_GT(s.rss_bytes, 1 << 20) << "a gtest binary maps >1MiB resident";
  EXPECT_GE(s.vm_bytes, s.rss_bytes);
  EXPECT_GE(s.threads, 1);
  EXPECT_GT(s.minor_faults, 0);
  EXPECT_GE(s.major_faults, 0);
  EXPECT_GE(s.cpu_user_micros + s.cpu_system_micros, 0);
  EXPECT_GE(s.sched_wait_micros, 0);
}

TEST(ResourceSampleTest, ThreadCountTracksSpawnedThreads) {
  const int before = static_cast<int>(SampleResources().threads);
  std::atomic<bool> stop{false};
  std::vector<std::thread> extra;
  for (int i = 0; i < 3; ++i) {
    extra.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  const int during = static_cast<int>(SampleResources().threads);
  stop.store(true);
  for (std::thread& t : extra) t.join();
  EXPECT_GE(during, before + 3);
}

TEST(ResourceSamplerTest, SampleNowPublishesGauges) {
  ResourceSampler::Instance().SampleNow();
  Registry& registry = Registry::Instance();
  EXPECT_GT(registry.GaugeValue("proc.rss_bytes"), 1 << 20);
  EXPECT_GE(registry.GaugeValue("proc.vm_bytes"),
            registry.GaugeValue("proc.rss_bytes"));
  EXPECT_GE(registry.GaugeValue("proc.threads"), 1);
  EXPECT_GT(registry.GaugeValue("proc.minor_faults"), 0);
  EXPECT_GE(registry.GaugeValue("proc.major_faults"), 0);
  EXPECT_GE(registry.GaugeValue("proc.voluntary_ctxt_switches"), 0);
  EXPECT_GE(registry.GaugeValue("proc.involuntary_ctxt_switches"), 0);
  EXPECT_GE(registry.GaugeValue("proc.cpu_user_micros"), 0);
  EXPECT_GE(registry.GaugeValue("proc.cpu_system_micros"), 0);
  EXPECT_GE(registry.GaugeValue("proc.sched_wait_micros"), 0);
}

TEST(ResourceSamplerTest, StartValidatesIntervalAndRejectsDoubleStart) {
  ResourceSampler& sampler = ResourceSampler::Instance();
  std::string error;
  EXPECT_FALSE(sampler.Start(0.0, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sampler.Start(-1.0, &error));
  EXPECT_FALSE(sampler.Start(4000.0, &error));
  EXPECT_FALSE(sampler.running());

  ASSERT_TRUE(sampler.Start(0.05, &error)) << error;
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start(0.05, &error)) << "second Start must refuse";
  // The first tick fires synchronously inside Start's thread spin-up;
  // give it a moment, then the gauges must be live.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GT(Registry::Instance().GaugeValue("proc.rss_bytes"), 0);
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // Idempotent.

  // Restartable after Stop.
  ASSERT_TRUE(sampler.Start(0.05, &error)) << error;
  sampler.Stop();
}

TEST(ResourceSamplerTest, CpuUtilizationReactsToBusyWork) {
  ResourceSampler& sampler = ResourceSampler::Instance();
  std::string error;
  ASSERT_TRUE(sampler.Start(0.05, &error)) << error;
  // Burn CPU across several ticks so the derived rate has a window.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  volatile uint64_t sink = 1;
  while (std::chrono::steady_clock::now() < deadline) {
    sink = sink * 2862933555777941757ull + 3037000493ull;
  }
  const int64_t permille =
      Registry::Instance().GaugeValue("proc.cpu_utilization_permille");
  sampler.Stop();
  // One spinning thread ≈ 1000 permille; anything clearly nonzero
  // proves the delta computation works without being scheduler-flaky.
  EXPECT_GT(permille, 100) << "spin loop should register CPU burn";
}

TEST(ThreadListTextTest, ListsThisProcess) {
  const std::string text = ThreadListText();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("tid"), std::string::npos) << text;
  // At least the main thread's line with a cpu column is present.
  EXPECT_NE(text.find("cpu_s"), std::string::npos) << text;
}

TEST(HeapProfileTextTest, ReportsFootprint) {
  // Hold a live allocation so in-use numbers cannot be trivially zero.
  std::vector<char> block(4 << 20, 'x');
  const std::string text = HeapProfileText();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("rss"), std::string::npos) << text;
  EXPECT_NE(text.find("counter snapshot"), std::string::npos)
      << "the report must state it is not an allocation-site profile";
  EXPECT_GT(block[1 << 20], 0);
}

}  // namespace
}  // namespace cqa::obs
