#include "cqa/block_dnf.h"

#include <gtest/gtest.h>

#include "cqa/exact.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

Synopsis FixtureSynopsis() {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}, {1, 2}});
  return s;
}

TEST(BlockDnfTest, TranslationShape) {
  BlockDnf f = SynopsisToBlockDnf(FixtureSynopsis());
  EXPECT_EQ(f.NumBlocks(), 2u);
  EXPECT_EQ(f.NumVariables(), 5u);
  EXPECT_EQ(f.NumClauses(), 2u);
  ASSERT_EQ(f.clauses[0].size(), 1u);
  EXPECT_EQ(f.clauses[0][0].block, 0u);
  EXPECT_EQ(f.clauses[0][0].index, 0u);
  ASSERT_EQ(f.clauses[1].size(), 2u);
}

TEST(BlockDnfTest, SatisfyingFractionMatchesRatio) {
  Synopsis s = FixtureSynopsis();
  BlockDnf f = SynopsisToBlockDnf(s);
  EXPECT_NEAR(*SatisfyingFraction(f), 4.0 / 6.0, 1e-12);
}

TEST(BlockDnfTest, AgreesWithExactOracleOnRandomSynopses) {
  // The Block DNF fraction is the third independent computation of
  // R(H, B) in this codebase; all must coincide.
  Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    Synopsis s = MakeRandomSynopsis(rng, 5, 4, 6, 3);
    double via_enum = *ExactRatioByEnumeration(s);
    double via_dnf = *SatisfyingFraction(SynopsisToBlockDnf(s));
    EXPECT_NEAR(via_enum, via_dnf, 1e-12) << s.DebugString();
  }
}

TEST(BlockDnfTest, BudgetIsRespected) {
  BlockDnf f;
  for (int i = 0; i < 30; ++i) f.block_sizes.push_back(2);
  f.clauses.push_back({BlockDnf::Literal{0, 0}});
  EXPECT_EQ(SatisfyingFraction(f, 1 << 20), std::nullopt);
}

TEST(BlockDnfTest, ToStringRendersFormula) {
  BlockDnf f = SynopsisToBlockDnf(FixtureSynopsis());
  std::string text = f.ToString();
  EXPECT_NE(text.find("X0{x0_0 x0_1}"), std::string::npos);
  EXPECT_NE(text.find("(x0_0) | (x0_1 & x1_2)"), std::string::npos);
}

TEST(BlockDnfTest, EmptyFormula) {
  BlockDnf f;
  EXPECT_EQ(f.NumVariables(), 0u);
  EXPECT_EQ(SatisfyingFraction(f), std::optional<double>(0.0));
}

}  // namespace
}  // namespace cqa
