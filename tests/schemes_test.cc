#include "cqa/schemes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cqa/exact.h"
#include "cqa/invariants.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

TEST(SchemeKindTest, NamesRoundTrip) {
  for (SchemeKind kind : AllSchemeKinds()) {
    EXPECT_EQ(ParseSchemeKind(SchemeKindName(kind)),
              std::optional<SchemeKind>(kind));
  }
  EXPECT_EQ(ParseSchemeKind("NotAScheme"), std::nullopt);
}

TEST(SchemeKindTest, AllFourSchemesListed) {
  EXPECT_EQ(AllSchemeKinds().size(), 4u);
}

TEST(SchemesTest, EmptySynopsisYieldsZero) {
  Synopsis empty;
  ApxParams params;
  Rng rng(1);
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    ApxResult r = scheme->Run(empty, params, rng);
    EXPECT_DOUBLE_EQ(r.estimate, 0.0) << scheme->name();
    EXPECT_FALSE(r.timed_out);
  }
}

/// The central correctness property: on random admissible pairs, every
/// scheme's estimate is within ε (with slack for the δ failure mass) of
/// the exact ratio computed by enumeration.
class SchemeAccuracyTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>> {};

TEST_P(SchemeAccuracyTest, WithinRelativeError) {
  auto [kind, seed] = GetParam();
  Rng gen(10000 + seed);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  ASSERT_GT(exact, 0.0);

  auto scheme = ApxRelativeFreqScheme::Create(kind);
  ApxParams params;
  params.epsilon = 0.1;
  params.delta = 0.05;  // Tighter than the paper's 0.25 to damp flakes.
  Rng rng(20000 + seed);
  ApxResult r = scheme->Run(s, params, rng);
  ASSERT_FALSE(r.timed_out);
  EXPECT_NEAR(r.estimate, exact, 2 * params.epsilon * exact)
      << SchemeKindName(kind) << " on " << s.DebugString();
  EXPECT_GT(r.samples, 0u);
  // Structural audits on the inputs and the result's phase accounting.
  std::string why;
  EXPECT_TRUE(audit::CheckSynopsis(s, &why)) << why;
  EXPECT_EQ(r.samples, r.estimator_samples + r.main_samples)
      << SchemeKindName(kind);
  if (!r.per_thread_samples.empty()) {
    size_t total = 0;
    for (size_t n : r.per_thread_samples) total += n;
    EXPECT_EQ(total, r.main_samples) << SchemeKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeAccuracyTest,
    ::testing::Combine(::testing::ValuesIn(AllSchemeKinds()),
                       ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<std::tuple<SchemeKind, int>>& info) {
      return std::string(SchemeKindName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SchemesTest, SingleImageFullBlockRatio) {
  // One image pinning the only block of size 4: R = 1/4.
  Synopsis s;
  s.AddBlock(Synopsis::Block{4, 0, 0});
  s.AddImage({{0, 2}});
  ApxParams params;
  Rng rng(3);
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    ApxResult r = scheme->Run(s, params, rng);
    EXPECT_NEAR(r.estimate, 0.25, 0.25 * 0.3) << scheme->name();
  }
}

TEST(SchemesTest, CertainAnswerRatioOne) {
  // Images covering every member of a block: R = 1 (a certain answer).
  Synopsis s;
  s.AddBlock(Synopsis::Block{3, 0, 0});
  for (uint32_t i = 0; i < 3; ++i) s.AddImage({{0, i}});
  ApxParams params;
  Rng rng(4);
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    ApxResult r = scheme->Run(s, params, rng);
    EXPECT_NEAR(r.estimate, 1.0, 0.25) << scheme->name();
  }
}

TEST(SchemesTest, DeadlinePropagates) {
  // A synopsis with many images and a zero deadline must time out for
  // every scheme.
  Synopsis s;
  s.AddBlock(Synopsis::Block{50, 0, 0});
  s.AddBlock(Synopsis::Block{50, 0, 1});
  for (uint32_t i = 0; i < 50; ++i) s.AddImage({{0, i}, {1, i}});
  ApxParams params;
  params.epsilon = 0.01;
  Rng rng(5);
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    ApxResult r = scheme->Run(s, params, rng, Deadline(0.0));
    EXPECT_TRUE(r.timed_out) << scheme->name();
  }
}

TEST(SchemesTest, DeterministicGivenSeed) {
  Rng gen(6);
  Synopsis s = MakeRandomSynopsis(gen, 4, 3, 4, 2);
  ApxParams params;
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    Rng rng_a(7), rng_b(7);
    ApxResult a = scheme->Run(s, params, rng_a);
    ApxResult b = scheme->Run(s, params, rng_b);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate) << scheme->name();
    EXPECT_EQ(a.samples, b.samples);
  }
}

}  // namespace
}  // namespace cqa
