#include "cqa/parallel.h"

#include <gtest/gtest.h>

#include "cqa/exact.h"
#include "cqa/klm_sampler.h"
#include "cqa/natural_sampler.h"
#include "cqa/schemes.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

TEST(ParallelMonteCarloTest, SingleThreadMatchesSerialImplementation) {
  Rng gen(1);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  Rng rng_serial(7), rng_parallel(7);
  NaturalSampler serial_sampler(&s);
  MonteCarloResult serial =
      MonteCarloEstimate(serial_sampler, 0.1, 0.25, rng_serial);
  MonteCarloResult parallel = ParallelMonteCarloEstimate(
      [&] { return std::make_unique<NaturalSampler>(&s); }, 1, 0.1, 0.25,
      rng_parallel);
  EXPECT_DOUBLE_EQ(serial.estimate, parallel.estimate);
  EXPECT_EQ(serial.main_samples, parallel.main_samples);
}

class ParallelThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelThreadsTest, EstimateStaysAccurate) {
  Rng gen(2);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  ASSERT_GT(exact, 0.0);
  SymbolicSpace space(&s);
  Rng rng(50 + GetParam());
  MonteCarloResult r = ParallelMonteCarloEstimate(
      [&] { return std::make_unique<KlmSampler>(&space); }, GetParam(), 0.1,
      0.05, rng);
  ASSERT_FALSE(r.timed_out);
  double estimate = r.estimate * space.total_weight();
  EXPECT_NEAR(estimate, exact, 2 * 0.1 * exact) << "threads=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreadsTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelMonteCarloTest, SampleCountIsSplitExactly) {
  Rng gen(3);
  Synopsis s = MakeRandomSynopsis(gen, 4, 3, 3, 2);
  Rng rng(9);
  MonteCarloResult r = ParallelMonteCarloEstimate(
      [&] { return std::make_unique<NaturalSampler>(&s); }, 3, 0.2, 0.25,
      rng);
  ASSERT_FALSE(r.timed_out);
  EXPECT_GT(r.main_samples, 0u);
}

TEST(ParallelMonteCarloTest, SchemesAcceptThreadCount) {
  // End to end through ApxParams::num_threads: Monte-Carlo schemes stay
  // within the accuracy band with a parallel main loop; Cover ignores the
  // setting and still works.
  Rng gen(4);
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  ASSERT_GT(exact, 0.0);
  ApxParams params;
  params.epsilon = 0.1;
  params.delta = 0.05;
  params.num_threads = 4;
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    Rng rng(60);
    ApxResult r = scheme->Run(s, params, rng);
    ASSERT_FALSE(r.timed_out) << SchemeKindName(kind);
    EXPECT_NEAR(r.estimate, exact, 2 * params.epsilon * exact)
        << SchemeKindName(kind);
  }
}

TEST(ParallelMonteCarloTest, DeadlinePropagatesAcrossThreads) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{50, 0, 0});
  s.AddBlock(Synopsis::Block{50, 0, 1});
  for (uint32_t i = 0; i < 50; ++i) s.AddImage({{0, i}, {1, i}});
  SymbolicSpace space(&s);
  Rng rng(10);
  MonteCarloResult r = ParallelMonteCarloEstimate(
      [&] { return std::make_unique<KlmSampler>(&space); }, 4, 0.01, 0.01,
      rng, Deadline(0.0));
  EXPECT_TRUE(r.timed_out);
}

}  // namespace
}  // namespace cqa
