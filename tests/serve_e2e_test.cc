// End-to-end serving tests: an in-process cqad (real TCP on loopback)
// under concurrent mixed-scheme load, answers cross-checked against
// single-process ApxCqa runs with the same seeds, a second wave proving
// the synopsis cache eliminates Preprocess work, wire-level protocol
// rejections, overload shedding, and graceful drain.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "cqa/apx_cqa.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "serve/access_log.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/metrics_http.h"
#include "serve/server.h"
#include "obs/exposition.h"
#ifndef CQABENCH_NO_OBS
#include "obs/profiler.h"
#endif
#include "storage/tbl_io.h"
#include "storage/tuple.h"

namespace cqa::serve {
namespace {

constexpr const char* kQuery =
    "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC), "
    "nation(NK, NN, RK, NC).";
const char* const kSchemes[] = {"Natural", "KL", "KLM", "Cover"};

/// Shared on-disk dataset: a small noisy TPC-H instance, generated once
/// for the whole suite (every test reads, none writes).
class ServeE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("cqa_serve_e2e_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    Dataset d = GenerateTpch(TpchOptions{0.0003, 17});
    ConjunctiveQuery q = MustParseCq(*d.schema, kQuery);
    NoiseOptions noise;
    noise.p = 0.5;
    Rng rng(99);
    AddQueryAwareNoise(d.db.get(), q, noise, rng);
    std::string error;
    ASSERT_TRUE(WriteTblDirectory(*d.db, dir_->string(), &error)) << error;
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static Request MakeQueryRequest(const std::string& scheme,
                                  uint64_t seed) {
    Request request;
    request.op = "query";
    request.schema = "tpch";
    request.data = dir_->string();
    request.query = kQuery;
    request.scheme = scheme;
    request.seed = seed;
    return request;
  }

  /// The single-process ground truth: same synopses, same scheme, same
  /// seed, serial — byte-for-byte the code path the server runs.
  static std::map<std::string, double> LocalAnswers(
      const std::string& scheme, uint64_t seed) {
    Schema schema = MakeTpchSchema();
    Database db(&schema);
    std::string error;
    EXPECT_TRUE(ReadTblDirectory(&db, dir_->string(), &error)) << error;
    ConjunctiveQuery q = MustParseCq(schema, kQuery);
    ApxParams params;
    Rng rng(seed);
    CqaRunResult run =
        ApxCqa(db, q, *ParseSchemeKind(scheme), params, rng);
    std::map<std::string, double> out;
    for (const CqaAnswer& a : run.answers) {
      out[TupleToString(a.tuple)] = a.frequency;
    }
    return out;
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* ServeE2eTest::dir_ = nullptr;

TEST_F(ServeE2eTest, ConcurrentMixedSchemeWavesMatchLocalRunsAndCache) {
  ServerOptions options;
  options.workers = 8;
  CqadServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Ground truth per (scheme, seed), computed once in-process.
  constexpr uint64_t kSeedsPerScheme = 25;  // 4 schemes × 25 = 100.
  std::map<std::string, std::map<std::string, double>> expected;
  for (const char* scheme : kSchemes) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      expected[std::string(scheme) + "/" + std::to_string(seed)] =
          LocalAnswers(scheme, seed);
    }
  }

  auto run_wave = [&](bool expect_all_hits) {
    constexpr size_t kClients = 100;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    std::vector<Response> responses(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        const char* scheme = kSchemes[i % 4];
        // Seeds cycle 1..2 so ground truth stays cheap while the wave
        // still mixes schemes × seeds across 100 concurrent requests.
        const uint64_t seed = 1 + (i / 4) % 2;
        (void)kSeedsPerScheme;
        CqaClient client;
        std::string client_error;
        if (!client.Connect("127.0.0.1", server.port(), &client_error)) {
          failures[i] = "connect: " + client_error;
          return;
        }
        Request request = MakeQueryRequest(scheme, seed);
        if (!client.Call(request, &responses[i], &client_error)) {
          failures[i] = "call: " + client_error;
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (size_t i = 0; i < kClients; ++i) {
      ASSERT_TRUE(failures[i].empty()) << failures[i];
      const Response& response = responses[i];
      ASSERT_TRUE(response.ok()) << response.error;
      EXPECT_FALSE(response.timed_out);
      if (expect_all_hits) {
        EXPECT_TRUE(response.cache_hit);
      }
      const char* scheme = kSchemes[i % 4];
      const uint64_t seed = 1 + (i / 4) % 2;
      const auto& truth =
          expected[std::string(scheme) + "/" + std::to_string(seed)];
      ASSERT_EQ(response.answers.size(), truth.size())
          << scheme << " seed " << seed;
      for (const ResponseAnswer& a : response.answers) {
        auto it = truth.find(a.tuple);
        ASSERT_NE(it, truth.end()) << "unexpected answer " << a.tuple;
        EXPECT_NEAR(a.frequency, it->second, 1e-9)
            << scheme << " seed " << seed << " " << a.tuple;
      }
    }
  };

  run_wave(/*expect_all_hits=*/false);

#ifndef CQABENCH_NO_OBS
  const uint64_t builds_before =
      obs::Registry::Instance().CounterValue("preprocess.builds");
#endif
  const uint64_t hits_before = server.engine().synopsis_cache().hits();

  run_wave(/*expect_all_hits=*/true);

  EXPECT_GT(server.engine().synopsis_cache().hits(), hits_before);
#ifndef CQABENCH_NO_OBS
  // The serving layer's core claim, metrics-asserted: the second wave
  // performed ZERO Preprocess work.
  EXPECT_EQ(obs::Registry::Instance().CounterValue("preprocess.builds"),
            builds_before);
#endif

  server.RequestDrain();
  server.Wait();
}

TEST_F(ServeE2eTest, PingAndStatsOps) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Request ping;
  ping.op = "ping";
  ping.id = "p1";
  Response response;
  ASSERT_TRUE(client.Call(ping, &response, &error)) << error;
  EXPECT_TRUE(response.ok());
  EXPECT_TRUE(response.pong);
  EXPECT_EQ(response.id, "p1");

  Request stats;
  stats.op = "stats";
  ASSERT_TRUE(client.Call(stats, &response, &error)) << error;
  EXPECT_TRUE(response.ok());
  EXPECT_NE(response.server_json.find("\"draining\":false"),
            std::string::npos);
  EXPECT_FALSE(response.metrics_json.empty());

  server.RequestDrain();
  server.Wait();
}

TEST_F(ServeE2eTest, WireLevelRejections) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    // Garbage JSON in a well-formed frame → 400, connection survives
    // (the frame boundary is still trustworthy).
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error))
        << error;
    std::string payload;
    ASSERT_TRUE(client.RawCall(EncodeFrame("{definitely not json"),
                               &payload, &error))
        << error;
    Response response;
    ASSERT_TRUE(Response::FromJsonPayload(payload, &response, &error))
        << error;
    EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  }
  {
    // Wrong protocol version → 426.
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error))
        << error;
    std::string payload;
    ASSERT_TRUE(client.RawCall(
        EncodeFrame(R"({"v": 99, "op": "ping"})"), &payload, &error))
        << error;
    Response response;
    ASSERT_TRUE(Response::FromJsonPayload(payload, &response, &error))
        << error;
    EXPECT_EQ(response.code, ErrorCode::kBadVersion);
  }
  {
    // Oversize frame → 413 and the server closes the connection.
    ServerOptions small;
    small.max_frame_bytes = 64;
    CqadServer tiny(small);
    ASSERT_TRUE(tiny.Start(&error)) << error;
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", tiny.port(), &error)) << error;
    std::string payload;
    ASSERT_TRUE(client.RawCall(EncodeFrame(std::string(65, ' ')), &payload,
                               &error))
        << error;
    Response response;
    ASSERT_TRUE(Response::FromJsonPayload(payload, &response, &error))
        << error;
    EXPECT_EQ(response.code, ErrorCode::kFrameTooLarge);
    tiny.RequestDrain();
    tiny.Wait();
  }
  {
    // Zero-length frame → unrecoverable framing error, connection closed
    // after a 400 reply.
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error))
        << error;
    std::string payload;
    const char zeros[4] = {0, 0, 0, 0};
    ASSERT_TRUE(client.RawCall(std::string(zeros, 4), &payload, &error))
        << error;
    Response response;
    ASSERT_TRUE(Response::FromJsonPayload(payload, &response, &error))
        << error;
    EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  }

  server.RequestDrain();
  server.Wait();
}

TEST_F(ServeE2eTest, OverloadShedsWithRetryAfter) {
  ServerOptions options;
  options.workers = 8;
  options.max_inflight = 1;
  options.max_queue = 0;  // Any concurrent second request sheds.
  CqadServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr size_t kClients = 16;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  std::vector<std::string> failures(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      CqaClient client;
      std::string client_error;
      if (!client.Connect("127.0.0.1", server.port(), &client_error)) {
        failures[i] = client_error;
        return;
      }
      Request request = MakeQueryRequest("KLM", 3);
      if (!client.Call(request, &responses[i], &client_error)) {
        failures[i] = client_error;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  size_t ok = 0;
  size_t shed = 0;
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(failures[i].empty()) << failures[i];
    if (responses[i].ok()) {
      ++ok;
    } else {
      ASSERT_EQ(responses[i].code, ErrorCode::kOverloaded)
          << responses[i].error;
      EXPECT_GT(responses[i].retry_after_s, 0.0);
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, kClients);

  server.RequestDrain();
  server.Wait();
}

TEST_F(ServeE2eTest, GracefulDrainCompletesInflightAndRefusesNew) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  // A request racing the drain must either complete or be told the
  // server is draining — never hang, never get a torn response.
  std::thread racer([&] {
    CqaClient client;
    std::string client_error;
    if (!client.Connect("127.0.0.1", port, &client_error)) return;
    Response response;
    if (client.Call(MakeQueryRequest("KLM", 4), &response, &client_error)) {
      EXPECT_TRUE(response.ok() ||
                  response.code == ErrorCode::kDraining)
          << response.error;
    }
  });

  server.RequestDrain();
  server.Wait();  // Must return: drain may not wedge on the racer.
  racer.join();

  // Fully drained: new connections are refused at the TCP layer.
  CqaClient late;
  std::string late_error;
  EXPECT_FALSE(late.Connect("127.0.0.1", port, &late_error));
}

// Raw-socket GET against the metrics sidecar (the frame-protocol
// CqaClient can't speak HTTP).
std::string SidecarGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// The deployment wiring cqad uses — metrics sidecar health probe bound
// to !server.draining() — under a drain that begins while a profile
// collection and a scrape are in flight: the scrape answers during
// drain, /healthz flips to 503, and the collection is cut short with a
// partial 200 instead of pinning the shutdown for its full window.
TEST_F(ServeE2eTest, MetricsSidecarSurvivesDrainAndAbortsProfile) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  serve::MetricsHttpServer sidecar(serve::MetricsHttpOptions{
      "127.0.0.1", 0, [] { return obs::RegistryPrometheusText(); },
      [&server] { return !server.draining(); }});
  ASSERT_TRUE(sidecar.Start(&error)) << error;

  // Real traffic so the registry has serving metrics to scrape.
  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Response response;
  ASSERT_TRUE(client.Call(MakeQueryRequest("Natural", 11), &response, &error))
      << error;
  ASSERT_TRUE(response.ok()) << response.error;

  EXPECT_NE(SidecarGet(sidecar.port(), "/healthz").find("200 OK"),
            std::string::npos);

#ifndef CQABENCH_NO_OBS
  const bool profiler_usable = obs::Profiler::kAvailable;
#else
  const bool profiler_usable = false;
#endif
  std::string profile;
  std::thread collector;
  if (profiler_usable) {
    collector = std::thread([&profile, &sidecar] {
      profile = SidecarGet(sidecar.port(), "/debug/pprof/profile?seconds=30");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }

  const auto drain_start = std::chrono::steady_clock::now();
  server.RequestDrain();
  // Racing the drain: the exposition must keep answering so the last
  // scrape of a shutting-down process isn't lost.
  const std::string scrape = SidecarGet(sidecar.port(), "/metrics");
  EXPECT_NE(scrape.find("200 OK"), std::string::npos);
  // Gauges are live in every build mode (counters compile out under
  // CQABENCH_NO_OBS), so assert on one the accept loop always sets.
  EXPECT_NE(scrape.find("cqa_serve_connections_open"), std::string::npos)
      << scrape.substr(0, 400);
  EXPECT_NE(SidecarGet(sidecar.port(), "/healthz").find("503"),
            std::string::npos);
  server.Wait();
  if (collector.joinable()) collector.join();
  const double drain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  sidecar.Stop();

  if (profiler_usable) {
    EXPECT_NE(profile.find("200 OK"), std::string::npos)
        << "aborted collection still returns the partial profile";
    EXPECT_LT(drain_seconds, 10.0)
        << "a 30s profile window must not pin the drain";
  }
}

// The tentpole round trip: a client-supplied trace id flows through
// admission and the engine into (a) the response's phase breakdown,
// (b) the access log line, and (c) the server's span tree — the same id
// everywhere, so client and server observations join without guesswork.
TEST_F(ServeE2eTest, TraceContextRoundTripsIntoTimingLogAndSpans) {
  const std::filesystem::path log_path =
      *dir_ / "trace_roundtrip_access.jsonl";
  AccessLogOptions log_options;
  log_options.path = log_path.string();
  AccessLog access_log(log_options);
  std::string error;
  ASSERT_TRUE(access_log.Open(&error)) << error;

  ServerOptions options;
  options.access_log = &access_log;
  CqadServer server(options);
  ASSERT_TRUE(server.Start(&error)) << error;
#ifndef CQABENCH_NO_OBS
  obs::TraceBuffer::Instance().Clear();
#endif

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Request request = MakeQueryRequest("KLM", 6);
  request.id = "rq-trace-1";
  request.trace_id = "e2e-trace-1";
  Response response;
  ASSERT_TRUE(client.Call(request, &response, &error)) << error;
  ASSERT_TRUE(response.ok()) << response.error;

  // (a) The response carries the full phase breakdown, and the phases
  // are disjoint sub-intervals of the handler total (1ms slack for the
  // separate stopwatch reads).
  ASSERT_TRUE(response.timing.recorded);
  EXPECT_GT(response.timing.total_micros, 0u);
  EXPECT_GT(response.timing.sample_micros, 0u);
  EXPECT_GT(response.timing.preprocess_micros, 0u);  // Cache-miss build.
  EXPECT_LE(response.timing.PhaseSumMicros(),
            response.timing.total_micros + 1000);

  server.RequestDrain();
  server.Wait();

  // (b) Exactly one access-log line, carrying the same trace id and the
  // same phase fields the response reported.
  EXPECT_EQ(access_log.lines(), 1u);
  std::ifstream in(log_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(line, &parsed, &error)) << error << line;
  EXPECT_EQ(parsed.GetString("trace_id", ""), "e2e-trace-1");
  EXPECT_EQ(parsed.GetString("id", ""), "rq-trace-1");
  EXPECT_EQ(parsed.GetString("op", ""), "query");
  EXPECT_EQ(parsed.GetNumber("code", -1), 0.0);
  EXPECT_EQ(parsed.GetString("cache", ""), "miss");
  EXPECT_EQ(parsed.GetNumber("sample_micros", 0),
            static_cast<double>(response.timing.sample_micros));

#ifndef CQABENCH_NO_OBS
  // (c) The span tree: one serve.request root stamped with the client's
  // trace id, with the per-phase child spans linked under it.
  std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::Instance().Snapshot();
  uint64_t root_id = 0;
  std::map<std::string, const obs::SpanRecord*> traced;
  for (const obs::SpanRecord& span : spans) {
    if (span.trace_id != "e2e-trace-1") continue;
    traced[span.name] = &span;
    if (std::string(span.name) == "serve.request") root_id = span.id;
  }
  ASSERT_NE(root_id, 0u) << "no serve.request span with the client id";
  for (const char* name :
       {"serve.queue_wait", "serve.cache", "serve.preprocess",
        "serve.sample", "serve.encode"}) {
    ASSERT_TRUE(traced.count(name)) << name;
  }
  EXPECT_EQ(traced["serve.queue_wait"]->parent_id, root_id);
  EXPECT_EQ(traced["serve.cache"]->parent_id, root_id);
  EXPECT_EQ(traced["serve.sample"]->parent_id, root_id);
  EXPECT_EQ(traced["serve.encode"]->parent_id, root_id);
  // The synopsis build is a child of the cache lookup that ran it.
  EXPECT_EQ(traced["serve.preprocess"]->parent_id,
            traced["serve.cache"]->id);
  EXPECT_EQ(traced["serve.request"]->parent_id, 0u);
#endif
}

// Requests without trace context still log (with no trace_id field) and
// still report timing — tracing is strictly opt-in on the wire.
TEST_F(ServeE2eTest, UntracedRequestsStillLogAndTime) {
  const std::filesystem::path log_path = *dir_ / "untraced_access.jsonl";
  AccessLogOptions log_options;
  log_options.path = log_path.string();
  AccessLog access_log(log_options);
  std::string error;
  ASSERT_TRUE(access_log.Open(&error)) << error;

  ServerOptions options;
  options.access_log = &access_log;
  CqadServer server(options);
  ASSERT_TRUE(server.Start(&error)) << error;

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Request ping;
  ping.op = "ping";
  Response response;
  ASSERT_TRUE(client.Call(ping, &response, &error)) << error;
  ASSERT_TRUE(client.Call(MakeQueryRequest("Natural", 8), &response, &error))
      << error;
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_TRUE(response.timing.recorded);

  server.RequestDrain();
  server.Wait();

  EXPECT_EQ(access_log.lines(), 2u);
  std::ifstream in(log_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(line, &parsed, &error)) << error << line;
  EXPECT_EQ(parsed.GetString("op", ""), "ping");
  EXPECT_EQ(parsed.Find("trace_id"), nullptr);
  ASSERT_TRUE(std::getline(in, line));
  ASSERT_TRUE(JsonValue::Parse(line, &parsed, &error)) << error << line;
  EXPECT_EQ(parsed.GetString("op", ""), "query");
  EXPECT_EQ(parsed.Find("trace_id"), nullptr);
}

// Stats surfaces the serving gauges, the trace ring's drop counter, and
// the access-log sampling state — the in-band view of what /metrics and
// the log export out-of-band.
TEST_F(ServeE2eTest, StatsCarriesGaugesTraceDropsAndAccessLogState) {
  AccessLogOptions log_options;
  log_options.path = (*dir_ / "stats_access.jsonl").string();
  log_options.sample_rate = 0.25;
  AccessLog access_log(log_options);
  std::string error;
  ASSERT_TRUE(access_log.Open(&error)) << error;

  ServerOptions options;
  options.access_log = &access_log;
  CqadServer server(options);
  ASSERT_TRUE(server.Start(&error)) << error;

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Request stats;
  stats.op = "stats";
  Response response;
  ASSERT_TRUE(client.Call(stats, &response, &error)) << error;
  ASSERT_TRUE(response.ok()) << response.error;

  JsonValue server_json;
  ASSERT_TRUE(JsonValue::Parse(response.server_json, &server_json, &error))
      << error << response.server_json;
  // The stats connection itself is open right now.
  EXPECT_GE(server_json.GetNumber("connections_open", -1), 1.0);
  EXPECT_GE(server_json.GetNumber("admission_inflight", -1), 0.0);
  EXPECT_GE(server_json.GetNumber("admission_queued", -1), 0.0);
  EXPECT_GE(server_json.GetNumber("trace_dropped_spans", -1), 0.0);
  const JsonValue* log_state = server_json.Find("access_log");
  ASSERT_NE(log_state, nullptr);
  ASSERT_TRUE(log_state->is_object());
  EXPECT_EQ(log_state->GetBool("enabled", false), true);
  EXPECT_EQ(log_state->GetNumber("sample_rate", 0), 0.25);

  server.RequestDrain();
  server.Wait();
}

TEST_F(ServeE2eTest, DeadlineIsEnforced) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  Request request = MakeQueryRequest("KLM", 5);
  request.deadline_s = 1e-4;  // Far below preprocess + scheme cost.
  Response response;
  ASSERT_TRUE(client.Call(request, &response, &error)) << error;
  // Either the preprocess step hit the wall (408) or the scheme phase
  // returned a partial, timed-out result; both honor the budget.
  if (response.ok()) {
    EXPECT_TRUE(response.timed_out);
  } else {
    EXPECT_EQ(response.code, ErrorCode::kDeadlineExceeded);
  }

  server.RequestDrain();
  server.Wait();
}

// The reactor accepts on an epoll-driven listener: a new connection is
// serviceable the moment the kernel signals it, not on the next tick of
// a 200ms acceptor poll. Budget is 10ms for connect + ping round trip
// on loopback under no load; best-of-three to keep a scheduler hiccup
// on a loaded CI box from failing the run.
TEST_F(ServeE2eTest, AcceptUnderNoLoadIsImmediate) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  double best_seconds = 1e9;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    Request ping;
    ping.op = "ping";
    ping.id = "accept-" + std::to_string(attempt);
    Response response;
    ASSERT_TRUE(client.Call(ping, &response, &error)) << error;
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_TRUE(response.pong);
    best_seconds = std::min(
        best_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  EXPECT_LT(best_seconds, 0.010)
      << "accept+ping took " << best_seconds * 1e3
      << " ms — an acceptor poll tick is back in the path";

  server.RequestDrain();
  server.Wait();
}

// Pipelining on one connection: many requests in flight, client-chosen
// ids, responses awaited in reverse send order. Every answer set must
// still match the single-process ground truth for its scheme/seed.
TEST_F(ServeE2eTest, PipelinedRequestsResolveOutOfOrderById) {
  ServerOptions options;
  options.workers = 4;
  CqadServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  CqaClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  constexpr int kInFlight = 12;
  for (int i = 0; i < kInFlight; ++i) {
    Request request = MakeQueryRequest(kSchemes[i % 4], 21 + i % 2);
    request.id = "pipe-" + std::to_string(i);
    ASSERT_TRUE(client.Send(request, &error)) << error;
  }
  EXPECT_EQ(client.pending(), static_cast<size_t>(kInFlight));

  for (int i = kInFlight - 1; i >= 0; --i) {
    Response response;
    ASSERT_TRUE(client.Await("pipe-" + std::to_string(i), &response, &error))
        << error;
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.id, "pipe-" + std::to_string(i));
    const std::map<std::string, double> expected =
        LocalAnswers(kSchemes[i % 4], 21 + i % 2);
    ASSERT_EQ(response.answers.size(), expected.size());
    for (const ResponseAnswer& a : response.answers) {
      auto it = expected.find(a.tuple);
      ASSERT_NE(it, expected.end()) << a.tuple;
      EXPECT_EQ(a.frequency, it->second) << a.tuple;
    }
  }
  EXPECT_EQ(client.pending(), 0u);

  server.RequestDrain();
  server.Wait();
}

// Codec transparency: the same query asked in v1 JSON and v2 binary
// returns bit-for-bit identical answers (same tuples, same frequency
// doubles), both matching the single-process ground truth.
TEST_F(ServeE2eTest, BinaryCodecAnswersMatchJsonBitForBit) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Response json_response;
  Response binary_response;
  for (auto [codec, response] :
       {std::pair<WireCodec, Response*>{WireCodec::kJson, &json_response},
        {WireCodec::kBinary, &binary_response}}) {
    CqaClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    client.set_codec(codec);
    Request request = MakeQueryRequest("KL", 33);
    request.id = "codec-kl";
    ASSERT_TRUE(client.Call(request, response, &error)) << error;
    ASSERT_TRUE(response->ok()) << response->error;
  }

  ASSERT_EQ(json_response.answers.size(), binary_response.answers.size());
  for (size_t i = 0; i < json_response.answers.size(); ++i) {
    EXPECT_EQ(json_response.answers[i].tuple,
              binary_response.answers[i].tuple);
    EXPECT_EQ(json_response.answers[i].frequency,
              binary_response.answers[i].frequency);
  }
  const std::map<std::string, double> expected = LocalAnswers("KL", 33);
  ASSERT_EQ(binary_response.answers.size(), expected.size());
  for (const ResponseAnswer& a : binary_response.answers) {
    auto it = expected.find(a.tuple);
    ASSERT_NE(it, expected.end()) << a.tuple;
    EXPECT_EQ(a.frequency, it->second) << a.tuple;
  }

  server.RequestDrain();
  server.Wait();
}

}  // namespace
}  // namespace cqa::serve
