// Tests of the convergence telemetry: the recorder's geometric
// checkpoint spacing, the empirical-Bernstein CI shrinkage on a fixed
// seed, the summary math (samples-to-ε, area under the error curve), the
// JSONL reporter, and the end-to-end plumbing through the schemes. The
// recording hot path compiles out under -DCQABENCH_NO_OBS; both build
// modes run this binary and assert their respective behavior.

#include "obs/convergence.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cqa/apx_cqa.h"
#include "cqa/preprocess.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Hand-built series with known checkpoints for the summary math tests.
obs::ConvergenceSeries MakeSeries(
    double epsilon, std::vector<obs::ConvergenceCheckpoint> checkpoints) {
  obs::ConvergenceSeries s;
  s.phase = "test.series";
  s.epsilon = epsilon;
  s.delta = 0.25;
  s.checkpoints = std::move(checkpoints);
  return s;
}

#ifndef CQABENCH_NO_OBS

TEST(ConvergenceRecorderTest, CheckpointsAreGeometricallySpaced) {
  obs::ConvergenceRecorder recorder("test.spacing", 0.1, 0.25);
  const uint64_t kDraws = 100000;
  for (uint64_t i = 0; i < kDraws; ++i) recorder.Observe(0.5);
  const auto& cps = recorder.series().checkpoints;
  ASSERT_GE(cps.size(), 10u);
  // O(log N) storage: far fewer checkpoints than draws.
  EXPECT_LE(cps.size(), 80u);
  EXPECT_EQ(cps.front().sample_index, 1u);
  for (size_t i = 1; i < cps.size(); ++i) {
    EXPECT_GT(cps[i].sample_index, cps[i - 1].sample_index);
    // Ratio at most 1.25 plus integer rounding once the +n/4 step kicks
    // in (n >= 4); exact +1 below that.
    if (cps[i - 1].sample_index < 4) continue;
    double ratio = static_cast<double>(cps[i].sample_index) /
                   static_cast<double>(cps[i - 1].sample_index);
    EXPECT_LE(ratio, 1.3) << "at checkpoint " << i;
  }
}

TEST(ConvergenceRecorderTest, HalfWidthShrinksOnFixedSeed) {
  obs::ConvergenceRecorder recorder("test.shrink", 0.1, 0.25);
  Rng rng(42);
  for (int i = 0; i < 50000; ++i) {
    recorder.Observe(rng.Bernoulli(0.3) ? 1.0 : 0.0);
  }
  obs::ConvergenceSeries series = recorder.TakeSeries();
  ASSERT_GE(series.checkpoints.size(), 10u);
  // The empirical-Bernstein half width at n=50000 is far below the one
  // at n=1, and the estimate has settled near p = 0.3.
  const auto& first = series.checkpoints.front();
  const auto& last = series.checkpoints.back();
  EXPECT_LT(last.ci_half_width, first.ci_half_width / 10.0);
  EXPECT_NEAR(last.estimate, 0.3, 0.02);
  EXPECT_NEAR(last.variance, 0.3 * 0.7, 0.02);
  // Past the noisy head the shrinkage is monotone (hw ~ sqrt(V/n) with V
  // stabilizing): compare checkpoints a few steps apart.
  for (size_t i = 8; i + 4 < series.checkpoints.size(); ++i) {
    EXPECT_LT(series.checkpoints[i + 4].ci_half_width,
              series.checkpoints[i].ci_half_width * 1.01)
        << "at checkpoint " << i;
  }
  // Wall-clock stamps are monotone.
  for (size_t i = 1; i < series.checkpoints.size(); ++i) {
    EXPECT_GE(series.checkpoints[i].wall_ns,
              series.checkpoints[i - 1].wall_ns);
  }
  // Converged for this generous epsilon, and the summary says when.
  obs::ConvergenceSummary sum = obs::Summarize(series);
  EXPECT_GT(sum.samples_to_epsilon, 0u);
  EXPECT_LT(sum.samples_to_epsilon, 50000u);
}

TEST(ConvergenceRecorderTest, TakeSeriesFinalizesAndResets) {
  obs::ConvergenceRecorder recorder("test.take", 0.1, 0.25);
  for (int i = 0; i < 9; ++i) recorder.Observe(1.0);
  EXPECT_EQ(recorder.count(), 9u);
  obs::ConvergenceSeries series = recorder.TakeSeries();
  // The final sample count is always checkpointed, even off-grid.
  ASSERT_FALSE(series.checkpoints.empty());
  EXPECT_EQ(series.checkpoints.back().sample_index, 9u);
  EXPECT_DOUBLE_EQ(series.checkpoints.back().estimate, 1.0);
  EXPECT_STREQ(series.phase, "test.take");
  // Recorder is reusable and empty.
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_TRUE(recorder.series().checkpoints.empty());
  recorder.Observe(0.0);
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(ConvergenceTest, SchemesRecordSeriesWhenAsked) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  for (SchemeKind scheme : {SchemeKind::kNatural, SchemeKind::kKl,
                            SchemeKind::kKlm, SchemeKind::kCover}) {
    ApxParams params;
    params.record_convergence = true;
    Rng rng(13);
    CqaRunResult run = ApxCqaOnSynopses(pre, scheme, params, rng,
                                        Deadline::Infinite());
    EXPECT_FALSE(run.convergence.empty()) << SchemeKindName(scheme);
    for (const obs::ConvergenceSeries& s : run.convergence) {
      EXPECT_FALSE(s.checkpoints.empty()) << SchemeKindName(scheme);
    }
    obs::RunContext context{"conv", "noise", 0.0};
    obs::RunRecord record = MakeRunRecord(run, scheme, context, 0.0);
    EXPECT_GT(record.convergence.num_series, 0u) << SchemeKindName(scheme);
    // The flat summary fields survive into the JSONL record.
    std::string json = obs::RunRecordToJson(record);
    EXPECT_NE(json.find("\"convergence_series\":"), std::string::npos);
    EXPECT_NE(json.find("\"samples_to_epsilon\":"), std::string::npos);
    EXPECT_NE(json.find("\"auec\":"), std::string::npos);
  }
}

TEST(ConvergenceTest, RecordingIsOffByDefault) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  Rng rng(13);
  CqaRunResult run = ApxCqaOnSynopses(pre, SchemeKind::kKlm, ApxParams{},
                                      rng, Deadline::Infinite());
  EXPECT_TRUE(run.convergence.empty());
}

#else  // CQABENCH_NO_OBS

TEST(ConvergenceRecorderTest, ObserveCompilesOutUnderNoObs) {
  obs::ConvergenceRecorder recorder("test.no_obs", 0.1, 0.25);
  for (int i = 0; i < 1000; ++i) recorder.Observe(0.5);
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_TRUE(recorder.series().checkpoints.empty());
  EXPECT_TRUE(recorder.TakeSeries().checkpoints.empty());
}

TEST(ConvergenceTest, SchemesStayEmptyUnderNoObs) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  ApxParams params;
  params.record_convergence = true;
  Rng rng(13);
  CqaRunResult run = ApxCqaOnSynopses(pre, SchemeKind::kKlm, params, rng,
                                      Deadline::Infinite());
  EXPECT_TRUE(run.convergence.empty());
}

#endif  // CQABENCH_NO_OBS

// ---------------------------------------------------------------------------
// Summary math (pure functions, identical in both build modes).

TEST(ConvergenceSummaryTest, EmptySeriesSummarizesToZero) {
  obs::ConvergenceSummary sum = obs::Summarize(MakeSeries(0.1, {}));
  EXPECT_EQ(sum.num_series, 0u);
  EXPECT_EQ(sum.samples_to_epsilon, 0u);
  EXPECT_EQ(sum.auec, 0.0);
}

TEST(ConvergenceSummaryTest, SamplesToEpsilonIsTheFirstTightCheckpoint) {
  // ε = 0.1: tight means hw <= 0.1 * estimate.
  obs::ConvergenceSeries s = MakeSeries(
      0.1, {{10, 10, 0.5, 0.2, 0.0},    // hw/est = 0.4: loose
            {20, 20, 0.5, 0.06, 0.0},   // hw/est = 0.12: loose
            {40, 40, 0.5, 0.05, 0.0},   // hw/est = 0.1: tight
            {80, 80, 0.5, 0.01, 0.0}});
  obs::ConvergenceSummary sum = obs::Summarize(s);
  EXPECT_EQ(sum.samples_to_epsilon, 40u);
  EXPECT_DOUBLE_EQ(sum.first_half_width, 0.2);
  EXPECT_DOUBLE_EQ(sum.final_half_width, 0.01);
  EXPECT_DOUBLE_EQ(sum.final_estimate, 0.5);
  EXPECT_EQ(sum.num_checkpoints, 4u);
}

TEST(ConvergenceSummaryTest, AuecIsTheNormalizedTrapezoid) {
  // Half width falls linearly 0.3 -> 0.1 over samples 10 -> 30: the
  // normalized trapezoid area is the mean half width 0.2.
  obs::ConvergenceSeries s = MakeSeries(0.1, {{10, 0, 0.5, 0.3, 0.0},
                                              {20, 0, 0.5, 0.2, 0.0},
                                              {30, 0, 0.5, 0.1, 0.0}});
  EXPECT_NEAR(obs::Summarize(s).auec, 0.2, 1e-12);
}

TEST(ConvergenceSummaryTest, AggregateGatesOnTheSlowestSeries) {
  obs::ConvergenceSeries fast =
      MakeSeries(0.1, {{10, 0, 0.5, 0.01, 0.0}});  // converged at 10
  obs::ConvergenceSeries slow =
      MakeSeries(0.1, {{500, 0, 0.5, 0.02, 0.0}});  // converged at 500
  obs::ConvergenceSeries never =
      MakeSeries(0.1, {{100, 0, 0.5, 0.4, 0.0}});  // never tight
  obs::ConvergenceSummary both = obs::Summarize({fast, slow});
  EXPECT_EQ(both.num_series, 2u);
  EXPECT_EQ(both.samples_to_epsilon, 500u);  // max over series
  obs::ConvergenceSummary gated = obs::Summarize({fast, never});
  EXPECT_EQ(gated.num_series, 2u);
  EXPECT_EQ(gated.samples_to_epsilon, 0u);  // one series never converged
  // Empty series are ignored, not counted.
  obs::ConvergenceSummary with_empty =
      obs::Summarize({fast, MakeSeries(0.1, {})});
  EXPECT_EQ(with_empty.num_series, 1u);
  EXPECT_EQ(with_empty.samples_to_epsilon, 10u);
}

TEST(ConvergenceSummaryTest, SeriesJsonHasTheDocumentedShape) {
  obs::ConvergenceSeries s = MakeSeries(0.1, {{10, 1000, 0.5, 0.3, 0.25}});
  std::string json = obs::ConvergenceSeriesToJson(s);
  EXPECT_EQ(json,
            "{\"phase\":\"test.series\",\"epsilon\":0.1,\"delta\":0.25,"
            "\"checkpoints\":[[10,1000,0.5,0.3,0.25]]}");
}

// ---------------------------------------------------------------------------
// JSONL reporter.

TEST(ConvergenceReporterTest, WritesOneTaggedLinePerSeries) {
  std::string path = TempPath("cqa_convergence_reporter_test.jsonl");
  obs::ConvergenceReporter reporter;
  std::string error;
  ASSERT_TRUE(reporter.Open(path, &error)) << error;
  EXPECT_TRUE(reporter.is_open());
  reporter.Add("Noise[0.5]", "noise", 0.5, "KLM",
               MakeSeries(0.1, {{10, 0, 0.5, 0.3, 0.0}}));
  reporter.Add("Noise[0.5]", "noise", 0.5, "Cover",
               MakeSeries(0.1, {}));  // empty: skipped
  EXPECT_EQ(reporter.num_series(), 1u);
  reporter.Close();

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"scenario\":\"Noise[0.5]\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"x_label\":\"noise\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"scheme\":\"KLM\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"phase\":\"test.series\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"checkpoints\":[[10,0,0.5,0.3,0]]"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(ConvergenceReporterTest, OpenFailsOnBadPath) {
  obs::ConvergenceReporter reporter;
  std::string error;
  EXPECT_FALSE(
      reporter.Open("/nonexistent_dir_xyz/convergence.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(reporter.is_open());
}

}  // namespace
}  // namespace cqa
