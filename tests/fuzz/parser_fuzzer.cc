// libFuzzer entry point for the conjunctive-query parser. Build with the
// `fuzz` preset (clang only):
//   cmake --preset fuzz && cmake --build --preset fuzz
//   ./build-fuzz/tests/parser_fuzzer tests/fuzz/corpus
// New crashers should be minimized and checked into tests/fuzz/corpus/ so
// the gtest corpus runner keeps replaying them in every build.

#include <cstddef>
#include <cstdint>

#include "parser_fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return cqa::fuzz::ParserOneInput(data, size);
}
