#ifndef CQABENCH_TESTS_FUZZ_PARSER_FUZZ_DRIVER_H_
#define CQABENCH_TESTS_FUZZ_PARSER_FUZZ_DRIVER_H_

// Shared driver between the libFuzzer harness (fuzz/parser_fuzzer.cc,
// built with CQABENCH_FUZZ=ON under clang) and the seeded gtest
// regression runner (tests/parser_fuzz_test.cc), so every corpus input
// exercises identical code in both.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "gen/tpch.h"
#include "query/cq.h"
#include "query/parser.h"

namespace cqa::fuzz {

/// Feeds one input to the CQ parser against the TPC-H schema. The parser
/// contract under fuzzing: never crash, never accept a query that fails
/// validation, never reject without a diagnostic. Violations abort (which
/// libFuzzer and gtest both report with the offending input).
inline int ParserOneInput(const uint8_t* data, size_t size) {
  static const Schema* const schema = new Schema(MakeTpchSchema());
  const std::string text(reinterpret_cast<const char*>(data), size);
  ConjunctiveQuery query;
  std::string error;
  if (ParseCq(*schema, text, &query, &error)) {
    query.Validate(*schema);  // Anything accepted must be well-formed.
  } else if (error.empty()) {
    std::abort();  // Silent failure: rejected without a diagnostic.
  }
  return 0;
}

}  // namespace cqa::fuzz

#endif  // CQABENCH_TESTS_FUZZ_PARSER_FUZZ_DRIVER_H_
