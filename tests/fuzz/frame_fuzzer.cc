// libFuzzer entry point for the cqad wire protocol: frame reassembly
// plus the JSON (v1) and binary (v2) payload codecs. Build with the
// `fuzz` preset (clang only):
//   cmake --preset fuzz && cmake --build --preset fuzz
//   ./build-fuzz/tests/frame_fuzzer tests/fuzz/frame_corpus
// New crashers should be minimized and checked into tests/fuzz/corpus/ so
// the gtest corpus runner keeps replaying them in every build.

#include <cstddef>
#include <cstdint>

#include "frame_fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return cqa::fuzz::FrameOneInput(data, size);
}
