#ifndef CQABENCH_TESTS_FUZZ_FRAME_FUZZ_DRIVER_H_
#define CQABENCH_TESTS_FUZZ_FRAME_FUZZ_DRIVER_H_

// Shared driver between the libFuzzer harness (fuzz/frame_fuzzer.cc,
// built with CQABENCH_FUZZ=ON under clang) and the seeded gtest
// regression runner (tests/frame_fuzz_test.cc), so every corpus input
// exercises identical code in both.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "serve/protocol.h"

namespace cqa::fuzz {

/// Feeds one byte stream through the cqad wire-protocol stack: frame
/// reassembly (twice, with different chunkings — frame boundaries must
/// not depend on read sizes), then every reassembled payload through the
/// request and response codecs. Contract under fuzzing:
///   - nothing crashes, hangs, or allocates proportional to a length
///     field rather than to the input;
///   - a rejected payload always carries a diagnostic;
///   - an accepted request re-encodes (same codec) to a payload the
///     decoder accepts again — what the server validated, the client
///     can put back on the wire.
/// Violations abort, which libFuzzer and gtest both report with the
/// offending input. Payload caps are small here so the fuzzer can reach
/// the oversize path without 8 MiB inputs.
inline int FrameOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxFrame = 4096;
  const char* bytes = reinterpret_cast<const char*>(data);

  // Pass 1: one Append per input. Pass 2: drip-feed in small chunks
  // derived from the first byte. Both must agree on the frame sequence.
  serve::FrameDecoder whole(kMaxFrame);
  whole.Append(bytes, size);
  serve::FrameDecoder dripped(kMaxFrame);
  const size_t chunk = size == 0 ? 1 : 1 + data[0] % 7;
  for (size_t off = 0; off < size; off += chunk) {
    dripped.Append(bytes + off, std::min(chunk, size - off));
  }
  for (;;) {
    std::string payload_a, payload_b, err_a, err_b;
    const auto status_a = whole.Next(&payload_a, &err_a);
    const auto status_b = dripped.Next(&payload_b, &err_b);
    if (status_a != status_b) std::abort();  // Chunking changed framing.
    if (status_a != serve::FrameDecoder::Status::kFrame) {
      if (status_a == serve::FrameDecoder::Status::kError && err_a.empty()) {
        std::abort();  // Silent poisoning: no diagnostic.
      }
      break;
    }
    if (payload_a != payload_b) std::abort();

    serve::Request request;
    serve::WireCodec codec = serve::WireCodec::kJson;
    serve::ErrorCode code = serve::ErrorCode::kOk;
    std::string error;
    if (serve::Request::FromPayload(payload_a, &request, &codec, &code,
                                    &error)) {
      // Round trip: re-encode in the codec it arrived in and re-decode.
      // deadline_s is the one double the validator leaves unbounded, and
      // a non-finite value has no JSON rendering — skip those.
      if (std::isfinite(request.deadline_s)) {
        serve::Request again;
        serve::ErrorCode code2 = serve::ErrorCode::kOk;
        std::string error2;
        const std::string reencoded =
            codec == serve::WireCodec::kBinary ? request.ToBinaryPayload()
                                               : request.ToJsonPayload();
        const bool ok = codec == serve::WireCodec::kBinary
                            ? serve::Request::FromBinaryPayload(
                                  reencoded, &again, &code2, &error2)
                            : serve::Request::FromJsonPayload(
                                  reencoded, &again, &code2, &error2);
        if (!ok) std::abort();  // Accepted once, rejected re-encoded.
      }
    } else if (error.empty()) {
      std::abort();  // Rejected without a diagnostic.
    }

    serve::Response response;
    error.clear();
    if (!serve::Response::FromPayload(payload_a, &response, &error) &&
        error.empty()) {
      std::abort();
    }
  }
  return 0;
}

}  // namespace cqa::fuzz

#endif  // CQABENCH_TESTS_FUZZ_FRAME_FUZZ_DRIVER_H_
